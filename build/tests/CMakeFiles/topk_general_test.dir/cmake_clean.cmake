file(REMOVE_RECURSE
  "CMakeFiles/topk_general_test.dir/topk_general_test.cc.o"
  "CMakeFiles/topk_general_test.dir/topk_general_test.cc.o.d"
  "topk_general_test"
  "topk_general_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_general_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
