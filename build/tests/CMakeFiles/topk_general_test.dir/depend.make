# Empty dependencies file for topk_general_test.
# This may be replaced when dependencies are built.
