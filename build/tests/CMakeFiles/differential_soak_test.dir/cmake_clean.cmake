file(REMOVE_RECURSE
  "CMakeFiles/differential_soak_test.dir/differential_soak_test.cc.o"
  "CMakeFiles/differential_soak_test.dir/differential_soak_test.cc.o.d"
  "differential_soak_test"
  "differential_soak_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
