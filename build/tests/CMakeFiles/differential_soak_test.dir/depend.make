# Empty dependencies file for differential_soak_test.
# This may be replaced when dependencies are built.
