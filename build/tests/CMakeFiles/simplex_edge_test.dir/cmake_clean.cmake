file(REMOVE_RECURSE
  "CMakeFiles/simplex_edge_test.dir/simplex_edge_test.cc.o"
  "CMakeFiles/simplex_edge_test.dir/simplex_edge_test.cc.o.d"
  "simplex_edge_test"
  "simplex_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplex_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
