file(REMOVE_RECURSE
  "CMakeFiles/text_corpus_test.dir/text_corpus_test.cc.o"
  "CMakeFiles/text_corpus_test.dir/text_corpus_test.cc.o.d"
  "text_corpus_test"
  "text_corpus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
