# Empty compiler generated dependencies file for itemset_miners_test.
# This may be replaced when dependencies are built.
