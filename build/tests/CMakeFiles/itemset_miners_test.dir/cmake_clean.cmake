file(REMOVE_RECURSE
  "CMakeFiles/itemset_miners_test.dir/itemset_miners_test.cc.o"
  "CMakeFiles/itemset_miners_test.dir/itemset_miners_test.cc.o.d"
  "itemset_miners_test"
  "itemset_miners_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itemset_miners_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
