file(REMOVE_RECURSE
  "CMakeFiles/soc_solvers_test.dir/soc_solvers_test.cc.o"
  "CMakeFiles/soc_solvers_test.dir/soc_solvers_test.cc.o.d"
  "soc_solvers_test"
  "soc_solvers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_solvers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
