# Empty dependencies file for soc_solvers_test.
# This may be replaced when dependencies are built.
