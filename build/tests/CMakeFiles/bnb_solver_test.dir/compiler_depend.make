# Empty compiler generated dependencies file for bnb_solver_test.
# This may be replaced when dependencies are built.
