file(REMOVE_RECURSE
  "CMakeFiles/bnb_solver_test.dir/bnb_solver_test.cc.o"
  "CMakeFiles/bnb_solver_test.dir/bnb_solver_test.cc.o.d"
  "bnb_solver_test"
  "bnb_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bnb_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
