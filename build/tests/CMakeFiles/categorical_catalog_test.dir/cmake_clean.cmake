file(REMOVE_RECURSE
  "CMakeFiles/categorical_catalog_test.dir/categorical_catalog_test.cc.o"
  "CMakeFiles/categorical_catalog_test.dir/categorical_catalog_test.cc.o.d"
  "categorical_catalog_test"
  "categorical_catalog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/categorical_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
