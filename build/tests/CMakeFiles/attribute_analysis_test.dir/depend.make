# Empty dependencies file for attribute_analysis_test.
# This may be replaced when dependencies are built.
