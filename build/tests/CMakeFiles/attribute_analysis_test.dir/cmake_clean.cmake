file(REMOVE_RECURSE
  "CMakeFiles/attribute_analysis_test.dir/attribute_analysis_test.cc.o"
  "CMakeFiles/attribute_analysis_test.dir/attribute_analysis_test.cc.o.d"
  "attribute_analysis_test"
  "attribute_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
