# Empty compiler generated dependencies file for lp_writer_test.
# This may be replaced when dependencies are built.
