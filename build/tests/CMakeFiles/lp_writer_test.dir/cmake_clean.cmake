file(REMOVE_RECURSE
  "CMakeFiles/lp_writer_test.dir/lp_writer_test.cc.o"
  "CMakeFiles/lp_writer_test.dir/lp_writer_test.cc.o.d"
  "lp_writer_test"
  "lp_writer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
