# Empty compiler generated dependencies file for mfi_cache_test.
# This may be replaced when dependencies are built.
