file(REMOVE_RECURSE
  "CMakeFiles/mfi_cache_test.dir/mfi_cache_test.cc.o"
  "CMakeFiles/mfi_cache_test.dir/mfi_cache_test.cc.o.d"
  "mfi_cache_test"
  "mfi_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfi_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
