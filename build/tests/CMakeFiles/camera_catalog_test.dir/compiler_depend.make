# Empty compiler generated dependencies file for camera_catalog_test.
# This may be replaced when dependencies are built.
