file(REMOVE_RECURSE
  "CMakeFiles/camera_catalog_test.dir/camera_catalog_test.cc.o"
  "CMakeFiles/camera_catalog_test.dir/camera_catalog_test.cc.o.d"
  "camera_catalog_test"
  "camera_catalog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camera_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
