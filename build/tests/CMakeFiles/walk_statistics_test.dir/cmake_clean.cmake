file(REMOVE_RECURSE
  "CMakeFiles/walk_statistics_test.dir/walk_statistics_test.cc.o"
  "CMakeFiles/walk_statistics_test.dir/walk_statistics_test.cc.o.d"
  "walk_statistics_test"
  "walk_statistics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walk_statistics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
