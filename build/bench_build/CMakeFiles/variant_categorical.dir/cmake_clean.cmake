file(REMOVE_RECURSE
  "../bench/variant_categorical"
  "../bench/variant_categorical.pdb"
  "CMakeFiles/variant_categorical.dir/variant_categorical.cc.o"
  "CMakeFiles/variant_categorical.dir/variant_categorical.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variant_categorical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
