
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/variant_categorical.cc" "bench_build/CMakeFiles/variant_categorical.dir/variant_categorical.cc.o" "gcc" "bench_build/CMakeFiles/variant_categorical.dir/variant_categorical.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/soc_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/categorical/CMakeFiles/soc_categorical.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/soc_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/soc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/soc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/itemsets/CMakeFiles/soc_itemsets.dir/DependInfo.cmake"
  "/root/repo/build/src/boolean/CMakeFiles/soc_boolean.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/soc_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/soc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
