# Empty dependencies file for variant_categorical.
# This may be replaced when dependencies are built.
