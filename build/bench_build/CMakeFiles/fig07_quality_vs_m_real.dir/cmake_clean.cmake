file(REMOVE_RECURSE
  "../bench/fig07_quality_vs_m_real"
  "../bench/fig07_quality_vs_m_real.pdb"
  "CMakeFiles/fig07_quality_vs_m_real.dir/fig07_quality_vs_m_real.cc.o"
  "CMakeFiles/fig07_quality_vs_m_real.dir/fig07_quality_vs_m_real.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_quality_vs_m_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
