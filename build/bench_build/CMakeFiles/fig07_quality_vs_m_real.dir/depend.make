# Empty dependencies file for fig07_quality_vs_m_real.
# This may be replaced when dependencies are built.
