file(REMOVE_RECURSE
  "../bench/fig10_time_vs_logsize"
  "../bench/fig10_time_vs_logsize.pdb"
  "CMakeFiles/fig10_time_vs_logsize.dir/fig10_time_vs_logsize.cc.o"
  "CMakeFiles/fig10_time_vs_logsize.dir/fig10_time_vs_logsize.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_time_vs_logsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
