# Empty compiler generated dependencies file for fig10_time_vs_logsize.
# This may be replaced when dependencies are built.
