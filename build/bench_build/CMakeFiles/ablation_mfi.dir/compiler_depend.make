# Empty compiler generated dependencies file for ablation_mfi.
# This may be replaced when dependencies are built.
