file(REMOVE_RECURSE
  "../bench/ablation_mfi"
  "../bench/ablation_mfi.pdb"
  "CMakeFiles/ablation_mfi.dir/ablation_mfi.cc.o"
  "CMakeFiles/ablation_mfi.dir/ablation_mfi.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
