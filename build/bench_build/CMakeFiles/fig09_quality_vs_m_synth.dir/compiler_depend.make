# Empty compiler generated dependencies file for fig09_quality_vs_m_synth.
# This may be replaced when dependencies are built.
