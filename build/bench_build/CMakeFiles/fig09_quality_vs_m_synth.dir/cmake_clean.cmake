file(REMOVE_RECURSE
  "../bench/fig09_quality_vs_m_synth"
  "../bench/fig09_quality_vs_m_synth.pdb"
  "CMakeFiles/fig09_quality_vs_m_synth.dir/fig09_quality_vs_m_synth.cc.o"
  "CMakeFiles/fig09_quality_vs_m_synth.dir/fig09_quality_vs_m_synth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_quality_vs_m_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
