file(REMOVE_RECURSE
  "../bench/micro_itemsets"
  "../bench/micro_itemsets.pdb"
  "CMakeFiles/micro_itemsets.dir/micro_itemsets.cc.o"
  "CMakeFiles/micro_itemsets.dir/micro_itemsets.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_itemsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
