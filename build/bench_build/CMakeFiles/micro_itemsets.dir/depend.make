# Empty dependencies file for micro_itemsets.
# This may be replaced when dependencies are built.
