file(REMOVE_RECURSE
  "../bench/variant_numeric"
  "../bench/variant_numeric.pdb"
  "CMakeFiles/variant_numeric.dir/variant_numeric.cc.o"
  "CMakeFiles/variant_numeric.dir/variant_numeric.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variant_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
