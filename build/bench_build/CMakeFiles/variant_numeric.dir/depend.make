# Empty dependencies file for variant_numeric.
# This may be replaced when dependencies are built.
