file(REMOVE_RECURSE
  "../bench/ablation_exact"
  "../bench/ablation_exact.pdb"
  "CMakeFiles/ablation_exact.dir/ablation_exact.cc.o"
  "CMakeFiles/ablation_exact.dir/ablation_exact.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
