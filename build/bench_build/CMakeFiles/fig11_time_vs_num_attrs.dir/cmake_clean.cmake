file(REMOVE_RECURSE
  "../bench/fig11_time_vs_num_attrs"
  "../bench/fig11_time_vs_num_attrs.pdb"
  "CMakeFiles/fig11_time_vs_num_attrs.dir/fig11_time_vs_num_attrs.cc.o"
  "CMakeFiles/fig11_time_vs_num_attrs.dir/fig11_time_vs_num_attrs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_time_vs_num_attrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
