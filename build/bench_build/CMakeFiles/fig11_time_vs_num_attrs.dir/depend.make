# Empty dependencies file for fig11_time_vs_num_attrs.
# This may be replaced when dependencies are built.
