file(REMOVE_RECURSE
  "../bench/variant_text"
  "../bench/variant_text.pdb"
  "CMakeFiles/variant_text.dir/variant_text.cc.o"
  "CMakeFiles/variant_text.dir/variant_text.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variant_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
