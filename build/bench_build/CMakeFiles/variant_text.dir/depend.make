# Empty dependencies file for variant_text.
# This may be replaced when dependencies are built.
