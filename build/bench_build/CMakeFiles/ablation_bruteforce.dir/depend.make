# Empty dependencies file for ablation_bruteforce.
# This may be replaced when dependencies are built.
