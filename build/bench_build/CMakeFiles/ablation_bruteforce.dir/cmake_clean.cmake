file(REMOVE_RECURSE
  "../bench/ablation_bruteforce"
  "../bench/ablation_bruteforce.pdb"
  "CMakeFiles/ablation_bruteforce.dir/ablation_bruteforce.cc.o"
  "CMakeFiles/ablation_bruteforce.dir/ablation_bruteforce.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bruteforce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
