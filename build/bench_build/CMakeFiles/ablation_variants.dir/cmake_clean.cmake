file(REMOVE_RECURSE
  "../bench/ablation_variants"
  "../bench/ablation_variants.pdb"
  "CMakeFiles/ablation_variants.dir/ablation_variants.cc.o"
  "CMakeFiles/ablation_variants.dir/ablation_variants.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
