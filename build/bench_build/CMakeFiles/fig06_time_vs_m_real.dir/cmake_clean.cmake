file(REMOVE_RECURSE
  "../bench/fig06_time_vs_m_real"
  "../bench/fig06_time_vs_m_real.pdb"
  "CMakeFiles/fig06_time_vs_m_real.dir/fig06_time_vs_m_real.cc.o"
  "CMakeFiles/fig06_time_vs_m_real.dir/fig06_time_vs_m_real.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_time_vs_m_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
