# Empty dependencies file for fig06_time_vs_m_real.
# This may be replaced when dependencies are built.
