file(REMOVE_RECURSE
  "../bench/ablation_weighted"
  "../bench/ablation_weighted.pdb"
  "CMakeFiles/ablation_weighted.dir/ablation_weighted.cc.o"
  "CMakeFiles/ablation_weighted.dir/ablation_weighted.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
