# Empty dependencies file for ablation_weighted.
# This may be replaced when dependencies are built.
