file(REMOVE_RECURSE
  "../bench/fig08_time_vs_m_synth"
  "../bench/fig08_time_vs_m_synth.pdb"
  "CMakeFiles/fig08_time_vs_m_synth.dir/fig08_time_vs_m_synth.cc.o"
  "CMakeFiles/fig08_time_vs_m_synth.dir/fig08_time_vs_m_synth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_time_vs_m_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
