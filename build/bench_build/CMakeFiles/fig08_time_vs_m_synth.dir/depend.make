# Empty dependencies file for fig08_time_vs_m_synth.
# This may be replaced when dependencies are built.
