file(REMOVE_RECURSE
  "libsoc_categorical.a"
)
