# Empty dependencies file for soc_categorical.
# This may be replaced when dependencies are built.
