file(REMOVE_RECURSE
  "CMakeFiles/soc_categorical.dir/categorical.cc.o"
  "CMakeFiles/soc_categorical.dir/categorical.cc.o.d"
  "libsoc_categorical.a"
  "libsoc_categorical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_categorical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
