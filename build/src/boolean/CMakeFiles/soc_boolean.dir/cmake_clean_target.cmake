file(REMOVE_RECURSE
  "libsoc_boolean.a"
)
