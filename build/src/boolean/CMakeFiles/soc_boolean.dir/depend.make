# Empty dependencies file for soc_boolean.
# This may be replaced when dependencies are built.
