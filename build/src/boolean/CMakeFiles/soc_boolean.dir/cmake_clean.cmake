file(REMOVE_RECURSE
  "CMakeFiles/soc_boolean.dir/evaluator.cc.o"
  "CMakeFiles/soc_boolean.dir/evaluator.cc.o.d"
  "CMakeFiles/soc_boolean.dir/log_stats.cc.o"
  "CMakeFiles/soc_boolean.dir/log_stats.cc.o.d"
  "CMakeFiles/soc_boolean.dir/query_log.cc.o"
  "CMakeFiles/soc_boolean.dir/query_log.cc.o.d"
  "CMakeFiles/soc_boolean.dir/schema.cc.o"
  "CMakeFiles/soc_boolean.dir/schema.cc.o.d"
  "CMakeFiles/soc_boolean.dir/table.cc.o"
  "CMakeFiles/soc_boolean.dir/table.cc.o.d"
  "libsoc_boolean.a"
  "libsoc_boolean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_boolean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
