
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/boolean/evaluator.cc" "src/boolean/CMakeFiles/soc_boolean.dir/evaluator.cc.o" "gcc" "src/boolean/CMakeFiles/soc_boolean.dir/evaluator.cc.o.d"
  "/root/repo/src/boolean/log_stats.cc" "src/boolean/CMakeFiles/soc_boolean.dir/log_stats.cc.o" "gcc" "src/boolean/CMakeFiles/soc_boolean.dir/log_stats.cc.o.d"
  "/root/repo/src/boolean/query_log.cc" "src/boolean/CMakeFiles/soc_boolean.dir/query_log.cc.o" "gcc" "src/boolean/CMakeFiles/soc_boolean.dir/query_log.cc.o.d"
  "/root/repo/src/boolean/schema.cc" "src/boolean/CMakeFiles/soc_boolean.dir/schema.cc.o" "gcc" "src/boolean/CMakeFiles/soc_boolean.dir/schema.cc.o.d"
  "/root/repo/src/boolean/table.cc" "src/boolean/CMakeFiles/soc_boolean.dir/table.cc.o" "gcc" "src/boolean/CMakeFiles/soc_boolean.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/soc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
