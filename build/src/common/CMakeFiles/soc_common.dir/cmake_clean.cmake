file(REMOVE_RECURSE
  "CMakeFiles/soc_common.dir/bitset.cc.o"
  "CMakeFiles/soc_common.dir/bitset.cc.o.d"
  "CMakeFiles/soc_common.dir/combinatorics.cc.o"
  "CMakeFiles/soc_common.dir/combinatorics.cc.o.d"
  "CMakeFiles/soc_common.dir/csv.cc.o"
  "CMakeFiles/soc_common.dir/csv.cc.o.d"
  "CMakeFiles/soc_common.dir/json_writer.cc.o"
  "CMakeFiles/soc_common.dir/json_writer.cc.o.d"
  "CMakeFiles/soc_common.dir/random.cc.o"
  "CMakeFiles/soc_common.dir/random.cc.o.d"
  "CMakeFiles/soc_common.dir/status.cc.o"
  "CMakeFiles/soc_common.dir/status.cc.o.d"
  "CMakeFiles/soc_common.dir/string_util.cc.o"
  "CMakeFiles/soc_common.dir/string_util.cc.o.d"
  "libsoc_common.a"
  "libsoc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
