file(REMOVE_RECURSE
  "libsoc_itemsets.a"
)
