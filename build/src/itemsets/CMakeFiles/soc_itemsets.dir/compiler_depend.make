# Empty compiler generated dependencies file for soc_itemsets.
# This may be replaced when dependencies are built.
