file(REMOVE_RECURSE
  "CMakeFiles/soc_itemsets.dir/apriori.cc.o"
  "CMakeFiles/soc_itemsets.dir/apriori.cc.o.d"
  "CMakeFiles/soc_itemsets.dir/eclat.cc.o"
  "CMakeFiles/soc_itemsets.dir/eclat.cc.o.d"
  "CMakeFiles/soc_itemsets.dir/maximal_dfs.cc.o"
  "CMakeFiles/soc_itemsets.dir/maximal_dfs.cc.o.d"
  "CMakeFiles/soc_itemsets.dir/random_walk.cc.o"
  "CMakeFiles/soc_itemsets.dir/random_walk.cc.o.d"
  "CMakeFiles/soc_itemsets.dir/transaction_db.cc.o"
  "CMakeFiles/soc_itemsets.dir/transaction_db.cc.o.d"
  "libsoc_itemsets.a"
  "libsoc_itemsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_itemsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
