
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/itemsets/apriori.cc" "src/itemsets/CMakeFiles/soc_itemsets.dir/apriori.cc.o" "gcc" "src/itemsets/CMakeFiles/soc_itemsets.dir/apriori.cc.o.d"
  "/root/repo/src/itemsets/eclat.cc" "src/itemsets/CMakeFiles/soc_itemsets.dir/eclat.cc.o" "gcc" "src/itemsets/CMakeFiles/soc_itemsets.dir/eclat.cc.o.d"
  "/root/repo/src/itemsets/maximal_dfs.cc" "src/itemsets/CMakeFiles/soc_itemsets.dir/maximal_dfs.cc.o" "gcc" "src/itemsets/CMakeFiles/soc_itemsets.dir/maximal_dfs.cc.o.d"
  "/root/repo/src/itemsets/random_walk.cc" "src/itemsets/CMakeFiles/soc_itemsets.dir/random_walk.cc.o" "gcc" "src/itemsets/CMakeFiles/soc_itemsets.dir/random_walk.cc.o.d"
  "/root/repo/src/itemsets/transaction_db.cc" "src/itemsets/CMakeFiles/soc_itemsets.dir/transaction_db.cc.o" "gcc" "src/itemsets/CMakeFiles/soc_itemsets.dir/transaction_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/soc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/boolean/CMakeFiles/soc_boolean.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
