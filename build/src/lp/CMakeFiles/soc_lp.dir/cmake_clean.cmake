file(REMOVE_RECURSE
  "CMakeFiles/soc_lp.dir/branch_and_bound.cc.o"
  "CMakeFiles/soc_lp.dir/branch_and_bound.cc.o.d"
  "CMakeFiles/soc_lp.dir/lp_writer.cc.o"
  "CMakeFiles/soc_lp.dir/lp_writer.cc.o.d"
  "CMakeFiles/soc_lp.dir/model.cc.o"
  "CMakeFiles/soc_lp.dir/model.cc.o.d"
  "CMakeFiles/soc_lp.dir/simplex.cc.o"
  "CMakeFiles/soc_lp.dir/simplex.cc.o.d"
  "libsoc_lp.a"
  "libsoc_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
