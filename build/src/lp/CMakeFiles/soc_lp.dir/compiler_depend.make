# Empty compiler generated dependencies file for soc_lp.
# This may be replaced when dependencies are built.
