file(REMOVE_RECURSE
  "libsoc_lp.a"
)
