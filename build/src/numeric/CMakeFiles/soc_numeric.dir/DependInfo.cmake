
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/numeric.cc" "src/numeric/CMakeFiles/soc_numeric.dir/numeric.cc.o" "gcc" "src/numeric/CMakeFiles/soc_numeric.dir/numeric.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/soc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/boolean/CMakeFiles/soc_boolean.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/soc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/soc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/itemsets/CMakeFiles/soc_itemsets.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
