file(REMOVE_RECURSE
  "CMakeFiles/soc_numeric.dir/numeric.cc.o"
  "CMakeFiles/soc_numeric.dir/numeric.cc.o.d"
  "libsoc_numeric.a"
  "libsoc_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
