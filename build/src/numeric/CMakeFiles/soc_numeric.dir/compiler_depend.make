# Empty compiler generated dependencies file for soc_numeric.
# This may be replaced when dependencies are built.
