file(REMOVE_RECURSE
  "libsoc_numeric.a"
)
