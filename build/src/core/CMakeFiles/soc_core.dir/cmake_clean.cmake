file(REMOVE_RECURSE
  "CMakeFiles/soc_core.dir/attribute_analysis.cc.o"
  "CMakeFiles/soc_core.dir/attribute_analysis.cc.o.d"
  "CMakeFiles/soc_core.dir/bnb_solver.cc.o"
  "CMakeFiles/soc_core.dir/bnb_solver.cc.o.d"
  "CMakeFiles/soc_core.dir/brute_force.cc.o"
  "CMakeFiles/soc_core.dir/brute_force.cc.o.d"
  "CMakeFiles/soc_core.dir/greedy.cc.o"
  "CMakeFiles/soc_core.dir/greedy.cc.o.d"
  "CMakeFiles/soc_core.dir/ilp_solver.cc.o"
  "CMakeFiles/soc_core.dir/ilp_solver.cc.o.d"
  "CMakeFiles/soc_core.dir/mfi_solver.cc.o"
  "CMakeFiles/soc_core.dir/mfi_solver.cc.o.d"
  "CMakeFiles/soc_core.dir/solver.cc.o"
  "CMakeFiles/soc_core.dir/solver.cc.o.d"
  "CMakeFiles/soc_core.dir/solver_registry.cc.o"
  "CMakeFiles/soc_core.dir/solver_registry.cc.o.d"
  "CMakeFiles/soc_core.dir/topk.cc.o"
  "CMakeFiles/soc_core.dir/topk.cc.o.d"
  "CMakeFiles/soc_core.dir/topk_general.cc.o"
  "CMakeFiles/soc_core.dir/topk_general.cc.o.d"
  "CMakeFiles/soc_core.dir/variants.cc.o"
  "CMakeFiles/soc_core.dir/variants.cc.o.d"
  "CMakeFiles/soc_core.dir/weighted.cc.o"
  "CMakeFiles/soc_core.dir/weighted.cc.o.d"
  "libsoc_core.a"
  "libsoc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
