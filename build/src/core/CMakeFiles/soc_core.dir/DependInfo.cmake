
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attribute_analysis.cc" "src/core/CMakeFiles/soc_core.dir/attribute_analysis.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/attribute_analysis.cc.o.d"
  "/root/repo/src/core/bnb_solver.cc" "src/core/CMakeFiles/soc_core.dir/bnb_solver.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/bnb_solver.cc.o.d"
  "/root/repo/src/core/brute_force.cc" "src/core/CMakeFiles/soc_core.dir/brute_force.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/brute_force.cc.o.d"
  "/root/repo/src/core/greedy.cc" "src/core/CMakeFiles/soc_core.dir/greedy.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/greedy.cc.o.d"
  "/root/repo/src/core/ilp_solver.cc" "src/core/CMakeFiles/soc_core.dir/ilp_solver.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/ilp_solver.cc.o.d"
  "/root/repo/src/core/mfi_solver.cc" "src/core/CMakeFiles/soc_core.dir/mfi_solver.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/mfi_solver.cc.o.d"
  "/root/repo/src/core/solver.cc" "src/core/CMakeFiles/soc_core.dir/solver.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/solver.cc.o.d"
  "/root/repo/src/core/solver_registry.cc" "src/core/CMakeFiles/soc_core.dir/solver_registry.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/solver_registry.cc.o.d"
  "/root/repo/src/core/topk.cc" "src/core/CMakeFiles/soc_core.dir/topk.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/topk.cc.o.d"
  "/root/repo/src/core/topk_general.cc" "src/core/CMakeFiles/soc_core.dir/topk_general.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/topk_general.cc.o.d"
  "/root/repo/src/core/variants.cc" "src/core/CMakeFiles/soc_core.dir/variants.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/variants.cc.o.d"
  "/root/repo/src/core/weighted.cc" "src/core/CMakeFiles/soc_core.dir/weighted.cc.o" "gcc" "src/core/CMakeFiles/soc_core.dir/weighted.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/soc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/boolean/CMakeFiles/soc_boolean.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/soc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/itemsets/CMakeFiles/soc_itemsets.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
