file(REMOVE_RECURSE
  "CMakeFiles/soc_datagen.dir/camera_catalog.cc.o"
  "CMakeFiles/soc_datagen.dir/camera_catalog.cc.o.d"
  "CMakeFiles/soc_datagen.dir/car_dataset.cc.o"
  "CMakeFiles/soc_datagen.dir/car_dataset.cc.o.d"
  "CMakeFiles/soc_datagen.dir/categorical_catalog.cc.o"
  "CMakeFiles/soc_datagen.dir/categorical_catalog.cc.o.d"
  "CMakeFiles/soc_datagen.dir/clique.cc.o"
  "CMakeFiles/soc_datagen.dir/clique.cc.o.d"
  "CMakeFiles/soc_datagen.dir/text_corpus.cc.o"
  "CMakeFiles/soc_datagen.dir/text_corpus.cc.o.d"
  "CMakeFiles/soc_datagen.dir/workload.cc.o"
  "CMakeFiles/soc_datagen.dir/workload.cc.o.d"
  "libsoc_datagen.a"
  "libsoc_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
