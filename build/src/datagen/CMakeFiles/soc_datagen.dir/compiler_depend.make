# Empty compiler generated dependencies file for soc_datagen.
# This may be replaced when dependencies are built.
