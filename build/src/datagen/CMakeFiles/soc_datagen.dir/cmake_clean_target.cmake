file(REMOVE_RECURSE
  "libsoc_datagen.a"
)
