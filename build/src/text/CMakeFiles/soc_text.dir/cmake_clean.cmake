file(REMOVE_RECURSE
  "CMakeFiles/soc_text.dir/keyword_selection.cc.o"
  "CMakeFiles/soc_text.dir/keyword_selection.cc.o.d"
  "CMakeFiles/soc_text.dir/text.cc.o"
  "CMakeFiles/soc_text.dir/text.cc.o.d"
  "libsoc_text.a"
  "libsoc_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
