# Empty dependencies file for soc_text.
# This may be replaced when dependencies are built.
