file(REMOVE_RECURSE
  "libsoc_text.a"
)
