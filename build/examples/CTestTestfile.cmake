# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_car_advertiser "/root/repo/build/examples/car_advertiser")
set_tests_properties(example_car_advertiser PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_classified_ad_keywords "/root/repo/build/examples/classified_ad_keywords")
set_tests_properties(example_classified_ad_keywords PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_camera_shop "/root/repo/build/examples/camera_shop")
set_tests_properties(example_camera_shop PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_job_posting "/root/repo/build/examples/job_posting")
set_tests_properties(example_job_posting PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
