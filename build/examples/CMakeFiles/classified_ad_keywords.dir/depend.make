# Empty dependencies file for classified_ad_keywords.
# This may be replaced when dependencies are built.
