file(REMOVE_RECURSE
  "CMakeFiles/classified_ad_keywords.dir/classified_ad_keywords.cpp.o"
  "CMakeFiles/classified_ad_keywords.dir/classified_ad_keywords.cpp.o.d"
  "classified_ad_keywords"
  "classified_ad_keywords.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classified_ad_keywords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
