# Empty compiler generated dependencies file for car_advertiser.
# This may be replaced when dependencies are built.
