file(REMOVE_RECURSE
  "CMakeFiles/car_advertiser.dir/car_advertiser.cpp.o"
  "CMakeFiles/car_advertiser.dir/car_advertiser.cpp.o.d"
  "car_advertiser"
  "car_advertiser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/car_advertiser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
