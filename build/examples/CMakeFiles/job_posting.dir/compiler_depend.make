# Empty compiler generated dependencies file for job_posting.
# This may be replaced when dependencies are built.
