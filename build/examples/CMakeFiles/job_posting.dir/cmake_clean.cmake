file(REMOVE_RECURSE
  "CMakeFiles/job_posting.dir/job_posting.cpp.o"
  "CMakeFiles/job_posting.dir/job_posting.cpp.o.d"
  "job_posting"
  "job_posting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_posting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
