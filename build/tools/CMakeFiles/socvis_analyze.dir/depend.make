# Empty dependencies file for socvis_analyze.
# This may be replaced when dependencies are built.
