file(REMOVE_RECURSE
  "CMakeFiles/socvis_analyze.dir/socvis_analyze.cc.o"
  "CMakeFiles/socvis_analyze.dir/socvis_analyze.cc.o.d"
  "socvis_analyze"
  "socvis_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socvis_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
