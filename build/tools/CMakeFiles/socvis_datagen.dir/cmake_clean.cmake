file(REMOVE_RECURSE
  "CMakeFiles/socvis_datagen.dir/socvis_datagen.cc.o"
  "CMakeFiles/socvis_datagen.dir/socvis_datagen.cc.o.d"
  "socvis_datagen"
  "socvis_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socvis_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
