# Empty dependencies file for socvis_datagen.
# This may be replaced when dependencies are built.
