file(REMOVE_RECURSE
  "CMakeFiles/socvis_solve.dir/socvis_solve.cc.o"
  "CMakeFiles/socvis_solve.dir/socvis_solve.cc.o.d"
  "socvis_solve"
  "socvis_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socvis_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
