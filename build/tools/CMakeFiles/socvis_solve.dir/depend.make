# Empty dependencies file for socvis_solve.
# This may be replaced when dependencies are built.
