// Car advertiser: the paper's end-to-end scenario at full scale.
//
// A dealer is about to list a used car on a marketplace with 15,211
// competing listings (M = 32 Boolean features) and a log of buyer
// searches. The ad template has room for m features. This example:
//
//   1. generates the marketplace and the query log,
//   2. picks the best m features with every algorithm of the paper and
//      compares quality and runtime,
//   3. solves the per-attribute variant ("how many features are even
//      worth paying for?"), and
//   4. solves SOC-CB-D ("ignore the log; dominate as many competing
//      listings as possible").
//
// Run: ./build/examples/car_advertiser [m]

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "core/attribute_analysis.h"
#include "core/brute_force.h"
#include "core/greedy.h"
#include "core/ilp_solver.h"
#include "core/mfi_solver.h"
#include "core/variants.h"
#include "datagen/car_dataset.h"
#include "datagen/workload.h"

int main(int argc, char** argv) {
  using namespace soc;
  const int budget = argc > 1 ? std::atoi(argv[1]) : 6;

  // 1. The marketplace and the buyers.
  const BooleanTable market = datagen::GenerateCarDataset();
  const QueryLog log = datagen::MakeRealLikeWorkload(market);
  std::printf("Marketplace: %d listings, %d features; query log: %d buyer "
              "searches\n",
              market.num_rows(), market.num_attributes(), log.size());

  // Our car: a well-equipped listing from the generator.
  const DynamicBitset car =
      market.row(datagen::PickAdvertisedTuples(market, 1, 99).front());
  std::printf("Our car has %d features: ", static_cast<int>(car.Count()));
  car.ForEachSetBit([&](int attr) {
    std::printf("%s ", market.schema().name(attr).c_str());
  });
  std::printf("\nAd budget: %d features\n\n", budget);

  // 2. Feature selection with every algorithm.
  const BruteForceSolver brute_force;
  const IlpSocSolver ilp;
  const MfiSocSolver mfi;
  const GreedySolver attr(GreedyKind::kConsumeAttr);
  const GreedySolver cumul(GreedyKind::kConsumeAttrCumul);
  const GreedySolver queries(GreedyKind::kConsumeQueries);
  const SocSolver* solvers[] = {&brute_force, &ilp, &mfi,
                                &attr,        &cumul, &queries};
  for (const SocSolver* solver : solvers) {
    WallTimer timer;
    auto solution = solver->Solve(log, car, budget);
    const double ms = timer.ElapsedMillis();
    if (!solution.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", solver->name().c_str(),
                   solution.status().ToString().c_str());
      continue;
    }
    std::printf("%-18s %3d/%d searches reach the ad  (%.2f ms)%s\n",
                solver->name().c_str(), solution->satisfied_queries,
                log.size(), ms, solution->proved_optimal ? "  [optimal]" : "");
  }

  // 3. Per-attribute variant: buyers reached per dollar of ad space.
  auto per_attr = SolvePerAttribute(brute_force, log, car);
  if (per_attr.ok()) {
    std::printf(
        "\nPer-attribute variant: listing %d features maximizes buyers per "
        "feature (%.2f searches/feature, %d total)\n",
        per_attr->chosen_m, per_attr->ratio,
        per_attr->solution.satisfied_queries);
  }

  // 4. SOC-CB-D: no query log available — stand out against the
  // competition directly (Sec II.B).
  auto domination = SolveSocCbD(brute_force, market, car, budget);
  if (domination.ok()) {
    std::printf(
        "SOC-CB-D: the same ad budget can dominate %d of %d competing "
        "listings with { ",
        domination->satisfied_queries, market.num_rows());
    domination->selected.ForEachSetBit([&](int a) {
      std::printf("%s ", market.schema().name(a).c_str());
    });
    std::printf("}\n");
  }

  // 5. What is each feature worth? (Sec I: "adding a swimming pool really
  // increases visibility".)
  auto values = AnalyzeAttributeValues(brute_force, log, car, budget);
  if (values.ok()) {
    std::printf("\nMarginal visibility of each feature at m=%d (forced-in "
                "vs forced-out optimum):\n",
                budget);
    for (std::size_t i = 0; i < values->size() && i < 5; ++i) {
      const AttributeValue& value = (*values)[i];
      std::printf("  %-18s %+3d  (in: %d, out: %d)\n",
                  market.schema().name(value.attribute).c_str(),
                  value.marginal, value.forced_in, value.forced_out);
    }
  }
  return 0;
}
