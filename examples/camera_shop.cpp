// Camera shop: the numeric / categorical / top-k variants in one pipeline
// (the digital-camera scenario the paper sketches in Sec II.B).
//
// A shop lists a new camera in a catalog where buyers filter by numeric
// ranges (price, weight, resolution, zoom) and categorical facets (brand,
// color), and results are ranked by price. The spec sheet has room for m
// fields; which ones should the shop publish?
//
// Run: ./build/examples/camera_shop

#include <cstdio>
#include <vector>

#include "categorical/categorical.h"
#include "core/brute_force.h"
#include "core/topk.h"
#include "numeric/numeric.h"

int main() {
  using namespace soc;

  // --------------------------------------------------------------------
  // 1. Numeric range queries (Sec V reduction).
  const std::vector<std::string> spec_fields = {"Price", "Weight",
                                                "Resolution", "Zoom"};
  const std::vector<double> camera = {299.0, 0.42, 20.0, 8.0};

  std::vector<numeric::RangeQuery> searches;
  for (int i = 0; i < 6; ++i) {
    searches.push_back({{0, 200, 350}});                  // Budget buyers.
  }
  for (int i = 0; i < 4; ++i) {
    searches.push_back({{2, 16, 24}, {3, 5, 12}});        // Enthusiasts.
  }
  for (int i = 0; i < 2; ++i) {
    searches.push_back({{1, 0.0, 0.3}});                  // Ultralight: lost.
  }

  const BruteForceSolver exact;
  for (int m = 1; m <= 3; ++m) {
    auto best = numeric::SolveNumericSoc(exact, spec_fields, searches,
                                         camera, m);
    if (!best.ok()) return 1;
    std::printf("Publish %d numeric fields: ", m);
    for (int attr : best->selected_attributes) {
      std::printf("%s ", spec_fields[attr].c_str());
    }
    std::printf("-> visible to %d/%zu range searches\n",
                best->satisfied_queries, searches.size());
  }

  // --------------------------------------------------------------------
  // 2. Categorical facets.
  auto schema = categorical::CategoricalSchema::Create(
      {"Brand", "Color", "SensorType"},
      {{"Canon", "Nikon", "Sony"},
       {"Black", "Silver"},
       {"CMOS", "CCD"}});
  if (!schema.ok()) return 1;
  const categorical::CategoricalTuple our_camera = {2, 0, 0};  // Sony/Black/CMOS.
  std::vector<categorical::CategoricalQuery> facet_searches;
  for (int i = 0; i < 5; ++i) facet_searches.push_back({{0, 2}});           // Sony.
  for (int i = 0; i < 3; ++i) facet_searches.push_back({{1, 0}, {2, 0}});   // Black CMOS.
  facet_searches.push_back({{0, 0}});                                       // Canon: lost.
  auto facets = categorical::SolveCategoricalSoc(exact, *schema,
                                                 facet_searches, our_camera,
                                                 2);
  if (!facets.ok()) return 1;
  std::printf("\nPublish 2 facets: ");
  for (int attr : facets->selected_attributes) {
    std::printf("%s=%s ",
                schema->attribute_name(attr).c_str(),
                schema->domain(attr)[our_camera[attr]].c_str());
  }
  std::printf("-> visible to %d/%zu facet searches\n",
              facets->satisfied_queries, facet_searches.size());

  // --------------------------------------------------------------------
  // 3. Top-k ranked by price (global scoring; SOC-Topk reduction).
  // Competing cameras in the catalog, as Boolean feature tuples + price.
  auto bool_schema = AttributeSchema::Create(
      {"WiFi", "GPS", "Stabilizer", "Waterproof", "Viewfinder", "4K"});
  if (!bool_schema.ok()) return 1;
  BooleanTable catalog(std::move(bool_schema).value());
  std::vector<double> prices;
  catalog.AddRowFromIndices({0, 2, 4});     prices.push_back(279);
  catalog.AddRowFromIndices({0, 1, 2, 5});  prices.push_back(329);
  catalog.AddRowFromIndices({0, 2});        prices.push_back(249);
  catalog.AddRowFromIndices({3, 4});        prices.push_back(399);
  catalog.AddRowFromIndices({0, 1, 2, 4, 5}); prices.push_back(459);

  QueryLog feature_log(catalog.schema());
  for (int i = 0; i < 4; ++i) feature_log.AddQueryFromIndices({0, 2});  // WiFi+Stab.
  for (int i = 0; i < 3; ++i) feature_log.AddQueryFromIndices({5});     // 4K.
  feature_log.AddQueryFromIndices({3});                                 // Waterproof.

  // Our camera: every feature except Waterproof; price 299; buyers sort by
  // price ascending and look at the top-2.
  DynamicBitset ours = DynamicBitset::FromString("111011");
  std::vector<double> ranks;   // Cheaper = better => negate prices.
  for (double p : prices) ranks.push_back(-p);
  const GlobalScoring by_price = MakeStaticScoring(ranks, -299.0);
  // With k = 1 the cheaper competitors own the WiFi+Stabilizer searches,
  // so the best move is to advertise the uncontested 4K niche; once buyers
  // read the top-3 the crowded searches become winnable and the optimal ad
  // switches to WiFi + Stabilizer + 4K.
  for (int k : {1, 3}) {
    auto choice = SolveTopk(exact, catalog, by_price, feature_log, ours,
                            /*m=*/3, k);
    if (!choice.ok()) return 1;
    std::printf("\nTop-%d by price, publish 3 features: ", k);
    choice->selected.ForEachSetBit([&catalog](int attr) {
      std::printf("%s ", catalog.schema().name(attr).c_str());
    });
    std::printf("-> wins %d/%d feature searches", choice->satisfied_queries,
                feature_log.size());
  }
  std::printf("\n");
  return 0;
}
