// Classified-ad keyword selection (the text variant of Sec II.B / V).
//
// We are posting an apartment-for-rent ad in an online newspaper whose
// search runs BM25 top-k retrieval. The ad could mention many things; we
// can only afford m keywords. Which ones make the ad reach the most
// searchers — taking into account that crowded keyword combinations are
// dominated by existing ads?
//
// Run: ./build/examples/classified_ad_keywords

#include <cstdio>
#include <string>
#include <vector>

#include "text/keyword_selection.h"
#include "text/text.h"

int main() {
  using namespace soc::text;

  // The competition: ads already in the paper.
  const std::vector<std::string> existing_ads = {
      "spacious apartment downtown parking included apartment downtown",
      "downtown apartment with parking and balcony downtown apartment",
      "modern apartment downtown great parking downtown",
      "apartment downtown parking apartment downtown location",
      "cozy downtown apartment parking available downtown apartment",
      "family house with garden in quiet suburb",
      "house for rent suburb garage",
  };
  Vocabulary vocab;
  TextIndex index;
  for (const std::string& ad : existing_ads) index.AddDocument(ad, vocab);

  // The searches people ran last month (keyword sets).
  auto query = [&vocab](const std::string& text) {
    SparseQuery q;
    for (const std::string& token : Tokenize(text)) {
      q.push_back(vocab.Intern(token));
    }
    return q;
  };
  std::vector<SparseQuery> log;
  for (int i = 0; i < 8; ++i) log.push_back(query("apartment downtown"));
  for (int i = 0; i < 5; ++i) log.push_back(query("apartment balcony"));
  for (int i = 0; i < 4; ++i) log.push_back(query("pet friendly apartment"));
  for (int i = 0; i < 3; ++i) log.push_back(query("apartment near train"));
  log.push_back(query("garden house suburb"));

  // Everything our apartment could truthfully claim.
  const std::vector<std::string> candidate_words = {
      "apartment", "downtown", "balcony", "sunny",   "pet",
      "friendly",  "train",    "near",    "parking", "renovated"};
  std::vector<int> candidates;
  for (const std::string& word : candidate_words) {
    candidates.push_back(vocab.Intern(word));
  }

  const int m = 4;
  const int k = 2;  // Searchers look at the top-2 results only.
  std::printf("Existing ads: %d, searches: %zu, keyword budget: %d, "
              "searchers read the top-%d\n\n",
              index.num_documents(), log.size(), m, k);

  // Plain conjunctive selection ignores the competition...
  const std::vector<int> naive =
      SelectKeywordsConsumeAttrCumul(log, candidates, m);
  std::printf("Ignoring competition (ConsumeAttrCumul): ");
  for (int term : naive) std::printf("%s ", vocab.term(term).c_str());
  std::printf("\n  -> actually reaches %d searches under BM25 top-%d\n\n",
              CountTopkSatisfied(index, log, naive, k), k);

  // ...the top-k-aware selection avoids the crowded "apartment downtown"
  // niche that five heavyweight ads already own.
  const TopkKeywordResult aware =
      SelectKeywordsTopkBm25(index, log, candidates, m, k);
  std::printf("Competition-aware (SOC-Topk reduction): ");
  for (int term : aware.selected) {
    std::printf("%s ", vocab.term(term).c_str());
  }
  std::printf("\n  -> reaches %d searches under BM25 top-%d\n",
              aware.satisfied_queries, k);
  return 0;
}
