// Job posting: the seller workflow end-to-end on a large repetitive log.
//
// A company posts a job ad on a board where candidates filter by skill
// tags. The search log is big and highly repetitive (candidates reuse the
// same few filter combinations), so the efficient pipeline is:
//
//   1. analyze the log (size histogram, skew, duplication),
//   2. collapse duplicates into a weighted instance,
//   3. pick the m best tags exactly with the weighted branch-and-bound,
//   4. sanity-check against the unweighted solver and value each tag.
//
// Run: ./build/examples/job_posting

#include <cstdio>

#include "boolean/log_stats.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/attribute_analysis.h"
#include "core/bnb_solver.h"
#include "core/weighted.h"
#include "datagen/workload.h"

int main() {
  using namespace soc;

  // Skill-tag universe and the posting's truthful tags.
  auto schema_or = AttributeSchema::Create(
      {"cpp", "python", "sql", "linux", "docker", "kubernetes", "aws",
       "react", "typescript", "go", "rust", "ml", "etl", "kafka", "grpc",
       "security"});
  SOC_CHECK(schema_or.ok());
  const AttributeSchema schema = std::move(schema_or).value();

  // Simulated search log: a few hot filter combinations dominate, with a
  // long tail of ad-hoc searches.
  Rng rng(12);
  QueryLog log(schema);
  const std::vector<std::vector<int>> hot = {
      {0, 3},        // cpp + linux
      {0, 3, 4},     // cpp + linux + docker
      {1, 11},       // python + ml
      {1, 2, 12},    // python + sql + etl
      {6, 5},        // aws + kubernetes
  };
  for (int i = 0; i < 5000; ++i) {
    if (rng.NextBernoulli(0.8)) {
      log.AddQueryFromIndices(hot[rng.NextUint64(hot.size())]);
    } else {
      log.AddQueryFromIndices(
          rng.SampleWithoutReplacement(schema.size(), rng.NextInt(1, 4)));
    }
  }

  const QueryLogStats stats = ComputeQueryLogStats(log);
  std::printf("%s\n", FormatQueryLogStats(log, stats).c_str());

  // The posting can truthfully claim these tags; the board shows only 4.
  DynamicBitset posting = DynamicBitset::FromIndices(
      schema.size(), {0, 2, 3, 4, 5, 9, 14, 15});
  const int m = 4;

  // Weighted pipeline.
  WallTimer weighted_timer;
  const WeightedSocInstance instance = WeightedSocInstance::FromLog(log);
  auto weighted = SolveWeightedBnb(instance, posting, m);
  SOC_CHECK(weighted.ok());
  const double weighted_ms = weighted_timer.ElapsedMillis();

  // Unweighted reference.
  WallTimer raw_timer;
  const BnbSocSolver raw_solver;
  auto raw = raw_solver.Solve(log, posting, m);
  SOC_CHECK(raw.ok());
  const double raw_ms = raw_timer.ElapsedMillis();

  std::printf(
      "weighted pipeline: %lld/%d searches reached in %.2f ms "
      "(%d distinct queries)\n",
      weighted->satisfied_weight, log.size(), weighted_ms,
      instance.queries.size());
  std::printf("raw-log solver:    %d/%d searches reached in %.2f ms\n",
              raw->satisfied_queries, log.size(), raw_ms);
  std::printf("chosen tags: ");
  weighted->selected.ForEachSetBit(
      [&schema](int attr) { std::printf("%s ", schema.name(attr).c_str()); });
  std::printf("\n\n");

  // Which tags actually buy visibility?
  auto values = AnalyzeAttributeValues(raw_solver, log, posting, m);
  SOC_CHECK(values.ok());
  std::printf("tag value (forced-in vs forced-out optimum at m=%d):\n", m);
  for (const AttributeValue& value : *values) {
    if (value.marginal == 0) continue;
    std::printf("  %-12s %+6d\n", schema.name(value.attribute).c_str(),
                value.marginal);
  }
  return 0;
}
