// Quickstart: the paper's running example (Fig 1 / EXAMPLE 1).
//
// An auto dealer wants to advertise a new car but can only list m = 3 of
// its features. Given the query log of what buyers searched for, which
// three features make the ad visible to the most buyers?
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "boolean/query_log.h"
#include "core/brute_force.h"
#include "core/greedy.h"
#include "core/ilp_solver.h"
#include "core/mfi_solver.h"

int main() {
  using namespace soc;

  // The attribute universe of Fig 1.
  auto schema = AttributeSchema::Create({"AC", "FourDoor", "Turbo",
                                         "PowerDoors", "AutoTrans",
                                         "PowerBrakes"});
  if (!schema.ok()) {
    std::fprintf(stderr, "schema: %s\n", schema.status().ToString().c_str());
    return 1;
  }

  // The query log Q: five conjunctive buyer searches.
  QueryLog log(std::move(schema).value());
  log.AddQueryFromIndices({0, 1});     // q1: AC and FourDoor
  log.AddQueryFromIndices({0, 3});     // q2: AC and PowerDoors
  log.AddQueryFromIndices({1, 3});     // q3: FourDoor and PowerDoors
  log.AddQueryFromIndices({3, 5});     // q4: PowerDoors and PowerBrakes
  log.AddQueryFromIndices({2, 4});     // q5: Turbo and AutoTrans

  // The new car t = [1,1,0,1,1,1]: AC, FourDoor, PowerDoors, AutoTrans,
  // PowerBrakes.
  const DynamicBitset new_car = DynamicBitset::FromString("110111");
  const int budget = 3;

  std::printf("New car features: ");
  new_car.ForEachSetBit([&log](int attr) {
    std::printf("%s ", log.schema().name(attr).c_str());
  });
  std::printf("\nAd budget: %d attributes, query log: %d queries\n\n",
              budget, log.size());

  // Solve with each algorithm of the paper.
  const BruteForceSolver brute_force;
  const IlpSocSolver ilp;
  const MfiSocSolver max_freq_itemsets;
  const GreedySolver consume_attr(GreedyKind::kConsumeAttr);
  const SocSolver* solvers[] = {&brute_force, &ilp, &max_freq_itemsets,
                                &consume_attr};
  for (const SocSolver* solver : solvers) {
    auto solution = solver->Solve(log, new_car, budget);
    if (!solution.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", solver->name().c_str(),
                   solution.status().ToString().c_str());
      return 1;
    }
    std::printf("%-18s -> satisfies %d/%d queries with { ",
                solver->name().c_str(), solution->satisfied_queries,
                log.size());
    solution->selected.ForEachSetBit([&log](int attr) {
      std::printf("%s ", log.schema().name(attr).c_str());
    });
    std::printf("}\n");
  }

  std::printf(
      "\nAs in Sec II.A of the paper: advertising {AC, FourDoor, "
      "PowerDoors} satisfies q1, q2 and q3 — no other choice of three "
      "features does better.\n");
  return 0;
}
