// Fig 7: satisfied queries for SOC-CB-QL for varying m, real(-like)
// workload, averaged over randomly selected cars.
//
// Paper's observations to reproduce:
//  * no query is satisfied at m = 3 (every real query has > 3 attributes);
//  * ConsumeAttr and ConsumeAttrCumul are near-optimal;
//  * ConsumeQueries has clearly lower quality.
//
// Flags: --cars=N (default 25), --dataset=N (default 15211).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "bench/figure_runner.h"
#include "core/brute_force.h"
#include "core/greedy.h"

int main(int argc, char** argv) {
  using namespace soc;
  using namespace soc::bench;
  Flags flags(argc, argv);
  const int num_cars = static_cast<int>(flags.GetInt("cars", 25));
  const int dataset_size =
      static_cast<int>(flags.GetInt("dataset", datagen::kPaperCarCount));

  const BooleanTable dataset = MakePaperDataset(dataset_size);
  const QueryLog log = datagen::MakeRealLikeWorkload(dataset);
  std::vector<DynamicBitset> tuples;
  for (int row : datagen::PickAdvertisedTuples(dataset, num_cars, 1)) {
    tuples.push_back(dataset.row(row));
  }

  // Optimal reference: candidate-pruned brute force — cars set only ~1/3 of
  // the 32 attributes, so the combination space is small.
  std::vector<SolverEntry> solvers;
  auto optimal = std::make_shared<BruteForceSolver>();
  solvers.push_back({"Optimal",
                     [optimal](const QueryLog& l, const DynamicBitset& t,
                               int m) { return optimal->Solve(l, t, m); },
                     /*requires_proof=*/true});
  for (GreedyKind kind :
       {GreedyKind::kConsumeAttr, GreedyKind::kConsumeAttrCumul,
        GreedyKind::kConsumeQueries}) {
    auto greedy = std::make_shared<GreedySolver>(kind);
    solvers.push_back({greedy->name(),
                       [greedy](const QueryLog& l, const DynamicBitset& t,
                                int m) { return greedy->Solve(l, t, m); },
                       /*requires_proof=*/false});
  }

  const std::vector<int> budgets = {3, 4, 5, 6, 7};
  std::printf(
      "# Fig 7: satisfied queries vs m — real-like workload (%d queries), "
      "avg over %d cars\n",
      log.size(), num_cars);
  const SweepMatrix matrix = RunBudgetSweep(log, tuples, solvers, budgets);
  PrintQualityTable("m", budgets, solvers, matrix);
  std::printf(
      "\n(m=3 satisfies nothing: every real-like query specifies more than "
      "3 attributes, as in the paper)\n");
  return 0;
}
