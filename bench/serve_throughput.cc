// serve_throughput: throughput of the VisibilityService worker pool on a
// synthetic batch workload, swept over worker counts. Starts the serving
// perf trajectory: requests/sec at 1/2/4/8 workers, printed as a table
// and written to BENCH_serve.json for tracking across commits.
//
//   serve_throughput [--requests=N] [--queries=N] [--attrs=N] [--m=N]
//                    [--seed=N] [--out-json=path] [--trace-out=path]
//                    [--events-out=path] [--profile-out=path]
//
// With --trace-out, every sweep records per-request spans and solver
// phases into one Chrome trace (the recorded numbers then include
// tracing cost; run without the flag for clean throughput).
//
// The observability-overhead phase reruns the 4-worker point with the
// full obs stack on (wide events at sample 1, SLO engine, sampling
// profiler) against a plain rerun, and records the throughput delta as
// "obs_overhead" in BENCH_serve.json with a <=5% acceptance bit.
// --events-out keeps the JSONL that phase produces (otherwise events
// are drained and discarded); --profile-out keeps its collapsed stacks.
//
// The workload mixes the greedy portfolio with exact solves so scaling
// reflects real request heterogeneity, not a single hot loop.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/json_splice.h"
#include "common/json_writer.h"
#include "common/timer.h"
#include "datagen/workload.h"
#include "obs/event_log.h"
#include "obs/profiler.h"
#include "obs/slo.h"
#include "obs/trace_recorder.h"
#include "serve/batch_engine.h"
#include "serve/visibility_service.h"

namespace soc::bench {
namespace {

std::string GetStringFlag(int argc, char** argv, const std::string& name,
                          const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return default_value;
}

struct WorkerPoint {
  int workers = 0;
  double seconds = 0;
  double requests_per_sec = 0;
  double speedup_vs_one = 0;
  double shed_rate = 0;      // Shed or queue-rejected / submitted.
  double degraded_rate = 0;  // Degraded / completed.
};

// Shed + queue-full rejections as a fraction of submissions, and degraded
// completions as a fraction of completions, from a service snapshot.
void FillRates(const serve::MetricsSnapshot& metrics, double* shed_rate,
               double* degraded_rate) {
  const auto counter = [&metrics](const char* name) -> double {
    const auto it = metrics.counters.find(name);
    return it == metrics.counters.end() ? 0.0
                                        : static_cast<double>(it->second);
  };
  const double submitted = counter("submitted");
  const double completed = counter("completed");
  *shed_rate = submitted > 0
                   ? (counter("shed_predicted") +
                      counter("rejected_queue_full")) / submitted
                   : 0.0;
  *degraded_rate = completed > 0 ? counter("degraded") / completed : 0.0;
}

std::vector<serve::SolveRequest> MakeWorkload(const QueryLog& log,
                                              int num_requests, int m,
                                              unsigned seed) {
  // Deterministic pseudo-random tuples (xorshift) over the log's width;
  // solver mix weighted toward the portfolio tiers a service would run.
  const char* solvers[] = {"Fallback", "Fallback", "ConsumeAttrCumul",
                           "BranchAndBound", "MaxFreqItemSets"};
  std::vector<serve::SolveRequest> requests;
  requests.reserve(num_requests);
  unsigned state = seed * 2654435761u + 1u;
  for (int i = 0; i < num_requests; ++i) {
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    serve::SolveRequest request;
    request.id = std::to_string(i);
    request.tuple = DynamicBitset(log.num_attributes());
    for (int a = 0; a < log.num_attributes(); ++a) {
      if ((state >> (a % 28)) & 1u) request.tuple.Set(a);
    }
    request.m = 1 + i % m;
    request.solver = solvers[i % 5];
    requests.push_back(std::move(request));
  }
  return requests;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int num_requests = static_cast<int>(flags.GetInt("requests", 1000));
  const int num_queries = static_cast<int>(flags.GetInt("queries", 300));
  const int num_attrs = static_cast<int>(flags.GetInt("attrs", 14));
  const int m = static_cast<int>(flags.GetInt("m", 5));
  const unsigned seed = static_cast<unsigned>(flags.GetInt("seed", 17));

  const AttributeSchema schema = AttributeSchema::Anonymous(num_attrs);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = num_queries;
  wl.seed = seed;
  const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
  const std::vector<serve::SolveRequest> workload =
      MakeWorkload(log, num_requests, m, seed);

  const unsigned hardware = std::thread::hardware_concurrency();
  // The sweep tops out at 8 workers; past the core count, "speedup" is
  // timeslicing noise, so the artifact flags itself invalid for scaling
  // claims rather than recording a misleading curve.
  const bool scaling_valid = hardware >= 8;
  std::printf("serve_throughput: %d requests, |Q|=%d, M=%d, m<=%d, %u cores\n",
              num_requests, num_queries, num_attrs, m, hardware);
  if (!scaling_valid) {
    std::fprintf(stderr,
                 "serve_throughput: warning: sweeping up to 8 workers on %u "
                 "detected cores — speedup numbers reflect the machine, not "
                 "the service; recording \"scaling_valid\": false\n",
                 hardware);
  }
  std::printf("\n");

  const std::string trace_path =
      GetStringFlag(argc, argv, "trace-out", "");
  obs::TraceRecorder recorder;
  if (!trace_path.empty()) recorder.set_enabled(true);

  std::vector<WorkerPoint> points;
  for (int workers : {1, 2, 4, 8}) {
    serve::VisibilityServiceOptions options;
    options.num_workers = workers;
    options.max_queue = 0;  // Measure solve throughput, not load shedding.
    if (!trace_path.empty()) options.trace_recorder = &recorder;
    serve::VisibilityService service(log, options);

    {  // Warmup: populate the shared MFI cache outside the timed region.
      serve::BatchEngine warmup(service);
      for (int i = 0; i < std::min(64, num_requests); ++i) {
        serve::SolveRequest request = workload[i];
        warmup.Submit(std::move(request));
      }
      warmup.Drain();
    }

    WallTimer timer;
    serve::BatchEngine engine(service);
    for (const serve::SolveRequest& request : workload) {
      engine.Submit(serve::SolveRequest(request));
    }
    const std::vector<serve::SolveResponse> responses = engine.Drain();
    const double seconds = timer.ElapsedSeconds();

    int failed = 0;
    for (const serve::SolveResponse& response : responses) {
      if (!response.status.ok()) ++failed;
    }
    if (failed > 0) {
      std::fprintf(stderr, "serve_throughput: %d requests failed\n", failed);
      return 1;
    }

    WorkerPoint point;
    point.workers = workers;
    point.seconds = seconds;
    point.requests_per_sec = num_requests / seconds;
    point.speedup_vs_one =
        points.empty() ? 1.0
                       : point.requests_per_sec / points[0].requests_per_sec;
    FillRates(service.Metrics(), &point.shed_rate, &point.degraded_rate);
    points.push_back(point);
  }

  ResultTable table("workers",
                    {"seconds", "req/s", "speedup", "shed%", "degr%"});
  for (const WorkerPoint& point : points) {
    table.AddRow(std::to_string(point.workers),
                 {ResultTable::Cell(point.seconds),
                  ResultTable::Cell(point.requests_per_sec, "%.1f"),
                  ResultTable::Cell(point.speedup_vs_one, "%.2f"),
                  ResultTable::Cell(point.shed_rate * 100, "%.1f"),
                  ResultTable::Cell(point.degraded_rate * 100, "%.1f")});
  }
  table.Print();

  // Overload phase: the same batch submitted as one burst against a tight
  // per-request deadline. Cost-aware admission sheds the doomed fraction;
  // what survives must clear its deadline, so shed/degrade rates here are
  // the service's overload posture, not noise.
  const double overload_deadline_ms =
      static_cast<double>(flags.GetInt("overload-deadline-ms", 20));
  serve::VisibilityServiceOptions overload_options;
  overload_options.num_workers = 2;
  overload_options.max_queue = 0;
  serve::VisibilityService overload_service(log, overload_options);
  {  // Deadline-less warmup: teach the cost model real solve costs.
    serve::BatchEngine warmup(overload_service);
    for (int i = 0; i < std::min(64, num_requests); ++i) {
      warmup.Submit(serve::SolveRequest(workload[i]));
    }
    warmup.Drain();
  }
  WallTimer overload_timer;
  serve::BatchEngine overload_engine(overload_service);
  for (const serve::SolveRequest& request : workload) {
    serve::SolveRequest burst_request(request);
    burst_request.deadline_ms = overload_deadline_ms;
    overload_engine.Submit(std::move(burst_request));
  }
  int overload_ok = 0;
  for (const serve::SolveResponse& response : overload_engine.Drain()) {
    if (response.status.ok()) {
      ++overload_ok;
    } else if (response.status.code() != StatusCode::kOverloaded) {
      std::fprintf(stderr, "serve_throughput: overload burst failed: %s\n",
                   response.status.ToString().c_str());
      return 1;
    }
  }
  const double overload_seconds = overload_timer.ElapsedSeconds();
  const serve::MetricsSnapshot overload_metrics = overload_service.Metrics();
  double overload_shed = 0, overload_degraded = 0;
  FillRates(overload_metrics, &overload_shed, &overload_degraded);
  const double overload_p99 =
      overload_metrics.histograms.count("total")
          ? overload_metrics.histograms.at("total").Quantile(0.99)
          : 0.0;
  std::printf(
      "\noverload burst (2 workers, %.0fms deadline): %d/%d accepted "
      "finished OK, shed %.1f%%, degraded %.1f%%, accepted p99 %.2fms, "
      "%.3fs wall\n",
      overload_deadline_ms, overload_ok, num_requests, overload_shed * 100,
      overload_degraded * 100, overload_p99, overload_seconds);

  // Observability-overhead phase: the 4-worker point twice more, first
  // plain and then with the full obs stack recording every request —
  // wide events (sample 1), SLO outcomes and the SIGPROF profiler. Both
  // passes rebuild the service so cache state matches; the recorded
  // fraction is the price of always-on observability, accepted at <=5%.
  const std::string events_path = GetStringFlag(argc, argv, "events-out", "");
  const std::string profile_path =
      GetStringFlag(argc, argv, "profile-out", "");
  const auto run_pass =
      [&](serve::VisibilityServiceOptions pass_options) -> double {
    pass_options.num_workers = 4;
    pass_options.max_queue = 0;
    serve::VisibilityService pass_service(log, pass_options);
    {
      serve::BatchEngine warmup(pass_service);
      for (int i = 0; i < std::min(64, num_requests); ++i) {
        warmup.Submit(serve::SolveRequest(workload[i]));
      }
      warmup.Drain();
    }
    WallTimer pass_timer;
    serve::BatchEngine pass_engine(pass_service);
    for (const serve::SolveRequest& request : workload) {
      pass_engine.Submit(serve::SolveRequest(request));
    }
    pass_engine.Drain();
    return num_requests / pass_timer.ElapsedSeconds();
  };

  obs::EventLog event_log;
  event_log.set_enabled(true);
  obs::JsonlEventSink event_sink(
      {.path = events_path.empty() ? std::string() : events_path});
  if (!events_path.empty()) {
    const Status opened = event_sink.Open();
    if (!opened.ok()) {
      std::fprintf(stderr, "serve_throughput: %s\n",
                   opened.ToString().c_str());
      return 1;
    }
  }
  obs::SloEngine slo_engine;
  bool profiling = false;
  {
    const Status started = obs::Profiler::Instance().Start();
    profiling = started.ok();  // kUnimplemented platforms measure without.
    if (!profiling && !profile_path.empty()) {
      std::fprintf(stderr, "serve_throughput: %s\n",
                   started.ToString().c_str());
      return 1;
    }
  }
  double baseline_rps = 0;
  double obs_rps = 0;
  {
    obs::EventPump pump({.interval_s = 0.05,
                         .log = &event_log,
                         .sink =
                             [&](const std::vector<obs::WideEvent>& events) {
                               if (!events_path.empty()) {
                                 (void)event_sink.Write(events);
                               }
                             }});
    serve::VisibilityServiceOptions obs_options;
    obs_options.event_log = &event_log;
    obs_options.slo_engine = &slo_engine;
    // Interleaved best-of-3: a single-shot delta on a busy machine
    // swings past the real obs cost in both directions, so each config
    // keeps its best trial and the passes alternate to cancel drift.
    for (int trial = 0; trial < 3; ++trial) {
      baseline_rps = std::max(baseline_rps, run_pass({}));
      obs_rps = std::max(obs_rps, run_pass(obs_options));
    }
    pump.Stop();
  }
  std::int64_t profile_samples = 0;
  if (profiling) {
    profile_samples = obs::Profiler::Instance().samples();
    const Status stopped = obs::Profiler::Instance().Stop();
    if (!stopped.ok()) {
      std::fprintf(stderr, "serve_throughput: %s\n",
                   stopped.ToString().c_str());
      return 1;
    }
    if (!profile_path.empty()) {
      const Status written =
          obs::Profiler::Instance().WriteCollapsed(profile_path);
      if (!written.ok()) {
        std::fprintf(stderr, "serve_throughput: %s\n",
                     written.ToString().c_str());
        return 1;
      }
    }
  }
  if (!events_path.empty()) (void)event_sink.Close();
  const double obs_overhead =
      baseline_rps > 0 ? 1.0 - obs_rps / baseline_rps : 0.0;
  std::printf(
      "\nobs overhead (4 workers): %.1f req/s plain, %.1f req/s with "
      "events+slo+profiler (%.1f%%%s), %lld events, %lld profile samples\n",
      baseline_rps, obs_rps, obs_overhead * 100,
      obs_overhead <= 0.05 ? ", within 5% budget" : " — OVER the 5% budget",
      static_cast<long long>(event_log.events_recorded()),
      static_cast<long long>(profile_samples));

  JsonValue json = JsonValue::Object();
  json.Set("bench", JsonValue::String("serve_throughput"));
  json.Set("requests", JsonValue::Int(num_requests));
  json.Set("num_queries", JsonValue::Int(num_queries));
  json.Set("num_attributes", JsonValue::Int(num_attrs));
  json.Set("hardware_concurrency", JsonValue::Int(hardware));
  json.Set("scaling_valid", JsonValue::Bool(scaling_valid));
  std::vector<JsonValue> series;
  for (const WorkerPoint& point : points) {
    JsonValue entry = JsonValue::Object();
    entry.Set("workers", JsonValue::Int(point.workers));
    entry.Set("seconds", JsonValue::Number(point.seconds));
    entry.Set("requests_per_sec", JsonValue::Number(point.requests_per_sec));
    entry.Set("speedup_vs_one_worker",
              JsonValue::Number(point.speedup_vs_one));
    entry.Set("shed_rate", JsonValue::Number(point.shed_rate));
    entry.Set("degraded_rate", JsonValue::Number(point.degraded_rate));
    series.push_back(std::move(entry));
  }
  json.Set("points", JsonValue::Array(std::move(series)));
  JsonValue overload_json = JsonValue::Object();
  overload_json.Set("workers", JsonValue::Int(2));
  overload_json.Set("deadline_ms", JsonValue::Number(overload_deadline_ms));
  overload_json.Set("accepted_ok", JsonValue::Int(overload_ok));
  overload_json.Set("shed_rate", JsonValue::Number(overload_shed));
  overload_json.Set("degraded_rate", JsonValue::Number(overload_degraded));
  overload_json.Set("accepted_p99_ms", JsonValue::Number(overload_p99));
  overload_json.Set("seconds", JsonValue::Number(overload_seconds));
  json.Set("overload", std::move(overload_json));
  JsonValue obs_json = JsonValue::Object();
  obs_json.Set("workers", JsonValue::Int(4));
  obs_json.Set("baseline_requests_per_sec", JsonValue::Number(baseline_rps));
  obs_json.Set("obs_requests_per_sec", JsonValue::Number(obs_rps));
  obs_json.Set("overhead_frac", JsonValue::Number(obs_overhead));
  obs_json.Set("within_budget", JsonValue::Bool(obs_overhead <= 0.05));
  obs_json.Set("events_recorded",
               JsonValue::Int(event_log.events_recorded()));
  obs_json.Set("events_dropped", JsonValue::Int(event_log.events_dropped()));
  obs_json.Set("profiler_enabled", JsonValue::Bool(profiling));
  obs_json.Set("profile_samples", JsonValue::Int(profile_samples));
  json.Set("obs_overhead", std::move(obs_json));

  const std::string out_path = [&argc, &argv] {
    const std::string prefix = "--out-json=";
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    }
    return std::string("BENCH_serve.json");
  }();
  // BENCH_serve.json is co-owned with the multitenant_load bench: carry
  // its "multitenant" section forward instead of clobbering it.
  std::string out_text = json.ToString();
  {
    std::ifstream existing(out_path, std::ios::binary);
    if (existing) {
      std::ostringstream buffer;
      buffer << existing.rdbuf();
      auto section = JsonExtractTopLevelKey(buffer.str(), "multitenant");
      if (section.ok()) {
        auto spliced =
            JsonSpliceTopLevelKey(out_text, "multitenant", *section);
        if (spliced.ok()) out_text = *spliced;
      }
    }
  }
  std::ofstream out(out_path, std::ios::binary);
  out << out_text << "\n";
  if (!out) {
    std::fprintf(stderr, "serve_throughput: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!trace_path.empty()) {
    const Status status = recorder.WriteChromeTrace(trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "serve_throughput: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%lld events, %lld dropped)\n", trace_path.c_str(),
                static_cast<long long>(recorder.events_recorded()),
                static_cast<long long>(recorder.events_dropped()));
  }
  return 0;
}

}  // namespace
}  // namespace soc::bench

int main(int argc, char** argv) { return soc::bench::Main(argc, argv); }
