// serve_throughput: throughput of the VisibilityService worker pool on a
// synthetic batch workload, swept over worker counts. Starts the serving
// perf trajectory: requests/sec at 1/2/4/8 workers, printed as a table
// and written to BENCH_serve.json for tracking across commits.
//
//   serve_throughput [--requests=N] [--queries=N] [--attrs=N] [--m=N]
//                    [--seed=N] [--out-json=path] [--trace-out=path]
//
// With --trace-out, every sweep records per-request spans and solver
// phases into one Chrome trace (the recorded numbers then include
// tracing cost; run without the flag for clean throughput).
//
// The workload mixes the greedy portfolio with exact solves so scaling
// reflects real request heterogeneity, not a single hot loop.

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/json_writer.h"
#include "common/timer.h"
#include "datagen/workload.h"
#include "obs/trace_recorder.h"
#include "serve/batch_engine.h"
#include "serve/visibility_service.h"

namespace soc::bench {
namespace {

std::string GetStringFlag(int argc, char** argv, const std::string& name,
                          const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return default_value;
}

struct WorkerPoint {
  int workers = 0;
  double seconds = 0;
  double requests_per_sec = 0;
  double speedup_vs_one = 0;
};

std::vector<serve::SolveRequest> MakeWorkload(const QueryLog& log,
                                              int num_requests, int m,
                                              unsigned seed) {
  // Deterministic pseudo-random tuples (xorshift) over the log's width;
  // solver mix weighted toward the portfolio tiers a service would run.
  const char* solvers[] = {"Fallback", "Fallback", "ConsumeAttrCumul",
                           "BranchAndBound", "MaxFreqItemSets"};
  std::vector<serve::SolveRequest> requests;
  requests.reserve(num_requests);
  unsigned state = seed * 2654435761u + 1u;
  for (int i = 0; i < num_requests; ++i) {
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    serve::SolveRequest request;
    request.id = std::to_string(i);
    request.tuple = DynamicBitset(log.num_attributes());
    for (int a = 0; a < log.num_attributes(); ++a) {
      if ((state >> (a % 28)) & 1u) request.tuple.Set(a);
    }
    request.m = 1 + i % m;
    request.solver = solvers[i % 5];
    requests.push_back(std::move(request));
  }
  return requests;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int num_requests = static_cast<int>(flags.GetInt("requests", 1000));
  const int num_queries = static_cast<int>(flags.GetInt("queries", 300));
  const int num_attrs = static_cast<int>(flags.GetInt("attrs", 14));
  const int m = static_cast<int>(flags.GetInt("m", 5));
  const unsigned seed = static_cast<unsigned>(flags.GetInt("seed", 17));

  const AttributeSchema schema = AttributeSchema::Anonymous(num_attrs);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = num_queries;
  wl.seed = seed;
  const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
  const std::vector<serve::SolveRequest> workload =
      MakeWorkload(log, num_requests, m, seed);

  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("serve_throughput: %d requests, |Q|=%d, M=%d, m<=%d, %u cores\n",
              num_requests, num_queries, num_attrs, m, hardware);
  if (hardware < 8) {
    std::printf("note: only %u hardware threads — speedup is bounded by the "
                "machine, not the service\n",
                hardware);
  }
  std::printf("\n");

  const std::string trace_path =
      GetStringFlag(argc, argv, "trace-out", "");
  obs::TraceRecorder recorder;
  if (!trace_path.empty()) recorder.set_enabled(true);

  std::vector<WorkerPoint> points;
  for (int workers : {1, 2, 4, 8}) {
    serve::VisibilityServiceOptions options;
    options.num_workers = workers;
    options.max_queue = 0;  // Measure solve throughput, not load shedding.
    if (!trace_path.empty()) options.trace_recorder = &recorder;
    serve::VisibilityService service(log, options);

    {  // Warmup: populate the shared MFI cache outside the timed region.
      serve::BatchEngine warmup(service);
      for (int i = 0; i < std::min(64, num_requests); ++i) {
        serve::SolveRequest request = workload[i];
        warmup.Submit(std::move(request));
      }
      warmup.Drain();
    }

    WallTimer timer;
    serve::BatchEngine engine(service);
    for (const serve::SolveRequest& request : workload) {
      engine.Submit(serve::SolveRequest(request));
    }
    const std::vector<serve::SolveResponse> responses = engine.Drain();
    const double seconds = timer.ElapsedSeconds();

    int failed = 0;
    for (const serve::SolveResponse& response : responses) {
      if (!response.status.ok()) ++failed;
    }
    if (failed > 0) {
      std::fprintf(stderr, "serve_throughput: %d requests failed\n", failed);
      return 1;
    }

    WorkerPoint point;
    point.workers = workers;
    point.seconds = seconds;
    point.requests_per_sec = num_requests / seconds;
    point.speedup_vs_one =
        points.empty() ? 1.0
                       : point.requests_per_sec / points[0].requests_per_sec;
    points.push_back(point);
  }

  ResultTable table("workers", {"seconds", "req/s", "speedup"});
  for (const WorkerPoint& point : points) {
    table.AddRow(std::to_string(point.workers),
                 {ResultTable::Cell(point.seconds),
                  ResultTable::Cell(point.requests_per_sec, "%.1f"),
                  ResultTable::Cell(point.speedup_vs_one, "%.2f")});
  }
  table.Print();

  JsonValue json = JsonValue::Object();
  json.Set("bench", JsonValue::String("serve_throughput"));
  json.Set("requests", JsonValue::Int(num_requests));
  json.Set("num_queries", JsonValue::Int(num_queries));
  json.Set("num_attributes", JsonValue::Int(num_attrs));
  json.Set("hardware_concurrency", JsonValue::Int(hardware));
  std::vector<JsonValue> series;
  for (const WorkerPoint& point : points) {
    JsonValue entry = JsonValue::Object();
    entry.Set("workers", JsonValue::Int(point.workers));
    entry.Set("seconds", JsonValue::Number(point.seconds));
    entry.Set("requests_per_sec", JsonValue::Number(point.requests_per_sec));
    entry.Set("speedup_vs_one_worker",
              JsonValue::Number(point.speedup_vs_one));
    series.push_back(std::move(entry));
  }
  json.Set("points", JsonValue::Array(std::move(series)));

  const std::string out_path = [&argc, &argv] {
    const std::string prefix = "--out-json=";
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    }
    return std::string("BENCH_serve.json");
  }();
  std::ofstream out(out_path, std::ios::binary);
  out << json.ToString() << "\n";
  if (!out) {
    std::fprintf(stderr, "serve_throughput: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!trace_path.empty()) {
    const Status status = recorder.WriteChromeTrace(trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "serve_throughput: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%lld events, %lld dropped)\n", trace_path.c_str(),
                static_cast<long long>(recorder.events_recorded()),
                static_cast<long long>(recorder.events_dropped()));
  }
  return 0;
}

}  // namespace
}  // namespace soc::bench

int main(int argc, char** argv) { return soc::bench::Main(argc, argv); }
