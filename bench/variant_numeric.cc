// Numeric variant (Sec V): range-query workloads over the synthetic
// camera catalog, solved through the Boolean reduction with each SOC
// solver. Shows the reduction's cost (negligible) and how the reduced
// instances behave across m.
//
// Flags: --cameras=N (default 20), --queries=N (default 400).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/solver_registry.h"
#include "datagen/camera_catalog.h"
#include "numeric/numeric.h"

int main(int argc, char** argv) {
  using namespace soc;
  using namespace soc::bench;
  Flags flags(argc, argv);
  const int num_cameras = static_cast<int>(flags.GetInt("cameras", 20));
  const int num_queries = static_cast<int>(flags.GetInt("queries", 400));

  datagen::CameraCatalogOptions catalog_options;
  const numeric::NumericTable catalog =
      datagen::GenerateCameraCatalog(catalog_options);
  datagen::CameraWorkloadOptions workload_options;
  workload_options.num_queries = num_queries;
  const std::vector<numeric::RangeQuery> queries =
      datagen::MakeCameraWorkload(catalog, workload_options);
  const std::vector<std::string> names = datagen::CameraAttributeNames();

  // New cameras to list: random catalog rows.
  Rng rng(31);
  std::vector<int> rows;
  for (int i = 0; i < num_cameras; ++i) {
    rows.push_back(static_cast<int>(rng.NextUint64(catalog.num_rows())));
  }

  const std::vector<std::string> solver_names = {
      "BranchAndBound", "MaxFreqItemSets", "ConsumeAttrCumul"};
  const std::vector<int> budgets = {1, 2, 3, 4, 5};
  std::vector<std::string> columns;
  for (int m : budgets) columns.push_back(StrFormat("%d", m));
  ResultTable quality("visible \\ m", columns);
  ResultTable timing("time(s) \\ m", columns);

  for (const std::string& solver_name : solver_names) {
    auto solver = CreateSolverByName(solver_name);
    SOC_CHECK(solver.ok());
    std::vector<std::string> qcells, tcells;
    for (int m : budgets) {
      double satisfied = 0.0, seconds = 0.0;
      for (int row : rows) {
        WallTimer timer;
        auto solution = numeric::SolveNumericSoc(**solver, names, queries,
                                                 catalog.row(row), m);
        seconds += timer.ElapsedSeconds();
        SOC_CHECK(solution.ok());
        satisfied += solution->satisfied_queries;
      }
      qcells.push_back(
          ResultTable::Cell(satisfied / num_cameras, "%.2f"));
      tcells.push_back(ResultTable::Cell(seconds / num_cameras));
    }
    quality.AddRow(solver_name, qcells);
    timing.AddRow(solver_name, tcells);
  }

  std::printf(
      "# Numeric variant: range-query visibility of a new camera listing "
      "(%d-camera catalog, %d range queries; avg over %d new listings)\n",
      catalog.num_rows(), num_queries, num_cameras);
  quality.Print();
  std::printf("\n");
  timing.Print();
  std::printf(
      "\n(each query is a window around a real camera; publishing the "
      "right %d spec fields decides whether buyers see the listing)\n",
      budgets.back());
  return 0;
}
