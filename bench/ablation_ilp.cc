// Ablation of the ILP solver's beyond-paper improvements:
//
//  * presolve: omit variables fixed at zero and unsatisfiable queries
//    (objective-preserving) vs the paper's literal Sec IV.B model;
//  * greedy incumbent seeding for branch-and-bound.
//
// Presolve moves the ILP scaling wall far beyond the paper's ~1000
// queries, because the model only grows with the *satisfiable* part of
// the log.
//
// Flags: --cars=N (default 2), --ilp-limit=SECONDS (default 15).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "bench/figure_runner.h"
#include "core/ilp_solver.h"

int main(int argc, char** argv) {
  using namespace soc;
  using namespace soc::bench;
  Flags flags(argc, argv);
  const int num_cars = static_cast<int>(flags.GetInt("cars", 2));
  const double ilp_limit =
      static_cast<double>(flags.GetInt("ilp-limit", 15));

  const BooleanTable dataset = MakePaperDataset(5000);
  std::vector<DynamicBitset> tuples;
  for (int row : datagen::PickAdvertisedTuples(dataset, num_cars, 7)) {
    tuples.push_back(dataset.row(row));
  }

  auto entry = [&](std::string name, bool presolve, bool seed) {
    IlpSocOptions options;
    options.presolve = presolve;
    options.seed_with_greedy = seed;
    options.mip.time_limit_seconds = ilp_limit;
    auto solver = std::make_shared<IlpSocSolver>(options);
    return SolverEntry{std::move(name),
                       [solver](const QueryLog& l, const DynamicBitset& t,
                                int m) { return solver->Solve(l, t, m); },
                       /*requires_proof=*/true};
  };

  std::vector<SolverEntry> solvers;
  solvers.push_back(entry("paper-model", false, false));
  solvers.push_back(entry("paper-model+seed", false, true));
  solvers.push_back(entry("presolve", true, false));
  solvers.push_back(entry("presolve+seed", true, true));

  const std::vector<int> sizes = {100, 200, 500, 1000, 2000};
  std::vector<std::vector<SweepCell>> matrix(
      solvers.size(), std::vector<SweepCell>(sizes.size()));
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    datagen::SyntheticWorkloadOptions workload;
    workload.num_queries = sizes[i];
    workload.seed = 42 + i;
    const QueryLog log = MakeSyntheticWorkload(dataset.schema(), workload);
    const SweepMatrix column = RunBudgetSweep(log, tuples, solvers, {5});
    for (std::size_t s = 0; s < solvers.size(); ++s) {
      matrix[s][i] = column[s][0];
    }
  }

  std::printf(
      "# ILP ablation: presolve and greedy seeding — synthetic workloads, "
      "m=5, avg over %d cars\n",
      num_cars);
  PrintTimeTable("|Q|", sizes, solvers, matrix);
  return 0;
}
