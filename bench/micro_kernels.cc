// Microbenchmarks of the library's hot kernels: bitset algebra, the
// conjunctive evaluator, tidset support counting, and the simplex solver.

#include <benchmark/benchmark.h>

#include "boolean/evaluator.h"
#include "common/bitset.h"
#include "common/random.h"
#include "datagen/car_dataset.h"
#include "datagen/workload.h"
#include "itemsets/transaction_db.h"
#include "lp/simplex.h"

namespace soc {
namespace {

DynamicBitset RandomBitset(Rng& rng, int size, double density) {
  DynamicBitset b(size);
  for (int i = 0; i < size; ++i) {
    if (rng.NextBernoulli(density)) b.Set(i);
  }
  return b;
}

void BM_BitsetAnd(benchmark::State& state) {
  Rng rng(1);
  const int bits = static_cast<int>(state.range(0));
  DynamicBitset a = RandomBitset(rng, bits, 0.5);
  const DynamicBitset b = RandomBitset(rng, bits, 0.5);
  for (auto _ : state) {
    a &= b;
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() * bits);
}
BENCHMARK(BM_BitsetAnd)->Arg(64)->Arg(1024)->Arg(16384);

void BM_BitsetSubsetTest(benchmark::State& state) {
  Rng rng(2);
  const int bits = static_cast<int>(state.range(0));
  const DynamicBitset small = RandomBitset(rng, bits, 0.1);
  const DynamicBitset big = small | RandomBitset(rng, bits, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(small.IsSubsetOf(big));
  }
  state.SetItemsProcessed(state.iterations() * bits);
}
BENCHMARK(BM_BitsetSubsetTest)->Arg(64)->Arg(1024)->Arg(16384);

void BM_BitsetPopcount(benchmark::State& state) {
  Rng rng(3);
  const DynamicBitset b = RandomBitset(rng, 16384, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.Count());
  }
}
BENCHMARK(BM_BitsetPopcount);

void BM_ConjunctiveEvaluator(benchmark::State& state) {
  const int num_queries = static_cast<int>(state.range(0));
  const AttributeSchema schema = AttributeSchema::Anonymous(32);
  datagen::SyntheticWorkloadOptions options;
  options.num_queries = num_queries;
  const QueryLog log = datagen::MakeSyntheticWorkload(schema, options);
  Rng rng(4);
  const DynamicBitset tuple = RandomBitset(rng, 32, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountSatisfiedQueries(log, tuple));
  }
  state.SetItemsProcessed(state.iterations() * num_queries);
}
BENCHMARK(BM_ConjunctiveEvaluator)->Arg(185)->Arg(2000)->Arg(20000);

void BM_TidsetSupport(benchmark::State& state) {
  const int num_queries = static_cast<int>(state.range(0));
  const AttributeSchema schema = AttributeSchema::Anonymous(32);
  datagen::SyntheticWorkloadOptions options;
  options.num_queries = num_queries;
  const QueryLog log = datagen::MakeSyntheticWorkload(schema, options);
  const auto db = itemsets::TransactionDatabase::FromComplementedQueryLog(log);
  Rng rng(5);
  const DynamicBitset itemset = RandomBitset(rng, 32, 0.6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Support(itemset));
  }
  state.SetItemsProcessed(state.iterations() * num_queries);
}
BENCHMARK(BM_TidsetSupport)->Arg(185)->Arg(2000)->Arg(20000);

void BM_SimplexLp(benchmark::State& state) {
  // A dense-ish random LP with n variables and n/2 constraints.
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  lp::LinearModel model(lp::ObjectiveSense::kMaximize);
  for (int j = 0; j < n; ++j) {
    model.AddVariable("x", 0, 1, rng.NextDouble());
  }
  for (int i = 0; i < n / 2; ++i) {
    const int row = model.AddConstraint(
        "c", lp::ConstraintSense::kLessEqual, 1.0 + 3.0 * rng.NextDouble());
    for (int j = 0; j < n; ++j) {
      if (rng.NextBernoulli(0.3)) model.AddTerm(row, j, rng.NextDouble());
    }
  }
  for (auto _ : state) {
    auto result = lp::SolveLp(model);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SimplexLp)->Arg(16)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_CarDatasetGeneration(benchmark::State& state) {
  datagen::CarDatasetOptions options;
  options.num_cars = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(datagen::GenerateCarDataset(options));
  }
  state.SetItemsProcessed(state.iterations() * options.num_cars);
}
BENCHMARK(BM_CarDatasetGeneration)->Arg(1000)->Arg(15211);

}  // namespace
}  // namespace soc

BENCHMARK_MAIN();
