// Microbenchmarks of the library's hot kernels: bitset algebra, the
// conjunctive evaluator, tidset support counting, the simplex solver, and
// the batch coverage kernels in their dispatch tiers.
//
// Besides the google-benchmark entries, `--kernels-json=PATH` runs a
// self-timed kernel trajectory (per-kernel GB/s for every available tier,
// plus end-to-end per-request solve cost scalar vs. best tier) and writes
// it as one JSON object — the pinned BENCH_kernels.json artifact.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "boolean/evaluator.h"
#include "common/bitset.h"
#include "common/json_writer.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/greedy.h"
#include "datagen/car_dataset.h"
#include "datagen/workload.h"
#include "itemsets/transaction_db.h"
#include "kernels/kernels.h"
#include "lp/simplex.h"

namespace soc {
namespace {

DynamicBitset RandomBitset(Rng& rng, int size, double density) {
  DynamicBitset b(size);
  for (int i = 0; i < size; ++i) {
    if (rng.NextBernoulli(density)) b.Set(i);
  }
  return b;
}

void BM_BitsetAnd(benchmark::State& state) {
  Rng rng(1);
  const int bits = static_cast<int>(state.range(0));
  DynamicBitset a = RandomBitset(rng, bits, 0.5);
  const DynamicBitset b = RandomBitset(rng, bits, 0.5);
  for (auto _ : state) {
    a &= b;
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() * bits);
}
BENCHMARK(BM_BitsetAnd)->Arg(64)->Arg(1024)->Arg(16384);

void BM_BitsetSubsetTest(benchmark::State& state) {
  Rng rng(2);
  const int bits = static_cast<int>(state.range(0));
  const DynamicBitset small = RandomBitset(rng, bits, 0.1);
  const DynamicBitset big = small | RandomBitset(rng, bits, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(small.IsSubsetOf(big));
  }
  state.SetItemsProcessed(state.iterations() * bits);
}
BENCHMARK(BM_BitsetSubsetTest)->Arg(64)->Arg(1024)->Arg(16384);

void BM_BitsetPopcount(benchmark::State& state) {
  Rng rng(3);
  const DynamicBitset b = RandomBitset(rng, 16384, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.Count());
  }
}
BENCHMARK(BM_BitsetPopcount);

void BM_ConjunctiveEvaluator(benchmark::State& state) {
  const int num_queries = static_cast<int>(state.range(0));
  const AttributeSchema schema = AttributeSchema::Anonymous(32);
  datagen::SyntheticWorkloadOptions options;
  options.num_queries = num_queries;
  const QueryLog log = datagen::MakeSyntheticWorkload(schema, options);
  Rng rng(4);
  const DynamicBitset tuple = RandomBitset(rng, 32, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountSatisfiedQueries(log, tuple));
  }
  state.SetItemsProcessed(state.iterations() * num_queries);
}
BENCHMARK(BM_ConjunctiveEvaluator)->Arg(185)->Arg(2000)->Arg(20000);

void BM_TidsetSupport(benchmark::State& state) {
  const int num_queries = static_cast<int>(state.range(0));
  const AttributeSchema schema = AttributeSchema::Anonymous(32);
  datagen::SyntheticWorkloadOptions options;
  options.num_queries = num_queries;
  const QueryLog log = datagen::MakeSyntheticWorkload(schema, options);
  const auto db = itemsets::TransactionDatabase::FromComplementedQueryLog(log);
  Rng rng(5);
  const DynamicBitset itemset = RandomBitset(rng, 32, 0.6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Support(itemset));
  }
  state.SetItemsProcessed(state.iterations() * num_queries);
}
BENCHMARK(BM_TidsetSupport)->Arg(185)->Arg(2000)->Arg(20000);

void BM_SimplexLp(benchmark::State& state) {
  // A dense-ish random LP with n variables and n/2 constraints.
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  lp::LinearModel model(lp::ObjectiveSense::kMaximize);
  for (int j = 0; j < n; ++j) {
    model.AddVariable("x", 0, 1, rng.NextDouble());
  }
  for (int i = 0; i < n / 2; ++i) {
    const int row = model.AddConstraint(
        "c", lp::ConstraintSense::kLessEqual, 1.0 + 3.0 * rng.NextDouble());
    for (int j = 0; j < n; ++j) {
      if (rng.NextBernoulli(0.3)) model.AddTerm(row, j, rng.NextDouble());
    }
  }
  for (auto _ : state) {
    auto result = lp::SolveLp(model);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SimplexLp)->Arg(16)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_CarDatasetGeneration(benchmark::State& state) {
  datagen::CarDatasetOptions options;
  options.num_cars = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(datagen::GenerateCarDataset(options));
  }
  state.SetItemsProcessed(state.iterations() * options.num_cars);
}
BENCHMARK(BM_CarDatasetGeneration)->Arg(1000)->Arg(15211);

// ------------------------------------------------ batch coverage kernels

// The canonical kernel workload: a wide collapsed log (multiple words per
// query) against a mid-density selection, so subset tests exercise every
// word and a realistic fraction of queries pass.
struct KernelWorkload {
  std::vector<DynamicBitset> queries;
  std::vector<long long> weights;
  DynamicBitset selection;
  int num_attrs = 0;
};

KernelWorkload MakeKernelWorkload(int num_attrs, int num_queries,
                                  unsigned seed = 17) {
  Rng rng(seed);
  KernelWorkload wl;
  wl.num_attrs = num_attrs;
  wl.selection = RandomBitset(rng, num_attrs, 0.5);
  for (int i = 0; i < num_queries; ++i) {
    // Half the queries are drawn from the selection (likely covered),
    // half from the full attribute space (mostly not).
    DynamicBitset q(num_attrs);
    const bool inside = rng.NextBernoulli(0.5);
    for (int a = 0; a < num_attrs; ++a) {
      if (inside && !wl.selection.Test(a)) continue;
      if (rng.NextBernoulli(0.04)) q.Set(a);
    }
    wl.queries.push_back(std::move(q));
    wl.weights.push_back(1 + static_cast<long long>(rng.NextUint64(8)));
  }
  return wl;
}

void BM_KernelCountCovered(benchmark::State& state) {
  const auto tier = static_cast<kernels::Tier>(state.range(0));
  const kernels::KernelOps* ops = kernels::GetOps(tier);
  if (ops == nullptr) {
    state.SkipWithError("tier unavailable on this host");
    return;
  }
  const KernelWorkload wl = MakeKernelWorkload(256, 16384);
  const kernels::CoverageBlockSet blocks(
      wl.queries, static_cast<std::size_t>(wl.num_attrs));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::CountCoveredWith(*ops, blocks, wl.selection));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * wl.queries.size() *
      blocks.words_per_query() * 8);
  state.SetLabel(kernels::TierName(tier));
}
BENCHMARK(BM_KernelCountCovered)->Arg(0)->Arg(1)->Arg(2);

void BM_KernelCoverageGain(benchmark::State& state) {
  const auto tier = static_cast<kernels::Tier>(state.range(0));
  const kernels::KernelOps* ops = kernels::GetOps(tier);
  if (ops == nullptr) {
    state.SkipWithError("tier unavailable on this host");
    return;
  }
  const KernelWorkload wl = MakeKernelWorkload(256, 16384);
  const kernels::CoverageBlockSet blocks(
      wl.queries, static_cast<std::size_t>(wl.num_attrs));
  Rng rng(23);
  const DynamicBitset sel = RandomBitset(rng, wl.num_attrs, 0.02);
  std::vector<long long> gains(wl.num_attrs, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::CoverageGainWith(
        *ops, blocks, sel, gains.data(), /*context=*/nullptr));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * wl.queries.size() *
      blocks.words_per_query() * 8);
  state.SetLabel(kernels::TierName(tier));
}
BENCHMARK(BM_KernelCoverageGain)->Arg(0)->Arg(1)->Arg(2);

void BM_KernelCoverageBound(benchmark::State& state) {
  const auto tier = static_cast<kernels::Tier>(state.range(0));
  const kernels::KernelOps* ops = kernels::GetOps(tier);
  if (ops == nullptr) {
    state.SkipWithError("tier unavailable on this host");
    return;
  }
  const KernelWorkload wl = MakeKernelWorkload(256, 16384);
  const kernels::CoverageBlockSet blocks(
      wl.queries, static_cast<std::size_t>(wl.num_attrs));
  Rng rng(29);
  const DynamicBitset chosen = RandomBitset(rng, wl.num_attrs, 0.1);
  const DynamicBitset rejected = RandomBitset(rng, wl.num_attrs, 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::CoverageBoundWith(*ops, blocks, chosen, rejected, 4));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * wl.queries.size() *
      blocks.words_per_query() * 8);
  state.SetLabel(kernels::TierName(tier));
}
BENCHMARK(BM_KernelCoverageBound)->Arg(0)->Arg(1)->Arg(2);

// ----------------------------------------- --kernels-json trajectory mode

// Calls `f` until ~0.25s elapses (min 5 calls) and returns seconds/call.
template <typename F>
double SecondsPerCall(F&& f) {
  f();  // Warmup (page in the blocks, settle the scratch arena).
  WallTimer timer;
  int calls = 0;
  do {
    f();
    ++calls;
  } while (timer.ElapsedSeconds() < 0.25 || calls < 5);
  return timer.ElapsedSeconds() / calls;
}

struct TierTiming {
  kernels::Tier tier;
  double seconds_per_call = 0;
  double gb_per_sec = 0;
};

JsonValue TierTimingsToJson(const std::vector<TierTiming>& timings,
                            double* best_speedup) {
  const double scalar_seconds = timings.front().seconds_per_call;
  *best_speedup = 1.0;
  std::vector<JsonValue> rows;
  for (const TierTiming& t : timings) {
    const double speedup = scalar_seconds / t.seconds_per_call;
    *best_speedup = std::max(*best_speedup, speedup);
    rows.push_back(JsonValue::Object()
                       .Set("tier", JsonValue::String(kernels::TierName(t.tier)))
                       .Set("seconds_per_call", JsonValue::Number(t.seconds_per_call))
                       .Set("gb_per_sec", JsonValue::Number(t.gb_per_sec))
                       .Set("speedup_vs_scalar", JsonValue::Number(speedup)));
  }
  return JsonValue::Array(std::move(rows));
}

int RunKernelsJson(const std::string& path) {
  const int kAttrs = 256;
  const int kQueries = 16384;
  const KernelWorkload wl = MakeKernelWorkload(kAttrs, kQueries);
  const kernels::CoverageBlockSet blocks(
      wl.queries, static_cast<std::size_t>(kAttrs));
  const kernels::CoverageBlockSet weighted(
      wl.queries, static_cast<std::size_t>(kAttrs), wl.weights.data(),
      /*arena=*/nullptr);
  const double pass_bytes = static_cast<double>(wl.queries.size()) *
                            blocks.words_per_query() * 8.0;
  const std::vector<kernels::Tier> tiers = kernels::AvailableTiers();

  Rng rng(31);
  const DynamicBitset gain_sel = RandomBitset(rng, kAttrs, 0.02);
  const DynamicBitset chosen = RandomBitset(rng, kAttrs, 0.1);
  const DynamicBitset rejected = RandomBitset(rng, kAttrs, 0.05);
  std::vector<long long> gains(kAttrs, 0);

  std::vector<JsonValue> kernel_rows;
  struct KernelCase {
    const char* name;
    std::function<void(const kernels::KernelOps&)> run;
  };
  const std::vector<KernelCase> cases = {
      {"count_covered",
       [&](const kernels::KernelOps& ops) {
         benchmark::DoNotOptimize(
             kernels::CountCoveredWith(ops, blocks, wl.selection));
       }},
      {"accumulate_weighted",
       [&](const kernels::KernelOps& ops) {
         benchmark::DoNotOptimize(
             kernels::AccumulateWeightedWith(ops, weighted, wl.selection));
       }},
      {"coverage_gain",
       [&](const kernels::KernelOps& ops) {
         benchmark::DoNotOptimize(kernels::CoverageGainWith(
             ops, blocks, gain_sel, gains.data(), nullptr));
       }},
      {"coverage_bound",
       [&](const kernels::KernelOps& ops) {
         benchmark::DoNotOptimize(
             kernels::CoverageBoundWith(ops, blocks, chosen, rejected, 4));
       }},
  };
  double subset_best_speedup = 1.0;
  for (const KernelCase& kc : cases) {
    std::vector<TierTiming> timings;
    for (const kernels::Tier tier : tiers) {
      const kernels::KernelOps* ops = kernels::GetOps(tier);
      TierTiming t;
      t.tier = tier;
      t.seconds_per_call = SecondsPerCall([&] { kc.run(*ops); });
      t.gb_per_sec = pass_bytes / t.seconds_per_call / 1e9;
      timings.push_back(t);
    }
    double best_speedup = 1.0;
    JsonValue rows = TierTimingsToJson(timings, &best_speedup);
    if (std::string(kc.name) == "count_covered") {
      subset_best_speedup = best_speedup;
    }
    kernel_rows.push_back(
        JsonValue::Object()
            .Set("kernel", JsonValue::String(kc.name))
            .Set("tiers", std::move(rows))
            .Set("best_speedup_vs_scalar", JsonValue::Number(best_speedup)));
  }

  // End-to-end per-request solve cost: the ConsumeAttrCumul greedy over a
  // serving-scale synthetic log, dispatch pinned to scalar vs. the best
  // available tier.
  const AttributeSchema schema = AttributeSchema::Anonymous(64);
  datagen::SyntheticWorkloadOptions wl_options;
  wl_options.num_queries = 20000;
  wl_options.seed = 37;
  const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl_options);
  Rng solve_rng(41);
  const DynamicBitset tuple = RandomBitset(solve_rng, 64, 0.5);
  const GreedySolver greedy(GreedyKind::kConsumeAttrCumul);
  const auto solve_once = [&] {
    auto solution = greedy.Solve(log, tuple, 8);
    benchmark::DoNotOptimize(solution);
  };
  kernels::ForceTier(kernels::Tier::kScalar);
  const double scalar_solve = SecondsPerCall(solve_once);
  kernels::ClearForcedTier();
  const kernels::Tier best_tier = kernels::ActiveTier();
  const double best_solve = SecondsPerCall(solve_once);

  JsonValue doc =
      JsonValue::Object()
          .Set("bench", JsonValue::String("micro_kernels"))
          .Set("schema_version", JsonValue::Int(1))
          .Set("hardware_concurrency",
               JsonValue::Int(std::thread::hardware_concurrency()))
          .Set("simd_available", JsonValue::Bool(tiers.size() > 1))
          .Set("active_tier",
               JsonValue::String(kernels::TierName(kernels::ActiveTier())));
  std::vector<JsonValue> tier_names;
  for (const kernels::Tier tier : tiers) {
    tier_names.push_back(JsonValue::String(kernels::TierName(tier)));
  }
  doc.Set("available_tiers", JsonValue::Array(std::move(tier_names)))
      .Set("workload", JsonValue::Object()
                           .Set("num_queries", JsonValue::Int(kQueries))
                           .Set("num_attributes", JsonValue::Int(kAttrs))
                           .Set("words_per_query",
                                JsonValue::Int(static_cast<long long>(
                                    blocks.words_per_query()))))
      .Set("kernels", JsonValue::Array(std::move(kernel_rows)))
      .Set("batch_subset_best_speedup", JsonValue::Number(subset_best_speedup))
      .Set("request_solve",
           JsonValue::Object()
               .Set("solver", JsonValue::String("ConsumeAttrCumul"))
               .Set("num_queries", JsonValue::Int(wl_options.num_queries))
               .Set("num_attributes", JsonValue::Int(64))
               .Set("m", JsonValue::Int(8))
               .Set("scalar_ms", JsonValue::Number(scalar_solve * 1e3))
               .Set("best_tier", JsonValue::String(kernels::TierName(best_tier)))
               .Set("best_ms", JsonValue::Number(best_solve * 1e3))
               .Set("speedup", JsonValue::Number(scalar_solve / best_solve)));

  std::ofstream out(path);
  if (!out) {
    std::cerr << "micro_kernels: cannot open " << path << "\n";
    return 1;
  }
  out << doc.ToString() << "\n";
  std::cout << "micro_kernels: wrote " << path << " (subset best speedup "
            << subset_best_speedup << "x, tiers " << tiers.size() << ")\n";
  return 0;
}

}  // namespace
}  // namespace soc

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--kernels-json=";
    if (arg.rfind(prefix, 0) == 0) {
      return soc::RunKernelsJson(arg.substr(prefix.size()));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
