// Microbenchmarks of the itemset-mining engines on the workload shape that
// matters for SOC: dense complemented query logs.

#include <benchmark/benchmark.h>

#include "boolean/query_log.h"
#include "datagen/workload.h"
#include "itemsets/maximal_dfs.h"
#include "itemsets/random_walk.h"
#include "itemsets/transaction_db.h"

namespace soc {
namespace {

itemsets::TransactionDatabase MakeComplementedLog(int num_queries,
                                                  int num_attrs) {
  const AttributeSchema schema = AttributeSchema::Anonymous(num_attrs);
  datagen::SyntheticWorkloadOptions options;
  options.num_queries = num_queries;
  const QueryLog log = datagen::MakeSyntheticWorkload(schema, options);
  return itemsets::TransactionDatabase::FromComplementedQueryLog(log);
}

void BM_TwoPhaseRandomWalk(benchmark::State& state) {
  const auto db = MakeComplementedLog(static_cast<int>(state.range(0)), 32);
  const int min_support = std::max(1, db.num_transactions() / 20);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        itemsets::TwoPhaseRandomWalk(db, min_support, rng));
  }
}
BENCHMARK(BM_TwoPhaseRandomWalk)->Arg(185)->Arg(2000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_RandomWalkMining(benchmark::State& state) {
  const auto db = MakeComplementedLog(static_cast<int>(state.range(0)), 32);
  const int min_support = std::max(1, db.num_transactions() / 20);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    itemsets::RandomWalkOptions options;
    options.seed = ++seed;
    benchmark::DoNotOptimize(
        itemsets::MineMaximalItemsetsRandomWalk(db, min_support, options));
  }
}
BENCHMARK(BM_RandomWalkMining)->Arg(185)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_MaximalDfsMining(benchmark::State& state) {
  // Keep the log small: exhaustive maximal mining on dense data explodes
  // (the very argument of Sec IV.C).
  const auto db = MakeComplementedLog(static_cast<int>(state.range(0)), 24);
  const int min_support = std::max(1, db.num_transactions() / 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        itemsets::MineMaximalItemsetsDfs(db, min_support));
  }
}
BENCHMARK(BM_MaximalDfsMining)->Arg(30)->Arg(60)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace soc

BENCHMARK_MAIN();
