// Categorical variant (Sec V): equality-condition workloads over the
// categorical used-car catalog, solved through the Boolean reduction.
//
// Flags: --cars=N (default 20), --queries=N (default 300).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/solver_registry.h"
#include "datagen/categorical_catalog.h"

int main(int argc, char** argv) {
  using namespace soc;
  using namespace soc::bench;
  Flags flags(argc, argv);
  const int num_cars = static_cast<int>(flags.GetInt("cars", 20));
  const int num_queries = static_cast<int>(flags.GetInt("queries", 300));

  const categorical::CategoricalTable catalog =
      datagen::GenerateCategoricalCatalog();
  const categorical::CategoricalSchema& schema = catalog.schema();
  datagen::CategoricalWorkloadOptions workload;
  workload.num_queries = num_queries;
  const std::vector<categorical::CategoricalQuery> queries =
      datagen::MakeCategoricalWorkload(catalog, workload);

  Rng rng(17);
  std::vector<int> rows;
  for (int i = 0; i < num_cars; ++i) {
    rows.push_back(static_cast<int>(rng.NextUint64(catalog.num_rows())));
  }

  const std::vector<std::string> solver_names = {"BranchAndBound",
                                                 "ConsumeAttrCumul"};
  const std::vector<int> budgets = {1, 2, 3, 4};
  std::vector<std::string> columns;
  for (int m : budgets) columns.push_back(StrFormat("%d", m));
  ResultTable quality("visible \\ m", columns);
  ResultTable timing("time(s) \\ m", columns);

  for (const std::string& solver_name : solver_names) {
    auto solver = CreateSolverByName(solver_name);
    SOC_CHECK(solver.ok());
    std::vector<std::string> qcells, tcells;
    for (int m : budgets) {
      double satisfied = 0.0, seconds = 0.0;
      for (int row : rows) {
        WallTimer timer;
        auto solution = categorical::SolveCategoricalSoc(
            **solver, schema, queries, catalog.row(row), m);
        seconds += timer.ElapsedSeconds();
        SOC_CHECK(solution.ok());
        satisfied += solution->satisfied_queries;
      }
      qcells.push_back(ResultTable::Cell(satisfied / num_cars, "%.2f"));
      tcells.push_back(ResultTable::Cell(seconds / num_cars));
    }
    quality.AddRow(solver_name, qcells);
    timing.AddRow(solver_name, tcells);
  }

  std::printf(
      "# Categorical variant: facet visibility of a used-car listing "
      "(%d-car catalog, %d equality queries; avg over %d listings)\n",
      catalog.num_rows(), num_queries, num_cars);
  quality.Print();
  std::printf("\n");
  timing.Print();
  return 0;
}
