// Shared plumbing for the figure-reproduction harnesses (fig06..fig11):
// flag parsing, the paper's dataset/workloads, and aligned table printing.
//
// Each figNN binary regenerates one figure of the paper's Sec VII and
// prints the series as a markdown table (solver x sweep-parameter, cell =
// avg seconds or avg satisfied queries). Absolute times will differ from
// the paper's 2008 hardware; the *shape* (orderings, crossovers, scaling)
// is the reproduction target. See EXPERIMENTS.md.

#ifndef SOC_BENCH_BENCH_UTIL_H_
#define SOC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "boolean/table.h"
#include "common/string_util.h"
#include "datagen/car_dataset.h"
#include "datagen/workload.h"

namespace soc::bench {

// Minimal --key=value flag parsing (integers only).
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  long long GetInt(const std::string& name, long long default_value) const {
    const std::string prefix = "--" + name + "=";
    for (const std::string& arg : args_) {
      if (arg.rfind(prefix, 0) == 0) {
        return std::atoll(arg.c_str() + prefix.size());
      }
    }
    return default_value;
  }

 private:
  std::vector<std::string> args_;
};

// A results table: rows = series (solver names), columns = sweep values.
class ResultTable {
 public:
  ResultTable(std::string corner, std::vector<std::string> column_labels)
      : corner_(std::move(corner)), columns_(std::move(column_labels)) {}

  void AddRow(const std::string& label, const std::vector<std::string>& cells) {
    rows_.push_back({label, cells});
  }

  // Formats a numeric cell; negative values render as "-" (did not finish).
  static std::string Cell(double value, const char* format = "%.4f") {
    if (value < 0) return "-";
    return StrFormat(format, value);
  }

  void Print() const {
    std::vector<std::size_t> widths;
    widths.push_back(corner_.size());
    for (const auto& [label, cells] : rows_) {
      widths[0] = std::max(widths[0], label.size());
    }
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      std::size_t w = columns_[c].size();
      for (const auto& [label, cells] : rows_) {
        if (c < cells.size()) w = std::max(w, cells[c].size());
      }
      widths.push_back(w);
    }
    auto print_row = [&widths](const std::string& head,
                               const std::vector<std::string>& cells) {
      std::printf("| %-*s |", static_cast<int>(widths[0]), head.c_str());
      for (std::size_t c = 0; c + 1 < widths.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : std::string();
        std::printf(" %*s |", static_cast<int>(widths[c + 1]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(corner_, columns_);
    std::printf("|");
    for (std::size_t w : widths) {
      std::printf("%s|", std::string(w + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& [label, cells] : rows_) print_row(label, cells);
  }

 private:
  std::string corner_;
  std::vector<std::string> columns_;
  std::vector<std::pair<std::string, std::vector<std::string>>> rows_;
};

// The evaluation dataset (synthetic stand-in for the Yahoo autos crawl).
inline BooleanTable MakePaperDataset(int num_cars) {
  datagen::CarDatasetOptions options;
  options.num_cars = num_cars;
  return datagen::GenerateCarDataset(options);
}

}  // namespace soc::bench

#endif  // SOC_BENCH_BENCH_UTIL_H_
