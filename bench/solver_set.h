// Assembles the solver lineup used throughout the paper's figures:
// ILP, MaxFreqItemSets (the paper's random walk; optionally also a
// preprocessing-amortized variant), and the three greedies.

#ifndef SOC_BENCH_SOLVER_SET_H_
#define SOC_BENCH_SOLVER_SET_H_

#include <memory>
#include <vector>

#include "bench/figure_runner.h"
#include "core/greedy.h"
#include "core/ilp_solver.h"
#include "core/mfi_solver.h"

namespace soc::bench {

struct SolverSetOptions {
  bool include_ilp = true;
  // Per-solve wall budget for the ILP; exceeded => DNF ("-" in the table),
  // mirroring the paper's missing ILP data points.
  double ilp_time_limit_seconds = 30.0;
  // Figures use the paper's literal Sec IV.B formulation (one y per query,
  // one x per attribute) so its scaling wall reproduces; the library's
  // presolved variant is compared separately in ablation_ilp.
  bool ilp_presolve = false;
  bool include_mfi = true;
  // Also include MaxFreqItemSets with the mining preprocessing amortized
  // away (the paper: "~0.015 seconds for any m" once preprocessed).
  bool include_mfi_preprocessed = false;
  std::uint64_t walk_seed = 2008;
  bool include_greedy = true;
};

inline std::vector<SolverEntry> MakePaperSolverSet(
    const SolverSetOptions& options) {
  std::vector<SolverEntry> solvers;

  if (options.include_ilp) {
    IlpSocOptions ilp_options;
    ilp_options.mip.time_limit_seconds = options.ilp_time_limit_seconds;
    ilp_options.presolve = options.ilp_presolve;
    auto ilp = std::make_shared<IlpSocSolver>(ilp_options);
    solvers.push_back({"ILP",
                       [ilp](const QueryLog& log, const DynamicBitset& t,
                             int m) { return ilp->Solve(log, t, m); },
                       /*requires_proof=*/true});
  }

  if (options.include_mfi) {
    MfiSocOptions mfi_options;
    mfi_options.walk.seed = options.walk_seed;
    auto mfi = std::make_shared<MfiSocSolver>(mfi_options);
    solvers.push_back({"MaxFreqItemSets",
                       [mfi](const QueryLog& log, const DynamicBitset& t,
                             int m) { return mfi->Solve(log, t, m); },
                       /*requires_proof=*/false});
    if (options.include_mfi_preprocessed) {
      // Shared index: the first call per threshold pays for mining; the
      // sweep driver runs tuples repeatedly so steady-state dominates.
      // Lazily built per log (identified by address + size).
      struct PrepState {
        const QueryLog* log = nullptr;
        std::unique_ptr<MfiPreprocessedIndex> index;
      };
      auto state = std::make_shared<PrepState>();
      auto mfi_options_copy = mfi_options;
      solvers.push_back(
          {"MaxFreqItemSets-prep",
           [state, mfi_options_copy](const QueryLog& log,
                                     const DynamicBitset& t, int m) {
             if (state->log != &log) {
               state->log = &log;
               state->index =
                   std::make_unique<MfiPreprocessedIndex>(log,
                                                          mfi_options_copy);
             }
             MfiSocSolver solver(mfi_options_copy);
             return solver.SolveWithIndex(*state->index, log, t, m);
           },
           /*requires_proof=*/false});
    }
  }

  if (options.include_greedy) {
    for (GreedyKind kind :
         {GreedyKind::kConsumeAttr, GreedyKind::kConsumeAttrCumul,
          GreedyKind::kConsumeQueries}) {
      auto greedy = std::make_shared<GreedySolver>(kind);
      solvers.push_back({greedy->name(),
                         [greedy](const QueryLog& log, const DynamicBitset& t,
                                  int m) { return greedy->Solve(log, t, m); },
                         /*requires_proof=*/false});
    }
  }
  return solvers;
}

}  // namespace soc::bench

#endif  // SOC_BENCH_SOLVER_SET_H_
