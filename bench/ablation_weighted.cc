// Weighted pipeline ablation: collapse duplicate queries and solve the
// weighted instance vs solving the raw log. Synthetic workloads repeat
// short queries heavily (32 attributes, 1-5 per query), so deduplication
// shrinks the instance substantially at large |Q|.
//
// Flags: --cars=N (default 5).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/bnb_solver.h"
#include "core/weighted.h"

int main(int argc, char** argv) {
  using namespace soc;
  using namespace soc::bench;
  Flags flags(argc, argv);
  const int num_cars = static_cast<int>(flags.GetInt("cars", 5));
  const int m = static_cast<int>(flags.GetInt("m", 5));

  const BooleanTable dataset = MakePaperDataset(5000);
  std::vector<DynamicBitset> tuples;
  for (int row : datagen::PickAdvertisedTuples(dataset, num_cars, 21)) {
    tuples.push_back(dataset.row(row));
  }

  const std::vector<int> sizes = {500, 2000, 10000, 50000};
  std::vector<std::string> columns;
  for (int s : sizes) columns.push_back(StrFormat("%d", s));
  ResultTable table("time(s) \\ |Q|", columns);
  std::vector<std::string> raw_cells, weighted_cells, distinct_cells;

  for (int size : sizes) {
    datagen::SyntheticWorkloadOptions workload;
    workload.num_queries = size;
    workload.seed = 42;
    const QueryLog log = MakeSyntheticWorkload(dataset.schema(), workload);
    const WeightedSocInstance instance = WeightedSocInstance::FromLog(log);
    distinct_cells.push_back(StrFormat("%d", instance.queries.size()));

    const BnbSocSolver raw_solver;
    double raw_seconds = 0;
    double weighted_seconds = 0;
    for (const DynamicBitset& tuple : tuples) {
      WallTimer raw_timer;
      auto raw = raw_solver.Solve(log, tuple, m);
      raw_seconds += raw_timer.ElapsedSeconds();
      SOC_CHECK(raw.ok());

      WallTimer weighted_timer;
      auto weighted = SolveWeightedBnb(instance, tuple, m);
      weighted_seconds += weighted_timer.ElapsedSeconds();
      SOC_CHECK(weighted.ok());
      SOC_CHECK_EQ(static_cast<long long>(raw->satisfied_queries),
                   weighted->satisfied_weight);
    }
    raw_cells.push_back(ResultTable::Cell(raw_seconds / num_cars));
    weighted_cells.push_back(ResultTable::Cell(weighted_seconds / num_cars));
  }

  std::printf(
      "# Weighted pipeline: branch-and-bound on the raw log vs on the "
      "deduplicated weighted instance (identical optima; m=%d, avg over "
      "%d cars)\n",
      m, num_cars);
  table.AddRow("raw log", raw_cells);
  table.AddRow("dedup+weighted", weighted_cells);
  table.AddRow("distinct queries", distinct_cells);
  table.Print();
  std::printf("\n(dedup cost itself is one hash pass, excluded here; it is "
              "amortized across every tuple advertised against the log)\n");
  return 0;
}
