// multitenant_load: the sharded multi-tenant serving stack under a
// Zipf-popular tenant mix — the workload shape the result cache exists
// for. 16 tenants, popularity ~ Zipf(1.0) (a handful of hot tenants
// dominate), each tenant's traffic drawn from a small pool of repeated
// tuples, submitted in bursts with mixed deadlines from several
// submitter threads.
//
//   multitenant_load [--requests=N] [--tenants=N] [--shards=N]
//                    [--zipf=S] [--pool=N] [--seed=N] [--out-json=path]
//
// Reports the cache hit rate and the hit/miss solve-latency split
// (p50/p99 from the per-shard cache_hit / cache_miss histograms), then
// splices a "multitenant" section into BENCH_serve.json next to the
// serve_throughput sweep (whose sections it leaves untouched).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "boolean/schema.h"
#include "common/json_splice.h"
#include "common/json_writer.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "datagen/workload.h"
#include "serve/visibility_service.h"
#include "tenant/sharded_service.h"

namespace soc::bench {
namespace {

std::string GetStringFlag(int argc, char** argv, const std::string& name,
                          const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return default_value;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int num_requests = static_cast<int>(flags.GetInt("requests", 4000));
  const int num_tenants = static_cast<int>(flags.GetInt("tenants", 16));
  const int num_shards = static_cast<int>(flags.GetInt("shards", 4));
  const int pool_size = static_cast<int>(flags.GetInt("pool", 10));
  const double zipf_s =
      std::atof(GetStringFlag(argc, argv, "zipf", "1.0").c_str());
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 17));

  std::printf(
      "multitenant_load: %d requests, %d tenants (Zipf %.2f), %d shards, "
      "%d-tuple pools\n\n",
      num_requests, num_tenants, zipf_s, num_shards, pool_size);

  tenant::ShardedServiceOptions options;
  options.num_shards = num_shards;
  options.shard.num_workers = 2;
  options.shard.max_queue = 0;  // Measure the cache, not load shedding.
  tenant::ShardedService service(options);

  // Per-tenant catalogs (12-16 attrs) and repeated-tuple pools.
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  std::vector<std::string> tenant_ids;
  std::vector<std::vector<DynamicBitset>> pools;
  for (int t = 0; t < num_tenants; ++t) {
    tenant_ids.push_back("tenant" + std::to_string(t));
    const int width = 12 + t % 5;
    const AttributeSchema schema = AttributeSchema::Anonymous(width);
    datagen::SyntheticWorkloadOptions workload;
    workload.num_queries = 200 + 20 * (t % 7);
    workload.seed = static_cast<unsigned>(seed + t);
    const Status created = service.CreateTenant(
        tenant_ids.back(), datagen::MakeSyntheticWorkload(schema, workload));
    if (!created.ok()) {
      std::fprintf(stderr, "multitenant_load: %s\n", created.ToString().c_str());
      return 1;
    }
    std::vector<DynamicBitset> pool;
    for (int p = 0; p < pool_size; ++p) {
      DynamicBitset tuple(static_cast<std::size_t>(width));
      for (int b = 0; b < width; ++b) {
        if (rng.NextBernoulli(0.55)) tuple.Set(static_cast<std::size_t>(b));
      }
      pool.push_back(std::move(tuple));
    }
    pools.push_back(std::move(pool));
  }

  // The request plan: tenant ~ Zipf, tuple ~ uniform over the tenant's
  // pool, budget in [1,4], solver mixing the greedy portfolio with exact
  // tiers (so misses are real solves, not one hot loop), deadlines mixed
  // (none / generous / tight).
  const ZipfDistribution zipf(num_tenants, zipf_s);
  const char* solvers[] = {"Fallback", "ConsumeAttrCumul", "BranchAndBound",
                           "MaxFreqItemSets"};
  std::vector<serve::SolveRequest> plan;
  plan.reserve(num_requests);
  for (int i = 0; i < num_requests; ++i) {
    const int t = zipf.Sample(rng);
    serve::SolveRequest request;
    request.id = std::to_string(i);
    request.tenant_id = tenant_ids[static_cast<std::size_t>(t)];
    const auto& pool = pools[static_cast<std::size_t>(t)];
    request.tuple = pool[rng.NextUint64(pool.size())];
    request.m = 1 + static_cast<int>(rng.NextUint64(4));
    request.solver = solvers[rng.NextUint64(4)];
    const double deadline_roll = rng.NextDouble();
    if (deadline_roll < 0.2) {
      request.deadline_ms = 25;
    } else if (deadline_roll < 0.4) {
      request.deadline_ms = 100;
    }  // else: no deadline.
    plan.push_back(std::move(request));
  }

  // Bursty arrivals from 4 submitter threads.
  constexpr int kSubmitters = 4;
  constexpr int kBurstSize = 64;
  std::vector<std::future<serve::SolveResponse>> futures(plan.size());
  WallTimer timer;
  {
    ThreadPool submitters(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.Submit([s, &plan, &futures, &service] {
        int in_burst = 0;
        for (std::size_t i = static_cast<std::size_t>(s); i < plan.size();
             i += kSubmitters) {
          futures[i] = service.Submit(serve::SolveRequest(plan[i]));
          if (++in_burst == kBurstSize) {
            in_burst = 0;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
      });
    }
    submitters.Shutdown();
  }
  service.Drain();
  const double seconds = timer.ElapsedSeconds();

  int ok = 0, hits = 0, failed = 0;
  for (auto& future : futures) {
    const serve::SolveResponse response = future.get();
    if (response.status.ok()) {
      ++ok;
      if (response.cache_hit) ++hits;
    } else if (response.status.code() != StatusCode::kOverloaded) {
      ++failed;
    }
  }
  if (failed > 0) {
    std::fprintf(stderr, "multitenant_load: %d requests failed\n", failed);
    return 1;
  }

  const serve::MetricsSnapshot metrics = service.Metrics();
  const auto counter = [&metrics](const char* name) -> double {
    const auto it = metrics.counters.find(name);
    return it == metrics.counters.end() ? 0.0
                                        : static_cast<double>(it->second);
  };
  const auto quantile = [&metrics](const char* name, double q) -> double {
    const auto it = metrics.histograms.find(name);
    return it == metrics.histograms.end() ? 0.0 : it->second.Quantile(q);
  };
  const double cache_hits = counter("result_cache.hits");
  const double cache_misses = counter("result_cache.misses");
  const double probes = cache_hits + cache_misses;
  const double hit_rate = probes > 0 ? cache_hits / probes : 0.0;
  const double hit_p50 = quantile("cache_hit", 0.5);
  const double hit_p99 = quantile("cache_hit", 0.99);
  const double miss_p50 = quantile("cache_miss", 0.5);
  const double miss_p99 = quantile("cache_miss", 0.99);

  std::printf("completed %d/%d OK in %.3fs (%.0f req/s)\n", ok, num_requests,
              seconds, num_requests / seconds);
  std::printf("result cache: %.0f hits / %.0f misses (hit rate %.1f%%), "
              "%.0f evictions\n",
              cache_hits, cache_misses, hit_rate * 100,
              counter("result_cache.evictions"));
  std::printf("solve latency: hit p50 %.4fms p99 %.4fms | miss p50 %.4fms "
              "p99 %.4fms (p99 ratio %.1fx)\n",
              hit_p50, hit_p99, miss_p50, miss_p99,
              hit_p99 > 0 ? miss_p99 / hit_p99 : 0.0);
  if (hit_rate < 0.6) {
    std::fprintf(stderr,
                 "multitenant_load: warning: hit rate %.1f%% below the 60%% "
                 "target for this workload\n",
                 hit_rate * 100);
  }

  // Per-tenant view of the skew: the hot tenant should dominate.
  std::printf("\nhot tenants (accepted requests):\n");
  for (int t = 0; t < std::min(4, num_tenants); ++t) {
    std::printf("  %-10s %6.0f\n", tenant_ids[t].c_str(),
                counter(("tenant." + tenant_ids[t] + ".accepted").c_str()));
  }

  JsonValue section = JsonValue::Object();
  section.Set("requests", JsonValue::Int(num_requests));
  section.Set("tenants", JsonValue::Int(num_tenants));
  section.Set("shards", JsonValue::Int(num_shards));
  section.Set("zipf_exponent", JsonValue::Number(zipf_s));
  section.Set("seconds", JsonValue::Number(seconds));
  section.Set("requests_per_sec", JsonValue::Number(num_requests / seconds));
  section.Set("cache_hit_rate", JsonValue::Number(hit_rate));
  section.Set("cache_hits", JsonValue::Int(static_cast<long long>(cache_hits)));
  section.Set("cache_misses",
              JsonValue::Int(static_cast<long long>(cache_misses)));
  section.Set("hit_solve_p50_ms", JsonValue::Number(hit_p50));
  section.Set("hit_solve_p99_ms", JsonValue::Number(hit_p99));
  section.Set("miss_solve_p50_ms", JsonValue::Number(miss_p50));
  section.Set("miss_solve_p99_ms", JsonValue::Number(miss_p99));
  section.Set("miss_over_hit_p99",
              JsonValue::Number(hit_p99 > 0 ? miss_p99 / hit_p99 : 0.0));

  const std::string out_path =
      GetStringFlag(argc, argv, "out-json", "BENCH_serve.json");
  std::string out_text;
  {
    std::ifstream existing(out_path, std::ios::binary);
    if (existing) {
      std::ostringstream buffer;
      buffer << existing.rdbuf();
      std::string text = buffer.str();
      while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
        text.pop_back();
      }
      auto spliced =
          JsonSpliceTopLevelKey(text, "multitenant", section.ToString());
      if (spliced.ok()) {
        out_text = *spliced;
      } else {
        std::fprintf(stderr,
                     "multitenant_load: %s is not splicable (%s); writing a "
                     "fresh object\n",
                     out_path.c_str(), spliced.status().ToString().c_str());
      }
    }
  }
  if (out_text.empty()) {
    JsonValue fresh = JsonValue::Object();
    fresh.Set("multitenant", std::move(section));
    out_text = fresh.ToString();
  }
  std::ofstream out(out_path, std::ios::binary);
  out << out_text << "\n";
  if (!out) {
    std::fprintf(stderr, "multitenant_load: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s (multitenant section)\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace soc::bench

int main(int argc, char** argv) { return soc::bench::Main(argc, argv); }
