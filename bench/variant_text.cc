// Text variant at scale (Sec V): with each distinct keyword a Boolean
// attribute, M explodes — "the greedy approaches are the only ones
// feasible in this scenario". This bench measures the sparse greedy
// keyword selectors and the top-k-aware selector over corpora of growing
// vocabulary, plus the BM25 engine throughput.
//
// Flags: --ads=N (default 10), --m=N (default 6), --k=N (default 10).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "datagen/text_corpus.h"
#include "text/keyword_selection.h"

int main(int argc, char** argv) {
  using namespace soc;
  using namespace soc::bench;
  Flags flags(argc, argv);
  const int num_ads = static_cast<int>(flags.GetInt("ads", 10));
  const int m = static_cast<int>(flags.GetInt("m", 6));
  const int k = static_cast<int>(flags.GetInt("k", 10));

  const std::vector<int> vocab_sizes = {1000, 5000, 20000, 50000};
  std::vector<std::string> columns;
  for (int v : vocab_sizes) columns.push_back(StrFormat("%d", v));
  ResultTable time_table("time(s) \\ vocab", columns);
  ResultTable quality_table("reached \\ vocab", columns);

  std::vector<std::string> algo_names = {"ConsumeAttr", "ConsumeAttrCumul",
                                         "MaxCoverage", "TopkBm25"};
  std::vector<std::vector<std::string>> time_cells(algo_names.size());
  std::vector<std::vector<std::string>> quality_cells(algo_names.size());

  for (int vocab : vocab_sizes) {
    datagen::TextCorpusOptions corpus_options;
    corpus_options.vocabulary_size = vocab;
    corpus_options.num_documents = 600;
    const datagen::TextCorpus corpus =
        datagen::GenerateTextCorpus(corpus_options);
    const std::vector<text::SparseQuery> queries =
        datagen::MakeTextWorkload(corpus);
    const text::TextIndex index = datagen::IndexCorpus(corpus);

    // Each "new ad" offers the distinct words of a random topic plus some
    // background words as candidate keywords.
    Rng rng(4);
    std::vector<std::vector<int>> candidate_sets;
    for (int a = 0; a < num_ads; ++a) {
      std::vector<int> candidates =
          corpus.topic_words[rng.NextUint64(corpus.topic_words.size())];
      for (int extra = 0; extra < 10; ++extra) {
        candidates.push_back(
            static_cast<int>(rng.NextUint64(vocab)));
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      candidate_sets.push_back(std::move(candidates));
    }

    for (std::size_t algo = 0; algo < algo_names.size(); ++algo) {
      double seconds = 0.0;
      double reached = 0.0;
      for (const std::vector<int>& candidates : candidate_sets) {
        WallTimer timer;
        std::vector<int> selected;
        int satisfied = 0;
        switch (algo) {
          case 0:
            selected = text::SelectKeywordsConsumeAttr(queries, candidates, m);
            satisfied = text::CountSatisfiedConjunctive(queries, selected);
            break;
          case 1:
            selected =
                text::SelectKeywordsConsumeAttrCumul(queries, candidates, m);
            satisfied = text::CountSatisfiedConjunctive(queries, selected);
            break;
          case 2:
            selected = text::SelectKeywordsMaxCoverage(queries, candidates, m);
            satisfied = text::CountSatisfiedDisjunctive(queries, selected);
            break;
          case 3: {
            const text::TopkKeywordResult result =
                text::SelectKeywordsTopkBm25(index, queries, candidates, m, k);
            selected = result.selected;
            satisfied = result.satisfied_queries;
            break;
          }
        }
        seconds += timer.ElapsedSeconds();
        reached += satisfied;
      }
      time_cells[algo].push_back(ResultTable::Cell(seconds / num_ads));
      quality_cells[algo].push_back(
          ResultTable::Cell(reached / num_ads, "%.1f"));
    }
  }

  for (std::size_t algo = 0; algo < algo_names.size(); ++algo) {
    time_table.AddRow(algo_names[algo], time_cells[algo]);
    quality_table.AddRow(algo_names[algo], quality_cells[algo]);
  }
  std::printf(
      "# Text variant: sparse greedy keyword selection vs vocabulary size "
      "(600 ads, 500 keyword queries, m=%d, BM25 top-%d for the aware "
      "selector; avg over %d new ads)\n",
      m, k, num_ads);
  time_table.Print();
  std::printf("\n(objectives differ per row: conjunctive for ConsumeAttr*/"
              "TopkBm25, disjunctive for MaxCoverage)\n");
  quality_table.Print();
  return 0;
}
