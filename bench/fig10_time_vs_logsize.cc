// Fig 10: execution times for SOC-CB-QL for varying query-log size
// (synthetic workloads, m = 5), averaged over randomly selected cars.
//
// Paper's observations to reproduce:
//  * ILP does not scale to large logs — its measurements are missing past
//    1000 queries (here: '-' when the per-solve limit trips);
//  * ConsumeQueries is consistently the slowest greedy (full pass over the
//    workload per iteration);
//  * MaxFreqItemSets scales to the largest logs.
//
// Flags: --cars=N (default 5), --ilp-limit=SECONDS (default 30),
//        --max-size=N (default 2000).

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/figure_runner.h"
#include "bench/solver_set.h"

int main(int argc, char** argv) {
  using namespace soc;
  using namespace soc::bench;
  Flags flags(argc, argv);
  const int num_cars = static_cast<int>(flags.GetInt("cars", 5));
  const double ilp_limit =
      static_cast<double>(flags.GetInt("ilp-limit", 30));
  const int max_size = static_cast<int>(flags.GetInt("max-size", 2000));
  const int m = static_cast<int>(flags.GetInt("m", 5));

  const BooleanTable dataset = MakePaperDataset(datagen::kPaperCarCount);
  std::vector<DynamicBitset> tuples;
  for (int row : datagen::PickAdvertisedTuples(dataset, num_cars, 1)) {
    tuples.push_back(dataset.row(row));
  }

  std::vector<int> sizes;
  for (int size : {100, 200, 500, 1000, 2000}) {
    if (size <= max_size) sizes.push_back(size);
  }

  SolverSetOptions options;
  options.ilp_time_limit_seconds = ilp_limit;
  const std::vector<SolverEntry> solvers = MakePaperSolverSet(options);

  // result[solver][size]
  std::vector<std::vector<SweepCell>> matrix(
      solvers.size(), std::vector<SweepCell>(sizes.size()));
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    datagen::SyntheticWorkloadOptions workload;
    workload.num_queries = sizes[i];
    workload.seed = 42 + i;
    const QueryLog log = MakeSyntheticWorkload(dataset.schema(), workload);
    const SweepMatrix column = RunBudgetSweep(log, tuples, solvers, {m});
    for (std::size_t s = 0; s < solvers.size(); ++s) {
      matrix[s][i] = column[s][0];
    }
  }

  std::printf(
      "# Fig 10: execution time (s) vs query-log size — synthetic "
      "workloads, m=%d, avg over %d cars\n",
      m, num_cars);
  PrintTimeTable("|Q|", sizes, solvers, matrix);
  std::printf("\n('-' = ILP did not finish, matching the paper's missing "
              "measurements past 1000 queries)\n");
  return 0;
}
