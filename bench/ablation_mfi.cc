// Ablation of the MaxFreqItemSets solver's design choices (Sec IV.C),
// swept over the query-log size at fixed m:
//
//  * mining engine: the paper's two-phase random walk vs the exact
//    GenMax-style DFS. The walk stays cheap as the complemented log grows
//    denser; the exhaustive miner blows past its node budget ('-' in the
//    table) — precisely the explosion argument of Sec IV.C;
//  * threshold schedule: greedy-seeded single pass (this library's
//    improvement) vs the paper's halving schedule.
//
// Flags: --cars=N (default 2), --m=N (default 5).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "bench/figure_runner.h"
#include "core/mfi_solver.h"

int main(int argc, char** argv) {
  using namespace soc;
  using namespace soc::bench;
  Flags flags(argc, argv);
  const int num_cars = static_cast<int>(flags.GetInt("cars", 2));
  const int m = static_cast<int>(flags.GetInt("m", 5));

  const BooleanTable dataset = MakePaperDataset(5000);
  std::vector<DynamicBitset> tuples;
  for (int row : datagen::PickAdvertisedTuples(dataset, num_cars, 3)) {
    tuples.push_back(dataset.row(row));
  }

  auto entry = [](std::string name, MfiSocOptions options) {
    auto solver = std::make_shared<MfiSocSolver>(options);
    return SolverEntry{std::move(name),
                       [solver](const QueryLog& l, const DynamicBitset& t,
                                int m_) { return solver->Solve(l, t, m_); },
                       /*requires_proof=*/false};
  };

  std::vector<SolverEntry> solvers;
  {
    MfiSocOptions options;  // Random walk + greedy-seeded threshold.
    solvers.push_back(entry("walk+greedy-seed", options));
  }
  {
    MfiSocOptions options;
    options.seed_threshold_with_greedy = false;  // Paper's halving schedule.
    solvers.push_back(entry("walk+halving", options));
  }
  {
    MfiSocOptions options;
    options.engine = MfiEngine::kExactDfs;
    options.dfs.max_nodes = 300'000;  // DNF beyond this budget.
    solvers.push_back(entry("exact-dfs+greedy-seed", options));
  }

  const std::vector<int> sizes = {30, 60, 90, 120};
  std::vector<std::vector<SweepCell>> matrix(
      solvers.size(), std::vector<SweepCell>(sizes.size()));
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    datagen::RealLikeWorkloadOptions workload;
    workload.num_queries = sizes[i];
    workload.seed = 7 + i;
    const QueryLog log = datagen::MakeRealLikeWorkload(dataset, workload);
    const SweepMatrix column = RunBudgetSweep(log, tuples, solvers, {m});
    for (std::size_t s = 0; s < solvers.size(); ++s) {
      matrix[s][i] = column[s][0];
    }
  }

  std::printf(
      "# MFI ablation: engine and threshold schedule — real-like "
      "workloads, m=%d, avg over %d cars\n",
      m, num_cars);
  PrintTimeTable("|Q|", sizes, solvers, matrix);
  std::printf(
      "\nAll finishing variants return the same objective; '-' marks the "
      "exact DFS exhausting its node budget on the dense complemented log "
      "— the explosion the paper's random walk avoids.\n");
  return 0;
}
