// Sweep driver shared by the fig06..fig09 harnesses: run each solver over
// each to-be-advertised tuple for each budget m, averaging wall time and
// satisfied-query counts (the paper averages over 100 randomly selected
// cars; --cars overrides the default here).

#ifndef SOC_BENCH_FIGURE_RUNNER_H_
#define SOC_BENCH_FIGURE_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "boolean/query_log.h"
#include "common/timer.h"
#include "core/solver.h"

namespace soc::bench {

struct SolverEntry {
  std::string name;
  // Returns the solution, or an error for DNF (deadline/resource guard).
  std::function<StatusOr<SocSolution>(const QueryLog&, const DynamicBitset&,
                                      int)>
      solve;
  // Exact solvers must prove optimality for the run to count (the paper
  // omits ILP data points where the solver cannot finish).
  bool requires_proof = false;
};

struct SweepCell {
  double avg_seconds = -1.0;    // -1 = did not finish.
  double avg_satisfied = -1.0;  // -1 = did not finish.
};

// result[solver][m_index]
using SweepMatrix = std::vector<std::vector<SweepCell>>;

inline SweepMatrix RunBudgetSweep(const QueryLog& log,
                                  const std::vector<DynamicBitset>& tuples,
                                  const std::vector<SolverEntry>& solvers,
                                  const std::vector<int>& budgets) {
  SweepMatrix matrix(solvers.size(),
                     std::vector<SweepCell>(budgets.size()));
  for (std::size_t s = 0; s < solvers.size(); ++s) {
    for (std::size_t b = 0; b < budgets.size(); ++b) {
      double total_seconds = 0.0;
      double total_satisfied = 0.0;
      bool ok = true;
      for (const DynamicBitset& tuple : tuples) {
        WallTimer timer;
        const auto solution = solvers[s].solve(log, tuple, budgets[b]);
        const double seconds = timer.ElapsedSeconds();
        if (!solution.ok() ||
            (solvers[s].requires_proof && !solution->proved_optimal)) {
          ok = false;
          break;
        }
        total_seconds += seconds;
        total_satisfied += solution->satisfied_queries;
      }
      if (ok && !tuples.empty()) {
        matrix[s][b].avg_seconds = total_seconds / tuples.size();
        matrix[s][b].avg_satisfied = total_satisfied / tuples.size();
      }
    }
  }
  return matrix;
}

inline void PrintTimeTable(const std::string& sweep_label,
                           const std::vector<int>& sweep_values,
                           const std::vector<SolverEntry>& solvers,
                           const SweepMatrix& matrix) {
  std::vector<std::string> columns;
  for (int v : sweep_values) columns.push_back(StrFormat("%d", v));
  ResultTable table("time(s) \\ " + sweep_label, columns);
  for (std::size_t s = 0; s < solvers.size(); ++s) {
    std::vector<std::string> cells;
    for (const SweepCell& cell : matrix[s]) {
      cells.push_back(ResultTable::Cell(cell.avg_seconds));
    }
    table.AddRow(solvers[s].name, cells);
  }
  table.Print();
}

inline void PrintQualityTable(const std::string& sweep_label,
                              const std::vector<int>& sweep_values,
                              const std::vector<SolverEntry>& solvers,
                              const SweepMatrix& matrix) {
  std::vector<std::string> columns;
  for (int v : sweep_values) columns.push_back(StrFormat("%d", v));
  ResultTable table("satisfied \\ " + sweep_label, columns);
  for (std::size_t s = 0; s < solvers.size(); ++s) {
    std::vector<std::string> cells;
    for (const SweepCell& cell : matrix[s]) {
      cells.push_back(ResultTable::Cell(cell.avg_satisfied, "%.2f"));
    }
    table.AddRow(solvers[s].name, cells);
  }
  table.Print();
}

}  // namespace soc::bench

#endif  // SOC_BENCH_FIGURE_RUNNER_H_
