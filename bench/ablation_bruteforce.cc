// Ablation of the brute-force solver's candidate pruning: enumerating
// m-subsets of *all* attributes of t (the paper's BruteForce-SOC-CB-QL)
// vs only attributes occurring in satisfiable queries. Pruning preserves
// the optimum but collapses the combination count.
//
// Flags: --cars=N (default 5).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "bench/figure_runner.h"
#include "common/random.h"
#include "core/brute_force.h"

int main(int argc, char** argv) {
  using namespace soc;
  using namespace soc::bench;
  Flags flags(argc, argv);
  const int num_cars = static_cast<int>(flags.GetInt("cars", 5));

  const BooleanTable dataset = MakePaperDataset(5000);
  // A workload dominated by popular feature bundles (pure hot templates):
  // the satisfiable-query union is then a small hot pool, which is where
  // candidate pruning pays off.
  datagen::RealLikeWorkloadOptions workload;
  workload.template_probability = 1.0;
  const QueryLog log = datagen::MakeRealLikeWorkload(dataset, workload);
  // Feature-rich tuples (~3/4 of all attributes) make the naive
  // enumeration space large while pruning keeps only the ~10 attributes
  // that occur in satisfiable queries.
  Rng rng(5);
  std::vector<DynamicBitset> tuples;
  for (int i = 0; i < num_cars; ++i) {
    DynamicBitset tuple(dataset.num_attributes());
    for (int a = 0; a < dataset.num_attributes(); ++a) {
      if (rng.NextBernoulli(0.75)) tuple.Set(a);
    }
    tuples.push_back(std::move(tuple));
  }

  std::vector<SolverEntry> solvers;
  {
    BruteForceOptions options;
    options.prune_candidates = false;
    auto naive = std::make_shared<BruteForceSolver>(options);
    solvers.push_back({"BruteForce-naive",
                       [naive](const QueryLog& l, const DynamicBitset& t,
                               int m) { return naive->Solve(l, t, m); },
                       /*requires_proof=*/true});
  }
  {
    auto pruned = std::make_shared<BruteForceSolver>();
    solvers.push_back({"BruteForce-pruned",
                       [pruned](const QueryLog& l, const DynamicBitset& t,
                                int m) { return pruned->Solve(l, t, m); },
                       /*requires_proof=*/true});
  }

  const std::vector<int> budgets = {3, 4, 5, 6, 7, 8};
  std::printf(
      "# Brute-force ablation: candidate pruning — real-like workload "
      "(%d queries), avg over %d cars\n",
      log.size(), num_cars);
  const SweepMatrix matrix = RunBudgetSweep(log, tuples, solvers, budgets);
  PrintTimeTable("m", budgets, solvers, matrix);
  return 0;
}
