// Fig 8: execution times for SOC-CB-QL for varying m on the synthetic
// workload of 2000 queries (M = 32). As in the paper, ILP is excluded —
// it is "very slow for more than 1000 queries" (see fig10).
//
// Flags: --cars=N (default 10), --queries=N (default 2000).

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/figure_runner.h"
#include "bench/solver_set.h"

int main(int argc, char** argv) {
  using namespace soc;
  using namespace soc::bench;
  Flags flags(argc, argv);
  const int num_cars = static_cast<int>(flags.GetInt("cars", 10));
  const int num_queries = static_cast<int>(flags.GetInt("queries", 2000));

  const BooleanTable dataset = MakePaperDataset(datagen::kPaperCarCount);
  datagen::SyntheticWorkloadOptions workload;
  workload.num_queries = num_queries;
  const QueryLog log = MakeSyntheticWorkload(dataset.schema(), workload);
  std::vector<DynamicBitset> tuples;
  for (int row : datagen::PickAdvertisedTuples(dataset, num_cars, 1)) {
    tuples.push_back(dataset.row(row));
  }

  SolverSetOptions options;
  options.include_ilp = false;  // Infeasible at this log size (paper, Fig 8).
  options.include_mfi_preprocessed = true;
  const std::vector<SolverEntry> solvers = MakePaperSolverSet(options);
  const std::vector<int> budgets = {1, 2, 3, 4, 5, 6, 7};

  std::printf(
      "# Fig 8: execution time (s) vs m — synthetic workload (%d queries, "
      "M=32), avg over %d cars (ILP excluded as in the paper)\n",
      log.size(), num_cars);
  const SweepMatrix matrix = RunBudgetSweep(log, tuples, solvers, budgets);
  PrintTimeTable("m", budgets, solvers, matrix);
  return 0;
}
