// Fig 11: execution times of the two optimal algorithms for a varying
// number of attributes M (synthetic workload of 200 queries, m = 5),
// averaged over randomly generated to-be-advertised tuples.
//
// Paper's observations to reproduce: ILP wins for wide/short logs (M above
// ~32), MaxFreqItemSets wins at M = 32 and below — ILP is better for
// "short and wide" query logs, MaxFreqItemSets for "long and narrow" ones.
//
// Flags: --tuples=N (default 5), --queries=N (default 200),
//        --ilp-limit=SECONDS (default 60).

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/figure_runner.h"
#include "bench/solver_set.h"
#include "common/random.h"

int main(int argc, char** argv) {
  using namespace soc;
  using namespace soc::bench;
  Flags flags(argc, argv);
  const int num_tuples = static_cast<int>(flags.GetInt("tuples", 5));
  const int num_queries = static_cast<int>(flags.GetInt("queries", 200));
  const double ilp_limit =
      static_cast<double>(flags.GetInt("ilp-limit", 60));
  const int m = static_cast<int>(flags.GetInt("m", 5));

  const std::vector<int> attribute_counts = {16, 24, 32, 48, 64};

  SolverSetOptions options;
  options.ilp_time_limit_seconds = ilp_limit;
  options.include_greedy = false;  // Fig 11 compares the optimal algorithms.
  const std::vector<SolverEntry> solvers = MakePaperSolverSet(options);

  std::vector<std::vector<SweepCell>> matrix(
      solvers.size(), std::vector<SweepCell>(attribute_counts.size()));
  Rng rng(77);
  for (std::size_t i = 0; i < attribute_counts.size(); ++i) {
    const int num_attrs = attribute_counts[i];
    const AttributeSchema schema = AttributeSchema::Anonymous(num_attrs);
    datagen::SyntheticWorkloadOptions workload;
    workload.num_queries = num_queries;
    workload.seed = 4242 + i;
    const QueryLog log = MakeSyntheticWorkload(schema, workload);
    // To-be-advertised tuples with car-like feature density (~40%).
    std::vector<DynamicBitset> tuples;
    for (int t = 0; t < num_tuples; ++t) {
      DynamicBitset tuple(num_attrs);
      for (int a = 0; a < num_attrs; ++a) {
        if (rng.NextBernoulli(0.4)) tuple.Set(a);
      }
      tuples.push_back(std::move(tuple));
    }
    const SweepMatrix column = RunBudgetSweep(log, tuples, solvers, {m});
    for (std::size_t s = 0; s < solvers.size(); ++s) {
      matrix[s][i] = column[s][0];
    }
  }

  std::printf(
      "# Fig 11: execution time (s) of the optimal algorithms vs M — "
      "synthetic workload of %d queries, m=%d, avg over %d tuples\n",
      num_queries, m, num_tuples);
  PrintTimeTable("M", attribute_counts, solvers, matrix);
  std::printf(
      "\n(expected crossover: MaxFreqItemSets faster at M<=32, ILP faster "
      "for wider schemas)\n");
  return 0;
}
