// Quality/time comparison for the disjunctive problem variant (Sec II.B):
// exact brute force, exact ILP, and the (1-1/e)-approximate max-coverage
// greedy, on the real-like workload.
//
// Flags: --cars=N (default 5).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/variants.h"

int main(int argc, char** argv) {
  using namespace soc;
  using namespace soc::bench;
  Flags flags(argc, argv);
  const int num_cars = static_cast<int>(flags.GetInt("cars", 5));

  const BooleanTable dataset = MakePaperDataset(5000);
  const QueryLog log = datagen::MakeRealLikeWorkload(dataset);
  std::vector<DynamicBitset> tuples;
  for (int row : datagen::PickAdvertisedTuples(dataset, num_cars, 11)) {
    tuples.push_back(dataset.row(row));
  }

  const std::vector<int> budgets = {1, 2, 3, 4, 5};
  struct Algo {
    const char* name;
    StatusOr<SocSolution> (*run)(const QueryLog&, const DynamicBitset&, int);
  };
  const Algo algos[] = {
      {"BruteForce",
       [](const QueryLog& l, const DynamicBitset& t, int m) {
         return SolveDisjunctiveBruteForce(l, t, m);
       }},
      {"ILP",
       [](const QueryLog& l, const DynamicBitset& t, int m) {
         return SolveDisjunctiveIlp(l, t, m);
       }},
      {"MaxCoverageGreedy",
       [](const QueryLog& l, const DynamicBitset& t, int m) {
         return SolveDisjunctiveGreedy(l, t, m);
       }},
  };

  std::printf(
      "# Disjunctive variant: satisfied queries (and time) vs m — "
      "real-like workload (%d queries), avg over %d cars\n",
      log.size(), num_cars);
  std::vector<std::string> columns;
  for (int m : budgets) columns.push_back(StrFormat("%d", m));
  ResultTable quality("satisfied \\ m", columns);
  ResultTable time("time(s) \\ m", columns);
  for (const Algo& algo : algos) {
    std::vector<std::string> qcells, tcells;
    for (int m : budgets) {
      double satisfied = 0.0, seconds = 0.0;
      bool ok = true;
      for (const DynamicBitset& tuple : tuples) {
        WallTimer timer;
        auto solution = algo.run(log, tuple, m);
        seconds += timer.ElapsedSeconds();
        if (!solution.ok()) {
          ok = false;
          break;
        }
        satisfied += solution->satisfied_queries;
      }
      qcells.push_back(
          ResultTable::Cell(ok ? satisfied / num_cars : -1.0, "%.2f"));
      tcells.push_back(ResultTable::Cell(ok ? seconds / num_cars : -1.0));
    }
    quality.AddRow(algo.name, qcells);
    time.AddRow(algo.name, tcells);
  }
  quality.Print();
  std::printf("\n");
  time.Print();
  return 0;
}
