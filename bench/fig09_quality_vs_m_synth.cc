// Fig 9: satisfied queries for SOC-CB-QL for varying m, synthetic workload
// of 2000 queries, averaged over randomly selected cars.
//
// Flags: --cars=N (default 15), --queries=N (default 2000).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "bench/figure_runner.h"
#include "core/brute_force.h"
#include "core/greedy.h"

int main(int argc, char** argv) {
  using namespace soc;
  using namespace soc::bench;
  Flags flags(argc, argv);
  const int num_cars = static_cast<int>(flags.GetInt("cars", 15));
  const int num_queries = static_cast<int>(flags.GetInt("queries", 2000));

  const BooleanTable dataset = MakePaperDataset(datagen::kPaperCarCount);
  datagen::SyntheticWorkloadOptions workload;
  workload.num_queries = num_queries;
  const QueryLog log = MakeSyntheticWorkload(dataset.schema(), workload);
  std::vector<DynamicBitset> tuples;
  for (int row : datagen::PickAdvertisedTuples(dataset, num_cars, 1)) {
    tuples.push_back(dataset.row(row));
  }

  // Optimal reference: candidate-pruned brute force — cars set only ~1/3 of
  // the 32 attributes, so the combination space is small.
  std::vector<SolverEntry> solvers;
  auto optimal = std::make_shared<BruteForceSolver>();
  solvers.push_back({"Optimal",
                     [optimal](const QueryLog& l, const DynamicBitset& t,
                               int m) { return optimal->Solve(l, t, m); },
                     /*requires_proof=*/true});
  for (GreedyKind kind :
       {GreedyKind::kConsumeAttr, GreedyKind::kConsumeAttrCumul,
        GreedyKind::kConsumeQueries}) {
    auto greedy = std::make_shared<GreedySolver>(kind);
    solvers.push_back({greedy->name(),
                       [greedy](const QueryLog& l, const DynamicBitset& t,
                                int m) { return greedy->Solve(l, t, m); },
                       /*requires_proof=*/false});
  }

  const std::vector<int> budgets = {1, 2, 3, 4, 5, 6, 7};
  std::printf(
      "# Fig 9: satisfied queries vs m — synthetic workload (%d queries), "
      "avg over %d cars\n",
      log.size(), num_cars);
  const SweepMatrix matrix = RunBudgetSweep(log, tuples, solvers, budgets);
  PrintQualityTable("m", budgets, solvers, matrix);
  return 0;
}
