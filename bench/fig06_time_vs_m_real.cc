// Fig 6: execution times for SOC-CB-QL for varying m, real(-like) workload
// of 185 queries over the 15,211-car dataset (M = 32), averaged over
// randomly selected to-be-advertised cars.
//
// Paper's observations to reproduce:
//  * MaxFreqItemSets consistently beats ILP at M = 32;
//  * ILP's cost is not monotone in m (branch-and-bound pruning varies);
//  * with preprocessing amortized, MaxFreqItemSets is ~constant and fast;
//  * the greedies are orders of magnitude faster than both.
//
// Flags: --cars=N (default 10; paper used 100), --dataset=N (default
// 15211), --ilp-limit=SECONDS (default 30).

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/figure_runner.h"
#include "bench/solver_set.h"

int main(int argc, char** argv) {
  using namespace soc;
  using namespace soc::bench;
  Flags flags(argc, argv);
  const int num_cars = static_cast<int>(flags.GetInt("cars", 10));
  const int dataset_size =
      static_cast<int>(flags.GetInt("dataset", datagen::kPaperCarCount));
  const double ilp_limit =
      static_cast<double>(flags.GetInt("ilp-limit", 30));

  const BooleanTable dataset = MakePaperDataset(dataset_size);
  const QueryLog log = datagen::MakeRealLikeWorkload(dataset);
  std::vector<DynamicBitset> tuples;
  for (int row : datagen::PickAdvertisedTuples(dataset, num_cars, 1)) {
    tuples.push_back(dataset.row(row));
  }

  SolverSetOptions options;
  options.ilp_time_limit_seconds = ilp_limit;
  options.include_mfi_preprocessed = true;
  const std::vector<SolverEntry> solvers = MakePaperSolverSet(options);
  const std::vector<int> budgets = {1, 2, 3, 4, 5, 6, 7};

  std::printf(
      "# Fig 6: execution time (s) vs m — real-like workload (%d queries, "
      "M=32), avg over %d cars\n",
      log.size(), num_cars);
  const SweepMatrix matrix = RunBudgetSweep(log, tuples, solvers, budgets);
  PrintTimeTable("m", budgets, solvers, matrix);
  std::printf(
      "\n('-' = did not finish within the per-solve limit; "
      "MaxFreqItemSets-prep amortizes the mining preprocessing as in "
      "Sec IV.C)\n");
  return 0;
}
