// Head-to-head of the four exact SOC-CB-QL algorithms (three from the
// paper + this library's combinatorial branch-and-bound) on the real-like
// workload across budgets. All four return the same objective; the bench
// reports time only.
//
// Flags: --cars=N (default 5), --queries=N (default 185).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "bench/figure_runner.h"
#include "core/bnb_solver.h"
#include "core/brute_force.h"
#include "core/ilp_solver.h"
#include "core/mfi_solver.h"

int main(int argc, char** argv) {
  using namespace soc;
  using namespace soc::bench;
  Flags flags(argc, argv);
  const int num_cars = static_cast<int>(flags.GetInt("cars", 5));
  const int num_queries = static_cast<int>(flags.GetInt("queries", 185));

  const BooleanTable dataset = MakePaperDataset(5000);
  datagen::RealLikeWorkloadOptions workload;
  workload.num_queries = num_queries;
  const QueryLog log = datagen::MakeRealLikeWorkload(dataset, workload);
  std::vector<DynamicBitset> tuples;
  for (int row : datagen::PickAdvertisedTuples(dataset, num_cars, 13)) {
    tuples.push_back(dataset.row(row));
  }

  std::vector<SolverEntry> solvers;
  {
    auto s = std::make_shared<BruteForceSolver>();
    solvers.push_back({"BruteForce",
                       [s](const QueryLog& l, const DynamicBitset& t, int m) {
                         return s->Solve(l, t, m);
                       },
                       true});
  }
  {
    auto s = std::make_shared<BnbSocSolver>();
    solvers.push_back({"BranchAndBound",
                       [s](const QueryLog& l, const DynamicBitset& t, int m) {
                         return s->Solve(l, t, m);
                       },
                       true});
  }
  {
    IlpSocOptions options;
    options.mip.time_limit_seconds = 60;
    auto s = std::make_shared<IlpSocSolver>(options);
    solvers.push_back({"ILP(presolve)",
                       [s](const QueryLog& l, const DynamicBitset& t, int m) {
                         return s->Solve(l, t, m);
                       },
                       true});
  }
  {
    auto s = std::make_shared<MfiSocSolver>();
    solvers.push_back({"MaxFreqItemSets",
                       [s](const QueryLog& l, const DynamicBitset& t, int m) {
                         return s->Solve(l, t, m);
                       },
                       false});
  }

  const std::vector<int> budgets = {3, 4, 5, 6, 7, 8};
  std::printf(
      "# Exact-solver showdown — real-like workload (%d queries), avg over "
      "%d cars; all rows reach the same optimum\n",
      log.size(), num_cars);
  const SweepMatrix matrix = RunBudgetSweep(log, tuples, solvers, budgets);
  PrintTimeTable("m", budgets, solvers, matrix);
  return 0;
}
