// Query-log analytics: the summary statistics that drive solver choice
// (the paper's "short and wide" vs "long and narrow" distinction, Fig 11)
// and workload understanding (query-size histogram, attribute skew,
// duplication).

#ifndef SOC_BOOLEAN_LOG_STATS_H_
#define SOC_BOOLEAN_LOG_STATS_H_

#include <string>
#include <vector>

#include "boolean/query_log.h"

namespace soc {

struct QueryLogStats {
  int num_queries = 0;
  int num_attributes = 0;
  int distinct_queries = 0;    // After exact-duplicate collapsing.
  int empty_queries = 0;
  int min_query_size = 0;
  int max_query_size = 0;
  double mean_query_size = 0.0;
  // size_histogram[s] = number of queries with exactly s attributes.
  std::vector<int> size_histogram;
  // Per-attribute frequency, descending, as (attribute id, count).
  std::vector<std::pair<int, int>> attribute_frequencies;
  // Fraction of all attribute occurrences covered by the top-5 attributes
  // (concentration: high values make frequency greedies near-optimal).
  double top5_attribute_share = 0.0;
};

QueryLogStats ComputeQueryLogStats(const QueryLog& log);

// Human-readable multi-line rendering (attribute names resolved through
// the log's schema).
std::string FormatQueryLogStats(const QueryLog& log,
                                const QueryLogStats& stats);

// Collapses exact-duplicate queries. `weights[i]` is the multiplicity of
// `deduped.query(i)`; Σ weights = log.size(). Order of first occurrence
// is preserved.
QueryLog CollapseDuplicateQueries(const QueryLog& log,
                                  std::vector<int>* weights);

// Weighted conjunctive objective over a collapsed log: Σ weights[i] over
// queries retrieved by `tuple`. Equals CountSatisfiedQueries on the
// original log by construction.
int CountSatisfiedWeighted(const QueryLog& deduped,
                           const std::vector<int>& weights,
                           const DynamicBitset& tuple);

}  // namespace soc

#endif  // SOC_BOOLEAN_LOG_STATS_H_
