// Visibility evaluators: given a compressed tuple t', how many queries of
// the log retrieve it under a given retrieval semantics?
//
// Conjunctive Boolean Retrieval (the paper's main variant): query q
// retrieves t' iff q ⊆ t'. Disjunctive Boolean Retrieval (Sec II.B): q
// retrieves t' iff q ∩ t' ≠ ∅ (an empty query retrieves nothing under
// disjunction, everything under conjunction).

#ifndef SOC_BOOLEAN_EVALUATOR_H_
#define SOC_BOOLEAN_EVALUATOR_H_

#include <vector>

#include "boolean/query_log.h"
#include "common/bitset.h"
#include "kernels/coverage.h"

namespace soc {

enum class RetrievalSemantics {
  kConjunctive,
  kDisjunctive,
};

// True iff query `q` retrieves `tuple` under the given semantics.
bool QueryRetrieves(const DynamicBitset& q, const DynamicBitset& tuple,
                    RetrievalSemantics semantics);

// Number of queries of `log` that retrieve `tuple`. O(S * M/64).
int CountSatisfiedQueries(
    const QueryLog& log, const DynamicBitset& tuple,
    RetrievalSemantics semantics = RetrievalSemantics::kConjunctive);

// Indices of the queries that retrieve `tuple`.
std::vector<int> SatisfiedQueryIndices(
    const QueryLog& log, const DynamicBitset& tuple,
    RetrievalSemantics semantics = RetrievalSemantics::kConjunctive);

// A prefiltered view of a query log for one new tuple t: only queries with
// q ⊆ t can ever be satisfied by a compression t' ⊆ t, so solvers iterate
// over this subset. Remembers the mapping back to original query indices.
//
// The filtered queries are additionally laid out as a CoverageBlockSet so
// CountSatisfied — the inner loop of brute-force enumeration — runs on
// the batch coverage kernels (SIMD when the host has it, bit-identical to
// the scalar loop either way).
class SatisfiableQueryView {
 public:
  SatisfiableQueryView(const QueryLog& log, const DynamicBitset& tuple);

  int size() const { return static_cast<int>(queries_.size()); }
  const DynamicBitset& query(int i) const { return queries_[i]; }
  const std::vector<DynamicBitset>& queries() const { return queries_; }
  int original_index(int i) const { return original_indices_[i]; }

  // Number of view queries contained in `candidate`.
  int CountSatisfied(const DynamicBitset& candidate) const;

  // The blocked kernel layout of the filtered queries (unit weights).
  const kernels::CoverageBlockSet& blocks() const { return blocks_; }

 private:
  std::vector<DynamicBitset> queries_;
  std::vector<int> original_indices_;
  kernels::CoverageBlockSet blocks_;
};

}  // namespace soc

#endif  // SOC_BOOLEAN_EVALUATOR_H_
