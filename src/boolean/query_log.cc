#include "boolean/query_log.h"

#include "common/csv.h"

namespace soc {

void QueryLog::AddQuery(DynamicBitset query) {
  SOC_CHECK_EQ(static_cast<int>(query.size()), num_attributes());
  queries_.push_back(std::move(query));
}

void QueryLog::AddQueryFromIndices(const std::vector<int>& attribute_ids) {
  AddQuery(DynamicBitset::FromIndices(num_attributes(), attribute_ids));
}

std::vector<int> QueryLog::AttributeFrequencies() const {
  std::vector<int> freq(num_attributes(), 0);
  for (const DynamicBitset& q : queries_) {
    q.ForEachSetBit([&freq](int attr) { ++freq[attr]; });
  }
  return freq;
}

int QueryLog::CountQueriesContainingAll(const DynamicBitset& attributes) const {
  int count = 0;
  for (const DynamicBitset& q : queries_) {
    if (attributes.IsSubsetOf(q)) ++count;
  }
  return count;
}

QueryLog QueryLog::Complemented() const {
  QueryLog result(schema_);
  for (const DynamicBitset& q : queries_) {
    result.AddQuery(q.Complement());
  }
  return result;
}

std::string QueryLog::ToCsv() const {
  CsvTable csv;
  csv.header = schema_.names();
  for (const DynamicBitset& q : queries_) {
    std::vector<std::string> fields(num_attributes());
    for (int a = 0; a < num_attributes(); ++a) {
      fields[a] = q.Test(a) ? "1" : "0";
    }
    csv.rows.push_back(std::move(fields));
  }
  return WriteCsv(csv);
}

StatusOr<QueryLog> QueryLog::FromCsv(const std::string& text) {
  SOC_ASSIGN_OR_RETURN(CsvTable csv, ParseCsv(text, /*has_header=*/true));
  SOC_ASSIGN_OR_RETURN(AttributeSchema schema,
                       AttributeSchema::Create(csv.header));
  QueryLog log(std::move(schema));
  for (std::size_t r = 0; r < csv.rows.size(); ++r) {
    DynamicBitset q(log.num_attributes());
    for (int a = 0; a < log.num_attributes(); ++a) {
      const std::string& cell = csv.rows[r][a];
      if (cell == "1") {
        q.Set(a);
      } else if (cell != "0") {
        return InvalidArgumentError("non-Boolean cell '" + cell +
                                    "' in query " + std::to_string(r));
      }
    }
    log.AddQuery(std::move(q));
  }
  return log;
}

}  // namespace soc
