#include "boolean/log_stats.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"

namespace soc {

QueryLogStats ComputeQueryLogStats(const QueryLog& log) {
  QueryLogStats stats;
  stats.num_queries = log.size();
  stats.num_attributes = log.num_attributes();

  std::unordered_map<DynamicBitset, int, DynamicBitsetHash> seen;
  long long total_size = 0;
  stats.min_query_size = log.empty() ? 0 : log.num_attributes() + 1;
  for (const DynamicBitset& q : log.queries()) {
    const int size = static_cast<int>(q.Count());
    total_size += size;
    if (size == 0) ++stats.empty_queries;
    stats.min_query_size = std::min(stats.min_query_size, size);
    stats.max_query_size = std::max(stats.max_query_size, size);
    if (static_cast<int>(stats.size_histogram.size()) <= size) {
      stats.size_histogram.resize(size + 1, 0);
    }
    ++stats.size_histogram[size];
    ++seen[q];
  }
  if (log.empty()) stats.min_query_size = 0;
  stats.distinct_queries = static_cast<int>(seen.size());
  stats.mean_query_size =
      log.empty() ? 0.0 : static_cast<double>(total_size) / log.size();

  const std::vector<int> freq = log.AttributeFrequencies();
  for (int a = 0; a < log.num_attributes(); ++a) {
    stats.attribute_frequencies.emplace_back(a, freq[a]);
  }
  std::sort(stats.attribute_frequencies.begin(),
            stats.attribute_frequencies.end(),
            [](const auto& x, const auto& y) {
              if (x.second != y.second) return x.second > y.second;
              return x.first < y.first;
            });
  if (total_size > 0) {
    long long top5 = 0;
    for (std::size_t i = 0; i < 5 && i < stats.attribute_frequencies.size();
         ++i) {
      top5 += stats.attribute_frequencies[i].second;
    }
    stats.top5_attribute_share = static_cast<double>(top5) / total_size;
  }
  return stats;
}

std::string FormatQueryLogStats(const QueryLog& log,
                                const QueryLogStats& stats) {
  std::string out;
  out += StrFormat("queries: %d (%d distinct, %d empty) over %d attributes\n",
                   stats.num_queries, stats.distinct_queries,
                   stats.empty_queries, stats.num_attributes);
  out += StrFormat("query size: min %d / mean %.2f / max %d\n",
                   stats.min_query_size, stats.mean_query_size,
                   stats.max_query_size);
  out += "size histogram:";
  for (std::size_t s = 0; s < stats.size_histogram.size(); ++s) {
    if (stats.size_histogram[s] > 0) {
      out += StrFormat(" %zu:%d", s, stats.size_histogram[s]);
    }
  }
  out += "\ntop attributes:";
  for (std::size_t i = 0; i < 8 && i < stats.attribute_frequencies.size();
       ++i) {
    const auto& [attr, count] = stats.attribute_frequencies[i];
    if (count == 0) break;
    out += StrFormat(" %s:%d", log.schema().name(attr).c_str(), count);
  }
  out += StrFormat("\ntop-5 attribute share: %.1f%%\n",
                   100.0 * stats.top5_attribute_share);
  return out;
}

QueryLog CollapseDuplicateQueries(const QueryLog& log,
                                  std::vector<int>* weights) {
  SOC_CHECK(weights != nullptr);
  weights->clear();
  QueryLog deduped(log.schema());
  std::unordered_map<DynamicBitset, int, DynamicBitsetHash> index;
  for (const DynamicBitset& q : log.queries()) {
    const auto [it, inserted] = index.emplace(q, deduped.size());
    if (inserted) {
      deduped.AddQuery(q);
      weights->push_back(1);
    } else {
      ++(*weights)[it->second];
    }
  }
  return deduped;
}

int CountSatisfiedWeighted(const QueryLog& deduped,
                           const std::vector<int>& weights,
                           const DynamicBitset& tuple) {
  SOC_CHECK_EQ(deduped.size(), static_cast<int>(weights.size()));
  int total = 0;
  for (int i = 0; i < deduped.size(); ++i) {
    if (deduped.query(i).IsSubsetOf(tuple)) total += weights[i];
  }
  return total;
}

}  // namespace soc
