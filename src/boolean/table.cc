#include "boolean/table.h"

#include "common/csv.h"

namespace soc {

void BooleanTable::AddRow(DynamicBitset row) {
  SOC_CHECK_EQ(static_cast<int>(row.size()), num_attributes());
  rows_.push_back(std::move(row));
}

void BooleanTable::AddRowFromIndices(const std::vector<int>& attribute_ids) {
  AddRow(DynamicBitset::FromIndices(num_attributes(), attribute_ids));
}

bool BooleanTable::Dominates(const DynamicBitset& candidate, int index) const {
  return row(index).IsSubsetOf(candidate);
}

int BooleanTable::CountDominatedBy(const DynamicBitset& candidate) const {
  int count = 0;
  for (const DynamicBitset& row : rows_) {
    if (row.IsSubsetOf(candidate)) ++count;
  }
  return count;
}

std::vector<int> BooleanTable::AttributeFrequencies() const {
  std::vector<int> freq(num_attributes(), 0);
  for (const DynamicBitset& row : rows_) {
    row.ForEachSetBit([&freq](int attr) { ++freq[attr]; });
  }
  return freq;
}

std::string BooleanTable::ToCsv() const {
  CsvTable csv;
  csv.header = schema_.names();
  csv.rows.reserve(rows_.size());
  for (const DynamicBitset& row : rows_) {
    std::vector<std::string> fields(num_attributes());
    for (int a = 0; a < num_attributes(); ++a) {
      fields[a] = row.Test(a) ? "1" : "0";
    }
    csv.rows.push_back(std::move(fields));
  }
  return WriteCsv(csv);
}

StatusOr<BooleanTable> BooleanTable::FromCsv(const std::string& text) {
  SOC_ASSIGN_OR_RETURN(CsvTable csv, ParseCsv(text, /*has_header=*/true));
  SOC_ASSIGN_OR_RETURN(AttributeSchema schema,
                       AttributeSchema::Create(csv.header));
  BooleanTable table(std::move(schema));
  for (std::size_t r = 0; r < csv.rows.size(); ++r) {
    DynamicBitset row(table.num_attributes());
    for (int a = 0; a < table.num_attributes(); ++a) {
      const std::string& cell = csv.rows[r][a];
      if (cell == "1") {
        row.Set(a);
      } else if (cell != "0") {
        return InvalidArgumentError("non-Boolean cell '" + cell + "' in row " +
                                    std::to_string(r));
      }
    }
    table.AddRow(std::move(row));
  }
  return table;
}

Status BooleanTable::SaveCsvFile(const std::string& path) const {
  CsvTable csv;
  csv.header = schema_.names();
  for (const DynamicBitset& row : rows_) {
    std::vector<std::string> fields(num_attributes());
    for (int a = 0; a < num_attributes(); ++a) {
      fields[a] = row.Test(a) ? "1" : "0";
    }
    csv.rows.push_back(std::move(fields));
  }
  return WriteCsvFile(csv, path);
}

StatusOr<BooleanTable> BooleanTable::LoadCsvFile(const std::string& path) {
  SOC_ASSIGN_OR_RETURN(CsvTable csv, ReadCsvFile(path, /*has_header=*/true));
  return FromCsv(WriteCsv(csv));
}

}  // namespace soc
