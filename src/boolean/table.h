// BooleanTable: the paper's database D — N Boolean tuples over M attributes.
// Each tuple is a DynamicBitset ("a tuple may also be considered as a subset
// of A", Sec II.A).

#ifndef SOC_BOOLEAN_TABLE_H_
#define SOC_BOOLEAN_TABLE_H_

#include <string>
#include <vector>

#include "boolean/schema.h"
#include "common/bitset.h"
#include "common/status.h"

namespace soc {

class BooleanTable {
 public:
  BooleanTable() = default;
  explicit BooleanTable(AttributeSchema schema) : schema_(std::move(schema)) {}

  const AttributeSchema& schema() const { return schema_; }
  int num_attributes() const { return schema_.size(); }
  int num_rows() const { return static_cast<int>(rows_.size()); }

  const DynamicBitset& row(int index) const { return rows_.at(index); }
  const std::vector<DynamicBitset>& rows() const { return rows_; }

  // Appends a tuple; its size must equal the schema width.
  void AddRow(DynamicBitset row);

  // Appends a tuple given the set attribute ids.
  void AddRowFromIndices(const std::vector<int>& attribute_ids);

  // True iff `candidate` dominates row `index`: every attribute set in the
  // row is also set in the candidate (Sec II.A, Tuple Domination).
  bool Dominates(const DynamicBitset& candidate, int index) const;

  // Number of rows dominated by `candidate` — the SOC-CB-D objective.
  int CountDominatedBy(const DynamicBitset& candidate) const;

  // Per-attribute number of rows with the attribute set.
  std::vector<int> AttributeFrequencies() const;

  // CSV persistence: header = attribute names, cells = 0/1.
  std::string ToCsv() const;
  static StatusOr<BooleanTable> FromCsv(const std::string& text);
  Status SaveCsvFile(const std::string& path) const;
  static StatusOr<BooleanTable> LoadCsvFile(const std::string& path);

 private:
  AttributeSchema schema_;
  std::vector<DynamicBitset> rows_;
};

}  // namespace soc

#endif  // SOC_BOOLEAN_TABLE_H_
