#include "boolean/evaluator.h"

#include "kernels/kernels.h"

namespace soc {

bool QueryRetrieves(const DynamicBitset& q, const DynamicBitset& tuple,
                    RetrievalSemantics semantics) {
  switch (semantics) {
    case RetrievalSemantics::kConjunctive:
      return q.IsSubsetOf(tuple);
    case RetrievalSemantics::kDisjunctive:
      return q.Intersects(tuple);
  }
  return false;
}

int CountSatisfiedQueries(const QueryLog& log, const DynamicBitset& tuple,
                          RetrievalSemantics semantics) {
  int count = 0;
  for (const DynamicBitset& q : log.queries()) {
    if (QueryRetrieves(q, tuple, semantics)) ++count;
  }
  return count;
}

std::vector<int> SatisfiedQueryIndices(const QueryLog& log,
                                       const DynamicBitset& tuple,
                                       RetrievalSemantics semantics) {
  std::vector<int> indices;
  for (int i = 0; i < log.size(); ++i) {
    if (QueryRetrieves(log.query(i), tuple, semantics)) indices.push_back(i);
  }
  return indices;
}

SatisfiableQueryView::SatisfiableQueryView(const QueryLog& log,
                                           const DynamicBitset& tuple) {
  for (int i = 0; i < log.size(); ++i) {
    if (log.query(i).IsSubsetOf(tuple)) {
      queries_.push_back(log.query(i));
      original_indices_.push_back(i);
    }
  }
  blocks_ = kernels::CoverageBlockSet(
      queries_, static_cast<std::size_t>(log.num_attributes()));
}

int SatisfiableQueryView::CountSatisfied(const DynamicBitset& candidate) const {
  return static_cast<int>(kernels::CountCovered(blocks_, candidate));
}

}  // namespace soc
