#include "boolean/schema.h"

#include "common/string_util.h"

namespace soc {

StatusOr<AttributeSchema> AttributeSchema::Create(
    std::vector<std::string> names) {
  AttributeSchema schema;
  schema.names_ = std::move(names);
  for (std::size_t i = 0; i < schema.names_.size(); ++i) {
    const bool inserted =
        schema.index_
            .emplace(schema.names_[i], static_cast<AttributeId>(i))
            .second;
    if (!inserted) {
      return InvalidArgumentError("duplicate attribute name: " +
                                  schema.names_[i]);
    }
  }
  return schema;
}

AttributeSchema AttributeSchema::Anonymous(int count) {
  std::vector<std::string> names;
  names.reserve(count);
  for (int i = 0; i < count; ++i) names.push_back(StrFormat("a%d", i));
  auto schema = Create(std::move(names));
  SOC_CHECK(schema.ok());
  return std::move(schema).value();
}

AttributeId AttributeSchema::Find(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

}  // namespace soc
