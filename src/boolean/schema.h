// AttributeSchema: ordered, named Boolean attributes shared by tables,
// query logs and solvers.

#ifndef SOC_BOOLEAN_SCHEMA_H_
#define SOC_BOOLEAN_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace soc {

// An attribute index into a schema; -1 means "not found".
using AttributeId = int;

class AttributeSchema {
 public:
  AttributeSchema() = default;

  // Builds a schema with the given attribute names (must be unique).
  static StatusOr<AttributeSchema> Create(std::vector<std::string> names);

  // Builds a schema of `count` attributes named "a0".."a<count-1>".
  static AttributeSchema Anonymous(int count);

  int size() const { return static_cast<int>(names_.size()); }
  const std::string& name(AttributeId id) const { return names_.at(id); }
  const std::vector<std::string>& names() const { return names_; }

  // Index of `name`, or -1.
  AttributeId Find(const std::string& name) const;

  friend bool operator==(const AttributeSchema& a, const AttributeSchema& b) {
    return a.names_ == b.names_;
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, AttributeId> index_;
};

}  // namespace soc

#endif  // SOC_BOOLEAN_SCHEMA_H_
