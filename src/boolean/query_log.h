// QueryLog: the paper's workload Q — a multiset of conjunctive Boolean
// queries, each a subset of the attribute set (Sec II.A).

#ifndef SOC_BOOLEAN_QUERY_LOG_H_
#define SOC_BOOLEAN_QUERY_LOG_H_

#include <string>
#include <vector>

#include "boolean/schema.h"
#include "common/bitset.h"
#include "common/status.h"

namespace soc {

class QueryLog {
 public:
  QueryLog() = default;
  explicit QueryLog(AttributeSchema schema) : schema_(std::move(schema)) {}

  const AttributeSchema& schema() const { return schema_; }
  int num_attributes() const { return schema_.size(); }
  int size() const { return static_cast<int>(queries_.size()); }
  bool empty() const { return queries_.empty(); }

  const DynamicBitset& query(int index) const { return queries_.at(index); }
  const std::vector<DynamicBitset>& queries() const { return queries_; }

  // Appends a query; its bitset size must match the schema width.
  // Empty queries (no attributes) are legal and match every tuple.
  void AddQuery(DynamicBitset query);
  void AddQueryFromIndices(const std::vector<int>& attribute_ids);

  // Per-attribute number of queries specifying the attribute (the statistic
  // driving ConsumeAttr).
  std::vector<int> AttributeFrequencies() const;

  // Number of queries whose attribute set contains every attribute in
  // `attributes` (the co-occurrence statistic driving ConsumeAttrCumul).
  int CountQueriesContainingAll(const DynamicBitset& attributes) const;

  // The complemented log ~Q (Sec IV.C): every query's bit-vector flipped.
  QueryLog Complemented() const;

  // CSV persistence (same layout as BooleanTable).
  std::string ToCsv() const;
  static StatusOr<QueryLog> FromCsv(const std::string& text);

 private:
  AttributeSchema schema_;
  std::vector<DynamicBitset> queries_;
};

}  // namespace soc

#endif  // SOC_BOOLEAN_QUERY_LOG_H_
