#include "core/greedy.h"

#include <algorithm>
#include <limits>

#include "kernels/kernels.h"

namespace soc {

namespace {

// Top-m attributes of `tuple` by query-log frequency (ties: lower index).
DynamicBitset ConsumeAttr(const QueryLog& log, const DynamicBitset& tuple,
                          int m_eff) {
  const std::vector<int> freq = log.AttributeFrequencies();
  std::vector<int> attrs = tuple.SetBits();
  std::sort(attrs.begin(), attrs.end(), [&freq](int a, int b) {
    if (freq[a] != freq[b]) return freq[a] > freq[b];
    return a < b;
  });
  DynamicBitset selected(log.num_attributes());
  for (int i = 0; i < m_eff; ++i) selected.Set(attrs[i]);
  return selected;
}

DynamicBitset ConsumeAttrCumul(const QueryLog& log, const DynamicBitset& tuple,
                               int m_eff, SolveContext* context) {
  const std::vector<int> freq = log.AttributeFrequencies();
  DynamicBitset selected(log.num_attributes());
  std::vector<int> remaining = tuple.SetBits();

  // One blocked layout of the full log per solve (the co-occurrence
  // statistic counts every query, not just q ⊆ t). A single CoverageGain
  // scan per step then yields every candidate's joint count at once:
  // gains[a] = #{q : selected ∪ {a} ⊆ q} — exactly the
  // CountQueriesContainingAll value the per-candidate loop used to
  // recompute from scratch.
  kernels::ScratchScope scratch;
  const kernels::CoverageBlockSet blocks(
      log.queries(), static_cast<std::size_t>(log.num_attributes()),
      /*weights=*/nullptr, &scratch.arena());
  long long* gains = scratch.arena().AllocateWeights(
      static_cast<std::size_t>(log.num_attributes()));

  for (int step = 0; step < m_eff; ++step) {
    // Ticks once per 64-query block (the expensive unit of work here);
    // on stop the partial selection is padded by the caller.
    const kernels::GainScan scan =
        kernels::CoverageGain(blocks, selected, gains, context);
    if (!scan.completed) return selected;
    int best_attr = -1;
    long long best_cooccur = -1;
    int best_freq = -1;
    for (int attr : remaining) {
      const long long cooccur = gains[attr];
      if (cooccur > best_cooccur ||
          (cooccur == best_cooccur && freq[attr] > best_freq)) {
        best_attr = attr;
        best_cooccur = cooccur;
        best_freq = freq[attr];
      }
    }
    if (best_cooccur == 0) {
      // No query contains the selection plus any candidate: fall back to
      // individual frequency for the remaining picks.
      std::sort(remaining.begin(), remaining.end(), [&freq](int a, int b) {
        if (freq[a] != freq[b]) return freq[a] > freq[b];
        return a < b;
      });
      for (int attr : remaining) {
        if (static_cast<int>(selected.Count()) >= m_eff) break;
        selected.Set(attr);
      }
      return selected;
    }
    selected.Set(best_attr);
    remaining.erase(std::find(remaining.begin(), remaining.end(), best_attr));
  }
  return selected;
}

DynamicBitset ConsumeQueries(const QueryLog& log, const DynamicBitset& tuple,
                             int m_eff, SolveContext* context) {
  const SatisfiableQueryView view(log, tuple);
  DynamicBitset selected(log.num_attributes());
  std::vector<bool> used(view.size(), false);

  while (static_cast<int>(selected.Count()) < m_eff) {
    if (internal::ShouldStop(context)) return selected;
    // The satisfiable query with the fewest new attributes that still fits.
    int best_query = -1;
    std::size_t best_new = std::numeric_limits<std::size_t>::max();
    const int slack = m_eff - static_cast<int>(selected.Count());
    for (int i = 0; i < view.size(); ++i) {
      if (used[i]) continue;
      DynamicBitset new_attrs = view.query(i);
      new_attrs.AndNot(selected);
      const std::size_t added = new_attrs.Count();
      if (added > static_cast<std::size_t>(slack)) continue;
      if (added < best_new) {
        best_new = added;
        best_query = i;
      }
    }
    if (best_query < 0) break;  // Nothing fits: fill by frequency below.
    used[best_query] = true;
    selected |= view.query(best_query);
  }
  return selected;
}

}  // namespace

const char* GreedyKindToString(GreedyKind kind) {
  switch (kind) {
    case GreedyKind::kConsumeAttr:
      return "ConsumeAttr";
    case GreedyKind::kConsumeAttrCumul:
      return "ConsumeAttrCumul";
    case GreedyKind::kConsumeQueries:
      return "ConsumeQueries";
  }
  return "Greedy";
}

StatusOr<SocSolution> GreedySolver::SolveWithContext(
    const QueryLog& log, const DynamicBitset& tuple, int m,
    SolveContext* context) const {
  const int m_eff = internal::EffectiveBudget(log, tuple, m);
  DynamicBitset selected(log.num_attributes());
  // Entry checkpoint: a context that is already stopped (or expires
  // immediately) skips straight to the frequency padding, which doubles as
  // the cheapest valid heuristic.
  if (!internal::ShouldStop(context)) {
    switch (kind_) {
      case GreedyKind::kConsumeAttr:
        selected = ConsumeAttr(log, tuple, m_eff);
        break;
      case GreedyKind::kConsumeAttrCumul:
        selected = ConsumeAttrCumul(log, tuple, m_eff, context);
        break;
      case GreedyKind::kConsumeQueries:
        selected = ConsumeQueries(log, tuple, m_eff, context);
        break;
    }
  }
  internal::PadSelection(log, tuple, m_eff, &selected);
  SocSolution solution = internal::FinishSolution(log, std::move(selected),
                                                  /*proved_optimal=*/false);
  if (context != nullptr && context->stop_requested()) {
    internal::MarkDegraded(context->stop_reason(), &solution);
  }
  return solution;
}

}  // namespace soc
