#include "core/mfi_solver.h"

#include <algorithm>
#include <unordered_set>

#include <cstdlib>

#include "common/combinatorics.h"
#include "common/csv.h"
#include "core/greedy.h"

namespace soc {

MfiPreprocessedIndex::MfiPreprocessedIndex(const QueryLog& log,
                                           MfiSocOptions options)
    : db_(itemsets::TransactionDatabase::FromComplementedQueryLog(log)),
      log_size_(log.size()),
      options_(options) {}

StatusOr<std::shared_ptr<const std::vector<itemsets::FrequentItemset>>>
MfiPreprocessedIndex::MaximalItemsets(int threshold, SolveContext* context) {
  auto it = cache_.find(threshold);
  if (it == cache_.end()) {
    const PhaseScope phase(context, "mining");
    StatusOr<std::vector<itemsets::FrequentItemset>> mined =
        options_.engine == MfiEngine::kRandomWalk
            ? itemsets::MineMaximalItemsetsRandomWalk(
                  db_, threshold, options_.walk, /*stats=*/nullptr, context)
            : itemsets::MineMaximalItemsetsDfs(db_, threshold, options_.dfs,
                                               context);
    if (!mined.ok()) return mined.status();
    auto itemsets = std::make_shared<const std::vector<itemsets::FrequentItemset>>(
        std::move(mined).value());
    if (context != nullptr && context->stop_requested()) {
      // Interrupted pass: usable for this solve's lower bound, but not
      // cacheable — the collection may be incomplete.
      return itemsets;
    }
    it = cache_.emplace(threshold, std::move(itemsets)).first;
  }
  return it->second;
}

std::string MfiPreprocessedIndex::SerializeCache() const {
  CsvTable csv;
  csv.header = {"threshold", "support", "itemset"};
  for (const auto& [threshold, itemsets] : cache_) {
    for (const itemsets::FrequentItemset& f : *itemsets) {
      csv.rows.push_back({std::to_string(threshold),
                          std::to_string(f.support), f.items.ToString()});
    }
    if (itemsets->empty()) {
      // Record thresholds that legitimately mined nothing, so a reload
      // does not re-mine them.
      csv.rows.push_back({std::to_string(threshold), "-1", ""});
    }
  }
  return WriteCsv(csv);
}

Status MfiPreprocessedIndex::LoadCache(const std::string& serialized) {
  SOC_ASSIGN_OR_RETURN(CsvTable csv, ParseCsv(serialized, /*has_header=*/true));
  std::map<int, std::vector<itemsets::FrequentItemset>> loaded;
  for (const auto& row : csv.rows) {
    if (row.size() != 3) return InvalidArgumentError("bad MFI cache row");
    const int threshold = std::atoi(row[0].c_str());
    const int support = std::atoi(row[1].c_str());
    if (threshold < 1) return InvalidArgumentError("bad cache threshold");
    auto& bucket = loaded[threshold];
    if (support < 0) continue;  // Empty-threshold marker.
    if (static_cast<int>(row[2].size()) != db_.num_items()) {
      return InvalidArgumentError(
          "cached itemset width does not match this log");
    }
    itemsets::FrequentItemset f;
    f.items = DynamicBitset::FromString(row[2]);
    f.support = support;
    if (db_.Support(f.items) != support) {
      return InvalidArgumentError(
          "cached support mismatch: cache was built for a different log");
    }
    bucket.push_back(std::move(f));
  }
  for (auto& [threshold, itemsets] : loaded) {
    cache_[threshold] =
        std::make_shared<const std::vector<itemsets::FrequentItemset>>(
            std::move(itemsets));
  }
  return Status::OK();
}

namespace {

// Scans the size-`level` subsets I with not_t ⊆ I ⊆ F over all maximal
// itemsets F, returning the most frequent one (Fig 4 of the paper).
// Returns support -1 when no candidate exists at this threshold. The scan
// is cooperative and best-effort: tripping `max_candidates` or a context
// stop truncates it, recorded in `stop` (the best-so-far stays valid).
struct SubsetScanResult {
  DynamicBitset best_itemset;
  int best_support = -1;
  std::uint64_t candidates = 0;
  StopReason stop = StopReason::kNone;  // kNone iff the scan completed.
};

SubsetScanResult ScanLevelSubsets(
    const itemsets::TransactionDatabase& db,
    const std::vector<itemsets::FrequentItemset>& mfis,
    const DynamicBitset& not_t, const DynamicBitset& tuple, int level,
    std::uint64_t max_candidates, SolveContext* context) {
  const PhaseScope phase(context, "subset_scan");
  SubsetScanResult result;
  const std::size_t base_size = not_t.Count();
  const int need = level - static_cast<int>(base_size);
  SOC_CHECK_GE(need, 0);
  const DynamicBitset base_tids = db.Tids(not_t);

  std::unordered_set<DynamicBitset, DynamicBitsetHash> seen;
  for (const itemsets::FrequentItemset& mfi : mfis) {
    if (static_cast<int>(mfi.items.Count()) < level) continue;
    if (!not_t.IsSubsetOf(mfi.items)) continue;
    // Items of F we may add to ~t: F \ ~t = F ∩ t.
    const std::vector<int> pool = (mfi.items & tuple).SetBits();
    const std::uint64_t combos =
        BinomialSaturating(static_cast<int>(pool.size()), need);
    if (max_candidates > 0 && result.candidates + combos > max_candidates) {
      result.stop = StopReason::kResourceLimit;
      break;
    }
    ForEachCombination(pool, need, [&](const std::vector<int>& combo) {
      if (internal::ShouldStop(context)) {
        result.stop = context->stop_reason();
        return false;
      }
      ++result.candidates;
      DynamicBitset itemset = not_t;
      for (int item : combo) itemset.Set(item);
      if (!seen.insert(itemset).second) return true;  // Duplicate.
      DynamicBitset tids = base_tids;
      for (int item : combo) tids &= db.item_tids(item);
      const int support = static_cast<int>(tids.Count());
      if (support > result.best_support) {
        result.best_support = support;
        result.best_itemset = std::move(itemset);
      }
      return true;
    });
    if (result.stop != StopReason::kNone) break;
  }
  return result;
}

}  // namespace

StatusOr<SocSolution> MfiSocSolver::SolveWithContext(
    const QueryLog& log, const DynamicBitset& tuple, int m,
    SolveContext* context) const {
  MfiPreprocessedIndex index(log, options_);
  return SolveWithIndex(index, log, tuple, m, context);
}

StatusOr<SocSolution> MfiSocSolver::SolveWithIndex(MfiItemsetSource& index,
                                                   const QueryLog& log,
                                                   const DynamicBitset& tuple,
                                                   int m,
                                                   SolveContext* context) const {
  SOC_CHECK_EQ(index.log_size(), log.size());
  const int m_eff = internal::EffectiveBudget(log, tuple, m);
  const int num_attrs = log.num_attributes();
  const int level = num_attrs - m_eff;
  const DynamicBitset not_t = tuple.Complement();
  const itemsets::TransactionDatabase& db = index.complemented_db();
  const bool exact_engine = options_.engine == MfiEngine::kExactDfs;

  // Degenerate log: nothing to satisfy.
  if (log.empty()) {
    DynamicBitset selected(num_attrs);
    internal::PadSelection(log, tuple, m_eff, &selected);
    return internal::FinishSolution(log, std::move(selected), exact_engine);
  }

  // Only queries with q ⊆ t and |q| <= m can ever be satisfied by a
  // size-m compression, so their count bounds both the optimum and any
  // useful mining threshold. In particular a zero count means the optimum
  // is 0 and no mining is needed at all.
  int satisfiable = 0;
  for (const DynamicBitset& q : log.queries()) {
    if (static_cast<int>(q.Count()) <= m_eff && q.IsSubsetOf(tuple)) {
      ++satisfiable;
    }
  }
  if (satisfiable == 0) {
    DynamicBitset selected(num_attrs);
    internal::PadSelection(log, tuple, m_eff, &selected);
    SocSolution solution =
        internal::FinishSolution(log, std::move(selected), exact_engine);
    solution.metrics.emplace_back("satisfiable", 0.0);
    return solution;
  }

  // Threshold schedule (Sec IV.C). The greedy seed doubles as the degraded
  // incumbent: if the context stops mining or scanning before any candidate
  // surfaces, the solver falls back to it rather than failing.
  DynamicBitset incumbent(num_attrs);
  std::vector<int> thresholds;
  if (options_.adaptive_threshold) {
    int r = std::max(1, std::min(log.size() / 2, satisfiable));
    if (options_.seed_threshold_with_greedy) {
      // Greedy lower bound L: mining at r = L always succeeds (the greedy
      // selection's complement is itself a frequent level-(M-m) itemset),
      // so the first pass is usually the only one.
      const PhaseScope phase(context, "greedy_seed");
      const GreedySolver greedy(GreedyKind::kConsumeAttrCumul);
      SOC_ASSIGN_OR_RETURN(SocSolution seed, greedy.Solve(log, tuple, m_eff));
      if (seed.satisfied_queries >= 1) {
        r = std::min(r, seed.satisfied_queries);
      }
      incumbent = std::move(seed.selected);
    }
    while (true) {
      thresholds.push_back(r);
      if (r == 1) break;
      r = std::max(1, r / 2);
    }
  } else {
    const int r = std::max(
        1, static_cast<int>(options_.fixed_threshold_fraction * log.size()));
    thresholds.push_back(r);
  }

  // Returns the padded incumbent as a degraded partial solution.
  const auto degrade_to_incumbent = [&](StopReason reason,
                                        std::uint64_t candidates) {
    DynamicBitset selected = incumbent;
    internal::PadSelection(log, tuple, m_eff, &selected);
    SocSolution solution = internal::FinishSolution(
        log, std::move(selected), /*proved_optimal=*/false);
    solution.metrics.emplace_back("subset_candidates",
                                  static_cast<double>(candidates));
    internal::MarkDegraded(reason, &solution);
    return solution;
  };

  if (internal::ShouldStop(context)) {
    return degrade_to_incumbent(context->stop_reason(), 0);
  }

  std::uint64_t total_candidates = 0;
  for (const int threshold : thresholds) {
    SOC_ASSIGN_OR_RETURN(
        const std::shared_ptr<const std::vector<itemsets::FrequentItemset>>
            mfis,
        index.MaximalItemsets(threshold, context));
    const bool mining_partial =
        context != nullptr && context->stop_requested();
    SubsetScanResult scan =
        ScanLevelSubsets(db, *mfis, not_t, tuple, level,
                         options_.max_subset_candidates, context);
    total_candidates += scan.candidates;
    const bool truncated = mining_partial || scan.stop != StopReason::kNone;
    const StopReason stop_reason =
        context != nullptr && context->stop_requested()
            ? context->stop_reason()
            : scan.stop;
    if (scan.best_support >= 0) {
      // Success at this threshold: the complement of the best level-(M-m)
      // itemset is the optimal compression (its frequency >= threshold, and
      // every compression at least this visible was scanned) — unless the
      // pass was truncated, in which case it is only a lower bound.
      DynamicBitset selected = scan.best_itemset.Complement();
      internal::PadSelection(log, tuple, m_eff, &selected);
      SocSolution solution = internal::FinishSolution(
          log, std::move(selected),
          /*proved_optimal=*/exact_engine && !truncated);
      solution.metrics.emplace_back("threshold",
                                    static_cast<double>(threshold));
      solution.metrics.emplace_back("maximal_itemsets",
                                    static_cast<double>(mfis->size()));
      solution.metrics.emplace_back("subset_candidates",
                                    static_cast<double>(total_candidates));
      if (truncated) internal::MarkDegraded(stop_reason, &solution);
      return solution;
    }
    if (truncated) {
      // Stopped before any candidate appeared at this threshold: serve the
      // incumbent instead of descending further.
      return degrade_to_incumbent(stop_reason, total_candidates);
    }
    // Fixed-threshold mode mirrors the paper: report "empty" via NotFound.
    if (!options_.adaptive_threshold) {
      return NotFoundError(
          "no compression satisfies the fixed support threshold " +
          std::to_string(threshold));
    }
  }

  // Even r = 1 produced no candidate: no compression satisfies any query.
  DynamicBitset selected(num_attrs);
  internal::PadSelection(log, tuple, m_eff, &selected);
  SocSolution solution =
      internal::FinishSolution(log, std::move(selected), exact_engine);
  solution.metrics.emplace_back("threshold", 1.0);
  solution.metrics.emplace_back("subset_candidates",
                                static_cast<double>(total_candidates));
  return solution;
}

}  // namespace soc
