#include "core/bnb_solver.h"

#include <algorithm>

#include "core/greedy.h"
#include "kernels/kernels.h"

namespace soc {

namespace {

class BnbSearch {
 public:
  BnbSearch(const kernels::CoverageBlockSet* queries,
            std::vector<int> candidates, int num_attrs, int budget,
            std::int64_t max_nodes, SolveContext* context)
      : queries_(queries),
        candidates_(std::move(candidates)),
        budget_(budget),
        max_nodes_(max_nodes),
        context_(context),
        chosen_(num_attrs),
        rejected_(num_attrs),
        best_selection_(num_attrs) {}

  void SeedIncumbent(const DynamicBitset& selection, int count) {
    best_selection_ = selection;
    best_count_ = count;
  }

  void Run() { Visit(0, 0); }

  const DynamicBitset& best_selection() const { return best_selection_; }
  std::int64_t nodes() const { return nodes_; }
  // kNone iff the search space was exhausted (incumbent proved optimal).
  StopReason stop_reason() const { return stop_reason_; }

 private:
  void Visit(std::size_t index, int num_chosen) {
    if (stop_reason_ != StopReason::kNone) return;
    if (max_nodes_ > 0 && ++nodes_ > max_nodes_) {
      stop_reason_ = StopReason::kResourceLimit;
      return;
    }
    if (internal::ShouldStop(context_)) {
      stop_reason_ = context_->stop_reason();
      return;
    }

    // Bound: queries already satisfied plus queries that still fit
    // (|q \ chosen| ≤ slack and q avoids every rejected attribute), in
    // one batch kernel pass over the blocked layout.
    const int slack = budget_ - num_chosen;
    const kernels::BoundScan bound =
        kernels::CoverageBound(*queries_, chosen_, rejected_, slack);
    const int satisfied = static_cast<int>(bound.satisfied);
    const int potential = static_cast<int>(bound.potential);
    if (satisfied > best_count_) {
      best_count_ = satisfied;
      best_selection_ = chosen_;
    }
    if (satisfied + potential <= best_count_) return;
    if (num_chosen == budget_ || index == candidates_.size()) return;

    const int attr = candidates_[index];
    // Include-first: frequency ordering makes this the promising branch.
    chosen_.Set(attr);
    Visit(index + 1, num_chosen + 1);
    chosen_.Reset(attr);
    if (stop_reason_ != StopReason::kNone) return;

    rejected_.Set(attr);
    Visit(index + 1, num_chosen);
    rejected_.Reset(attr);
  }

  const kernels::CoverageBlockSet* const queries_;
  const std::vector<int> candidates_;
  const int budget_;
  const std::int64_t max_nodes_;
  SolveContext* const context_;

  DynamicBitset chosen_;
  DynamicBitset rejected_;
  DynamicBitset best_selection_;
  int best_count_ = -1;
  std::int64_t nodes_ = 0;
  StopReason stop_reason_ = StopReason::kNone;
};

}  // namespace

StatusOr<SocSolution> BnbSocSolver::SolveWithContext(
    const QueryLog& log, const DynamicBitset& tuple, int m,
    SolveContext* context) const {
  const int m_eff = internal::EffectiveBudget(log, tuple, m);
  const int num_attrs = log.num_attributes();

  // Queries that a size-m_eff compression of t could ever satisfy.
  std::vector<DynamicBitset> relevant;
  DynamicBitset candidate_union(num_attrs);
  for (const DynamicBitset& q : log.queries()) {
    if (static_cast<int>(q.Count()) <= m_eff && q.IsSubsetOf(tuple)) {
      relevant.push_back(q);
      candidate_union |= q;
    }
  }
  candidate_union &= tuple;

  // Candidates ordered by descending log frequency (ties: index).
  const std::vector<int> freq = log.AttributeFrequencies();
  std::vector<int> candidates = candidate_union.SetBits();
  std::sort(candidates.begin(), candidates.end(), [&freq](int a, int b) {
    if (freq[a] != freq[b]) return freq[a] > freq[b];
    return a < b;
  });

  kernels::ScratchScope scratch;
  const kernels::CoverageBlockSet blocks(
      relevant, static_cast<std::size_t>(num_attrs), /*weights=*/nullptr,
      &scratch.arena());
  BnbSearch search(&blocks, std::move(candidates), num_attrs, m_eff,
                   options_.max_nodes, context);

  // Greedy incumbent (restricted to candidate attributes for a valid seed);
  // run context-free so an already-stopped context still yields a usable
  // anytime incumbent.
  const GreedySolver greedy(GreedyKind::kConsumeAttrCumul);
  SOC_ASSIGN_OR_RETURN(SocSolution seed, greedy.Solve(log, tuple, m_eff));
  DynamicBitset seed_selection = seed.selected & candidate_union;
  search.SeedIncumbent(seed_selection,
                       CountSatisfiedQueries(log, seed_selection));

  search.Run();

  DynamicBitset selected = search.best_selection();
  internal::PadSelection(log, tuple, m_eff, &selected);
  SocSolution solution = internal::FinishSolution(
      log, std::move(selected),
      /*proved_optimal=*/search.stop_reason() == StopReason::kNone);
  solution.metrics.emplace_back("nodes", static_cast<double>(search.nodes()));
  if (search.stop_reason() != StopReason::kNone) {
    internal::MarkDegraded(search.stop_reason(), &solution);
  }
  return solution;
}

}  // namespace soc
