#include "core/ilp_solver.h"

#include <algorithm>

#include "common/string_util.h"
#include "core/greedy.h"

namespace soc {

SocIlpModel BuildConjunctiveSocModel(const QueryLog& log,
                                     const DynamicBitset& tuple, int m_eff,
                                     bool presolve) {
  SocIlpModel out;
  out.model.set_sense(lp::ObjectiveSense::kMaximize);

  // x variables. With presolve, attributes outside t (fixed to zero in the
  // paper's formulation) are omitted; without it they are kept with an
  // upper bound of zero.
  std::vector<int> attr_to_x(log.num_attributes(), -1);
  for (int attr = 0; attr < log.num_attributes(); ++attr) {
    const bool in_tuple = tuple.Test(attr);
    if (presolve && !in_tuple) continue;
    attr_to_x[attr] = out.model.AddVariable(
        StrFormat("x_%s", log.schema().name(attr).c_str()), 0.0,
        in_tuple ? 1.0 : 0.0, 0.0, /*is_integer=*/true);
    out.x_attributes.push_back(attr);
  }
  out.num_x = static_cast<int>(out.x_attributes.size());

  // Budget row: Σ x_j <= m_eff.
  const int budget = out.model.AddConstraint(
      "budget", lp::ConstraintSense::kLessEqual, m_eff);
  for (int j = 0; j < out.num_x; ++j) out.model.AddTerm(budget, j, 1.0);

  // y variables and linking rows. With presolve only satisfiable queries
  // (q ⊆ t) get a y; the rest have y forced to zero anyway.
  for (int i = 0; i < log.size(); ++i) {
    const DynamicBitset& q = log.query(i);
    if (presolve && !q.IsSubsetOf(tuple)) continue;
    const int y = out.model.AddBinaryVariable(StrFormat("y_%d", i), 1.0);
    out.y_queries.push_back(i);
    ++out.num_y;
    q.ForEachSetBit([&](int attr) {
      const int row = out.model.AddConstraint(
          StrFormat("link_%d_%d", i, attr), lp::ConstraintSense::kLessEqual,
          0.0);
      out.model.AddTerm(row, y, 1.0);
      out.model.AddTerm(row, attr_to_x[attr], -1.0);
    });
  }
  return out;
}

namespace {

// Maps an early-stop MIP status to the degradation reason, preferring the
// context's own verdict when it fired (so cancellation and tick budgets
// are not misreported as deadline expiry).
StopReason MipStopReason(lp::SolveStatus status, const SolveContext* context) {
  if (context != nullptr && context->stop_requested()) {
    return context->stop_reason();
  }
  return status == lp::SolveStatus::kDeadlineExceeded
             ? StopReason::kDeadline
             : StopReason::kResourceLimit;
}

}  // namespace

StatusOr<SocSolution> IlpSocSolver::SolveWithContext(
    const QueryLog& log, const DynamicBitset& tuple, int m,
    SolveContext* context) const {
  const int m_eff = internal::EffectiveBudget(log, tuple, m);
  SocIlpModel soc_model = [&] {
    const PhaseScope phase(context, "build_model");
    return BuildConjunctiveSocModel(log, tuple, m_eff, options_.presolve);
  }();

  lp::MipOptions mip_options = options_.mip;
  mip_options.context = context;
  if (options_.seed_with_greedy) {
    const PhaseScope phase(context, "greedy_seed");
    const GreedySolver greedy(GreedyKind::kConsumeAttrCumul);
    SOC_ASSIGN_OR_RETURN(SocSolution seed, greedy.Solve(log, tuple, m_eff));
    std::vector<double> x0(soc_model.model.num_variables(), 0.0);
    for (int j = 0; j < soc_model.num_x; ++j) {
      if (seed.selected.Test(soc_model.x_attributes[j])) x0[j] = 1.0;
    }
    for (int j = 0; j < soc_model.num_y; ++j) {
      if (log.query(soc_model.y_queries[j]).IsSubsetOf(seed.selected)) {
        x0[soc_model.num_x + j] = 1.0;
      }
    }
    mip_options.initial_solution = std::move(x0);
  }

  SOC_ASSIGN_OR_RETURN(lp::MipResult mip,
                       lp::SolveMip(soc_model.model, mip_options));
  if (!mip.has_solution && mip.status == lp::SolveStatus::kInfeasible) {
    // Cannot happen for this formulation (all-zeros is feasible); guard
    // against solver regressions anyway.
    return InternalError("SOC ILP reported infeasible");
  }

  DynamicBitset selected(log.num_attributes());
  if (mip.has_solution) {
    for (int j = 0; j < soc_model.num_x; ++j) {
      if (mip.x[j] > 0.5) selected.Set(soc_model.x_attributes[j]);
    }
  }
  // Without an incumbent (search stopped before any integral point and no
  // greedy seed), the frequency padding below still serves a valid
  // selection, degraded.
  internal::PadSelection(log, tuple, m_eff, &selected);
  SocSolution solution = internal::FinishSolution(
      log, std::move(selected),
      /*proved_optimal=*/mip.status == lp::SolveStatus::kOptimal);
  solution.metrics.emplace_back("nodes",
                                static_cast<double>(mip.nodes_explored));
  solution.metrics.emplace_back("lp_iterations",
                                static_cast<double>(mip.lp_iterations));
  solution.metrics.emplace_back("best_bound", mip.best_bound);
  if (mip.status != lp::SolveStatus::kOptimal) {
    internal::MarkDegraded(MipStopReason(mip.status, context), &solution);
  }
  return solution;
}

}  // namespace soc
