// Weighted SOC-CB-QL: real query logs repeat popular queries heavily, so
// the practical pipeline is collapse-duplicates → solve the weighted
// instance (objective = Σ weight over satisfied distinct queries). The
// optimum is identical to solving the raw log (weights = multiplicities),
// but the instance shrinks by the duplication factor.
//
// Provided: a weighted instance type built from a raw log, plus weighted
// counterparts of the brute-force, branch-and-bound and greedy solvers.
// (The ILP adapter handles weights by changing objective coefficients; the
// MFI solver would need weighted supports — use the unweighted solvers or
// the ones here.)

#ifndef SOC_CORE_WEIGHTED_H_
#define SOC_CORE_WEIGHTED_H_

#include <cstdint>

#include "boolean/log_stats.h"
#include "core/greedy.h"
#include "core/solver.h"

namespace soc {

struct WeightedSocInstance {
  QueryLog queries;           // Distinct queries.
  std::vector<int> weights;   // Multiplicity of each (>= 1).
  long long total_weight = 0;

  // Collapses `log` into a weighted instance.
  static WeightedSocInstance FromLog(const QueryLog& log);
};

// Σ weights over queries retrieved by `tuple`.
long long CountSatisfiedWeight(const WeightedSocInstance& instance,
                               const DynamicBitset& tuple);

struct WeightedSolution {
  DynamicBitset selected;
  long long satisfied_weight = 0;
  bool proved_optimal = false;
};

struct WeightedBruteForceOptions {
  std::uint64_t max_combinations = 50'000'000;
};

// Exact: candidate-pruned enumeration (weighted BruteForce-SOC-CB-QL).
StatusOr<WeightedSolution> SolveWeightedBruteForce(
    const WeightedSocInstance& instance, const DynamicBitset& tuple, int m,
    const WeightedBruteForceOptions& options = {});

// Exact: weighted variant of the combinatorial branch-and-bound.
struct WeightedBnbOptions {
  std::int64_t max_nodes = 100'000'000;
};
StatusOr<WeightedSolution> SolveWeightedBnb(
    const WeightedSocInstance& instance, const DynamicBitset& tuple, int m,
    const WeightedBnbOptions& options = {});

// Heuristics: weighted ConsumeAttr / ConsumeAttrCumul (frequencies and
// co-occurrence counts become weight sums).
StatusOr<WeightedSolution> SolveWeightedGreedy(
    const WeightedSocInstance& instance, const DynamicBitset& tuple, int m,
    GreedyKind kind);

}  // namespace soc

#endif  // SOC_CORE_WEIGHTED_H_
