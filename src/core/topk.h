// SOC-Topk (Sec II.B / Sec V): queries retrieve the k best matching tuples
// under a scoring function; maximize the number of log queries whose top-k
// result includes the compressed tuple t'.
//
// As in the paper, exact algorithms are available for *global* scoring
// functions — score(t) depends on the tuple only, not on the query.
// Supported scores must additionally be selection-independent given the
// budget: the compressed tuple's score may depend on how many attributes
// are kept (m_eff) but not on which ones. Both examples the paper gives
// have this property: "number of available features" (score = m_eff) and
// "order by a numeric attribute such as Price" (score = constant).
//
// Under such a score the problem *reduces* to SOC-CB-QL: query q can
// retrieve t' iff q ⊆ t' AND fewer than k database tuples matching q beat
// the new tuple's score. The beat-counts are selection-independent, so
// unwinnable queries are dropped up front and any SOC-CB-QL solver
// (including the exact ones) finishes the job. Ties are broken against the
// new tuple (pessimistically): an existing tuple with an equal score is
// assumed to be ranked above the newcomer.

#ifndef SOC_CORE_TOPK_H_
#define SOC_CORE_TOPK_H_

#include <vector>

#include "boolean/table.h"
#include "core/solver.h"

namespace soc {

// A global scoring function over Boolean tuples.
struct GlobalScoring {
  // Score of each existing database tuple.
  std::vector<double> database_scores;
  // Score of the compressed new tuple as a function of how many attributes
  // it retains.
  double (*new_tuple_score)(int m_eff) = nullptr;
};

// score(t) = number of set attributes ("ordered by decreasing number of
// available features", Sec V).
GlobalScoring MakeAttributeCountScoring(const BooleanTable& database);

// score(t) = a fixed external value per tuple (e.g. negated price so that
// cheaper ranks higher); `new_tuple_value` is the new tuple's value.
GlobalScoring MakeStaticScoring(std::vector<double> database_values,
                                double new_tuple_value);

// True iff query q retrieves t' in the top-k of database ∪ {t'} under the
// scoring (reference evaluator used by tests and benches).
bool TopkRetrieves(const BooleanTable& database, const GlobalScoring& scoring,
                   const DynamicBitset& q, const DynamicBitset& t_prime,
                   int k);

// Number of log queries whose top-k result includes t'.
int CountTopkSatisfied(const BooleanTable& database,
                       const GlobalScoring& scoring, const QueryLog& log,
                       const DynamicBitset& t_prime, int k);

// The reduction described above: keeps exactly the queries that the
// compressed tuple could still win, as a plain query log.
QueryLog ReduceTopkToConjunctive(const BooleanTable& database,
                                 const GlobalScoring& scoring,
                                 const QueryLog& log,
                                 const DynamicBitset& tuple, int m_eff,
                                 int k);

// Solves SOC-Topk by reduction + `base` (any SOC-CB-QL solver).
// `satisfied_queries` in the returned solution is the top-k objective.
StatusOr<SocSolution> SolveTopk(const SocSolver& base,
                                const BooleanTable& database,
                                const GlobalScoring& scoring,
                                const QueryLog& log,
                                const DynamicBitset& tuple, int m, int k);

}  // namespace soc

#endif  // SOC_CORE_TOPK_H_
