#include "core/topk.h"

#include <algorithm>

#include "common/logging.h"

namespace soc {

namespace {

double AttributeCountNewScore(int m_eff) { return m_eff; }

// MakeStaticScoring normalizes database scores so the new tuple's score is
// exactly zero, keeping GlobalScoring a plain function pointer (no state).
double StaticNewScoreZero(int) { return 0.0; }

}  // namespace

GlobalScoring MakeAttributeCountScoring(const BooleanTable& database) {
  GlobalScoring scoring;
  scoring.database_scores.reserve(database.num_rows());
  for (const DynamicBitset& row : database.rows()) {
    scoring.database_scores.push_back(static_cast<double>(row.Count()));
  }
  scoring.new_tuple_score = &AttributeCountNewScore;
  return scoring;
}

GlobalScoring MakeStaticScoring(std::vector<double> database_values,
                                double new_tuple_value) {
  GlobalScoring scoring;
  scoring.database_scores = std::move(database_values);
  scoring.new_tuple_score = &StaticNewScoreZero;
  // Shift all scores so the new tuple sits at zero; order is preserved and
  // the score stays independent of the selection.
  for (double& v : scoring.database_scores) v -= new_tuple_value;
  return scoring;
}

bool TopkRetrieves(const BooleanTable& database, const GlobalScoring& scoring,
                   const DynamicBitset& q, const DynamicBitset& t_prime,
                   int k) {
  SOC_CHECK_EQ(static_cast<int>(scoring.database_scores.size()),
               database.num_rows());
  if (!q.IsSubsetOf(t_prime)) return false;
  const double new_score =
      scoring.new_tuple_score(static_cast<int>(t_prime.Count()));
  int better = 0;
  for (int i = 0; i < database.num_rows(); ++i) {
    if (!q.IsSubsetOf(database.row(i))) continue;
    // Pessimistic tie-break: equal scores rank above the new tuple.
    if (scoring.database_scores[i] >= new_score) ++better;
    if (better >= k) return false;
  }
  return true;
}

int CountTopkSatisfied(const BooleanTable& database,
                       const GlobalScoring& scoring, const QueryLog& log,
                       const DynamicBitset& t_prime, int k) {
  int count = 0;
  for (const DynamicBitset& q : log.queries()) {
    if (TopkRetrieves(database, scoring, q, t_prime, k)) ++count;
  }
  return count;
}

QueryLog ReduceTopkToConjunctive(const BooleanTable& database,
                                 const GlobalScoring& scoring,
                                 const QueryLog& log,
                                 const DynamicBitset& tuple, int m_eff,
                                 int k) {
  SOC_CHECK_EQ(static_cast<int>(scoring.database_scores.size()),
               database.num_rows());
  SOC_CHECK_GT(k, 0);
  QueryLog reduced(log.schema());
  const double new_score = scoring.new_tuple_score(m_eff);
  for (const DynamicBitset& q : log.queries()) {
    if (!q.IsSubsetOf(tuple)) continue;  // Unwinnable regardless of ranking.
    int better = 0;
    for (int i = 0; i < database.num_rows(); ++i) {
      if (!q.IsSubsetOf(database.row(i))) continue;
      if (scoring.database_scores[i] >= new_score) ++better;
      if (better >= k) break;
    }
    if (better < k) reduced.AddQuery(q);
  }
  return reduced;
}

StatusOr<SocSolution> SolveTopk(const SocSolver& base,
                                const BooleanTable& database,
                                const GlobalScoring& scoring,
                                const QueryLog& log,
                                const DynamicBitset& tuple, int m, int k) {
  const int m_eff = internal::EffectiveBudget(log, tuple, m);
  const QueryLog reduced =
      ReduceTopkToConjunctive(database, scoring, log, tuple, m_eff, k);
  SOC_ASSIGN_OR_RETURN(SocSolution solution,
                       base.Solve(reduced, tuple, m_eff));
  // Replace the reduced-log objective with the true top-k objective; they
  // agree because the kept queries are retrieved iff q ⊆ t' and the dropped
  // ones are never retrieved by a size-m_eff compression.
  const int topk_satisfied =
      CountTopkSatisfied(database, scoring, log, solution.selected, k);
  SOC_CHECK_EQ(topk_satisfied, solution.satisfied_queries);
  solution.satisfied_queries = topk_satisfied;
  solution.metrics.emplace_back("reduced_queries",
                                static_cast<double>(reduced.size()));
  return solution;
}

}  // namespace soc
