#include "core/brute_force.h"

#include <algorithm>

#include "common/combinatorics.h"

namespace soc {

StatusOr<SocSolution> BruteForceSolver::SolveWithContext(
    const QueryLog& log, const DynamicBitset& tuple, int m,
    SolveContext* context) const {
  const int m_eff = internal::EffectiveBudget(log, tuple, m);
  const int num_attrs = log.num_attributes();
  const SatisfiableQueryView view(log, tuple);

  // Enumeration pool. Only queries with q ⊆ t and |q| <= m can ever be
  // satisfied by an m-attribute compression, so attributes outside their
  // union can never change the objective and are left to padding.
  std::vector<int> pool;
  if (options_.prune_candidates) {
    DynamicBitset useful(num_attrs);
    for (const DynamicBitset& q : view.queries()) {
      if (static_cast<int>(q.Count()) <= m_eff) useful |= q;
    }
    useful &= tuple;
    pool = useful.SetBits();
  } else {
    pool = tuple.SetBits();
  }

  const int k = std::min<int>(m_eff, static_cast<int>(pool.size()));
  const std::uint64_t combinations =
      BinomialSaturating(static_cast<int>(pool.size()), k);

  StopReason stop = StopReason::kNone;
  DynamicBitset best(num_attrs);
  int best_count = -1;
  std::uint64_t enumerated = 0;
  if (options_.max_combinations > 0 &&
      combinations > options_.max_combinations) {
    // Refusing the blowup no longer discards the request: the frequency
    // padding below serves the ConsumeAttr-style incumbent, degraded.
    stop = StopReason::kResourceLimit;
  } else {
    DynamicBitset candidate(num_attrs);
    ForEachCombination(pool, k, [&](const std::vector<int>& combo) {
      if (internal::ShouldStop(context)) {
        stop = context->stop_reason();
        return false;
      }
      ++enumerated;
      candidate.ResetAll();
      for (int attr : combo) candidate.Set(attr);
      const int count = view.CountSatisfied(candidate);
      if (count > best_count) {
        best_count = count;
        best = candidate;
      }
      return true;
    });
  }
  if (best_count < 0) best_count = 0;  // k == 0 or stopped before any combo.

  internal::PadSelection(log, tuple, m_eff, &best);
  SocSolution solution = internal::FinishSolution(
      log, std::move(best), /*proved_optimal=*/stop == StopReason::kNone);
  solution.metrics.emplace_back("combinations",
                                static_cast<double>(combinations));
  solution.metrics.emplace_back("enumerated", static_cast<double>(enumerated));
  solution.metrics.emplace_back("pool_size", static_cast<double>(pool.size()));
  if (stop != StopReason::kNone) internal::MarkDegraded(stop, &solution);
  return solution;
}

}  // namespace soc
