// Problem variants of Sec II.B / Sec V built on top of the SOC-CB-QL
// solvers:
//
//  * Per-attribute SOC-CB-QL: no budget is given; maximize
//    (satisfied queries) / |t'| by trying every m in 1..|t| (Sec V).
//  * SOC-CB-D: maximize the number of *database tuples dominated* by t';
//    solved by feeding the database rows to any SOC-CB-QL solver in place
//    of the query log (Sec II.B: "replacing the query log with the
//    database").
//  * Disjunctive retrieval: q retrieves t' iff q ∩ t' ≠ ∅; exact brute
//    force and ILP plus the classic weighted max-coverage greedy
//    (1 - 1/e guarantee).

#ifndef SOC_CORE_VARIANTS_H_
#define SOC_CORE_VARIANTS_H_

#include <cstdint>

#include "boolean/table.h"
#include "core/solver.h"
#include "lp/branch_and_bound.h"

namespace soc {

// ---------------------------------------------------------------------------
// Per-attribute variant.

struct PerAttributeSolution {
  SocSolution solution;
  int chosen_m = 0;        // |t'| of the best trade-off.
  double ratio = 0.0;      // satisfied / |t'|.
};

// Maximizes satisfied(t') / |t'| over m = 1..|t| with `base` as the
// per-budget solver. Ties prefer smaller m (cheaper ads).
StatusOr<PerAttributeSolution> SolvePerAttribute(const SocSolver& base,
                                                 const QueryLog& log,
                                                 const DynamicBitset& tuple);

// ---------------------------------------------------------------------------
// SOC-CB-D.

// Converts a database into the equivalent query log (each tuple becomes a
// conjunctive query; t' dominates the tuple iff the "query" retrieves t').
QueryLog DatabaseAsQueryLog(const BooleanTable& database);

// Maximizes the number of database tuples dominated by t' (|t'| = m).
StatusOr<SocSolution> SolveSocCbD(const SocSolver& base,
                                  const BooleanTable& database,
                                  const DynamicBitset& tuple, int m);

// ---------------------------------------------------------------------------
// Disjunctive retrieval.

struct DisjunctiveBruteForceOptions {
  std::uint64_t max_combinations = 50'000'000;
};

// Exact: enumerates m-subsets of t.
StatusOr<SocSolution> SolveDisjunctiveBruteForce(
    const QueryLog& log, const DynamicBitset& tuple, int m,
    const DisjunctiveBruteForceOptions& options = {});

// Greedy weighted max-coverage: repeatedly adds the attribute of t hitting
// the most still-uncovered queries. (1 - 1/e)-approximate.
StatusOr<SocSolution> SolveDisjunctiveGreedy(const QueryLog& log,
                                             const DynamicBitset& tuple,
                                             int m);

// Exact ILP:  max Σ y_i  s.t.  Σ x <= m,  y_i <= Σ_{j ∈ q_i} x_j.
StatusOr<SocSolution> SolveDisjunctiveIlp(const QueryLog& log,
                                          const DynamicBitset& tuple, int m,
                                          const lp::MipOptions& mip = {});

}  // namespace soc

#endif  // SOC_CORE_VARIANTS_H_
