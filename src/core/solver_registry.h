// Name-based solver construction ("ILP", "MaxFreqItemSets", ...), used by
// the command-line tools and handy for configuration-driven callers.

#ifndef SOC_CORE_SOLVER_REGISTRY_H_
#define SOC_CORE_SOLVER_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/solver.h"

namespace soc {

// The registered solver names, in presentation order:
// BruteForce, BranchAndBound, ILP, MaxFreqItemSets, MaxFreqItemSets-dfs,
// ConsumeAttr, ConsumeAttrCumul, ConsumeQueries, Fallback.
std::vector<std::string> RegisteredSolverNames();

// Creates a solver with default options by (case-sensitive) name; returns
// NotFound with the list of valid names otherwise.
StatusOr<std::unique_ptr<SocSolver>> CreateSolverByName(
    const std::string& name);

}  // namespace soc

#endif  // SOC_CORE_SOLVER_REGISTRY_H_
