// The SOC-CB-QL problem interface (Sec II.A):
//
//   Given a query log Q (conjunctive Boolean retrieval), a new tuple t and
//   a budget m, compute t' ⊆ t with |t'| = m maximizing the number of
//   queries q ∈ Q with q ⊆ t'.
//
// All solvers implement SocSolver. Exact solvers: BruteForceSolver
// (Sec IV.A), IlpSocSolver (Sec IV.B), MfiSocSolver (Sec IV.C). Heuristics:
// GreedySolver (Sec IV.D).
//
// Conventions shared by every solver:
//  * The effective budget is m_eff = min(m, |t|): a tuple with |t| set
//    attributes cannot retain more than |t|.
//  * Returned selections have exactly m_eff attributes; when fewer useful
//    attributes exist the selection is padded (deterministically, by
//    descending query-log frequency then index) with other attributes of t,
//    which never changes the objective.
//  * `satisfied_queries` is always recomputed with the reference evaluator,
//    so a buggy solver cannot over-report itself.
//  * Anytime behavior: every solver accepts an optional SolveContext
//    (wall-clock deadline, cooperative cancellation, deterministic tick
//    budget — common/solve_context.h). When the context stops the solve,
//    the solver returns a *partial* SocSolution carrying its best incumbent
//    with proved_optimal == false and a "degraded" marker in `metrics`
//    (see IsDegraded / SolutionStopReason) instead of an error Status.
//    Solver-local structural guards (max_combinations, node caps) degrade
//    the same way with StopReason::kResourceLimit.

#ifndef SOC_CORE_SOLVER_H_
#define SOC_CORE_SOLVER_H_

#include <string>
#include <utility>
#include <vector>

#include "boolean/evaluator.h"
#include "boolean/query_log.h"
#include "common/bitset.h"
#include "common/solve_context.h"
#include "common/status.h"

namespace soc {

struct SocSolution {
  DynamicBitset selected;      // t': exactly min(m, |t|) attributes, ⊆ t.
  int satisfied_queries = 0;   // Number of log queries with q ⊆ t'.
  bool proved_optimal = false;  // True iff the solver certifies optimality.
  // Solver-specific counters (nodes, walks, thresholds, ...) for benches.
  std::vector<std::pair<std::string, double>> metrics;
};

// True iff `solution` carries the degradation marker stamped by
// internal::MarkDegraded (i.e. the solver stopped early and surrendered a
// partial incumbent).
bool IsDegraded(const SocSolution& solution);

// The StopReason recorded in a degraded solution's metrics, or kNone for
// clean solutions.
StopReason SolutionStopReason(const SocSolution& solution);

class SocSolver {
 public:
  virtual ~SocSolver() = default;

  // Solves SOC-CB-QL for (log, t, m). `t` must have the log's width and
  // m must be >= 0. `context` is optional and non-owning (it must outlive
  // the call); nullptr solves without deadline, cancellation or budget.
  virtual StatusOr<SocSolution> SolveWithContext(
      const QueryLog& log, const DynamicBitset& tuple, int m,
      SolveContext* context) const = 0;

  // Convenience: solve with an unlimited context.
  StatusOr<SocSolution> Solve(const QueryLog& log, const DynamicBitset& tuple,
                              int m) const {
    return SolveWithContext(log, tuple, m, /*context=*/nullptr);
  }

  // Solver name as used in the paper's figures (e.g. "ILP",
  // "MaxFreqItemSets", "ConsumeAttr").
  virtual std::string name() const = 0;
};

namespace internal {

// min(m, |t|); checks argument sanity.
int EffectiveBudget(const QueryLog& log, const DynamicBitset& tuple, int m);

// Pads `selected` (⊆ tuple) up to `target_size` attributes with further
// attributes of `tuple`, chosen by descending query-log frequency then
// ascending index. Callers guarantee target_size <= |tuple|.
void PadSelection(const QueryLog& log, const DynamicBitset& tuple,
                  int target_size, DynamicBitset* selected);

// Builds a SocSolution from a selection: recomputes the objective with the
// reference evaluator and attaches the optimality flag.
SocSolution FinishSolution(const QueryLog& log, DynamicBitset selected,
                           bool proved_optimal);

// Stamps the partial-result contract onto `solution`: clears
// proved_optimal and appends ("degraded", 1.0) and ("stop_reason",
// static_cast<double>(reason)) to its metrics. `reason` must not be kNone.
void MarkDegraded(StopReason reason, SocSolution* solution);

// Checkpoint helper for the nullable context convention: ticks and returns
// true iff `context` is set and requests a stop.
inline bool ShouldStop(SolveContext* context) {
  return context != nullptr && context->Checkpoint();
}

}  // namespace internal
}  // namespace soc

#endif  // SOC_CORE_SOLVER_H_
