// The SOC-CB-QL problem interface (Sec II.A):
//
//   Given a query log Q (conjunctive Boolean retrieval), a new tuple t and
//   a budget m, compute t' ⊆ t with |t'| = m maximizing the number of
//   queries q ∈ Q with q ⊆ t'.
//
// All solvers implement SocSolver. Exact solvers: BruteForceSolver
// (Sec IV.A), IlpSocSolver (Sec IV.B), MfiSocSolver (Sec IV.C). Heuristics:
// GreedySolver (Sec IV.D).
//
// Conventions shared by every solver:
//  * The effective budget is m_eff = min(m, |t|): a tuple with |t| set
//    attributes cannot retain more than |t|.
//  * Returned selections have exactly m_eff attributes; when fewer useful
//    attributes exist the selection is padded (deterministically, by
//    descending query-log frequency then index) with other attributes of t,
//    which never changes the objective.
//  * `satisfied_queries` is always recomputed with the reference evaluator,
//    so a buggy solver cannot over-report itself.

#ifndef SOC_CORE_SOLVER_H_
#define SOC_CORE_SOLVER_H_

#include <string>
#include <utility>
#include <vector>

#include "boolean/evaluator.h"
#include "boolean/query_log.h"
#include "common/bitset.h"
#include "common/status.h"

namespace soc {

struct SocSolution {
  DynamicBitset selected;      // t': exactly min(m, |t|) attributes, ⊆ t.
  int satisfied_queries = 0;   // Number of log queries with q ⊆ t'.
  bool proved_optimal = false;  // True iff the solver certifies optimality.
  // Solver-specific counters (nodes, walks, thresholds, ...) for benches.
  std::vector<std::pair<std::string, double>> metrics;
};

class SocSolver {
 public:
  virtual ~SocSolver() = default;

  // Solves SOC-CB-QL for (log, t, m). `t` must have the log's width and
  // m must be >= 0.
  virtual StatusOr<SocSolution> Solve(const QueryLog& log,
                                      const DynamicBitset& tuple,
                                      int m) const = 0;

  // Solver name as used in the paper's figures (e.g. "ILP",
  // "MaxFreqItemSets", "ConsumeAttr").
  virtual std::string name() const = 0;
};

namespace internal {

// min(m, |t|); checks argument sanity.
int EffectiveBudget(const QueryLog& log, const DynamicBitset& tuple, int m);

// Pads `selected` (⊆ tuple) up to `target_size` attributes with further
// attributes of `tuple`, chosen by descending query-log frequency then
// ascending index. Callers guarantee target_size <= |tuple|.
void PadSelection(const QueryLog& log, const DynamicBitset& tuple,
                  int target_size, DynamicBitset* selected);

// Builds a SocSolution from a selection: recomputes the objective with the
// reference evaluator and attaches the optimality flag.
SocSolution FinishSolution(const QueryLog& log, DynamicBitset selected,
                           bool proved_optimal);

}  // namespace internal
}  // namespace soc

#endif  // SOC_CORE_SOLVER_H_
