// A combinatorial branch-and-bound for SOC-CB-QL (beyond-paper exact
// algorithm; no LP machinery involved).
//
// Search space: include/exclude decisions over the candidate attributes
// (attributes of t occurring in satisfiable, within-budget queries),
// ordered by descending query-log frequency so strong incumbents appear
// early. At each node with chosen set S and rejected set R the bound is
//
//   satisfied(S) + |{ q : q ∩ R = ∅, |q \ S| <= m - |S| }|
//
// — every query not yet satisfied must avoid rejected attributes and fit
// in the remaining budget to ever be counted. The search starts from the
// ConsumeAttrCumul incumbent. Exact, and in practice far faster than the
// plain brute force on structured workloads (bench/ablation_exact).

#ifndef SOC_CORE_BNB_SOLVER_H_
#define SOC_CORE_BNB_SOLVER_H_

#include <cstdint>

#include "core/solver.h"

namespace soc {

struct BnbSocOptions {
  // Stop past this many search nodes and surrender the incumbent
  // (StopReason::kResourceLimit, partial-result contract of
  // core/solver.h); <= 0 means unlimited.
  std::int64_t max_nodes = 100'000'000;
};

class BnbSocSolver : public SocSolver {
 public:
  explicit BnbSocSolver(BnbSocOptions options = {}) : options_(options) {}

  StatusOr<SocSolution> SolveWithContext(const QueryLog& log,
                                         const DynamicBitset& tuple, int m,
                                         SolveContext* context) const override;

  std::string name() const override { return "BranchAndBound"; }

 private:
  BnbSocOptions options_;
};

}  // namespace soc

#endif  // SOC_CORE_BNB_SOLVER_H_
