#include "core/fallback_solver.h"

#include <utility>

#include "core/bnb_solver.h"
#include "core/greedy.h"

namespace soc {

namespace {

// Statuses the greedy tier can recover from; anything else (bad input,
// internal invariant failures) propagates to the caller.
bool IsRecoverable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kNotFound:
      return true;
    default:
      return false;
  }
}

}  // namespace

FallbackSolver::FallbackSolver(std::unique_ptr<SocSolver> exact)
    : exact_(exact != nullptr ? std::move(exact)
                              : std::make_unique<BnbSocSolver>()) {}

StatusOr<SocSolution> FallbackSolver::SolveWithContext(
    const QueryLog& log, const DynamicBitset& tuple, int m,
    SolveContext* context) const {
  StatusOr<SocSolution> exact = [&] {
    const PhaseScope phase(context, "fallback_exact");
    return exact_->SolveWithContext(log, tuple, m, context);
  }();
  if (exact.ok() && !IsDegraded(exact.value())) {
    exact.value().metrics.emplace_back("fallback_tier", 0.0);
    return exact;
  }
  if (!exact.ok() && !IsRecoverable(exact.status())) return exact.status();

  // The exact tier stopped early or bailed: the greedy tier runs to
  // completion regardless of the context so the caller always gets a valid
  // selection.
  const PhaseScope rescue_phase(context, "fallback_rescue");
  const GreedySolver greedy(GreedyKind::kConsumeAttrCumul);
  SOC_ASSIGN_OR_RETURN(SocSolution rescue, greedy.Solve(log, tuple, m));

  if (exact.ok() &&
      exact.value().satisfied_queries >= rescue.satisfied_queries) {
    exact.value().metrics.emplace_back("fallback_tier", 0.0);
    return exact;
  }
  StopReason reason;
  if (exact.ok()) {
    reason = SolutionStopReason(exact.value());
  } else if (exact.status().code() == StatusCode::kDeadlineExceeded) {
    reason = StopReason::kDeadline;
  } else {
    reason = StopReason::kResourceLimit;
  }
  rescue.metrics.emplace_back("fallback_tier", 1.0);
  internal::MarkDegraded(reason, &rescue);
  return rescue;
}

}  // namespace soc
