#include "core/variants.h"

#include <algorithm>

#include "common/combinatorics.h"
#include "common/string_util.h"

namespace soc {

StatusOr<PerAttributeSolution> SolvePerAttribute(const SocSolver& base,
                                                 const QueryLog& log,
                                                 const DynamicBitset& tuple) {
  const int max_m = static_cast<int>(tuple.Count());
  if (max_m == 0) {
    return InvalidArgumentError(
        "per-attribute variant needs a tuple with at least one attribute");
  }
  PerAttributeSolution best;
  best.ratio = -1.0;
  for (int m = 1; m <= max_m; ++m) {
    SOC_ASSIGN_OR_RETURN(SocSolution candidate, base.Solve(log, tuple, m));
    const double ratio =
        static_cast<double>(candidate.satisfied_queries) / m;
    if (ratio > best.ratio + 1e-12) {
      best.ratio = ratio;
      best.chosen_m = m;
      best.solution = std::move(candidate);
    }
  }
  return best;
}

QueryLog DatabaseAsQueryLog(const BooleanTable& database) {
  QueryLog log(database.schema());
  for (const DynamicBitset& row : database.rows()) {
    log.AddQuery(row);
  }
  return log;
}

StatusOr<SocSolution> SolveSocCbD(const SocSolver& base,
                                  const BooleanTable& database,
                                  const DynamicBitset& tuple, int m) {
  const QueryLog log = DatabaseAsQueryLog(database);
  SOC_ASSIGN_OR_RETURN(SocSolution solution, base.Solve(log, tuple, m));
  // The objective is identical by construction; double-check the adapter.
  SOC_CHECK_EQ(solution.satisfied_queries,
               database.CountDominatedBy(solution.selected));
  return solution;
}

namespace {

// Pads and evaluates a disjunctive selection.
SocSolution FinishDisjunctive(const QueryLog& log, const DynamicBitset& tuple,
                              int m_eff, DynamicBitset selected,
                              bool proved_optimal) {
  internal::PadSelection(log, tuple, m_eff, &selected);
  SocSolution solution;
  solution.satisfied_queries = CountSatisfiedQueries(
      log, selected, RetrievalSemantics::kDisjunctive);
  solution.selected = std::move(selected);
  solution.proved_optimal = proved_optimal;
  return solution;
}

}  // namespace

StatusOr<SocSolution> SolveDisjunctiveBruteForce(
    const QueryLog& log, const DynamicBitset& tuple, int m,
    const DisjunctiveBruteForceOptions& options) {
  const int m_eff = internal::EffectiveBudget(log, tuple, m);
  // Only attributes of t that appear in some query can contribute.
  DynamicBitset useful(log.num_attributes());
  for (const DynamicBitset& q : log.queries()) useful |= q;
  useful &= tuple;
  const std::vector<int> pool = useful.SetBits();

  const int k = std::min<int>(m_eff, static_cast<int>(pool.size()));
  const std::uint64_t combos =
      BinomialSaturating(static_cast<int>(pool.size()), k);
  if (options.max_combinations > 0 && combos > options.max_combinations) {
    return ResourceExhaustedError("disjunctive brute force too large");
  }

  DynamicBitset best(log.num_attributes());
  int best_count = -1;
  DynamicBitset candidate(log.num_attributes());
  ForEachCombination(pool, k, [&](const std::vector<int>& combo) {
    candidate.ResetAll();
    for (int attr : combo) candidate.Set(attr);
    const int count = CountSatisfiedQueries(log, candidate,
                                            RetrievalSemantics::kDisjunctive);
    if (count > best_count) {
      best_count = count;
      best = candidate;
    }
    return true;
  });
  return FinishDisjunctive(log, tuple, m_eff, std::move(best),
                           /*proved_optimal=*/true);
}

StatusOr<SocSolution> SolveDisjunctiveGreedy(const QueryLog& log,
                                             const DynamicBitset& tuple,
                                             int m) {
  const int m_eff = internal::EffectiveBudget(log, tuple, m);
  DynamicBitset selected(log.num_attributes());
  DynamicBitset covered(log.size());
  const std::vector<int> attrs = tuple.SetBits();

  for (int step = 0; step < m_eff; ++step) {
    int best_attr = -1;
    int best_gain = 0;
    for (int attr : attrs) {
      if (selected.Test(attr)) continue;
      int gain = 0;
      for (int i = 0; i < log.size(); ++i) {
        if (!covered.Test(i) && log.query(i).Test(attr)) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_attr = attr;
      }
    }
    if (best_attr < 0) break;  // No attribute covers anything new.
    selected.Set(best_attr);
    for (int i = 0; i < log.size(); ++i) {
      if (log.query(i).Test(best_attr)) covered.Set(i);
    }
  }
  return FinishDisjunctive(log, tuple, m_eff, std::move(selected),
                           /*proved_optimal=*/false);
}

StatusOr<SocSolution> SolveDisjunctiveIlp(const QueryLog& log,
                                          const DynamicBitset& tuple, int m,
                                          const lp::MipOptions& mip) {
  const int m_eff = internal::EffectiveBudget(log, tuple, m);
  lp::LinearModel model(lp::ObjectiveSense::kMaximize);

  std::vector<int> attr_to_x(log.num_attributes(), -1);
  std::vector<int> x_attrs;
  tuple.ForEachSetBit([&](int attr) {
    attr_to_x[attr] = model.AddBinaryVariable(StrFormat("x_%d", attr), 0.0);
    x_attrs.push_back(attr);
  });
  const int budget =
      model.AddConstraint("budget", lp::ConstraintSense::kLessEqual, m_eff);
  for (std::size_t j = 0; j < x_attrs.size(); ++j) {
    model.AddTerm(budget, static_cast<int>(j), 1.0);
  }
  for (int i = 0; i < log.size(); ++i) {
    // Skip queries t cannot touch at all: y would be forced to 0.
    if (!log.query(i).Intersects(tuple)) continue;
    const int y = model.AddBinaryVariable(StrFormat("y_%d", i), 1.0);
    const int row = model.AddConstraint(StrFormat("cover_%d", i),
                                        lp::ConstraintSense::kLessEqual, 0.0);
    model.AddTerm(row, y, 1.0);
    log.query(i).ForEachSetBit([&](int attr) {
      if (attr_to_x[attr] >= 0) model.AddTerm(row, attr_to_x[attr], -1.0);
    });
  }

  SOC_ASSIGN_OR_RETURN(lp::MipResult result, lp::SolveMip(model, mip));
  if (!result.has_solution) {
    return DeadlineExceededError("disjunctive ILP stopped early");
  }
  DynamicBitset selected(log.num_attributes());
  for (std::size_t j = 0; j < x_attrs.size(); ++j) {
    if (result.x[j] > 0.5) selected.Set(x_attrs[j]);
  }
  return FinishDisjunctive(
      log, tuple, m_eff, std::move(selected),
      /*proved_optimal=*/result.status == lp::SolveStatus::kOptimal);
}

}  // namespace soc
