// Two-tier solver portfolio with graceful degradation.
//
// The exact tier (BranchAndBound by default, any SocSolver injectable) runs
// under the caller's SolveContext. If it finishes cleanly its answer is
// returned as-is. If it stops early — deadline, cancellation, tick budget,
// or a solver-local resource cap — or fails with a recoverable status
// (ResourceExhausted, DeadlineExceeded, NotFound), the greedy tier
// (ConsumeAttrCumul, run without a context so it always completes) provides
// a guaranteed answer, and the better of the two incumbents by satisfied
// queries is returned.
//
// The returned solution carries a "fallback_tier" metric: 0 = the exact
// tier's answer was used, 1 = the greedy tier's. Degraded runs keep the
// usual ("degraded", "stop_reason") markers from core/solver.h, so callers
// can tell a proven optimum from a deadline-shaped best effort.

#ifndef SOC_CORE_FALLBACK_SOLVER_H_
#define SOC_CORE_FALLBACK_SOLVER_H_

#include <memory>
#include <string>

#include "core/solver.h"

namespace soc {

class FallbackSolver : public SocSolver {
 public:
  // `exact` is the first tier; nullptr selects BranchAndBound.
  explicit FallbackSolver(std::unique_ptr<SocSolver> exact = nullptr);

  StatusOr<SocSolution> SolveWithContext(const QueryLog& log,
                                         const DynamicBitset& tuple, int m,
                                         SolveContext* context) const override;

  std::string name() const override { return "Fallback"; }

 private:
  std::unique_ptr<SocSolver> exact_;
};

}  // namespace soc

#endif  // SOC_CORE_FALLBACK_SOLVER_H_
