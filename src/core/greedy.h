// The three greedy heuristics of Sec IV.D.
//
// ConsumeAttr: rank the attributes of t by how often each appears in the
// query log; keep the top m.
//
// ConsumeAttrCumul: pick the attribute with the highest individual
// frequency; then repeatedly pick the attribute co-occurring most often
// with *all* attributes picked so far (i.e. maximizing the number of
// queries containing the whole selection-plus-candidate). When no query
// contains the current selection plus any candidate, falls back to
// individual frequency (the paper leaves this case unspecified).
//
// ConsumeQueries: repeatedly pick the satisfiable query (q ⊆ t) that
// introduces the fewest new attributes, and take all of its attributes;
// queries that would overflow the budget are skipped; leftover budget is
// filled by descending attribute frequency (documented interpretation of
// "until m attributes have been selected").

#ifndef SOC_CORE_GREEDY_H_
#define SOC_CORE_GREEDY_H_

#include "core/solver.h"

namespace soc {

enum class GreedyKind {
  kConsumeAttr,
  kConsumeAttrCumul,
  kConsumeQueries,
};

const char* GreedyKindToString(GreedyKind kind);

class GreedySolver : public SocSolver {
 public:
  explicit GreedySolver(GreedyKind kind) : kind_(kind) {}

  StatusOr<SocSolution> SolveWithContext(const QueryLog& log,
                                         const DynamicBitset& tuple, int m,
                                         SolveContext* context) const override;

  std::string name() const override { return GreedyKindToString(kind_); }
  GreedyKind kind() const { return kind_; }

 private:
  GreedyKind kind_;
};

}  // namespace soc

#endif  // SOC_CORE_GREEDY_H_
