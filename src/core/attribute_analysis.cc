#include "core/attribute_analysis.h"

#include <algorithm>

namespace soc {

namespace {

// Forcing attribute `a` into the ad reduces to plain SOC-CB-QL: clear bit
// a from every query (queries that required it now require the rest) and
// solve with tuple t \ {a} and budget m-1. For any selection S containing
// a, q ⊆ S iff (q \ {a}) ⊆ (S \ {a}), so objectives coincide.
StatusOr<int> ForcedInValue(const SocSolver& base, const QueryLog& log,
                            const DynamicBitset& tuple, int m, int attr) {
  QueryLog transformed(log.schema());
  for (const DynamicBitset& q : log.queries()) {
    DynamicBitset reduced = q;
    if (reduced.Test(attr)) reduced.Reset(attr);
    transformed.AddQuery(std::move(reduced));
  }
  DynamicBitset without = tuple;
  without.Reset(attr);
  SOC_ASSIGN_OR_RETURN(SocSolution solution,
                       base.Solve(transformed, without, m - 1));
  return solution.satisfied_queries;
}

// Forbidding `a` is simply SOC-CB-QL over t \ {a}.
StatusOr<int> ForcedOutValue(const SocSolver& base, const QueryLog& log,
                             const DynamicBitset& tuple, int m, int attr) {
  DynamicBitset without = tuple;
  without.Reset(attr);
  SOC_ASSIGN_OR_RETURN(SocSolution solution, base.Solve(log, without, m));
  return solution.satisfied_queries;
}

}  // namespace

StatusOr<std::vector<AttributeValue>> AnalyzeAttributeValues(
    const SocSolver& base, const QueryLog& log, const DynamicBitset& tuple,
    int m) {
  if (m < 1) {
    return InvalidArgumentError("attribute analysis needs a budget >= 1");
  }
  std::vector<AttributeValue> values;
  Status failure = Status::OK();
  tuple.ForEachSetBit([&](int attr) {
    if (!failure.ok()) return;
    AttributeValue value;
    value.attribute = attr;
    auto forced_in = ForcedInValue(base, log, tuple, m, attr);
    if (!forced_in.ok()) {
      failure = forced_in.status();
      return;
    }
    auto forced_out = ForcedOutValue(base, log, tuple, m, attr);
    if (!forced_out.ok()) {
      failure = forced_out.status();
      return;
    }
    value.forced_in = *forced_in;
    value.forced_out = *forced_out;
    value.marginal = value.forced_in - value.forced_out;
    values.push_back(value);
  });
  SOC_RETURN_IF_ERROR(failure);
  std::sort(values.begin(), values.end(),
            [](const AttributeValue& a, const AttributeValue& b) {
              if (a.marginal != b.marginal) return a.marginal > b.marginal;
              return a.attribute < b.attribute;
            });
  return values;
}

}  // namespace soc
