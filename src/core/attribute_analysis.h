// Attribute-value analysis: what is each feature of the new tuple worth?
//
// The paper motivates this view ("a homebuilder can find out that adding a
// swimming pool really increases visibility", Sec I). For each attribute
// of t this module reports, at a given budget m:
//
//   * forced-in value: the best objective achievable when the attribute
//     MUST be advertised;
//   * forced-out value: the best objective when it must NOT be;
//   * marginal value = forced-in − forced-out. Positive marginal value
//     means the attribute belongs in the optimal ad; the magnitude ranks
//     features by how much visibility they buy.
//
// Implemented exactly via the base solver on modified instances: forcing
// in attribute a = solving with budget m−1 over the log restricted to
// queries compatible with a... both directions actually reduce cleanly to
// plain SOC-CB-QL on a transformed instance (see the .cc), so any exact
// solver yields exact values.

#ifndef SOC_CORE_ATTRIBUTE_ANALYSIS_H_
#define SOC_CORE_ATTRIBUTE_ANALYSIS_H_

#include <vector>

#include "core/solver.h"

namespace soc {

struct AttributeValue {
  int attribute = 0;
  int forced_in = 0;    // Optimum with the attribute required.
  int forced_out = 0;   // Optimum with the attribute forbidden.
  int marginal = 0;     // forced_in - forced_out.
};

// Values every attribute of `tuple` at budget m, using `base` to solve the
// transformed instances (an exact base yields exact values). Results are
// sorted by descending marginal value (ties: ascending attribute id).
StatusOr<std::vector<AttributeValue>> AnalyzeAttributeValues(
    const SocSolver& base, const QueryLog& log, const DynamicBitset& tuple,
    int m);

}  // namespace soc

#endif  // SOC_CORE_ATTRIBUTE_ANALYSIS_H_
