// SOC-Topk with *query-dependent* scoring functions (Sec V): when
// score(q, t) depends on the query, the global-scoring reduction of
// core/topk.h no longer applies and, per the paper, the problem "can be
// formulated as a non-linear integer program" — so the practical route is
// extending the Sec IV.D greedies. This module provides the general
// top-k evaluator, an exhaustive reference solver, and a marginal-gain
// greedy with a frequency fallback on zero-gain plateaus.

#ifndef SOC_CORE_TOPK_GENERAL_H_
#define SOC_CORE_TOPK_GENERAL_H_

#include <cstdint>
#include <functional>

#include "boolean/table.h"
#include "core/solver.h"

namespace soc {

// A (possibly query-dependent) scoring function over tuples. Must be
// evaluable for both database tuples and compressed candidates.
using QueryScoreFn =
    std::function<double(const DynamicBitset& query, const DynamicBitset& t)>;

// Example scoring functions.
//
// Specificity: among tuples matching q, shorter (more specific) listings
// rank first — score = |q| / (1 + |t|). Selection-dependent: retaining
// fewer attributes *raises* the new tuple's rank, a trade-off none of the
// exact reductions capture.
QueryScoreFn MakeSpecificityScore();

// Query overlap weighted by a per-attribute weight vector:
// score = Σ_{a ∈ q ∩ t} weights[a].
QueryScoreFn MakeWeightedOverlapScore(std::vector<double> weights);

// True iff q ⊆ t' and fewer than k database tuples matching q score
// >= score(q, t') (pessimistic ties, as in core/topk.h).
bool TopkRetrievesGeneral(const BooleanTable& database,
                          const QueryScoreFn& score, const DynamicBitset& q,
                          const DynamicBitset& t_prime, int k);

// Number of log queries whose top-k includes t'.
int CountTopkSatisfiedGeneral(const BooleanTable& database,
                              const QueryScoreFn& score, const QueryLog& log,
                              const DynamicBitset& t_prime, int k);

struct TopkGeneralBruteForceOptions {
  std::uint64_t max_combinations = 2'000'000;
};

// Exhaustive reference: tries every m-subset of t (exponential; tests and
// small instances only).
StatusOr<SocSolution> SolveTopkGeneralBruteForce(
    const BooleanTable& database, const QueryScoreFn& score,
    const QueryLog& log, const DynamicBitset& tuple, int m, int k,
    const TopkGeneralBruteForceOptions& options = {});

// Marginal-gain greedy: grows t' one attribute at a time, maximizing the
// top-k objective; on all-zero gains falls back to query-log frequency
// (like ConsumeAttr). `satisfied_queries` holds the top-k objective.
StatusOr<SocSolution> SolveTopkGeneralGreedy(const BooleanTable& database,
                                             const QueryScoreFn& score,
                                             const QueryLog& log,
                                             const DynamicBitset& tuple,
                                             int m, int k);

}  // namespace soc

#endif  // SOC_CORE_TOPK_GENERAL_H_
