#include "core/solver.h"

#include <algorithm>

#include "common/logging.h"

namespace soc {

bool IsDegraded(const SocSolution& solution) {
  return SolutionStopReason(solution) != StopReason::kNone;
}

StopReason SolutionStopReason(const SocSolution& solution) {
  for (const auto& [key, value] : solution.metrics) {
    if (key == "stop_reason") return static_cast<StopReason>(value);
  }
  return StopReason::kNone;
}

}  // namespace soc

namespace soc::internal {

int EffectiveBudget(const QueryLog& log, const DynamicBitset& tuple, int m) {
  SOC_CHECK_EQ(static_cast<int>(tuple.size()), log.num_attributes());
  SOC_CHECK_GE(m, 0);
  return std::min<int>(m, static_cast<int>(tuple.Count()));
}

void PadSelection(const QueryLog& log, const DynamicBitset& tuple,
                  int target_size, DynamicBitset* selected) {
  SOC_CHECK(selected->IsSubsetOf(tuple));
  int have = static_cast<int>(selected->Count());
  if (have >= target_size) return;

  const std::vector<int> freq = log.AttributeFrequencies();
  std::vector<int> spare;
  tuple.ForEachSetBit([&](int attr) {
    if (!selected->Test(attr)) spare.push_back(attr);
  });
  std::sort(spare.begin(), spare.end(), [&freq](int a, int b) {
    if (freq[a] != freq[b]) return freq[a] > freq[b];
    return a < b;
  });
  for (int attr : spare) {
    if (have >= target_size) break;
    selected->Set(attr);
    ++have;
  }
  SOC_CHECK_EQ(have, target_size);
}

SocSolution FinishSolution(const QueryLog& log, DynamicBitset selected,
                           bool proved_optimal) {
  SocSolution solution;
  solution.satisfied_queries = CountSatisfiedQueries(log, selected);
  solution.selected = std::move(selected);
  solution.proved_optimal = proved_optimal;
  return solution;
}

void MarkDegraded(StopReason reason, SocSolution* solution) {
  SOC_CHECK(reason != StopReason::kNone);
  solution->proved_optimal = false;
  solution->metrics.emplace_back("degraded", 1.0);
  solution->metrics.emplace_back("stop_reason", static_cast<double>(reason));
}

}  // namespace soc::internal
