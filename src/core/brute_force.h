// BruteForce-SOC-CB-QL (Sec IV.A): exhaustively tries m-subsets of the new
// tuple's attributes.
//
// Two modes: `naive` enumerates subsets of all attributes of t exactly as
// the paper describes; the default mode first prunes to *candidate*
// attributes (attributes of t that occur in at least one satisfiable
// query), which preserves optimality — attributes outside every
// satisfiable query can never change the objective — and typically shrinks
// the search space by orders of magnitude (bench/ablation_bruteforce
// quantifies this).

#ifndef SOC_CORE_BRUTE_FORCE_H_
#define SOC_CORE_BRUTE_FORCE_H_

#include <cstdint>

#include "core/solver.h"

namespace soc {

struct BruteForceOptions {
  // Restrict enumeration to candidate attributes (see above).
  bool prune_candidates = true;
  // Refuse instances with more combinations than this: instead of
  // enumerating, the solver degrades to the frequency-padded incumbent
  // (StopReason::kResourceLimit, partial-result contract of
  // core/solver.h). <= 0 means unlimited.
  std::uint64_t max_combinations = 50'000'000;
};

class BruteForceSolver : public SocSolver {
 public:
  explicit BruteForceSolver(BruteForceOptions options = {})
      : options_(options) {}

  StatusOr<SocSolution> SolveWithContext(const QueryLog& log,
                                         const DynamicBitset& tuple, int m,
                                         SolveContext* context) const override;

  std::string name() const override { return "BruteForce"; }

 private:
  BruteForceOptions options_;
};

}  // namespace soc

#endif  // SOC_CORE_BRUTE_FORCE_H_
