#include "core/weighted.h"

#include <algorithm>
#include <limits>

#include "common/combinatorics.h"
#include "kernels/kernels.h"

namespace soc {

namespace {

// Weighted per-attribute frequencies: Σ weight over queries containing a.
std::vector<long long> WeightedAttributeFrequencies(
    const WeightedSocInstance& instance) {
  std::vector<long long> freq(instance.queries.num_attributes(), 0);
  for (int i = 0; i < instance.queries.size(); ++i) {
    const long long w = instance.weights[i];
    instance.queries.query(i).ForEachSetBit(
        [&freq, w](int attr) { freq[attr] += w; });
  }
  return freq;
}

// Pads selection to m_eff attributes of tuple by descending weighted
// frequency.
void PadWeighted(const WeightedSocInstance& instance,
                 const DynamicBitset& tuple, int m_eff,
                 DynamicBitset* selected) {
  int have = static_cast<int>(selected->Count());
  if (have >= m_eff) return;
  const std::vector<long long> freq = WeightedAttributeFrequencies(instance);
  std::vector<int> spare;
  tuple.ForEachSetBit([&](int attr) {
    if (!selected->Test(attr)) spare.push_back(attr);
  });
  std::sort(spare.begin(), spare.end(), [&freq](int a, int b) {
    if (freq[a] != freq[b]) return freq[a] > freq[b];
    return a < b;
  });
  for (int attr : spare) {
    if (have >= m_eff) break;
    selected->Set(attr);
    ++have;
  }
}

WeightedSolution Finish(const WeightedSocInstance& instance,
                        const DynamicBitset& tuple, int m_eff,
                        DynamicBitset selected, bool proved) {
  PadWeighted(instance, tuple, m_eff, &selected);
  WeightedSolution solution;
  solution.satisfied_weight = CountSatisfiedWeight(instance, selected);
  solution.selected = std::move(selected);
  solution.proved_optimal = proved;
  return solution;
}

}  // namespace

WeightedSocInstance WeightedSocInstance::FromLog(const QueryLog& log) {
  WeightedSocInstance instance;
  instance.queries = CollapseDuplicateQueries(log, &instance.weights);
  instance.total_weight = log.size();
  return instance;
}

long long CountSatisfiedWeight(const WeightedSocInstance& instance,
                               const DynamicBitset& tuple) {
  return CountSatisfiedWeighted(instance.queries, instance.weights, tuple);
}

StatusOr<WeightedSolution> SolveWeightedBruteForce(
    const WeightedSocInstance& instance, const DynamicBitset& tuple, int m,
    const WeightedBruteForceOptions& options) {
  const int m_eff =
      internal::EffectiveBudget(instance.queries, tuple, m);
  const int num_attrs = instance.queries.num_attributes();

  DynamicBitset useful(num_attrs);
  std::vector<int> relevant;
  for (int i = 0; i < instance.queries.size(); ++i) {
    const DynamicBitset& q = instance.queries.query(i);
    if (static_cast<int>(q.Count()) <= m_eff && q.IsSubsetOf(tuple)) {
      useful |= q;
      relevant.push_back(i);
    }
  }
  useful &= tuple;
  const std::vector<int> pool = useful.SetBits();
  const int pick = std::min<int>(m_eff, static_cast<int>(pool.size()));
  const std::uint64_t combos =
      BinomialSaturating(static_cast<int>(pool.size()), pick);
  if (options.max_combinations > 0 && combos > options.max_combinations) {
    return ResourceExhaustedError("weighted brute force too large");
  }

  // Blocked layout over the relevant queries with their multiplicities;
  // each enumerated combination costs one batch kernel pass.
  std::vector<DynamicBitset> relevant_queries;
  std::vector<long long> relevant_weights;
  for (int i : relevant) {
    relevant_queries.push_back(instance.queries.query(i));
    relevant_weights.push_back(instance.weights[i]);
  }
  kernels::ScratchScope scratch;
  const kernels::CoverageBlockSet blocks(
      relevant_queries, static_cast<std::size_t>(num_attrs),
      relevant_weights.data(), &scratch.arena());

  DynamicBitset best(num_attrs);
  long long best_weight = -1;
  DynamicBitset candidate(num_attrs);
  ForEachCombination(pool, pick, [&](const std::vector<int>& combo) {
    candidate.ResetAll();
    for (int attr : combo) candidate.Set(attr);
    const long long weight = kernels::AccumulateWeighted(blocks, candidate);
    if (weight > best_weight) {
      best_weight = weight;
      best = candidate;
    }
    return true;
  });
  return Finish(instance, tuple, m_eff, std::move(best), /*proved=*/true);
}

namespace {

class WeightedBnb {
 public:
  WeightedBnb(const kernels::CoverageBlockSet* queries,
              std::vector<int> candidates, int num_attrs, int budget,
              std::int64_t max_nodes)
      : queries_(queries),
        candidates_(std::move(candidates)),
        budget_(budget),
        max_nodes_(max_nodes),
        chosen_(num_attrs),
        rejected_(num_attrs),
        best_selection_(num_attrs) {}

  Status Run() { return Visit(0, 0); }
  const DynamicBitset& best_selection() const { return best_selection_; }

 private:
  Status Visit(std::size_t index, int num_chosen) {
    if (max_nodes_ > 0 && ++nodes_ > max_nodes_) {
      return ResourceExhaustedError("weighted B&B node budget exhausted");
    }
    const int slack = budget_ - num_chosen;
    const kernels::BoundScan bound =
        kernels::CoverageBound(*queries_, chosen_, rejected_, slack);
    const long long satisfied = bound.satisfied;
    const long long potential = bound.potential;
    if (satisfied > best_weight_) {
      best_weight_ = satisfied;
      best_selection_ = chosen_;
    }
    if (satisfied + potential <= best_weight_) return Status::OK();
    if (num_chosen == budget_ || index == candidates_.size()) {
      return Status::OK();
    }
    const int attr = candidates_[index];
    chosen_.Set(attr);
    SOC_RETURN_IF_ERROR(Visit(index + 1, num_chosen + 1));
    chosen_.Reset(attr);
    rejected_.Set(attr);
    SOC_RETURN_IF_ERROR(Visit(index + 1, num_chosen));
    rejected_.Reset(attr);
    return Status::OK();
  }

  const kernels::CoverageBlockSet* const queries_;
  const std::vector<int> candidates_;
  const int budget_;
  const std::int64_t max_nodes_;
  DynamicBitset chosen_;
  DynamicBitset rejected_;
  DynamicBitset best_selection_;
  long long best_weight_ = -1;
  std::int64_t nodes_ = 0;
};

}  // namespace

StatusOr<WeightedSolution> SolveWeightedBnb(
    const WeightedSocInstance& instance, const DynamicBitset& tuple, int m,
    const WeightedBnbOptions& options) {
  const int m_eff = internal::EffectiveBudget(instance.queries, tuple, m);
  const int num_attrs = instance.queries.num_attributes();

  std::vector<DynamicBitset> relevant;
  std::vector<long long> relevant_weights;
  DynamicBitset candidate_union(num_attrs);
  for (int i = 0; i < instance.queries.size(); ++i) {
    const DynamicBitset& q = instance.queries.query(i);
    if (static_cast<int>(q.Count()) <= m_eff && q.IsSubsetOf(tuple)) {
      relevant.push_back(q);
      relevant_weights.push_back(instance.weights[i]);
      candidate_union |= q;
    }
  }
  candidate_union &= tuple;
  const std::vector<long long> freq = WeightedAttributeFrequencies(instance);
  std::vector<int> candidates = candidate_union.SetBits();
  std::sort(candidates.begin(), candidates.end(), [&freq](int a, int b) {
    if (freq[a] != freq[b]) return freq[a] > freq[b];
    return a < b;
  });

  kernels::ScratchScope scratch;
  const kernels::CoverageBlockSet blocks(
      relevant, static_cast<std::size_t>(num_attrs), relevant_weights.data(),
      &scratch.arena());
  WeightedBnb search(&blocks, std::move(candidates), num_attrs, m_eff,
                     options.max_nodes);
  SOC_RETURN_IF_ERROR(search.Run());
  return Finish(instance, tuple, m_eff, search.best_selection(),
                /*proved=*/true);
}

StatusOr<WeightedSolution> SolveWeightedGreedy(
    const WeightedSocInstance& instance, const DynamicBitset& tuple, int m,
    GreedyKind kind) {
  const int m_eff = internal::EffectiveBudget(instance.queries, tuple, m);
  const int num_attrs = instance.queries.num_attributes();
  const std::vector<long long> freq = WeightedAttributeFrequencies(instance);
  DynamicBitset selected(num_attrs);

  if (kind == GreedyKind::kConsumeAttr) {
    std::vector<int> attrs = tuple.SetBits();
    std::sort(attrs.begin(), attrs.end(), [&freq](int a, int b) {
      if (freq[a] != freq[b]) return freq[a] > freq[b];
      return a < b;
    });
    for (int i = 0; i < m_eff; ++i) selected.Set(attrs[i]);
  } else if (kind == GreedyKind::kConsumeAttrCumul) {
    std::vector<int> remaining = tuple.SetBits();
    // One weighted CoverageGain scan per step: gains[a] is the summed
    // weight of queries containing selected ∪ {a}, the joint count the
    // per-candidate loop used to recompute query by query.
    std::vector<long long> weights64(instance.weights.begin(),
                                     instance.weights.end());
    kernels::ScratchScope scratch;
    const kernels::CoverageBlockSet blocks(
        instance.queries.queries(), static_cast<std::size_t>(num_attrs),
        weights64.data(), &scratch.arena());
    long long* gains =
        scratch.arena().AllocateWeights(static_cast<std::size_t>(num_attrs));
    for (int step = 0; step < m_eff; ++step) {
      kernels::CoverageGain(blocks, selected, gains, /*context=*/nullptr);
      int best_attr = -1;
      long long best_joint = -1;
      long long best_freq = -1;
      for (int attr : remaining) {
        const long long joint = gains[attr];
        if (joint > best_joint ||
            (joint == best_joint && freq[attr] > best_freq)) {
          best_attr = attr;
          best_joint = joint;
          best_freq = freq[attr];
        }
      }
      if (best_joint == 0) break;  // Padding (by weighted freq) fills up.
      selected.Set(best_attr);
      remaining.erase(
          std::find(remaining.begin(), remaining.end(), best_attr));
    }
  } else {
    return UnimplementedError(
        "weighted ConsumeQueries is not provided; use the unweighted "
        "solver on the raw log");
  }
  return Finish(instance, tuple, m_eff, std::move(selected),
                /*proved=*/false);
}

}  // namespace soc
