// ILP-SOC-CB-QL (Sec IV.B): the integer *linear* programming formulation
//
//   maximize   Σ_i y_i
//   subject to Σ_j x_j <= m
//              y_i <= x_j            for each i, j with a_j ∈ q_i
//              x_j = 0               whenever a_j(t) = 0
//              x_j, y_i ∈ {0, 1}
//
// solved with the library's own branch-and-bound (lp/branch_and_bound.h),
// standing in for the paper's lp_solve. The solver can seed the search with
// a greedy incumbent, which only strengthens pruning and never changes the
// optimum.
//
// BuildConjunctiveSocModel is exposed separately so tests and benches can
// inspect the formulation; it omits variables that are fixed to zero
// (attributes outside t) and queries that cannot be satisfied, which is an
// objective-preserving presolve.

#ifndef SOC_CORE_ILP_SOLVER_H_
#define SOC_CORE_ILP_SOLVER_H_

#include <vector>

#include "core/solver.h"
#include "lp/branch_and_bound.h"
#include "lp/model.h"

namespace soc {

struct SocIlpModel {
  lp::LinearModel model;
  // Attribute id of each x variable; x variables occupy model variable
  // indices [0, num_x), followed by the y variables.
  std::vector<int> x_attributes;
  // Original query index of each y variable (model index num_x + j).
  std::vector<int> y_queries;
  int num_x = 0;
  int num_y = 0;
};

// The conjunctive formulation above for (log, t, m_eff).
//
// With `presolve` (an objective-preserving improvement over the paper's
// formulation) variables fixed at zero and unsatisfiable queries are
// omitted, which shrinks the model dramatically when t covers few
// attributes. Without it the model is built exactly as written in
// Sec IV.B: one x per attribute (bounded to 0 outside t), one y per query,
// one link row per (query, attribute) pair — this is the variant whose
// scaling wall the paper reports in Fig 10.
SocIlpModel BuildConjunctiveSocModel(const QueryLog& log,
                                     const DynamicBitset& tuple, int m_eff,
                                     bool presolve = true);

struct IlpSocOptions {
  lp::MipOptions mip;
  // Seed branch-and-bound with the ConsumeAttrCumul greedy solution.
  bool seed_with_greedy = true;
  // Shrink the model before solving (see BuildConjunctiveSocModel).
  bool presolve = true;
};

class IlpSocSolver : public SocSolver {
 public:
  explicit IlpSocSolver(IlpSocOptions options = {})
      : options_(std::move(options)) {}

  StatusOr<SocSolution> SolveWithContext(const QueryLog& log,
                                         const DynamicBitset& tuple, int m,
                                         SolveContext* context) const override;

  std::string name() const override { return "ILP"; }

 private:
  IlpSocOptions options_;
};

}  // namespace soc

#endif  // SOC_CORE_ILP_SOLVER_H_
