#include "core/topk_general.h"

#include <algorithm>

#include "common/combinatorics.h"

namespace soc {

QueryScoreFn MakeSpecificityScore() {
  return [](const DynamicBitset& query, const DynamicBitset& t) {
    return static_cast<double>(query.Count()) / (1.0 + t.Count());
  };
}

QueryScoreFn MakeWeightedOverlapScore(std::vector<double> weights) {
  return [weights = std::move(weights)](const DynamicBitset& query,
                                        const DynamicBitset& t) {
    double score = 0.0;
    query.ForEachSetBit([&](int attr) {
      if (t.Test(attr)) score += weights.at(attr);
    });
    return score;
  };
}

bool TopkRetrievesGeneral(const BooleanTable& database,
                          const QueryScoreFn& score, const DynamicBitset& q,
                          const DynamicBitset& t_prime, int k) {
  SOC_CHECK_GT(k, 0);
  if (!q.IsSubsetOf(t_prime)) return false;
  const double own_score = score(q, t_prime);
  int better = 0;
  for (int i = 0; i < database.num_rows(); ++i) {
    if (!q.IsSubsetOf(database.row(i))) continue;
    if (score(q, database.row(i)) >= own_score) {
      if (++better >= k) return false;
    }
  }
  return true;
}

int CountTopkSatisfiedGeneral(const BooleanTable& database,
                              const QueryScoreFn& score, const QueryLog& log,
                              const DynamicBitset& t_prime, int k) {
  int count = 0;
  for (const DynamicBitset& q : log.queries()) {
    if (TopkRetrievesGeneral(database, score, q, t_prime, k)) ++count;
  }
  return count;
}

StatusOr<SocSolution> SolveTopkGeneralBruteForce(
    const BooleanTable& database, const QueryScoreFn& score,
    const QueryLog& log, const DynamicBitset& tuple, int m, int k,
    const TopkGeneralBruteForceOptions& options) {
  const int m_eff = internal::EffectiveBudget(log, tuple, m);
  const std::vector<int> pool = tuple.SetBits();
  const std::uint64_t combos =
      BinomialSaturating(static_cast<int>(pool.size()), m_eff);
  if (options.max_combinations > 0 && combos > options.max_combinations) {
    return ResourceExhaustedError("top-k brute force too large");
  }
  DynamicBitset best(log.num_attributes());
  int best_count = -1;
  DynamicBitset candidate(log.num_attributes());
  ForEachCombination(pool, m_eff, [&](const std::vector<int>& combo) {
    candidate.ResetAll();
    for (int attr : combo) candidate.Set(attr);
    const int count =
        CountTopkSatisfiedGeneral(database, score, log, candidate, k);
    if (count > best_count) {
      best_count = count;
      best = candidate;
    }
    return true;
  });

  SocSolution solution;
  solution.selected = std::move(best);
  solution.satisfied_queries = std::max(best_count, 0);
  solution.proved_optimal = true;
  return solution;
}

StatusOr<SocSolution> SolveTopkGeneralGreedy(const BooleanTable& database,
                                             const QueryScoreFn& score,
                                             const QueryLog& log,
                                             const DynamicBitset& tuple,
                                             int m, int k) {
  const int m_eff = internal::EffectiveBudget(log, tuple, m);
  const std::vector<int> freq = log.AttributeFrequencies();
  DynamicBitset selected(log.num_attributes());
  std::vector<int> remaining = tuple.SetBits();

  int current = CountTopkSatisfiedGeneral(database, score, log, selected, k);
  for (int step = 0; step < m_eff; ++step) {
    int best_attr = -1;
    int best_count = -1;
    int best_freq = -1;
    for (int attr : remaining) {
      selected.Set(attr);
      const int count =
          CountTopkSatisfiedGeneral(database, score, log, selected, k);
      selected.Reset(attr);
      if (count > best_count ||
          (count == best_count && freq[attr] > best_freq)) {
        best_attr = attr;
        best_count = count;
        best_freq = freq[attr];
      }
    }
    SOC_CHECK_GE(best_attr, 0);
    selected.Set(best_attr);
    current = best_count;
    remaining.erase(
        std::find(remaining.begin(), remaining.end(), best_attr));
  }

  SocSolution solution;
  solution.satisfied_queries = current;
  solution.selected = std::move(selected);
  solution.proved_optimal = false;
  return solution;
}

}  // namespace soc
