#include "core/solver_registry.h"

#include "common/string_util.h"
#include "core/bnb_solver.h"
#include "core/brute_force.h"
#include "core/fallback_solver.h"
#include "core/greedy.h"
#include "core/ilp_solver.h"
#include "core/mfi_solver.h"

namespace soc {

std::vector<std::string> RegisteredSolverNames() {
  return {"BruteForce",       "BranchAndBound",      "ILP",
          "MaxFreqItemSets",  "MaxFreqItemSets-dfs", "ConsumeAttr",
          "ConsumeAttrCumul", "ConsumeQueries",      "Fallback"};
}

StatusOr<std::unique_ptr<SocSolver>> CreateSolverByName(
    const std::string& name) {
  if (name == "BruteForce") {
    return std::unique_ptr<SocSolver>(new BruteForceSolver());
  }
  if (name == "BranchAndBound") {
    return std::unique_ptr<SocSolver>(new BnbSocSolver());
  }
  if (name == "ILP") {
    return std::unique_ptr<SocSolver>(new IlpSocSolver());
  }
  if (name == "MaxFreqItemSets") {
    return std::unique_ptr<SocSolver>(new MfiSocSolver());
  }
  if (name == "MaxFreqItemSets-dfs") {
    MfiSocOptions options;
    options.engine = MfiEngine::kExactDfs;
    return std::unique_ptr<SocSolver>(new MfiSocSolver(options));
  }
  if (name == "ConsumeAttr") {
    return std::unique_ptr<SocSolver>(
        new GreedySolver(GreedyKind::kConsumeAttr));
  }
  if (name == "ConsumeAttrCumul") {
    return std::unique_ptr<SocSolver>(
        new GreedySolver(GreedyKind::kConsumeAttrCumul));
  }
  if (name == "ConsumeQueries") {
    return std::unique_ptr<SocSolver>(
        new GreedySolver(GreedyKind::kConsumeQueries));
  }
  if (name == "Fallback") {
    return std::unique_ptr<SocSolver>(new FallbackSolver());
  }
  return NotFoundError("unknown solver '" + name + "'; valid: " +
                       Join(RegisteredSolverNames(), ", "));
}

}  // namespace soc
