#include "core/solver_registry.h"

#include "common/string_util.h"
#include "core/bnb_solver.h"
#include "core/brute_force.h"
#include "core/fallback_solver.h"
#include "core/greedy.h"
#include "core/ilp_solver.h"
#include "core/mfi_solver.h"

namespace soc {
namespace {

// The single source of truth: every advertised name pairs with its
// factory, so RegisteredSolverNames() and CreateSolverByName() cannot
// drift apart. Order is presentation order (see solver_registry.h).
struct RegistryEntry {
  const char* name;
  std::unique_ptr<SocSolver> (*make)();
};

std::unique_ptr<SocSolver> MakeMfiDfs() {
  MfiSocOptions options;
  options.engine = MfiEngine::kExactDfs;
  return std::make_unique<MfiSocSolver>(options);
}

constexpr RegistryEntry kRegistry[] = {
    {"BruteForce", [] { return std::unique_ptr<SocSolver>(
                            std::make_unique<BruteForceSolver>()); }},
    {"BranchAndBound", [] { return std::unique_ptr<SocSolver>(
                                std::make_unique<BnbSocSolver>()); }},
    {"ILP", [] { return std::unique_ptr<SocSolver>(
                     std::make_unique<IlpSocSolver>()); }},
    {"MaxFreqItemSets", [] { return std::unique_ptr<SocSolver>(
                                 std::make_unique<MfiSocSolver>()); }},
    {"MaxFreqItemSets-dfs", &MakeMfiDfs},
    {"ConsumeAttr", [] { return std::unique_ptr<SocSolver>(
                             std::make_unique<GreedySolver>(
                                 GreedyKind::kConsumeAttr)); }},
    {"ConsumeAttrCumul", [] { return std::unique_ptr<SocSolver>(
                                  std::make_unique<GreedySolver>(
                                      GreedyKind::kConsumeAttrCumul)); }},
    {"ConsumeQueries", [] { return std::unique_ptr<SocSolver>(
                                std::make_unique<GreedySolver>(
                                    GreedyKind::kConsumeQueries)); }},
    {"Fallback", [] { return std::unique_ptr<SocSolver>(
                          std::make_unique<FallbackSolver>()); }},
};

}  // namespace

std::vector<std::string> RegisteredSolverNames() {
  std::vector<std::string> names;
  names.reserve(std::size(kRegistry));
  for (const RegistryEntry& entry : kRegistry) names.emplace_back(entry.name);
  return names;
}

StatusOr<std::unique_ptr<SocSolver>> CreateSolverByName(
    const std::string& name) {
  for (const RegistryEntry& entry : kRegistry) {
    if (name == entry.name) return entry.make();
  }
  return NotFoundError("unknown solver '" + name + "'; valid: " +
                       Join(RegisteredSolverNames(), ", "));
}

}  // namespace soc
