// MaxFreqItemSets-SOC-CB-QL (Sec IV.C).
//
// The query log is complemented (~Q); a query q retrieves t' iff q ⊆ t',
// which in complement space reads ~t' ⊇ ... equivalently
// freq_{~Q}(I) = |{q : q ∩ I = ∅}| for I = ~t', so the best compression
// retaining m attributes is the complement of the *frequent itemset of
// size M - m containing ~t with maximum frequency*.
//
// The solver mines the maximal frequent itemsets of ~Q at a support
// threshold r, scans every maximal set F ⊇ ~t with |F| >= M - m for its
// size-(M - m) subsets containing ~t (Fig 4), and returns the complement
// of the most frequent such subset. Thresholding (Sec IV.C, "Setting of
// the Threshold Parameter"):
//
//  * fixed r: one mining pass; if the optimum satisfies fewer than r
//    queries the solver reports NotFound (the paper's "returns empty");
//  * adaptive (default): start at max(1, |Q|/2) and halve until a feasible
//    subset appears; r = 1 is guaranteed to succeed, so the result is the
//    true optimum (modulo random-walk completeness, below).
//
// Mining engines: the paper's two-phase random walk (complete only with
// high probability) or the exact DFS miner. Tests cross-check both against
// brute force; bench/ablation_mfi compares them.
//
// Preprocessing (Sec IV.C "Preprocessing Opportunities"): an
// MfiPreprocessedIndex mines the maximal itemsets of ~Q once per threshold
// and can be shared across many new tuples; the per-tuple runtime is then
// just the superset scan, which Fig 6 of the paper reports as ~constant.

#ifndef SOC_CORE_MFI_SOLVER_H_
#define SOC_CORE_MFI_SOLVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/solver.h"
#include "itemsets/maximal_dfs.h"
#include "itemsets/random_walk.h"
#include "itemsets/transaction_db.h"

namespace soc {

enum class MfiEngine {
  kRandomWalk,  // The paper's algorithm.
  kExactDfs,    // Deterministic GenMax-style miner.
};

struct MfiSocOptions {
  MfiEngine engine = MfiEngine::kRandomWalk;
  itemsets::RandomWalkOptions walk;
  itemsets::MaximalDfsOptions dfs;
  // Adaptive threshold halving (true) or a single fixed threshold (false).
  bool adaptive_threshold = true;
  // Seed the adaptive schedule with a greedy lower bound (beyond-paper
  // improvement): the ConsumeAttrCumul solution satisfies L queries, and
  // mining once at threshold r = L is guaranteed to find a candidate —
  // whose best scan result is the true optimum (opt >= L). This usually
  // collapses the halving schedule to a single, cheaper mining pass;
  // bench/ablation_mfi quantifies the effect.
  bool seed_threshold_with_greedy = true;
  // Used only when adaptive_threshold is false; as a fraction of |Q|,
  // e.g. 0.01 = "at least 1% of the queries must still retrieve t'".
  double fixed_threshold_fraction = 0.01;
  // Guard on the level-(M-m) subset scan per threshold. Tripping it no
  // longer fails the solve: the scan stops and the solver degrades to its
  // best incumbent (StopReason::kResourceLimit, core/solver.h contract).
  std::uint64_t max_subset_candidates = 5'000'000;
};

// Where SolveWithIndex gets its mined itemsets from. Implementations own
// the complemented transaction database and memoize (or share, or bound)
// per-threshold mining results; collections are handed out as
// shared_ptr-to-const so a provider that evicts (serve::SharedMfiIndex's
// LRU) can never invalidate a reader mid-solve.
//
// Thread-safety is the implementation's contract, not the interface's:
// MfiPreprocessedIndex below is single-owner, serve/preprocessing_cache.h
// wraps it for concurrent use.
class MfiItemsetSource {
 public:
  virtual ~MfiItemsetSource() = default;

  virtual const itemsets::TransactionDatabase& complemented_db() const = 0;
  // Size of the query log the source was built over (solve-time guard
  // against pairing a source with the wrong log).
  virtual int log_size() const = 0;

  // Maximal frequent itemsets of ~Q at `threshold`. `context` (optional)
  // makes the mining pass cooperative: when it stops the pass midway, the
  // *partial* itemset collection is returned without being cached (so a
  // later, unconstrained solve re-mines completely).
  virtual StatusOr<std::shared_ptr<const std::vector<itemsets::FrequentItemset>>>
  MaximalItemsets(int threshold, SolveContext* context) = 0;
};

// Shared preprocessing: ~Q as a transaction database plus memoized maximal
// itemsets per threshold.
//
// Ownership / concurrency: single-owner. MaximalItemsets mutates the memo
// map (cache promotion) with no internal locking, so an instance must not
// be shared across threads without external synchronization — the serving
// layer uses serve::SharedMfiIndex (a locked, LRU-bounded MfiItemsetSource)
// instead of sharing one of these.
class MfiPreprocessedIndex : public MfiItemsetSource {
 public:
  MfiPreprocessedIndex(const QueryLog& log, MfiSocOptions options);

  const itemsets::TransactionDatabase& complemented_db() const override {
    return db_;
  }
  int log_size() const override { return log_size_; }
  const MfiSocOptions& options() const { return options_; }

  // Maximal frequent itemsets of ~Q at `threshold` (mined on first use).
  StatusOr<std::shared_ptr<const std::vector<itemsets::FrequentItemset>>>
  MaximalItemsets(int threshold, SolveContext* context = nullptr) override;

  // Persistence for the paper's offline-preprocessing workflow: the mined
  // itemsets of every threshold touched so far are written as CSV
  // (threshold, support, itemset bitstring) and can be loaded into a fresh
  // index built over the same log. Loading validates widths and supports.
  std::string SerializeCache() const;
  Status LoadCache(const std::string& serialized);

 private:
  itemsets::TransactionDatabase db_;
  int log_size_;
  MfiSocOptions options_;
  std::map<int, std::shared_ptr<const std::vector<itemsets::FrequentItemset>>>
      cache_;
};

class MfiSocSolver : public SocSolver {
 public:
  explicit MfiSocSolver(MfiSocOptions options = {}) : options_(options) {}

  StatusOr<SocSolution> SolveWithContext(const QueryLog& log,
                                         const DynamicBitset& tuple, int m,
                                         SolveContext* context) const override;

  // As Solve, but reuses a prebuilt itemset source (must stem from the
  // same log). The solver itself keeps no mutable state, so a const
  // MfiSocSolver may run concurrent SolveWithIndex calls against a
  // thread-safe source (serve::SharedMfiIndex); with a plain
  // MfiPreprocessedIndex the single-owner rule above applies.
  StatusOr<SocSolution> SolveWithIndex(MfiItemsetSource& index,
                                       const QueryLog& log,
                                       const DynamicBitset& tuple, int m,
                                       SolveContext* context = nullptr) const;

  std::string name() const override { return "MaxFreqItemSets"; }

 private:
  MfiSocOptions options_;
};

}  // namespace soc

#endif  // SOC_CORE_MFI_SOLVER_H_
