#include "datagen/clique.h"

#include <algorithm>

#include "common/random.h"

namespace soc::datagen {

Graph::Graph(int num_vertices) : num_vertices_(num_vertices) {
  SOC_CHECK_GE(num_vertices, 0);
  adjacency_.assign(num_vertices, DynamicBitset(num_vertices));
}

Graph Graph::ErdosRenyi(int num_vertices, double edge_probability,
                        std::uint64_t seed) {
  Graph graph(num_vertices);
  Rng rng(seed);
  for (int u = 0; u < num_vertices; ++u) {
    for (int v = u + 1; v < num_vertices; ++v) {
      if (rng.NextBernoulli(edge_probability)) graph.AddEdge(u, v);
    }
  }
  return graph;
}

void Graph::AddEdge(int u, int v) {
  SOC_CHECK_NE(u, v);
  SOC_CHECK(!HasEdge(u, v));
  adjacency_[u].Set(v);
  adjacency_[v].Set(u);
  edges_.emplace_back(std::min(u, v), std::max(u, v));
}

bool Graph::HasEdge(int u, int v) const { return adjacency_[u].Test(v); }

bool Graph::IsClique(const DynamicBitset& vertices) const {
  const std::vector<int> members = vertices.SetBits();
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      if (!HasEdge(members[i], members[j])) return false;
    }
  }
  return true;
}

namespace {

// Classic max-clique branch and bound: extend the current clique with
// vertices from `candidates`, pruning when |clique| + |candidates| cannot
// beat the best.
void MaxCliqueSearch(const std::vector<DynamicBitset>& adjacency,
                     DynamicBitset& clique, DynamicBitset candidates,
                     int* best) {
  const int size = static_cast<int>(clique.Count());
  *best = std::max(*best, size);
  while (candidates.Any()) {
    if (size + static_cast<int>(candidates.Count()) <= *best) return;
    const int v = static_cast<int>(candidates.FindFirst());
    candidates.Reset(v);
    clique.Set(v);
    MaxCliqueSearch(adjacency, clique, candidates & adjacency[v], best);
    clique.Reset(v);
  }
}

}  // namespace

int Graph::MaxCliqueSize() const {
  if (num_vertices_ == 0) return 0;
  DynamicBitset clique(num_vertices_);
  DynamicBitset candidates(num_vertices_);
  candidates.SetAll();
  int best = 0;
  MaxCliqueSearch(adjacency_, clique, std::move(candidates), &best);
  return best;
}

CliqueSocInstance CliqueToSoc(const Graph& graph) {
  CliqueSocInstance instance{QueryLog(AttributeSchema::Anonymous(
                                 graph.num_vertices())),
                             DynamicBitset(graph.num_vertices())};
  for (const auto& [u, v] : graph.edges()) {
    instance.log.AddQueryFromIndices({u, v});
  }
  instance.tuple.SetAll();
  return instance;
}

}  // namespace soc::datagen
