#include "datagen/camera_catalog.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace soc::datagen {

namespace {

enum Tier { kEntry, kMidrange, kPro, kNumTiers };

struct Range {
  double lo;
  double hi;
};

// Per-tier value ranges, index-aligned with CameraAttributeNames().
constexpr Range kTierRanges[kNumTiers][kNumCameraAttributes] = {
    // Price,        Weight,       Resolution,  Zoom,       Screen,     Battery
    {{90, 350},   {0.15, 0.40}, {10, 20},   {3, 8},    {2.5, 3.2}, {180, 350}},
    {{350, 1200}, {0.35, 0.80}, {16, 30},   {5, 15},   {3.0, 3.5}, {250, 500}},
    {{1200, 4500}, {0.60, 1.60}, {24, 60},  {1, 5},    {3.0, 3.8}, {350, 900}},
};

constexpr double kTierWeights[kNumTiers] = {0.45, 0.40, 0.15};

double RoundTo(double value, double step) {
  return std::round(value / step) * step;
}

}  // namespace

std::vector<std::string> CameraAttributeNames() {
  return {"Price", "WeightKg", "ResolutionMp",
          "ZoomX", "ScreenInches", "BatteryShots"};
}

numeric::NumericTable GenerateCameraCatalog(
    const CameraCatalogOptions& options) {
  SOC_CHECK_GE(options.num_cameras, 0);
  Rng rng(options.seed);
  numeric::NumericTable catalog(CameraAttributeNames());
  const std::vector<double> tier_weights(kTierWeights,
                                         kTierWeights + kNumTiers);
  for (int i = 0; i < options.num_cameras; ++i) {
    const Tier tier = static_cast<Tier>(rng.NextWeighted(tier_weights));
    std::vector<double> camera(kNumCameraAttributes);
    for (int a = 0; a < kNumCameraAttributes; ++a) {
      const Range range = kTierRanges[tier][a];
      camera[a] = range.lo + (range.hi - range.lo) * rng.NextDouble();
    }
    camera[0] = RoundTo(camera[0], 10.0);   // Prices in $10 steps.
    camera[2] = RoundTo(camera[2], 1.0);    // Whole megapixels.
    camera[3] = RoundTo(camera[3], 1.0);    // Whole zoom factors.
    const Status status = catalog.AddRow(std::move(camera));
    SOC_CHECK(status.ok());
  }
  return catalog;
}

std::vector<numeric::RangeQuery> MakeCameraWorkload(
    const numeric::NumericTable& catalog,
    const CameraWorkloadOptions& options) {
  SOC_CHECK_GT(catalog.num_rows(), 0);
  Rng rng(options.seed);
  // Per-attribute spread, to size plausible search windows.
  std::vector<double> spread(catalog.num_attributes(), 1.0);
  for (int a = 0; a < catalog.num_attributes(); ++a) {
    double lo = catalog.row(0)[a];
    double hi = lo;
    for (int r = 1; r < catalog.num_rows(); ++r) {
      lo = std::min(lo, catalog.row(r)[a]);
      hi = std::max(hi, catalog.row(r)[a]);
    }
    spread[a] = std::max(hi - lo, 1e-9);
  }

  std::vector<numeric::RangeQuery> queries;
  queries.reserve(options.num_queries);
  for (int i = 0; i < options.num_queries; ++i) {
    const std::vector<double>& anchor =
        catalog.row(rng.NextUint64(catalog.num_rows()));
    const int conditions =
        static_cast<int>(rng.NextWeighted(options.conditions_distribution)) +
        1;
    numeric::RangeQuery query;
    for (int attr : rng.SampleWithoutReplacement(catalog.num_attributes(),
                                                 conditions)) {
      // Window of 10-40% of the attribute's spread around the anchor.
      const double half =
          spread[attr] * (0.05 + 0.15 * rng.NextDouble());
      query.push_back({attr, anchor[attr] - half, anchor[attr] + half});
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace soc::datagen
