// Query-workload generators reproducing Sec VII:
//
//  * Synthetic workload: "each query specifies 1 to 5 attributes chosen
//    randomly distributed as follows: 1 attribute - 20%, 2 - 30%, 3 - 30%,
//    4 - 10%, 5 - 10%", i.e. most users specify two or three attributes.
//  * Real-like workload: a stand-in for the 185 queries collected from UT
//    Arlington users. Those queries track what buyers actually ask for, so
//    attributes are drawn proportionally to their dataset prevalence
//    (popular features are queried more), and every query specifies 4-6
//    attributes — matching the paper's observation that no real query has
//    3 or fewer attributes (Fig 7 shows zero satisfied queries at m = 3).

#ifndef SOC_DATAGEN_WORKLOAD_H_
#define SOC_DATAGEN_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "boolean/query_log.h"
#include "boolean/table.h"

namespace soc::datagen {

// The paper's real workload size.
inline constexpr int kPaperRealWorkloadSize = 185;

struct SyntheticWorkloadOptions {
  int num_queries = 2000;
  std::uint64_t seed = 42;
  // Probability that a query has 1, 2, 3, 4, 5 attributes.
  std::vector<double> size_distribution = {0.20, 0.30, 0.30, 0.10, 0.10};
};

// Synthetic workload over `schema` with uniformly random attributes.
QueryLog MakeSyntheticWorkload(const AttributeSchema& schema,
                               const SyntheticWorkloadOptions& options = {});

struct RealLikeWorkloadOptions {
  int num_queries = kPaperRealWorkloadSize;
  std::uint64_t seed = 7;
  // Real user queries cluster around a few popular feature combinations
  // ("hot templates"): most queries are a template, occasionally with one
  // attribute swapped; the rest are one-off queries over less common
  // attributes. This concentration is what makes frequency-driven greedy
  // heuristics near-optimal on the paper's real log (Fig 7) while
  // ConsumeQueries — which grabs the *smallest* queries first, and the
  // small ones here are the odd one-offs — lags behind.
  int num_templates = 12;
  double template_probability = 0.75;
  // Templates have 5-6 attributes; one-off queries have 4-5.
  double swap_probability = 0.3;
};

// Real-like workload whose attribute popularity follows `dataset`
// prevalence (sharply, for the hot templates).
QueryLog MakeRealLikeWorkload(const BooleanTable& dataset,
                              const RealLikeWorkloadOptions& options = {});

// Picks `count` distinct row indices of `dataset` to serve as the paper's
// "100 randomly selected to-be-advertised cars".
std::vector<int> PickAdvertisedTuples(const BooleanTable& dataset, int count,
                                      std::uint64_t seed);

}  // namespace soc::datagen

#endif  // SOC_DATAGEN_WORKLOAD_H_
