// Synthetic digital-camera catalog with numeric attributes and a range-
// query workload — the numeric scenario the paper sketches in Sec II.B
// ("users browsing a database for digital cameras may specify desired
// ranges on price, weight, resolution, etc").

#ifndef SOC_DATAGEN_CAMERA_CATALOG_H_
#define SOC_DATAGEN_CAMERA_CATALOG_H_

#include <cstdint>
#include <vector>

#include "numeric/numeric.h"

namespace soc::datagen {

// Numeric camera attributes: Price, WeightKg, ResolutionMp, ZoomX,
// ScreenInches, BatteryShots.
inline constexpr int kNumCameraAttributes = 6;
std::vector<std::string> CameraAttributeNames();

struct CameraCatalogOptions {
  int num_cameras = 2000;
  std::uint64_t seed = 555;
};

// Cameras from three latent tiers (entry / midrange / pro) with
// correlated attribute distributions (pro = pricier, heavier, sharper).
numeric::NumericTable GenerateCameraCatalog(
    const CameraCatalogOptions& options = {});

struct CameraWorkloadOptions {
  int num_queries = 400;
  std::uint64_t seed = 77;
  // Probability that a query constrains 1, 2, 3 attributes.
  std::vector<double> conditions_distribution = {0.35, 0.45, 0.20};
};

// Range queries anchored at real catalog tuples: a buyer "likes" a random
// camera and searches for a window around some of its values — so queries
// genuinely hit the catalog's dense regions.
std::vector<numeric::RangeQuery> MakeCameraWorkload(
    const numeric::NumericTable& catalog,
    const CameraWorkloadOptions& options = {});

}  // namespace soc::datagen

#endif  // SOC_DATAGEN_CAMERA_CATALOG_H_
