// The Theorem 1 reduction (Sec III): Clique ≤p SOC-CB-QL.
//
// Given a graph G = (V, E) and target r: attributes = V, one conjunctive
// query {u, v} per edge, the new tuple t = all of V, budget m = r. Then G
// has an r-clique iff some compression of t with r attributes satisfies
// r(r-1)/2 queries. Used by tests to validate the solvers against a
// brute-force clique finder, and by benches to generate adversarially hard
// SOC instances.

#ifndef SOC_DATAGEN_CLIQUE_H_
#define SOC_DATAGEN_CLIQUE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "boolean/query_log.h"
#include "common/bitset.h"

namespace soc::datagen {

// A simple undirected graph on vertices 0..n-1.
class Graph {
 public:
  explicit Graph(int num_vertices);

  static Graph ErdosRenyi(int num_vertices, double edge_probability,
                          std::uint64_t seed);

  int num_vertices() const { return num_vertices_; }
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }

  void AddEdge(int u, int v);
  bool HasEdge(int u, int v) const;

  // True iff `vertices` (as a bitset over V) induces a complete subgraph.
  bool IsClique(const DynamicBitset& vertices) const;

  // Size of a maximum clique, by branch-and-bound enumeration (exact;
  // intended for small graphs in tests).
  int MaxCliqueSize() const;

 private:
  int num_vertices_;
  std::vector<DynamicBitset> adjacency_;
  std::vector<std::pair<int, int>> edges_;
};

struct CliqueSocInstance {
  QueryLog log;        // One 2-attribute query per edge.
  DynamicBitset tuple;  // All vertices.
};

// Materializes the reduction for graph G.
CliqueSocInstance CliqueToSoc(const Graph& graph);

// The SOC objective value r(r-1)/2 that certifies an r-clique.
inline int CliqueCertificate(int r) { return r * (r - 1) / 2; }

}  // namespace soc::datagen

#endif  // SOC_DATAGEN_CLIQUE_H_
