// Synthetic classified-ads corpus for the text variant (Sec II.B / V):
// a Zipf-distributed vocabulary (natural-language word frequencies follow
// Zipf's law), documents mixing topic words and background words, and a
// keyword-query workload drawn from the same topics — so queries actually
// hit documents, as real search logs do.

#ifndef SOC_DATAGEN_TEXT_CORPUS_H_
#define SOC_DATAGEN_TEXT_CORPUS_H_

#include <cstdint>
#include <vector>

#include "text/keyword_selection.h"
#include "text/text.h"

namespace soc::datagen {

struct TextCorpusOptions {
  int vocabulary_size = 5000;
  int num_documents = 1000;
  int min_document_length = 20;
  int max_document_length = 80;
  int num_topics = 25;
  int words_per_topic = 40;
  // Fraction of a document's words drawn from its topic (vs background
  // Zipf draws over the whole vocabulary).
  double topic_word_fraction = 0.5;
  double zipf_exponent = 1.1;
  std::uint64_t seed = 1234;
};

struct TextCorpus {
  // Documents as term-id sequences (term ids are 0..vocabulary_size-1).
  std::vector<std::vector<int>> documents;
  // Topic id of each document.
  std::vector<int> document_topics;
  // The words of each topic (distinct term ids).
  std::vector<std::vector<int>> topic_words;
};

TextCorpus GenerateTextCorpus(const TextCorpusOptions& options = {});

struct TextWorkloadOptions {
  int num_queries = 500;
  // Queries have 1-3 keywords, mostly drawn from one topic.
  std::vector<double> size_distribution = {0.3, 0.5, 0.2};
  std::uint64_t seed = 99;
};

// Keyword queries over a corpus: each query picks a topic (uniform) and
// draws its keywords from that topic's words.
std::vector<text::SparseQuery> MakeTextWorkload(
    const TextCorpus& corpus, const TextWorkloadOptions& options = {});

// Builds the inverted index of the whole corpus.
text::TextIndex IndexCorpus(const TextCorpus& corpus);

}  // namespace soc::datagen

#endif  // SOC_DATAGEN_TEXT_CORPUS_H_
