// Synthetic stand-in for the paper's evaluation dataset: a crawl of 15,211
// used cars for sale in the Dallas area with 32 Boolean attributes
// (autos.yahoo.com; Sec VII). The crawl is not redistributable, so we
// generate a dataset with the same shape: 32 named car features whose
// prevalences and co-occurrences are driven by a latent car-type mixture
// (economy / family / sport / luxury / truck). The SOC algorithms consume
// only attribute frequencies and co-occurrences, which this generator
// controls explicitly — see DESIGN.md, "Substitutions".

#ifndef SOC_DATAGEN_CAR_DATASET_H_
#define SOC_DATAGEN_CAR_DATASET_H_

#include <cstdint>

#include "boolean/table.h"

namespace soc::datagen {

// The number of Boolean attributes in the paper's dataset.
inline constexpr int kNumCarAttributes = 32;

// The number of cars in the paper's dataset.
inline constexpr int kPaperCarCount = 15'211;

// The 32-attribute car schema (AC, PowerLocks, ..., RoofRack).
AttributeSchema CarSchema();

struct CarDatasetOptions {
  int num_cars = kPaperCarCount;
  std::uint64_t seed = 2008;
};

// Generates the synthetic used-car table.
BooleanTable GenerateCarDataset(const CarDatasetOptions& options = {});

}  // namespace soc::datagen

#endif  // SOC_DATAGEN_CAR_DATASET_H_
