#include "datagen/car_dataset.h"

#include <array>

#include "common/random.h"

namespace soc::datagen {

namespace {

// 32 Boolean car features, roughly ordered from common to rare.
constexpr std::array<const char*, kNumCarAttributes> kAttributeNames = {
    "AC",             "PowerSteering",  "AMFMRadio",      "PowerBrakes",
    "PowerLocks",     "PowerWindows",   "TiltWheel",      "CruiseControl",
    "FourDoor",       "AutoTrans",      "CDPlayer",       "DualAirbags",
    "ABS",            "AlloyWheels",    "KeylessEntry",   "RearDefroster",
    "FoldingRearSeat", "PowerMirrors",  "Sunroof",        "RoofRack",
    "LeatherSeats",   "HeatedSeats",    "PremiumSound",   "TowPackage",
    "FourWheelDrive", "Turbo",          "Spoiler",        "SportPackage",
    "NavigationSystem", "ThirdRowSeat", "RemoteStart",    "ParkingSensors",
};

// Latent car types and their mixture weights.
enum CarType { kEconomy, kFamily, kSport, kLuxury, kTruck, kNumTypes };
constexpr std::array<double, kNumTypes> kTypeWeights = {0.30, 0.30, 0.15,
                                                        0.15, 0.10};

// Base prevalence of each attribute (index-aligned with kAttributeNames),
// from near-universal features to rare options.
constexpr std::array<double, kNumCarAttributes> kBasePrevalence = {
    0.90, 0.88, 0.85, 0.85, 0.70, 0.68, 0.62, 0.60,  // comfort basics
    0.65, 0.72, 0.55, 0.50, 0.45, 0.35, 0.40, 0.55,  // common mid-tier
    0.30, 0.38, 0.20, 0.12, 0.18, 0.10, 0.15, 0.10,  // upscale / utility
    0.12, 0.08, 0.07, 0.08, 0.08, 0.08, 0.06, 0.05,  // rare options
};

// Multiplicative boost applied per car type to themed feature bundles.
double TypeBoost(CarType type, int attribute) {
  switch (type) {
    case kEconomy:
      // Economy cars skip options.
      if (attribute >= 16) return 0.3;
      return 0.9;
    case kFamily:
      // FourDoor, AutoTrans, RearDefroster, FoldingRearSeat, ThirdRowSeat.
      if (attribute == 8 || attribute == 9 || attribute == 15 ||
          attribute == 16 || attribute == 29) {
        return 1.4;
      }
      return 1.0;
    case kSport:
      // Turbo, Spoiler, SportPackage, AlloyWheels, PremiumSound.
      if (attribute == 25 || attribute == 26 || attribute == 27 ||
          attribute == 13 || attribute == 22) {
        return 4.0;
      }
      if (attribute == 8 || attribute == 29) return 0.3;  // Few four-doors.
      return 1.0;
    case kLuxury:
      // Leather, HeatedSeats, Sunroof, Navigation, ParkingSensors,
      // RemoteStart, KeylessEntry, PremiumSound.
      if (attribute == 20 || attribute == 21 || attribute == 18 ||
          attribute == 28 || attribute == 31 || attribute == 30 ||
          attribute == 14 || attribute == 22) {
        return 3.5;
      }
      return 1.1;
    case kTruck:
      // TowPackage, FourWheelDrive, RoofRack.
      if (attribute == 23 || attribute == 24 || attribute == 19) return 4.5;
      if (attribute == 8 || attribute == 29) return 0.5;
      return 0.9;
    default:
      return 1.0;
  }
}

}  // namespace

AttributeSchema CarSchema() {
  std::vector<std::string> names(kAttributeNames.begin(),
                                 kAttributeNames.end());
  auto schema = AttributeSchema::Create(std::move(names));
  SOC_CHECK(schema.ok());
  return std::move(schema).value();
}

BooleanTable GenerateCarDataset(const CarDatasetOptions& options) {
  SOC_CHECK_GE(options.num_cars, 0);
  Rng rng(options.seed);
  const std::vector<double> type_weights(kTypeWeights.begin(),
                                         kTypeWeights.end());
  BooleanTable table(CarSchema());
  for (int car = 0; car < options.num_cars; ++car) {
    const CarType type = static_cast<CarType>(rng.NextWeighted(type_weights));
    DynamicBitset row(kNumCarAttributes);
    for (int a = 0; a < kNumCarAttributes; ++a) {
      const double p =
          std::min(0.97, kBasePrevalence[a] * TypeBoost(type, a));
      if (rng.NextBernoulli(p)) row.Set(a);
    }
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace soc::datagen
