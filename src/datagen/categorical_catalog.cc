#include "datagen/categorical_catalog.h"

#include "common/random.h"

namespace soc::datagen {

namespace {

// Popularity weights per attribute (index-aligned with the schema's
// domains); deliberately skewed so equality queries repeat.
const std::vector<std::vector<double>>& ValueWeights() {
  static const auto& weights = *new std::vector<std::vector<double>>{
      {25, 20, 15, 12, 10, 8, 6, 4},  // Make.
      {30, 25, 18, 12, 10, 5},        // Body.
      {22, 20, 18, 15, 12, 8, 5},     // Color.
      {55, 25, 12, 8},                // Fuel.
      {70, 30},                       // Transmission.
      {60, 25, 15},                   // Drivetrain.
  };
  return weights;
}

}  // namespace

categorical::CategoricalSchema UsedCarCategoricalSchema() {
  auto schema = categorical::CategoricalSchema::Create(
      {"Make", "Body", "Color", "Fuel", "Transmission", "Drivetrain"},
      {{"Toyota", "Honda", "Ford", "Chevrolet", "Nissan", "BMW", "Audi",
        "Subaru"},
       {"Sedan", "SUV", "Hatchback", "Truck", "Coupe", "Convertible"},
       {"Black", "White", "Silver", "Gray", "Blue", "Red", "Green"},
       {"Gasoline", "Hybrid", "Diesel", "Electric"},
       {"Automatic", "Manual"},
       {"FWD", "AWD", "RWD"}});
  SOC_CHECK(schema.ok());
  return std::move(schema).value();
}

categorical::CategoricalTable GenerateCategoricalCatalog(
    const CategoricalCatalogOptions& options) {
  Rng rng(options.seed);
  categorical::CategoricalTable table(UsedCarCategoricalSchema());
  const auto& weights = ValueWeights();
  for (int i = 0; i < options.num_cars; ++i) {
    categorical::CategoricalTuple car(weights.size());
    for (std::size_t a = 0; a < weights.size(); ++a) {
      car[a] = static_cast<int>(rng.NextWeighted(weights[a]));
    }
    // Correlation: coupes/convertibles (body 4, 5) skew manual + RWD.
    if (car[1] >= 4) {
      if (rng.NextBernoulli(0.6)) car[4] = 1;  // Manual.
      if (rng.NextBernoulli(0.6)) car[5] = 2;  // RWD.
    }
    const Status status = table.AddRow(std::move(car));
    SOC_CHECK(status.ok());
  }
  return table;
}

std::vector<categorical::CategoricalQuery> MakeCategoricalWorkload(
    const categorical::CategoricalTable& catalog,
    const CategoricalWorkloadOptions& options) {
  SOC_CHECK_GT(catalog.num_rows(), 0);
  Rng rng(options.seed);
  const int num_attrs = catalog.schema().num_attributes();
  std::vector<categorical::CategoricalQuery> queries;
  queries.reserve(options.num_queries);
  for (int i = 0; i < options.num_queries; ++i) {
    const categorical::CategoricalTuple& anchor =
        catalog.row(rng.NextUint64(catalog.num_rows()));
    const int conditions =
        static_cast<int>(rng.NextWeighted(options.conditions_distribution)) +
        1;
    categorical::CategoricalQuery query;
    for (int attr : rng.SampleWithoutReplacement(num_attrs, conditions)) {
      query.push_back({attr, anchor[attr]});
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace soc::datagen
