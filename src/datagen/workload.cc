#include "datagen/workload.h"

#include <algorithm>

#include "common/random.h"

namespace soc::datagen {

QueryLog MakeSyntheticWorkload(const AttributeSchema& schema,
                               const SyntheticWorkloadOptions& options) {
  SOC_CHECK_GE(options.num_queries, 0);
  SOC_CHECK(!options.size_distribution.empty());
  SOC_CHECK_GE(schema.size(),
               static_cast<int>(options.size_distribution.size()));
  Rng rng(options.seed);
  QueryLog log(schema);
  for (int i = 0; i < options.num_queries; ++i) {
    const int size =
        static_cast<int>(rng.NextWeighted(options.size_distribution)) + 1;
    log.AddQueryFromIndices(rng.SampleWithoutReplacement(schema.size(), size));
  }
  return log;
}

namespace {

// Samples `size` distinct attributes proportionally to `weights`.
DynamicBitset SampleWeightedAttributes(Rng& rng, std::vector<double> weights,
                                       int size) {
  DynamicBitset result(weights.size());
  for (int picked = 0; picked < size; ++picked) {
    const int attr = static_cast<int>(rng.NextWeighted(weights));
    result.Set(attr);
    weights[attr] = 0.0;  // Without replacement.
  }
  return result;
}

}  // namespace

QueryLog MakeRealLikeWorkload(const BooleanTable& dataset,
                              const RealLikeWorkloadOptions& options) {
  SOC_CHECK_GE(options.num_queries, 0);
  SOC_CHECK_GT(dataset.num_rows(), 0);
  SOC_CHECK_GE(dataset.num_attributes(), 8);
  Rng rng(options.seed);
  const int num_attrs = dataset.num_attributes();
  const std::vector<int> freq = dataset.AttributeFrequencies();

  // Hot attributes: sharply skewed toward high prevalence (what buyers
  // actually filter on). One-off queries use a flatter distribution that
  // favors mid/rare attributes.
  std::vector<double> hot_weights(num_attrs);
  std::vector<double> oneoff_weights(num_attrs);
  for (int a = 0; a < num_attrs; ++a) {
    const double prevalence =
        static_cast<double>(freq[a]) / dataset.num_rows();
    hot_weights[a] = prevalence * prevalence * prevalence * prevalence;
    oneoff_weights[a] = 0.2 + (1.0 - prevalence);
  }

  // Hot templates of 5-6 popular attributes. Real logs exhibit *nested*
  // popularity — a small core of must-have features appears in nearly
  // every query — so templates share a 3-attribute core drawn from the
  // top of a ranked hot pool, plus 2-3 attributes from the rest of the
  // pool. This nesting is what lets frequency-greedy selections recover
  // most of the optimum (paper, Fig 7).
  const DynamicBitset hot_pool_bits =
      SampleWeightedAttributes(rng, hot_weights, 8);
  std::vector<int> hot_pool = hot_pool_bits.SetBits();
  // Rank the pool by prevalence, highest first.
  std::sort(hot_pool.begin(), hot_pool.end(),
            [&freq](int a, int b) { return freq[a] > freq[b]; });
  std::vector<DynamicBitset> templates;
  for (int i = 0; i < options.num_templates; ++i) {
    const int size = 5 + static_cast<int>(rng.NextUint64(2));
    DynamicBitset tmpl(num_attrs);
    for (int r = 0; r < 3; ++r) tmpl.Set(hot_pool[r]);  // Shared core.
    // Fill from the pool tail, favoring earlier ranks.
    std::vector<double> tail_weights(hot_pool.size(), 0.0);
    for (std::size_t r = 3; r < hot_pool.size(); ++r) {
      tail_weights[r] = 1.0 / (r - 2);
    }
    while (static_cast<int>(tmpl.Count()) < size) {
      const std::size_t rank = rng.NextWeighted(tail_weights);
      tmpl.Set(hot_pool[rank]);
      tail_weights[rank] = 0.0;
    }
    templates.push_back(std::move(tmpl));
  }

  QueryLog log(dataset.schema());
  for (int i = 0; i < options.num_queries; ++i) {
    DynamicBitset query(num_attrs);
    if (!templates.empty() &&
        rng.NextBernoulli(options.template_probability)) {
      query = templates[rng.NextUint64(templates.size())];
      if (rng.NextBernoulli(options.swap_probability)) {
        // Swap one attribute for another hot one (keeps size in 5-6).
        const std::vector<int> members = query.SetBits();
        query.Reset(members[rng.NextUint64(members.size())]);
        std::vector<double> weights = hot_weights;
        query.ForEachSetBit([&weights](int attr) { weights[attr] = 0.0; });
        query.Set(static_cast<int>(rng.NextWeighted(weights)));
      }
    } else {
      const int size = 4 + static_cast<int>(rng.NextUint64(2));
      query = SampleWeightedAttributes(rng, oneoff_weights, size);
    }
    log.AddQuery(std::move(query));
  }
  return log;
}

std::vector<int> PickAdvertisedTuples(const BooleanTable& dataset, int count,
                                      std::uint64_t seed) {
  Rng rng(seed);
  count = std::min(count, dataset.num_rows());
  return rng.SampleWithoutReplacement(dataset.num_rows(), count);
}

}  // namespace soc::datagen
