// Synthetic categorical used-car catalog (make / body / color / fuel /
// transmission / drivetrain) with an equality-condition query workload —
// the categorical scenario of Sec II.B / V.

#ifndef SOC_DATAGEN_CATEGORICAL_CATALOG_H_
#define SOC_DATAGEN_CATEGORICAL_CATALOG_H_

#include <cstdint>
#include <vector>

#include "categorical/categorical.h"

namespace soc::datagen {

// Schema: Make(8) Body(6) Color(7) Fuel(4) Transmission(2) Drivetrain(3).
categorical::CategoricalSchema UsedCarCategoricalSchema();

struct CategoricalCatalogOptions {
  int num_cars = 3000;
  std::uint64_t seed = 808;
};

// Cars with skewed value popularity (common makes/colors dominate) and a
// few correlated combinations (sports bodies skew manual + RWD).
categorical::CategoricalTable GenerateCategoricalCatalog(
    const CategoricalCatalogOptions& options = {});

struct CategoricalWorkloadOptions {
  int num_queries = 300;
  std::uint64_t seed = 99;
  // Probability a query has 1, 2, 3 conditions.
  std::vector<double> conditions_distribution = {0.4, 0.4, 0.2};
};

// Equality-condition queries anchored at catalog rows (buyers search for
// combinations that exist).
std::vector<categorical::CategoricalQuery> MakeCategoricalWorkload(
    const categorical::CategoricalTable& catalog,
    const CategoricalWorkloadOptions& options = {});

}  // namespace soc::datagen

#endif  // SOC_DATAGEN_CATEGORICAL_CATALOG_H_
