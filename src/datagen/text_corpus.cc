#include "datagen/text_corpus.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"

namespace soc::datagen {

TextCorpus GenerateTextCorpus(const TextCorpusOptions& options) {
  SOC_CHECK_GT(options.vocabulary_size, 0);
  SOC_CHECK_GT(options.num_topics, 0);
  SOC_CHECK_GE(options.max_document_length, options.min_document_length);
  SOC_CHECK_LE(options.words_per_topic, options.vocabulary_size);
  Rng rng(options.seed);
  const ZipfDistribution background(options.vocabulary_size,
                                    options.zipf_exponent);

  TextCorpus corpus;
  // Topic vocabularies: distinct mid-frequency words per topic (sampled
  // without replacement from the whole vocabulary so topics overlap only
  // by background usage).
  for (int topic = 0; topic < options.num_topics; ++topic) {
    corpus.topic_words.push_back(rng.SampleWithoutReplacement(
        options.vocabulary_size, options.words_per_topic));
  }

  for (int d = 0; d < options.num_documents; ++d) {
    const int topic = static_cast<int>(rng.NextUint64(options.num_topics));
    const int length = rng.NextInt(options.min_document_length,
                                   options.max_document_length);
    std::vector<int> terms;
    terms.reserve(length);
    const std::vector<int>& topical = corpus.topic_words[topic];
    for (int w = 0; w < length; ++w) {
      if (rng.NextBernoulli(options.topic_word_fraction)) {
        terms.push_back(topical[rng.NextUint64(topical.size())]);
      } else {
        terms.push_back(background.Sample(rng));
      }
    }
    corpus.documents.push_back(std::move(terms));
    corpus.document_topics.push_back(topic);
  }
  return corpus;
}

std::vector<text::SparseQuery> MakeTextWorkload(
    const TextCorpus& corpus, const TextWorkloadOptions& options) {
  SOC_CHECK(!corpus.topic_words.empty());
  Rng rng(options.seed);
  std::vector<text::SparseQuery> queries;
  queries.reserve(options.num_queries);
  for (int i = 0; i < options.num_queries; ++i) {
    const std::vector<int>& topical =
        corpus.topic_words[rng.NextUint64(corpus.topic_words.size())];
    const int size =
        static_cast<int>(rng.NextWeighted(options.size_distribution)) + 1;
    text::SparseQuery query;
    for (int pick :
         rng.SampleWithoutReplacement(static_cast<int>(topical.size()),
                                      std::min<int>(size, topical.size()))) {
      query.push_back(topical[pick]);
    }
    std::sort(query.begin(), query.end());
    queries.push_back(std::move(query));
  }
  return queries;
}

text::TextIndex IndexCorpus(const TextCorpus& corpus) {
  text::TextIndex index;
  for (const std::vector<int>& document : corpus.documents) {
    index.AddDocumentTerms(document);
  }
  return index;
}

}  // namespace soc::datagen
