// Numeric databases with range-query logs (Sec II.B / Sec V): queries
// specify [lo, hi] ranges over a subset of attributes (e.g. desired price
// and resolution ranges for a camera). Advertising the compressed tuple t'
// means publishing m of its numeric values; a range query retrieves t' iff
// every attribute it constrains is published and the published value lies
// in the range.
//
// Reduction (Sec V): each query whose ranges all contain the new tuple's
// values maps to the Boolean query of its constrained attributes; other
// queries are unwinnable and dropped. The Boolean new tuple is all ones,
// giving an SOC-CB-QL instance over the original attributes.

#ifndef SOC_NUMERIC_NUMERIC_H_
#define SOC_NUMERIC_NUMERIC_H_

#include <string>
#include <vector>

#include "boolean/query_log.h"
#include "common/status.h"
#include "core/solver.h"

namespace soc::numeric {

class NumericTable {
 public:
  explicit NumericTable(std::vector<std::string> attribute_names);

  int num_attributes() const { return static_cast<int>(names_.size()); }
  const std::string& attribute_name(int a) const { return names_.at(a); }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  const std::vector<double>& row(int i) const { return rows_.at(i); }

  Status AddRow(std::vector<double> values);

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> rows_;
};

// One range condition lo <= value(attribute) <= hi (inclusive).
struct RangeCondition {
  int attribute = 0;
  double lo = 0.0;
  double hi = 0.0;
};

using RangeQuery = std::vector<RangeCondition>;

// True iff every condition's range contains the tuple's value.
bool RangeQueryMatches(const RangeQuery& query,
                       const std::vector<double>& tuple);

struct NumericReduction {
  QueryLog boolean_log;
  DynamicBitset boolean_tuple;  // All ones.
  int dropped_queries = 0;      // Out-of-range (unwinnable) queries.
};

StatusOr<NumericReduction> ReduceNumericToBoolean(
    const std::vector<std::string>& attribute_names,
    const std::vector<RangeQuery>& queries, const std::vector<double>& tuple);

struct NumericSolution {
  std::vector<int> selected_attributes;  // Ascending attribute ids.
  int satisfied_queries = 0;
};

// Picks the best m numeric attributes of `tuple` to publish.
StatusOr<NumericSolution> SolveNumericSoc(
    const SocSolver& base, const std::vector<std::string>& attribute_names,
    const std::vector<RangeQuery>& queries, const std::vector<double>& tuple,
    int m);

}  // namespace soc::numeric

#endif  // SOC_NUMERIC_NUMERIC_H_
