#include "numeric/numeric.h"

#include <cmath>

namespace soc::numeric {

NumericTable::NumericTable(std::vector<std::string> attribute_names)
    : names_(std::move(attribute_names)) {}

Status NumericTable::AddRow(std::vector<double> values) {
  if (static_cast<int>(values.size()) != num_attributes()) {
    return InvalidArgumentError("row width mismatch");
  }
  for (double v : values) {
    if (std::isnan(v)) return InvalidArgumentError("NaN value in row");
  }
  rows_.push_back(std::move(values));
  return Status::OK();
}

bool RangeQueryMatches(const RangeQuery& query,
                       const std::vector<double>& tuple) {
  for (const RangeCondition& condition : query) {
    const double value = tuple.at(condition.attribute);
    if (value < condition.lo || value > condition.hi) return false;
  }
  return true;
}

StatusOr<NumericReduction> ReduceNumericToBoolean(
    const std::vector<std::string>& attribute_names,
    const std::vector<RangeQuery>& queries, const std::vector<double>& tuple) {
  if (attribute_names.size() != tuple.size()) {
    return InvalidArgumentError("tuple width mismatch");
  }
  const int num_attrs = static_cast<int>(attribute_names.size());
  SOC_ASSIGN_OR_RETURN(AttributeSchema schema, AttributeSchema::Create(
                                                   attribute_names));
  NumericReduction reduction{QueryLog(std::move(schema)),
                             DynamicBitset(num_attrs), 0};
  reduction.boolean_tuple.SetAll();
  for (const RangeQuery& query : queries) {
    for (const RangeCondition& condition : query) {
      if (condition.attribute < 0 || condition.attribute >= num_attrs) {
        return OutOfRangeError("range condition attribute out of range");
      }
      if (condition.lo > condition.hi) {
        return InvalidArgumentError("range with lo > hi");
      }
    }
    if (!RangeQueryMatches(query, tuple)) {
      ++reduction.dropped_queries;
      continue;
    }
    DynamicBitset boolean_query(num_attrs);
    for (const RangeCondition& condition : query) {
      boolean_query.Set(condition.attribute);
    }
    reduction.boolean_log.AddQuery(std::move(boolean_query));
  }
  return reduction;
}

StatusOr<NumericSolution> SolveNumericSoc(
    const SocSolver& base, const std::vector<std::string>& attribute_names,
    const std::vector<RangeQuery>& queries, const std::vector<double>& tuple,
    int m) {
  SOC_ASSIGN_OR_RETURN(
      NumericReduction reduction,
      ReduceNumericToBoolean(attribute_names, queries, tuple));
  SOC_ASSIGN_OR_RETURN(
      SocSolution boolean_solution,
      base.Solve(reduction.boolean_log, reduction.boolean_tuple, m));
  NumericSolution solution;
  solution.selected_attributes = boolean_solution.selected.SetBits();
  solution.satisfied_queries = boolean_solution.satisfied_queries;
  return solution;
}

}  // namespace soc::numeric
