#include "tenant/result_cache.h"

#include <algorithm>

#include "common/logging.h"

namespace soc::tenant {

ResultCache::ResultCache(std::size_t capacity, serve::ServeMetrics* metrics)
    : capacity_(std::max<std::size_t>(1, capacity)), metrics_(metrics) {}

void ResultCache::Count(const char* name) const {
  if (metrics_ != nullptr) metrics_->Increment(name);
}

CachedResultPtr ResultCache::Probe(const ResultCacheKey& key, bool count) {
  MutexLock lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  // Bump to most-recent; splice moves the node without invalidating the
  // iterator stored in the entry.
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  if (count) Count(kResultCacheHits);
  return it->second.result;
}

CachedResultPtr ResultCache::Lookup(const ResultCacheKey& key,
                                    const Deadline& deadline,
                                    FlightPtr* leader_flight) {
  leader_flight->reset();
  if (CachedResultPtr hit = Probe(key, /*count=*/true)) return hit;

  // Miss: join or found the flight for this key.
  FlightPtr flight;
  bool leader = false;
  {
    MutexLock lock(flights_mutex_);
    auto& slot = flights_[key];
    if (slot == nullptr) {
      slot = std::make_shared<Flight>();
      leader = true;
    }
    flight = slot;
  }
  Count(kResultCacheMisses);
  if (leader) {
    *leader_flight = std::move(flight);
    return nullptr;
  }

  // Follower: wait for the leader, bounded by this request's own
  // deadline — a slow leader must not eat a faster request's budget.
  Count(kResultCacheFlightWaits);
  {
    MutexLock lock(flight->mutex);
    while (!flight->done) {
      const double remaining = deadline.RemainingSeconds();
      if (remaining <= 0) return nullptr;  // Solve solo, don't publish.
      flight->cv.WaitFor(flight->mutex, std::min(remaining, 0.05));
    }
  }
  // Leader resolved: either it published (re-probe hits, uncounted — the
  // miss above already tallied this lookup) or it abandoned. On
  // abandonment, retry leadership so one of the waiters still fills the
  // cache for the rest.
  if (CachedResultPtr hit = Probe(key, /*count=*/false)) return hit;
  {
    MutexLock lock(flights_mutex_);
    auto& slot = flights_[key];
    if (slot == nullptr || slot == flight) {
      // First re-prober after an abandon: take over as leader.
      slot = std::make_shared<Flight>();
      *leader_flight = slot;
      return nullptr;
    }
    // Someone else already leads a fresh flight; solve solo rather than
    // queueing behind a second wait (bounded staleness of effort, and
    // the deadline has already been partially spent).
  }
  return nullptr;
}

void ResultCache::Resolve(const ResultCacheKey& key, const FlightPtr& flight) {
  {
    MutexLock lock(flights_mutex_);
    const auto it = flights_.find(key);
    if (it != flights_.end() && it->second == flight) flights_.erase(it);
  }
  MutexLock lock(flight->mutex);
  flight->done = true;
  flight->cv.NotifyAll();
}

void ResultCache::Publish(const ResultCacheKey& key, FlightPtr flight,
                          CachedResult result) {
  SOC_CHECK(flight != nullptr);
  {
    MutexLock lock(mutex_);
    auto [it, inserted] = entries_.emplace(key, Entry{});
    if (inserted) {
      lru_.push_front(&it->first);
      it->second.lru_pos = lru_.begin();
    } else {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    }
    it->second.result =
        std::make_shared<const CachedResult>(std::move(result));
    Count(kResultCacheInserts);
    while (entries_.size() > capacity_) {
      const ResultCacheKey* victim = lru_.back();
      lru_.pop_back();
      entries_.erase(*victim);
      Count(kResultCacheEvictions);
    }
  }
  Resolve(key, flight);
}

void ResultCache::Abandon(const ResultCacheKey& key, FlightPtr flight) {
  SOC_CHECK(flight != nullptr);
  Resolve(key, flight);
}

std::size_t ResultCache::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

}  // namespace soc::tenant
