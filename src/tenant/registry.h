// TenantRegistry: the control plane of the multi-tenant serving layer.
// Maps tenant id -> (shard via consistent hashing, current TenantSnapshot
// via an RCU slot).
//
// Reader path (every request): Acquire() takes the registry lock in
// shared mode just long enough to copy a shared_ptr — never blocked by a
// concurrent publish building preprocessing state, because snapshot
// construction happens entirely outside the lock.
//
// Writer path (admin): CreateTenant / PublishEpoch build the new
// immutable snapshot unlocked, then swap the slot under the exclusive
// lock. In-flight requests keep solving against whatever snapshot they
// pinned; the old epoch drains when its last reference drops.
//
// Sharding is fixed at construction (the ring is immutable); tenants map
// onto shards by ConsistentHashRing::ShardOf(tenant_id), so a future
// resharding moves only ~1/N of tenants.

#ifndef SOC_TENANT_REGISTRY_H_
#define SOC_TENANT_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "boolean/query_log.h"
#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "tenant/consistent_hash.h"
#include "tenant/snapshot.h"

namespace soc::tenant {

struct TenantRegistryOptions {
  int vnodes_per_shard = 64;
  // Per-engine LRU capacity of each snapshot's MFI threshold cache.
  std::size_t mfi_cache_capacity = 32;
};

class TenantRegistry {
 public:
  explicit TenantRegistry(int num_shards, TenantRegistryOptions options = {});

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  // Registers `id` at epoch 1. Fails (kFailedPrecondition) if the tenant
  // already exists — use PublishEpoch to replace a catalog.
  Status CreateTenant(const std::string& id, QueryLog log)
      SOC_EXCLUDES(mutex_);

  // Replaces the tenant's catalog: builds epoch N+1 unlocked, swaps the
  // slot, returns the new epoch. kNotFound for unknown tenants.
  //
  // Concurrent publishes for the same tenant are serialized by the swap:
  // each bumps from the epoch it observed at entry, and the slot only
  // ever moves to a strictly larger epoch.
  StatusOr<std::int64_t> PublishEpoch(const std::string& id, QueryLog log)
      SOC_EXCLUDES(mutex_);

  // Pins the tenant's current snapshot; nullptr if the tenant is unknown.
  SnapshotPtr Acquire(const std::string& id) const SOC_EXCLUDES(mutex_);

  // The shard owning `id` (defined for unknown tenants too — routing
  // happens before existence is checked).
  int ShardOf(const std::string& id) const { return ring_.ShardOf(id); }

  int num_shards() const { return ring_.num_shards(); }
  std::vector<std::string> TenantIds() const SOC_EXCLUDES(mutex_);
  std::int64_t tenant_count() const SOC_EXCLUDES(mutex_);
  // Total PublishEpoch swaps across all tenants (admin-path counter).
  std::int64_t epochs_published() const SOC_EXCLUDES(mutex_);

 private:
  const TenantRegistryOptions options_;
  const ConsistentHashRing ring_;

  mutable SharedMutex mutex_{lock_rank::kTenantRegistry};
  std::map<std::string, SnapshotPtr> tenants_ SOC_GUARDED_BY(mutex_);
  std::int64_t epochs_published_ SOC_GUARDED_BY(mutex_) = 0;
};

}  // namespace soc::tenant

#endif  // SOC_TENANT_REGISTRY_H_
