// ConsistentHashRing: stable tenant -> shard routing for the multi-tenant
// serving layer.
//
// Each shard owns `vnodes_per_shard` points on a 64-bit ring; a key routes
// to the shard owning the first point at or after Hash(key) (wrapping).
// Virtual nodes smooth the load split and give the classic consistent-
// hashing guarantee: growing from N to N+1 shards remaps only ~1/(N+1) of
// the keyspace, so a resharded deployment keeps most tenants (and their
// warm result caches) where they were.
//
// Hashing is a SplitMix64 finalizer over FNV-1a — deterministic across
// platforms and standard libraries, like everything else keyed by seeds in
// this repository (common/random.h rationale). Immutable after
// construction, hence trivially thread-safe.

#ifndef SOC_TENANT_CONSISTENT_HASH_H_
#define SOC_TENANT_CONSISTENT_HASH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace soc::tenant {

class ConsistentHashRing {
 public:
  // `num_shards` >= 1 (clamped); `vnodes_per_shard` >= 1 (clamped).
  explicit ConsistentHashRing(int num_shards, int vnodes_per_shard = 64);

  // The shard owning `key`, in [0, num_shards()).
  int ShardOf(const std::string& key) const;

  int num_shards() const { return num_shards_; }
  int vnodes_per_shard() const { return vnodes_per_shard_; }

  // Platform-stable 64-bit hash of `bytes` (exposed for tests and for
  // anyone keying auxiliary structures compatibly with the ring).
  static std::uint64_t HashBytes(const std::string& bytes);

 private:
  int num_shards_ = 1;
  int vnodes_per_shard_ = 1;
  // Sorted (ring point, shard index); binary-searched by ShardOf.
  std::vector<std::pair<std::uint64_t, int>> points_;
};

}  // namespace soc::tenant

#endif  // SOC_TENANT_CONSISTENT_HASH_H_
