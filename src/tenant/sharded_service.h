// ShardedService: the multi-tenant front door. Composes a TenantRegistry
// (tenant -> snapshot RCU slots + consistent-hash ring) with N
// TenantShards (each a full PR-6 serving stack: EDF queue, cost model,
// breakers, ladder, watchdog, worker pool, result cache).
//
// Data path:  Submit routes by ring.ShardOf(tenant_id) and hands the
//             request to that shard; everything after — snapshot pin,
//             cache probe, admission, solve — is shard-local, so tenants
//             on different shards share nothing but the registry's
//             read-mostly lock.
// Admin path: CreateTenant / PublishEpoch build snapshots off to the
//             side and swap registry slots; no shard pauses, no queue
//             flush — in-flight requests finish on the epoch they
//             pinned, new requests pick up the new one.
//
// Metrics() folds per-shard snapshots into service totals (counters and
// histograms merge exactly; see MetricsSnapshot::MergeFrom) and exposes
// every shard's gauge set under a `shard.<i>.` prefix — the per-shard
// queue/occupancy view the Prometheus exporter renders.

#ifndef SOC_TENANT_SHARDED_SERVICE_H_
#define SOC_TENANT_SHARDED_SERVICE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "boolean/query_log.h"
#include "common/status.h"
#include "serve/metrics.h"
#include "serve/visibility_service.h"
#include "tenant/registry.h"
#include "tenant/shard.h"

namespace soc::tenant {

struct ShardedServiceOptions {
  int num_shards = 4;
  int vnodes_per_shard = 64;
  // Per-engine MFI threshold-cache capacity of every snapshot.
  std::size_t mfi_cache_capacity = 32;
  // Applied to every shard.
  TenantShardOptions shard;
};

class ShardedService {
 public:
  explicit ShardedService(ShardedServiceOptions options = {});
  ~ShardedService();

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  // Admin path. Thread-safe against the data path and against itself.
  Status CreateTenant(const std::string& id, QueryLog log);
  // Returns the new epoch; counts `epochs_published` and emits a
  // publish_epoch trace span.
  StatusOr<std::int64_t> PublishEpoch(const std::string& id, QueryLog log);

  // Data path: routes to the owning shard. Non-blocking; the returned
  // future resolves with the full admission/overload semantics of
  // TenantShard::Submit.
  std::future<serve::SolveResponse> Submit(serve::SolveRequest request);

  // Blocks until every shard's accepted requests have resolved.
  void Drain();

  TenantRegistry& registry() { return registry_; }
  const TenantRegistry& registry() const { return registry_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int ShardOf(const std::string& tenant_id) const {
    return registry_.ShardOf(tenant_id);
  }
  TenantShard& shard(int index) { return *shards_[index]; }

  // Merged counters/histograms + per-shard `shard.<i>.*` gauges +
  // registry gauges (tenants, epochs_published).
  serve::MetricsSnapshot Metrics() const;

 private:
  const ShardedServiceOptions options_;
  TenantRegistry registry_;
  std::vector<std::unique_ptr<TenantShard>> shards_;
};

}  // namespace soc::tenant

#endif  // SOC_TENANT_SHARDED_SERVICE_H_
