// TenantShard: one shard of the multi-tenant serving plane — the
// per-shard half of ShardedService (tenant/sharded_service.h).
//
// A shard is VisibilityService's machinery generalized from one log to
// many tenants: it owns a worker ThreadPool, an EDF queue, a CostModel,
// per-solver CircuitBreakers, a DegradationLadder and a Watchdog (the
// whole PR-6 overload stack, now *per shard* so one hot tenant
// neighborhood cannot trip another shard's breakers), plus the pieces
// that make it multi-tenant:
//
//  * requests pin their tenant's TenantSnapshot at Submit (RCU acquire
//    through the shared TenantRegistry) and solve against that snapshot
//    even if PublishEpoch swaps the slot while they wait in the queue —
//    consistent-at-admission semantics, and the reason a response
//    carries the epoch it was computed under;
//  * a ResultCache keyed (tenant, tuple, m, epoch) answers repeated
//    traffic without touching a solver, single-flighting concurrent
//    misses on the same key.
//
// Per-tenant ledger: alongside the shard-level counters every outcome
// also bumps `tenant.<id>.submitted/accepted/completed/errors/expired/
// shutdown` so the chaos harness can audit, for every tenant,
//   accepted == completed + errors + expired + shutdown.
//
// Thread-safety mirrors VisibilityService: Submit/Drain/Metrics from any
// thread; the destructor drains.

#ifndef SOC_TENANT_SHARD_H_
#define SOC_TENANT_SHARD_H_

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/mfi_solver.h"
#include "core/solver.h"
#include "obs/event_log.h"
#include "obs/slo.h"
#include "obs/trace_recorder.h"
#include "serve/circuit_breaker.h"
#include "serve/cost_model.h"
#include "serve/degradation_ladder.h"
#include "serve/edf_queue.h"
#include "serve/metrics.h"
#include "serve/visibility_service.h"
#include "serve/watchdog.h"
#include "tenant/registry.h"
#include "tenant/result_cache.h"
#include "tenant/snapshot.h"

namespace soc::tenant {

struct TenantShardOptions {
  int num_workers = 2;
  std::size_t max_queue = 256;  // 0 = unbounded.
  // Entries per shard result cache.
  std::size_t result_cache_capacity = 4096;
  double default_deadline_ms = 0;
  bool reject_expired = false;
  bool predictive_shedding = true;
  // Static cost-model prior features. A shard hosts many logs, so these
  // are aggregate expectations, not measurements of one instance; the
  // per-solver EWMA dominates once warm (serve/cost_model.h).
  serve::CostFeatures cost_features{/*num_queries=*/200,
                                    /*num_attributes=*/16,
                                    /*collapse_ratio=*/1.0};
  serve::CostModelOptions cost_model;
  serve::CircuitBreakerOptions breaker;
  serve::DegradationLadderOptions ladder;
  serve::WatchdogOptions watchdog;
  // Non-owning; must outlive the shard. nullptr disables tracing.
  obs::TraceRecorder* trace_recorder = nullptr;
  // Non-owning; must outlive the shard. Every outcome is recorded as a
  // wide event stamped with this shard's index and the pinned epoch.
  // Typically shared across all shards of one ShardedService.
  obs::EventLog* event_log = nullptr;
  // Non-owning; must outlive the shard. Receives every non-invalid
  // outcome keyed by tenant; shared across shards so burn rates are
  // service-wide per tenant.
  obs::SloEngine* slo_engine = nullptr;
  // Chaos/test injection, identical contract to VisibilityService's.
  serve::WorkerHook worker_hook;
};

class TenantShard {
 public:
  // `registry` is shared across shards and must outlive this one.
  TenantShard(int shard_index, const TenantRegistry* registry,
              TenantShardOptions options);
  ~TenantShard();

  TenantShard(const TenantShard&) = delete;
  TenantShard& operator=(const TenantShard&) = delete;

  // Non-blocking. request.tenant_id must name a registered tenant whose
  // ring shard is this one (ShardedService routes; direct callers are
  // trusted). Admission mirrors VisibilityService: validation ->
  // queue bound -> predictive shed -> EDF queue.
  std::future<serve::SolveResponse> Submit(serve::SolveRequest request)
      SOC_EXCLUDES(inflight_mutex_, queue_mutex_);

  // Blocks until every accepted request has resolved.
  void Drain() SOC_EXCLUDES(inflight_mutex_);

  int shard_index() const { return shard_index_; }
  int num_workers() const { return pool_.num_threads(); }
  const ResultCache& result_cache() const { return result_cache_; }

  // Shard-local counters/histograms plus the usual gauge set (queue
  // depth, busy workers, inflight, ladder level, breaker states,
  // result-cache residency). ShardedService merges these across shards.
  serve::MetricsSnapshot Metrics() const
      SOC_EXCLUDES(inflight_mutex_, queue_mutex_);

 private:
  struct QueuedRequest;

  void RunOne() SOC_EXCLUDES(queue_mutex_);
  serve::SolveResponse Execute(QueuedRequest& queued);
  void Finish(std::shared_ptr<QueuedRequest> queued,
              serve::SolveResponse response) SOC_EXCLUDES(inflight_mutex_);
  std::size_t QueueSize() const SOC_EXCLUDES(queue_mutex_);
  // Bumps both `name` and `tenant.<id>.<name>`.
  void CountTenant(const std::string& tenant_id, const char* name);
  // Records the wide event (stamped with this shard's index) and SLO
  // outcome for one resolved request; called on every path that
  // resolves a promise.
  void RecordOutcome(const serve::SolveRequest& request,
                     const serve::SolveResponse& response,
                     double deadline_ms, double predicted_ms);

  const int shard_index_;
  const TenantRegistry* const registry_;
  const TenantShardOptions options_;
  std::unordered_map<std::string, std::unique_ptr<SocSolver>> solvers_;
  MfiSocSolver mfi_walk_solver_;
  MfiSocSolver mfi_dfs_solver_;
  serve::ServeMetrics metrics_;
  ResultCache result_cache_;
  serve::CostModel cost_model_;
  serve::BreakerPanel breakers_;
  serve::DegradationLadder ladder_;

  mutable Mutex queue_mutex_{lock_rank::kShardQueue};
  serve::EdfQueue<std::shared_ptr<QueuedRequest>> edf_queue_
      SOC_GUARDED_BY(queue_mutex_);

  mutable Mutex inflight_mutex_{lock_rank::kShardInflight};
  CondVar inflight_cv_;
  std::int64_t inflight_ SOC_GUARDED_BY(inflight_mutex_) = 0;

  serve::Watchdog watchdog_;  // Before pool_: workers hold tickets.
  ThreadPool pool_;  // Last member: workers must die before state above.
};

}  // namespace soc::tenant

#endif  // SOC_TENANT_SHARD_H_
