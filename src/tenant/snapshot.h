// TenantSnapshot: one immutable epoch of one tenant's serving state —
// the collapsed query log plus the PreprocessingCache (shared MFI
// threshold indexes + attribute bitmaps) built over it.
//
// Snapshots are the RCU unit of the multi-tenant layer. The registry
// hands them out as shared_ptr-to-const; a request pins the snapshot it
// was admitted under for its whole lifetime, so PublishEpoch can swap the
// registry's slot without waiting for in-flight solves — the old epoch
// is destroyed when its last pinned reference drops ("drains").
//
// Epochs are per-tenant, monotonically increasing from 1. The epoch
// number participates in every ResultCache key, which is what makes
// cache invalidation on publish free: new requests pin the new snapshot,
// form keys with the new epoch, and simply never look up old entries
// (which age out of the LRU).
//
// The PreprocessingCache holds a reference to the snapshot's own log;
// snapshots are always heap-allocated (see TenantRegistry), so that
// reference is stable for the snapshot's lifetime.

#ifndef SOC_TENANT_SNAPSHOT_H_
#define SOC_TENANT_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "boolean/query_log.h"
#include "serve/preprocessing_cache.h"

namespace soc::tenant {

class TenantSnapshot {
 public:
  // `mfi_cache_capacity` bounds each MFI engine's threshold cache, as in
  // VisibilityServiceOptions.
  TenantSnapshot(std::string tenant_id, std::int64_t epoch, QueryLog log,
                 std::size_t mfi_cache_capacity)
      : tenant_id_(std::move(tenant_id)),
        epoch_(epoch),
        log_(std::move(log)),
        preprocessing_(log_, mfi_cache_capacity) {}

  TenantSnapshot(const TenantSnapshot&) = delete;
  TenantSnapshot& operator=(const TenantSnapshot&) = delete;

  const std::string& tenant_id() const { return tenant_id_; }
  std::int64_t epoch() const { return epoch_; }
  const QueryLog& log() const { return log_; }

  // Logically const: the cache is internally synchronized lazy state
  // (bitmaps, mined itemsets) over the immutable log.
  serve::PreprocessingCache& preprocessing() const { return preprocessing_; }

 private:
  const std::string tenant_id_;
  const std::int64_t epoch_;
  const QueryLog log_;  // Before preprocessing_: it holds a reference.
  mutable serve::PreprocessingCache preprocessing_;
};

using SnapshotPtr = std::shared_ptr<const TenantSnapshot>;

}  // namespace soc::tenant

#endif  // SOC_TENANT_SNAPSHOT_H_
