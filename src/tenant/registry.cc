#include "tenant/registry.h"

#include <memory>
#include <utility>

namespace soc::tenant {

TenantRegistry::TenantRegistry(int num_shards, TenantRegistryOptions options)
    : options_(options), ring_(num_shards, options.vnodes_per_shard) {}

Status TenantRegistry::CreateTenant(const std::string& id, QueryLog log) {
  if (id.empty()) return InvalidArgumentError("tenant id must be non-empty");
  {
    ReaderMutexLock lock(mutex_);
    if (tenants_.count(id) > 0) {
      return FailedPreconditionError("tenant '" + id +
                                     "' already exists; use PublishEpoch");
    }
  }
  // Build outside any lock: preprocessing construction (complemented DB,
  // feature scans) must never stall readers of other tenants.
  auto snapshot = std::make_shared<const TenantSnapshot>(
      id, /*epoch=*/1, std::move(log), options_.mfi_cache_capacity);
  WriterMutexLock lock(mutex_);
  // Racing creators: first swap wins, later ones fail as already-exists.
  const auto [it, inserted] = tenants_.emplace(id, std::move(snapshot));
  (void)it;
  if (!inserted) {
    return FailedPreconditionError("tenant '" + id +
                                   "' already exists; use PublishEpoch");
  }
  return Status::OK();
}

StatusOr<std::int64_t> TenantRegistry::PublishEpoch(const std::string& id,
                                                    QueryLog log) {
  std::int64_t base_epoch = 0;
  {
    ReaderMutexLock lock(mutex_);
    const auto it = tenants_.find(id);
    if (it == tenants_.end()) {
      return NotFoundError("unknown tenant '" + id + "'");
    }
    base_epoch = it->second->epoch();
  }
  auto snapshot = std::make_shared<const TenantSnapshot>(
      id, base_epoch + 1, std::move(log), options_.mfi_cache_capacity);
  WriterMutexLock lock(mutex_);
  const auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    return NotFoundError("unknown tenant '" + id + "'");
  }
  // A concurrent publish may have advanced the slot past our base; only
  // move forward so epochs stay strictly increasing for readers.
  if (it->second->epoch() >= snapshot->epoch()) {
    return FailedPreconditionError(
        "concurrent publish for tenant '" + id + "' won (slot at epoch " +
        std::to_string(it->second->epoch()) + ")");
  }
  const std::int64_t epoch = snapshot->epoch();
  it->second = std::move(snapshot);  // Old epoch drains via shared_ptr.
  ++epochs_published_;
  return epoch;
}

SnapshotPtr TenantRegistry::Acquire(const std::string& id) const {
  ReaderMutexLock lock(mutex_);
  const auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second;
}

std::vector<std::string> TenantRegistry::TenantIds() const {
  std::vector<std::string> ids;
  ReaderMutexLock lock(mutex_);
  ids.reserve(tenants_.size());
  for (const auto& [id, snapshot] : tenants_) ids.push_back(id);
  return ids;
}

std::int64_t TenantRegistry::tenant_count() const {
  ReaderMutexLock lock(mutex_);
  return static_cast<std::int64_t>(tenants_.size());
}

std::int64_t TenantRegistry::epochs_published() const {
  ReaderMutexLock lock(mutex_);
  return epochs_published_;
}

}  // namespace soc::tenant
