// ResultCache: the per-shard answer cache of the multi-tenant layer.
//
// Keyed by (tenant, canonical tuple bits, m, log-epoch): two requests
// that agree on all four necessarily have the same optimal answer, so a
// hit skips admission cost modeling, preprocessing and the solver
// entirely. The epoch component makes PublishEpoch invalidation free —
// no scan, no version check at read time: post-publish requests pin the
// new snapshot, form keys with the new epoch, and old-epoch entries are
// simply unreachable until the LRU ages them out.
//
// Only exact (OK, non-degraded) results are admitted; a degraded partial
// answer is a function of its deadline, not of the key, and must never
// be replayed to a request with a healthier budget.
//
// Misses are single-flight per key, mirroring SharedMfiIndex: concurrent
// misses elect one leader (the caller that receives a Flight token);
// followers wait for its Publish/Abandon and then re-probe — an
// abandoned flight promotes the first re-probing follower to the new
// leader. Followers bound their wait by the request deadline so a
// wedged leader cannot stall a worker past its budget.
//
// Every hit/miss/evict path increments a named ServeMetrics counter
// (kResultCache*); soc_lint's cache-metrics rule pins this invariant.

#ifndef SOC_TENANT_RESULT_CACHE_H_
#define SOC_TENANT_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "core/solver.h"
#include "serve/metrics.h"

namespace soc::tenant {

// Counter names recorded into the shard's ServeMetrics.
inline constexpr char kResultCacheHits[] = "result_cache.hits";
inline constexpr char kResultCacheMisses[] = "result_cache.misses";
inline constexpr char kResultCacheEvictions[] = "result_cache.evictions";
inline constexpr char kResultCacheInserts[] = "result_cache.inserts";
inline constexpr char kResultCacheFlightWaits[] = "result_cache.flight_waits";

struct ResultCacheKey {
  std::string tenant_id;
  std::string tuple_bits;  // Canonical 0/1 string, log-width.
  int m = 0;
  std::int64_t epoch = 0;

  friend bool operator<(const ResultCacheKey& a, const ResultCacheKey& b) {
    return std::tie(a.tenant_id, a.epoch, a.m, a.tuple_bits) <
           std::tie(b.tenant_id, b.epoch, b.m, b.tuple_bits);
  }
  friend bool operator==(const ResultCacheKey& a, const ResultCacheKey& b) {
    return a.tenant_id == b.tenant_id && a.epoch == b.epoch && a.m == b.m &&
           a.tuple_bits == b.tuple_bits;
  }
};

// What a hit replays: the exact solution plus the solver that produced
// it (echoed in the response so clients can see provenance).
struct CachedResult {
  SocSolution solution;
  std::string solver;
};
using CachedResultPtr = std::shared_ptr<const CachedResult>;

class ResultCache {
 public:
  // One in-progress solve per key. Returned by value (shared_ptr) from
  // Lookup to leaders; the leader must call Publish or Abandon exactly
  // once.
  struct Flight {
    Mutex mutex{lock_rank::kResultCacheFlight};
    CondVar cv;
    bool done SOC_GUARDED_BY(mutex) = false;
  };
  using FlightPtr = std::shared_ptr<Flight>;

  // `capacity` >= 1 entries (clamped); `metrics` non-owning, may be
  // nullptr (counters dropped — tests only).
  ResultCache(std::size_t capacity, serve::ServeMetrics* metrics);

  // The combined probe-or-join:
  //  * hit: returns the cached result (*leader_flight left null);
  //  * cold miss: returns nullptr and sets *leader_flight — the caller
  //    is the leader and owes Publish/Abandon;
  //  * in-flight miss: blocks until the leader resolves or `deadline`
  //    expires, then re-probes. Resolves to a hit, to leadership (the
  //    leader abandoned), or — on deadline expiry — to a nullptr miss
  //    with *leader_flight null: the caller should solve for itself and
  //    not publish.
  // Every return path has counted exactly one hit or one miss.
  CachedResultPtr Lookup(const ResultCacheKey& key, const Deadline& deadline,
                         FlightPtr* leader_flight)
      SOC_EXCLUDES(mutex_, flights_mutex_);

  // Leader success: inserts (evicting LRU entries past capacity) and
  // releases followers.
  void Publish(const ResultCacheKey& key, FlightPtr flight,
               CachedResult result) SOC_EXCLUDES(mutex_, flights_mutex_);

  // Leader failure (error / degraded / shed): releases followers without
  // inserting; the first re-prober becomes the new leader.
  void Abandon(const ResultCacheKey& key, FlightPtr flight)
      SOC_EXCLUDES(mutex_, flights_mutex_);

  std::size_t size() const SOC_EXCLUDES(mutex_);
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    CachedResultPtr result;
    // Position in lru_ (front = most recently used); list iterators are
    // stable under splice.
    std::list<const ResultCacheKey*>::iterator lru_pos;
  };

  // Probe + recency bump; counts a hit when found and `count` is true.
  CachedResultPtr Probe(const ResultCacheKey& key, bool count)
      SOC_EXCLUDES(mutex_);
  // Resolve the flight for `key` (if it is still `flight`) and wake
  // followers.
  void Resolve(const ResultCacheKey& key, const FlightPtr& flight)
      SOC_EXCLUDES(flights_mutex_);
  void Count(const char* name) const;

  const std::size_t capacity_;
  serve::ServeMetrics* const metrics_;  // Non-owning; may be nullptr.

  mutable Mutex mutex_{lock_rank::kResultCacheLru};
  std::map<ResultCacheKey, Entry> entries_ SOC_GUARDED_BY(mutex_);
  // Keys point into entries_ (std::map nodes are stable).
  std::list<const ResultCacheKey*> lru_ SOC_GUARDED_BY(mutex_);

  Mutex flights_mutex_{lock_rank::kResultCacheFlightTable};
  std::map<ResultCacheKey, FlightPtr> flights_ SOC_GUARDED_BY(flights_mutex_);
};

}  // namespace soc::tenant

#endif  // SOC_TENANT_RESULT_CACHE_H_
