#include "tenant/sharded_service.h"

#include <utility>

#include "obs/context_tracer.h"

namespace soc::tenant {

ShardedService::ShardedService(ShardedServiceOptions options)
    : options_(options), registry_(options.num_shards, [&] {
        TenantRegistryOptions registry_options;
        registry_options.vnodes_per_shard = options.vnodes_per_shard;
        registry_options.mfi_cache_capacity = options.mfi_cache_capacity;
        return registry_options;
      }()) {
  shards_.reserve(static_cast<std::size_t>(registry_.num_shards()));
  for (int i = 0; i < registry_.num_shards(); ++i) {
    shards_.push_back(
        std::make_unique<TenantShard>(i, &registry_, options.shard));
  }
}

// Shards drain in their own destructors; explicit so member order is
// irrelevant to correctness.
ShardedService::~ShardedService() { shards_.clear(); }

Status ShardedService::CreateTenant(const std::string& id, QueryLog log) {
  return registry_.CreateTenant(id, std::move(log));
}

StatusOr<std::int64_t> ShardedService::PublishEpoch(const std::string& id,
                                                    QueryLog log) {
  obs::TraceSpan span(options_.shard.trace_recorder, "publish_epoch",
                      "tenant");
  auto epoch = registry_.PublishEpoch(id, std::move(log));
  if (span.active()) {
    span.AddArg(obs::TraceArg::Str("tenant", id));
    span.AddArg(obs::TraceArg::Int("epoch", epoch.ok() ? *epoch : -1));
  }
  return epoch;
}

std::future<serve::SolveResponse> ShardedService::Submit(
    serve::SolveRequest request) {
  obs::TraceSpan span(options_.shard.trace_recorder, "route", "tenant");
  // Unroutable (empty tenant) requests still need a shard to produce the
  // typed rejection; shard 0 is as good as any and keeps the ledger in
  // one place.
  const int shard_index =
      request.tenant_id.empty() ? 0 : registry_.ShardOf(request.tenant_id);
  if (span.active()) {
    span.AddArg(obs::TraceArg::Str("tenant", request.tenant_id));
    span.AddArg(obs::TraceArg::Int("shard", shard_index));
  }
  return shards_[static_cast<std::size_t>(shard_index)]->Submit(
      std::move(request));
}

void ShardedService::Drain() {
  for (const auto& shard : shards_) shard->Drain();
}

serve::MetricsSnapshot ShardedService::Metrics() const {
  serve::MetricsSnapshot merged;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    serve::MetricsSnapshot shard_snapshot = shards_[i]->Metrics();
    // Every shard gauge is also preserved un-summed under its shard
    // prefix; the merged (summed) copy keeps additive gauges (queue
    // depth, inflight, busy workers) meaningful service-wide.
    for (const auto& [name, value] : shard_snapshot.gauges) {
      merged.gauges["shard." + std::to_string(i) + "." + name] = value;
    }
    merged.MergeFrom(shard_snapshot);
  }
  merged.gauges["tenants"] = static_cast<double>(registry_.tenant_count());
  merged.counters["epochs_published"] = registry_.epochs_published();
  return merged;
}

}  // namespace soc::tenant
