#include "tenant/consistent_hash.h"

#include <algorithm>

namespace soc::tenant {
namespace {

// SplitMix64 finalizer: bijective avalanche over a 64-bit state. Applied
// on top of FNV-1a to repair its weak high-bit diffusion.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t Fnv1a(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

std::uint64_t ConsistentHashRing::HashBytes(const std::string& bytes) {
  return Mix64(Fnv1a(bytes));
}

ConsistentHashRing::ConsistentHashRing(int num_shards, int vnodes_per_shard)
    : num_shards_(std::max(1, num_shards)),
      vnodes_per_shard_(std::max(1, vnodes_per_shard)) {
  points_.reserve(static_cast<std::size_t>(num_shards_) *
                  static_cast<std::size_t>(vnodes_per_shard_));
  for (int shard = 0; shard < num_shards_; ++shard) {
    for (int vnode = 0; vnode < vnodes_per_shard_; ++vnode) {
      // Mix the (shard, vnode) pair directly; no string round-trip so the
      // ring layout is independent of any textual naming convention.
      const std::uint64_t point =
          Mix64((static_cast<std::uint64_t>(shard) << 32) ^
                static_cast<std::uint64_t>(vnode) ^ 0x736f632d72696e67ULL);
      points_.emplace_back(point, shard);
    }
  }
  std::sort(points_.begin(), points_.end());
}

int ConsistentHashRing::ShardOf(const std::string& key) const {
  const std::uint64_t point = HashBytes(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), point,
      [](const std::pair<std::uint64_t, int>& entry, std::uint64_t value) {
        return entry.first < value;
      });
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->second;
}

}  // namespace soc::tenant
