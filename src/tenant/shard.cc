#include "tenant/shard.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "core/solver_registry.h"
#include "obs/context_tracer.h"
#include "serve/event_builder.h"

namespace soc::tenant {

namespace {

// Shard-level metric names; identical to VisibilityService's so merged
// multi-tenant snapshots and single-tenant snapshots read the same.
constexpr char kSubmitted[] = "submitted";
constexpr char kAccepted[] = "accepted";
constexpr char kRejectedQueueFull[] = "rejected_queue_full";
constexpr char kRejectedInvalid[] = "rejected_invalid";
constexpr char kRejectedExpired[] = "rejected_expired";
constexpr char kRejectedShutdown[] = "rejected_shutdown";
constexpr char kShedPredicted[] = "shed_predicted";
constexpr char kLateFallback[] = "late_fallback";
constexpr char kFastPathZero[] = "fast_path_zero";
constexpr char kCompleted[] = "completed";
constexpr char kDegraded[] = "degraded";
constexpr char kSolveErrors[] = "solve_errors";
constexpr char kBreakerRerouted[] = "breaker_rerouted";
constexpr char kLadderDowngraded[] = "ladder_downgraded";
constexpr char kUnknownTenant[] = "rejected_unknown_tenant";

}  // namespace

struct TenantShard::QueuedRequest {
  serve::SolveRequest request;
  SnapshotPtr snapshot;  // Pinned at Submit; the RCU read-side hold.
  std::promise<serve::SolveResponse> promise;
  WallTimer submit_timer;
  Deadline deadline = Deadline::Infinite();
  double effective_deadline_ms = 0;
  double predicted_ms = 0;
  std::int64_t submit_ns = 0;
};

TenantShard::TenantShard(int shard_index, const TenantRegistry* registry,
                         TenantShardOptions options)
    : shard_index_(shard_index),
      registry_(registry),
      options_(options),
      mfi_dfs_solver_([] {
        MfiSocOptions dfs;
        dfs.engine = MfiEngine::kExactDfs;
        return dfs;
      }()),
      result_cache_(options.result_cache_capacity, &metrics_),
      cost_model_(options.cost_features, options.num_workers,
                  options.cost_model),
      breakers_(RegisteredSolverNames(), options.breaker),
      ladder_(options.ladder),
      watchdog_(options.watchdog, &metrics_, options.trace_recorder),
      pool_(options.num_workers) {
  for (const std::string& name : RegisteredSolverNames()) {
    auto solver = CreateSolverByName(name);
    SOC_CHECK(solver.ok());
    solvers_.emplace(name, std::move(solver).value());
  }
}

TenantShard::~TenantShard() { pool_.Shutdown(); }

std::size_t TenantShard::QueueSize() const {
  MutexLock lock(queue_mutex_);
  return edf_queue_.size();
}

void TenantShard::CountTenant(const std::string& tenant_id,
                              const char* name) {
  metrics_.Increment(name);
  metrics_.Increment("tenant." + tenant_id + "." + name);
}

std::future<serve::SolveResponse> TenantShard::Submit(
    serve::SolveRequest request) {
  obs::TraceSpan admission(options_.trace_recorder, "admission", "serve");
  if (admission.active()) {
    admission.AddArg(obs::TraceArg::Str("id", request.id));
    admission.AddArg(obs::TraceArg::Str("tenant", request.tenant_id));
  }
  metrics_.Increment(kSubmitted);
  if (!request.tenant_id.empty()) {
    metrics_.Increment("tenant." + request.tenant_id + ".submitted");
  }
  if (request.solver.empty()) request.solver = "Fallback";

  auto queued = std::make_shared<QueuedRequest>();
  std::future<serve::SolveResponse> future = queued->promise.get_future();

  const auto reject = [&](Status status, const char* shed_reason = nullptr,
                          double retry_after_ms = 0) {
    serve::SolveResponse response;
    response.id = request.id;
    response.solver = request.solver;
    response.tenant_id = request.tenant_id;
    response.status = std::move(status);
    if (shed_reason != nullptr) response.shed_reason = shed_reason;
    response.retry_after_ms = retry_after_ms;
    RecordOutcome(request, response, request.deadline_ms, 0);
    queued->promise.set_value(std::move(response));
    return std::move(future);
  };

  // Validation tier. Tenant existence first: width is defined relative
  // to the tenant's pinned snapshot.
  if (request.tenant_id.empty()) {
    metrics_.Increment(kRejectedInvalid);
    return reject(InvalidArgumentError(
        "tenant_id is required on the sharded service"));
  }
  SnapshotPtr snapshot = registry_->Acquire(request.tenant_id);
  if (snapshot == nullptr) {
    metrics_.Increment(kRejectedInvalid);
    metrics_.Increment(kUnknownTenant);
    return reject(
        NotFoundError("unknown tenant '" + request.tenant_id + "'"));
  }
  const QueryLog& log = snapshot->log();
  if (static_cast<int>(request.tuple.size()) != log.num_attributes()) {
    metrics_.Increment(kRejectedInvalid);
    return reject(InvalidArgumentError(
        "tuple width " + std::to_string(request.tuple.size()) +
        " != tenant '" + request.tenant_id + "' attribute count " +
        std::to_string(log.num_attributes()) + " (epoch " +
        std::to_string(snapshot->epoch()) + ")"));
  }
  if (request.m < 0) {
    metrics_.Increment(kRejectedInvalid);
    return reject(InvalidArgumentError("m must be nonnegative"));
  }
  if (request.deadline_ms < 0) {
    metrics_.Increment(kRejectedInvalid);
    return reject(InvalidArgumentError("deadline_ms must be nonnegative"));
  }
  if (solvers_.find(request.solver) == solvers_.end()) {
    metrics_.Increment(kRejectedInvalid);
    return reject(NotFoundError("unknown solver '" + request.solver +
                                "'; valid: " +
                                Join(RegisteredSolverNames(), ", ")));
  }

  // Admission tier, identical to the single-tenant service.
  if (options_.max_queue > 0 && QueueSize() >= options_.max_queue) {
    metrics_.Increment(kRejectedQueueFull);
    return reject(
        OverloadedError("request queue full (" +
                        std::to_string(options_.max_queue) + ")"),
        serve::kShedReasonQueueFull, cost_model_.RetryAfterMs());
  }

  double deadline_ms = request.deadline_ms;
  if (deadline_ms == 0) deadline_ms = options_.default_deadline_ms;

  const double predicted_solve_ms =
      cost_model_.PredictSolveMs(request.solver, request.m);
  if (options_.predictive_shedding && deadline_ms > 0) {
    const double predicted_wait_ms = cost_model_.PredictedQueueWaitMs();
    const double predicted_ms = options_.reject_expired
                                    ? predicted_wait_ms + predicted_solve_ms
                                    : predicted_wait_ms;
    if (predicted_ms > deadline_ms) {
      metrics_.Increment(kShedPredicted);
      const double retry_after_ms = cost_model_.RetryAfterMs();
      if (options_.trace_recorder != nullptr &&
          options_.trace_recorder->enabled()) {
        options_.trace_recorder->RecordInstant(
            "shed", "serve",
            {obs::TraceArg::Str("id", request.id),
             obs::TraceArg::Str("tenant", request.tenant_id),
             obs::TraceArg::Str("reason", serve::kShedReasonPredicted),
             obs::TraceArg::Num("predicted_ms", predicted_ms),
             obs::TraceArg::Num("retry_after_ms", retry_after_ms)});
      }
      return reject(OverloadedError(
                        "predicted completion " + std::to_string(predicted_ms) +
                        "ms exceeds deadline " + std::to_string(deadline_ms) +
                        "ms"),
                    serve::kShedReasonPredicted, retry_after_ms);
    }
  }

  if (deadline_ms > 0) {
    queued->deadline = Deadline::AfterSeconds(deadline_ms / 1000.0);
  }
  queued->effective_deadline_ms = deadline_ms;
  queued->predicted_ms = predicted_solve_ms;
  queued->snapshot = std::move(snapshot);
  queued->request = std::move(request);
  if (options_.trace_recorder != nullptr &&
      options_.trace_recorder->enabled()) {
    queued->submit_ns = options_.trace_recorder->NowNanos();
  }

  cost_model_.Charge(queued->predicted_ms);
  {
    MutexLock lock(inflight_mutex_);
    ++inflight_;
  }
  CountTenant(queued->request.tenant_id, kAccepted);
  {
    MutexLock lock(queue_mutex_);
    edf_queue_.Push(queued->deadline, queued);
  }
  if (!pool_.Submit([this] { RunOne(); })) {
    // Shutdown raced the submit; resolve one (most urgent) orphaned
    // entry, exactly as VisibilityService does.
    std::shared_ptr<QueuedRequest> victim;
    {
      MutexLock lock(queue_mutex_);
      edf_queue_.Pop(&victim);
    }
    if (victim != nullptr) {
      CountTenant(victim->request.tenant_id, kRejectedShutdown);
      cost_model_.Settle(victim->predicted_ms);
      serve::SolveResponse response;
      response.id = victim->request.id;
      response.solver = victim->request.solver;
      response.tenant_id = victim->request.tenant_id;
      response.status = OverloadedError("service shutting down");
      response.shed_reason = serve::kShedReasonShutdown;
      RecordOutcome(victim->request, response,
                    victim->effective_deadline_ms, victim->predicted_ms);
      victim->promise.set_value(std::move(response));
      {
        MutexLock lock(inflight_mutex_);
        --inflight_;
      }
      inflight_cv_.NotifyAll();
    }
  }
  return future;
}

void TenantShard::Drain() {
  MutexLock lock(inflight_mutex_);
  while (inflight_ != 0) inflight_cv_.Wait(inflight_mutex_);
}

void TenantShard::RunOne() {
  std::shared_ptr<QueuedRequest> queued;
  {
    MutexLock lock(queue_mutex_);
    if (!edf_queue_.Pop(&queued)) return;
  }
  const double capacity = options_.max_queue > 0
                              ? static_cast<double>(options_.max_queue)
                              : static_cast<double>(pool_.num_threads());
  ladder_.Observe(static_cast<double>(QueueSize()) / capacity);
  serve::SolveResponse response = Execute(*queued);
  Finish(std::move(queued), std::move(response));
}

serve::SolveResponse TenantShard::Execute(QueuedRequest& queued) {
  const serve::SolveRequest& request = queued.request;
  const TenantSnapshot& snapshot = *queued.snapshot;
  const QueryLog& log = snapshot.log();
  serve::SolveResponse response;
  response.id = request.id;
  response.solver = request.solver;
  response.tenant_id = request.tenant_id;
  response.epoch = snapshot.epoch();
  response.queue_ms = queued.submit_timer.ElapsedMillis();
  WallTimer solve_timer;

  obs::TraceRecorder* const recorder = options_.trace_recorder;
  const bool tracing =
      recorder != nullptr && recorder->enabled() && queued.submit_ns > 0;
  if (tracing) {
    recorder->RecordComplete("queue_wait", "serve", queued.submit_ns,
                             recorder->NowNanos() - queued.submit_ns);
  }

  const auto settle = [&] { cost_model_.Settle(queued.predicted_ms); };

  const bool expired = queued.deadline.Expired();
  if (expired && options_.reject_expired) {
    CountTenant(request.tenant_id, kRejectedExpired);
    response.status =
        OverloadedError("deadline expired before a worker was available");
    response.shed_reason = serve::kShedReasonExpired;
    response.retry_after_ms = cost_model_.RetryAfterMs();
    response.solve_ms = solve_timer.ElapsedMillis();
    settle();
    return response;
  }

  // Result cache: key on the pinned epoch, so a PublishEpoch between
  // Submit and pickup cannot surface another epoch's answer — and
  // conversely a stale entry from a drained epoch is unreachable here.
  ResultCacheKey key;
  key.tenant_id = request.tenant_id;
  key.tuple_bits = request.tuple.ToString();
  key.m = request.m;
  key.epoch = snapshot.epoch();
  ResultCache::FlightPtr flight;
  CachedResultPtr cached;
  {
    // The follower wait (if any) is the only blocking part of a lookup.
    obs::TraceSpan wait_span(tracing ? recorder : nullptr,
                             "result_cache_wait", "tenant");
    cached = result_cache_.Lookup(key, queued.deadline, &flight);
  }
  if (cached != nullptr) {
    // Replay: exact answers are a function of the key alone.
    response.solution = cached->solution;
    response.solver = cached->solver;
    response.cache_hit = true;
    CountTenant(request.tenant_id, kCompleted);
    metrics_.Increment("tenant." + request.tenant_id + ".cache_hits");
    if (tracing) {
      recorder->RecordInstant(
          "cache_hit", "tenant",
          {obs::TraceArg::Str("tenant", request.tenant_id),
           obs::TraceArg::Int("epoch", snapshot.epoch())});
    }
    response.solve_ms = solve_timer.ElapsedMillis();
    settle();
    return response;
  }
  // Leader (or solo when the wait timed out / contention): solve below;
  // publish only exact leader results.
  const auto abandon_if_leader = [&] {
    if (flight != nullptr) {
      result_cache_.Abandon(key, flight);
      flight = nullptr;
    }
  };

  SolveContext context(queued.deadline);
  obs::TracingPhaseListener listener(tracing ? recorder : nullptr, "solve");
  context.set_phase_listener(&listener);
  std::string solver_name = request.solver;
  if (expired) {
    // Late at pickup in degrade mode: the greedy rescue answers.
    solver_name = "Fallback";
    metrics_.Increment(kLateFallback);
  } else if (snapshot.preprocessing().MaxSatisfiable(request.tuple,
                                                     request.m) == 0) {
    const int m_eff =
        internal::EffectiveBudget(log, request.tuple, request.m);
    DynamicBitset selected(log.num_attributes());
    internal::PadSelection(log, request.tuple, m_eff, &selected);
    response.solution = internal::FinishSolution(log, std::move(selected),
                                                 /*proved_optimal=*/true);
    response.fast_path = true;
    metrics_.Increment(kFastPathZero);
    CountTenant(request.tenant_id, kCompleted);
    metrics_.Increment("solver.none.completed");
    response.solve_ms = solve_timer.ElapsedMillis();
    // The fast-path answer is exact: publish it so the next identical
    // request doesn't even pay the bitmap scan.
    if (flight != nullptr) {
      result_cache_.Publish(key, std::move(flight),
                            CachedResult{response.solution, "none"});
    }
    settle();
    return response;
  }

  const std::string laddered =
      serve::DegradationLadder::ApplyLevel(ladder_.level(), solver_name);
  if (laddered != solver_name) {
    metrics_.Increment(kLadderDowngraded);
    response.ladder_downgraded = true;
    solver_name = laddered;
  }

  if (solver_name != "Fallback") {
    serve::CircuitBreaker* breaker = breakers_.Get(solver_name);
    if (breaker != nullptr && !breaker->Allow()) {
      metrics_.Increment(kBreakerRerouted);
      response.breaker_rerouted = true;
      solver_name = "Fallback";
    }
  }

  std::shared_ptr<serve::Watchdog::Ticket> ticket;
  const double wall_ms = watchdog_.WallBudgetMs(queued.effective_deadline_ms);
  if (wall_ms > 0) {
    ticket = watchdog_.Register(request.id, wall_ms);
    context.set_cancel_flag(&ticket->cancelled);
  }

  StatusOr<SocSolution> solution = [&]() -> StatusOr<SocSolution> {
    obs::TraceSpan solve_span(tracing ? recorder : nullptr, "solve", "serve");
    if (solve_span.active()) {
      solve_span.AddArg(obs::TraceArg::Str("solver", solver_name));
    }
    if (options_.worker_hook) {
      const serve::WorkerHookContext hook_context{
          request, solver_name, &context,
          ticket != nullptr ? &ticket->cancelled : nullptr};
      Status injected = options_.worker_hook(hook_context);
      if (!injected.ok()) return injected;
    }
    if (solver_name == "MaxFreqItemSets") {
      return mfi_walk_solver_.SolveWithIndex(
          snapshot.preprocessing().walk_index(), log, request.tuple,
          request.m, &context);
    }
    if (solver_name == "MaxFreqItemSets-dfs") {
      return mfi_dfs_solver_.SolveWithIndex(
          snapshot.preprocessing().dfs_index(), log, request.tuple,
          request.m, &context);
    }
    const auto it = solvers_.find(solver_name);
    SOC_CHECK(it != solvers_.end());
    return it->second->SolveWithContext(log, request.tuple, request.m,
                                        &context);
  }();
  response.solve_ms = solve_timer.ElapsedMillis();
  response.solver = solver_name;
  watchdog_.Unregister(ticket);
  settle();
  cost_model_.Observe(solver_name, response.solve_ms);
  serve::CircuitBreaker* const ran_breaker = breakers_.Get(solver_name);

  if (!solution.ok()) {
    response.status = solution.status();
    CountTenant(request.tenant_id, kSolveErrors);
    metrics_.Increment("solver." + solver_name + ".errors");
    if (ran_breaker != nullptr) ran_breaker->RecordFailure();
    abandon_if_leader();
    return response;
  }
  response.solution = std::move(solution).value();
  response.degraded = IsDegraded(response.solution);
  response.stop_reason = SolutionStopReason(response.solution);
  CountTenant(request.tenant_id, kCompleted);
  metrics_.Increment("solver." + solver_name + ".completed");
  if (response.degraded) {
    metrics_.Increment(kDegraded);
    metrics_.Increment("solver." + solver_name + ".degraded");
    // Partial answers are deadline artifacts, never cacheable.
    abandon_if_leader();
  } else if (flight != nullptr) {
    result_cache_.Publish(key, std::move(flight),
                          CachedResult{response.solution, solver_name});
  }
  if (ran_breaker != nullptr) {
    const bool failure =
        response.degraded && ran_breaker->options().count_degraded;
    if (failure) {
      ran_breaker->RecordFailure();
    } else {
      ran_breaker->RecordSuccess();
    }
  }
  return response;
}

void TenantShard::Finish(std::shared_ptr<QueuedRequest> queued,
                         serve::SolveResponse response) {
  obs::TraceRecorder* const recorder = options_.trace_recorder;
  const bool tracing =
      recorder != nullptr && recorder->enabled() && queued->submit_ns > 0;
  const std::int64_t response_start_ns = tracing ? recorder->NowNanos() : 0;
  std::vector<obs::TraceArg> request_args;
  if (tracing) {
    request_args.push_back(obs::TraceArg::Str("id", response.id));
    request_args.push_back(obs::TraceArg::Str("tenant", response.tenant_id));
    request_args.push_back(obs::TraceArg::Str("solver", response.solver));
    request_args.push_back(obs::TraceArg::Str(
        "status", StatusCodeToString(response.status.code())));
    request_args.push_back(obs::TraceArg::Int("cache_hit", response.cache_hit));
  }

  metrics_.RecordLatency("queue", response.queue_ms);
  metrics_.RecordLatency("solve", response.solve_ms);
  metrics_.RecordLatency("total", response.queue_ms + response.solve_ms);
  // Separate hit/miss latency distributions: the bench's headline
  // comparison (hit p99 vs miss p99) reads these directly.
  if (response.status.ok()) {
    metrics_.RecordLatency(response.cache_hit ? "cache_hit" : "cache_miss",
                           response.solve_ms);
  }

  // Recorded before the promise resolves (like the trace spans below):
  // a caller that drains the event log right after Drain() must see
  // every request's event.
  RecordOutcome(queued->request, response, queued->effective_deadline_ms,
                queued->predicted_ms);

  if (tracing) {
    const std::int64_t now_ns = recorder->NowNanos();
    recorder->RecordComplete("response", "serve", response_start_ns,
                             now_ns - response_start_ns);
    recorder->RecordComplete("request", "serve", queued->submit_ns,
                             now_ns - queued->submit_ns,
                             std::move(request_args));
  }

  // The snapshot pin releases here (QueuedRequest destruction) — after
  // this, a fully-drained old epoch can be destroyed.
  queued->promise.set_value(std::move(response));
  {
    MutexLock lock(inflight_mutex_);
    --inflight_;
  }
  inflight_cv_.NotifyAll();
}

void TenantShard::RecordOutcome(const serve::SolveRequest& request,
                                const serve::SolveResponse& response,
                                double deadline_ms, double predicted_ms) {
  obs::EventLog* const log = options_.event_log;
  if (log != nullptr && log->ShouldRecord()) {
    obs::WideEvent event =
        serve::BuildWideEvent(request, response, options_.cost_features,
                              deadline_ms, predicted_ms);
    event.shard = shard_index_;
    log->Record(std::move(event));
  }
  obs::SloEngine* const slo = options_.slo_engine;
  if (slo != nullptr && serve::CountsTowardSlo(response.status)) {
    const std::string& tenant =
        response.tenant_id.empty() ? request.tenant_id : response.tenant_id;
    slo->RecordOutcome(tenant.empty() ? "default" : tenant,
                       response.status.ok(),
                       response.queue_ms + response.solve_ms);
  }
}

serve::MetricsSnapshot TenantShard::Metrics() const {
  serve::MetricsSnapshot snapshot = metrics_.Snapshot();
  breakers_.ForEach(
      [&](const std::string& name, const serve::CircuitBreaker& breaker) {
        snapshot.counters["breaker." + name + ".trips"] = breaker.trips();
        snapshot.gauges["breaker." + name + ".state"] =
            static_cast<double>(static_cast<int>(breaker.state()));
      });
  snapshot.gauges["queue_depth"] = static_cast<double>(QueueSize());
  snapshot.gauges["busy_workers"] = static_cast<double>(pool_.busy_workers());
  {
    MutexLock lock(inflight_mutex_);
    snapshot.gauges["inflight"] = static_cast<double>(inflight_);
  }
  snapshot.gauges["ladder.level"] = static_cast<double>(ladder_.level());
  snapshot.gauges["predicted_backlog_ms"] = cost_model_.BacklogMs();
  snapshot.gauges["watchdog.watched"] =
      static_cast<double>(watchdog_.watched());
  snapshot.gauges["result_cache.entries"] =
      static_cast<double>(result_cache_.size());
  snapshot.gauges["pool.queue_wait_ms_total"] = pool_.total_queue_wait_ms();
  snapshot.gauges["pool.execute_ms_total"] = pool_.total_execute_ms();
  return snapshot;
}

}  // namespace soc::tenant
