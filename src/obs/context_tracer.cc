#include "obs/context_tracer.h"

#include <cmath>
#include <cstring>

namespace soc::obs {

void TracingPhaseListener::OnPhaseBegin(const char* name) {
  if (recorder_ == nullptr || !recorder_->enabled()) return;
  open_.push_back({name, recorder_->NowNanos()});
}

void TracingPhaseListener::OnPhaseEnd(const char* name) {
  if (recorder_ == nullptr || open_.empty()) return;
  // Phases nest strictly, so the match is normally the innermost open
  // phase; an unmatched end (recorder enabled mid-solve, a defective
  // caller) unwinds to the matching begin and drops the orphans rather
  // than corrupting the nesting of everything that follows.
  for (std::size_t i = open_.size(); i-- > 0;) {
    if (std::strcmp(open_[i].name, name) != 0) continue;
    recorder_->RecordComplete(open_[i].name, category_, open_[i].start_ns,
                              recorder_->NowNanos() - open_[i].start_ns);
    open_.resize(i);
    return;
  }
}

void TracingPhaseListener::OnStop(StopReason reason, std::int64_t ticks,
                                  std::int64_t tick_budget,
                                  double deadline_remaining_s) {
  if (recorder_ == nullptr) return;
  std::vector<TraceArg> args;
  args.push_back(TraceArg::Str("stop_reason", StopReasonToString(reason)));
  args.push_back(TraceArg::Int("ticks", ticks));
  args.push_back(TraceArg::Int("tick_budget", tick_budget));
  if (tick_budget > 0) {
    args.push_back(TraceArg::Int("ticks_remaining", tick_budget - ticks));
  }
  if (std::isfinite(deadline_remaining_s)) {
    args.push_back(
        TraceArg::Num("deadline_remaining_ms", deadline_remaining_s * 1e3));
  }
  recorder_->RecordInstant("degraded", category_, std::move(args));
}

}  // namespace soc::obs
