// EventLog: the recording half of the wide-event pipeline — a
// low-overhead, lock-free-on-the-hot-path collector that serving
// workers push WideEvents into and a single drainer pulls them out of.
//
// Design (mirrors obs/trace_recorder.h, which proved the shape):
//  * the enabled check is one relaxed atomic load, so a disabled log
//    costs a branch per request;
//  * sampling is one relaxed fetch_add + modulo (record every Nth
//    submission), decided *before* the event is even built so sampled-
//    out requests never pay for field assembly;
//  * each producer thread owns a fixed-capacity SPSC ring registered on
//    first use: the producer publishes `head` with a release store, the
//    single drainer reads it with acquire and advances `tail` with a
//    release store the producer acquires — no locks on either side of a
//    record/drain pair (the registry mutex guards only thread
//    registration and buffer enumeration);
//  * a full ring drops (counted) instead of blocking: under overload
//    the event log degrades exactly like the rest of the system —
//    sheds load, never adds latency.
//
// The drain side: JsonlEventSink appends one WideEventToJsonLine per
// event to a file, rotating by size (path → path.1 → path.2 ...), and
// EventPump runs Drain→sink on an absolute-deadline cadence (same
// drift-free scheduling as the fixed MetricsExporter loop) with a final
// flush on Stop.

#ifndef SOC_OBS_EVENT_LOG_H_
#define SOC_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "obs/wide_event.h"

namespace soc::obs {

struct EventLogOptions {
  // Ring slots per producer thread; a full ring drops.
  std::size_t per_thread_capacity = 4096;
  // Record every Nth submission (1 = every request). Sampling is
  // global, not per-thread, so the effective rate is exact.
  std::int64_t sample_every = 1;
};

class EventLog {
 public:
  explicit EventLog(EventLogOptions options = {});
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // The hot-path gate: false when disabled or this submission is
  // sampled out. Callers skip building the event entirely on false.
  bool ShouldRecord();

  // Stamps event.ts_ms (steady ms since construction) and publishes the
  // event into this thread's ring. Drops (counted) when the ring is
  // full. Callers pair this with a prior ShouldRecord().
  void Record(WideEvent event);

  // Steady-clock ms since this log was constructed.
  double NowMs() const;

  // Moves every published-but-undrained event into `out` (appending),
  // in per-thread order. Single logical consumer: callers serialize
  // drains themselves (EventPump does).
  std::size_t Drain(std::vector<WideEvent>* out);

  std::int64_t events_recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  std::int64_t events_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::int64_t events_sampled_out() const {
    return sampled_out_.load(std::memory_order_relaxed);
  }

 private:
  // One producer thread's ring. head is only written by the owner
  // (release) and read by the drainer (acquire); tail the reverse.
  struct ThreadBuffer {
    explicit ThreadBuffer(std::size_t capacity) : slots(capacity) {}
    std::vector<WideEvent> slots;
    std::atomic<std::uint64_t> head{0};
    std::atomic<std::uint64_t> tail{0};
  };

  ThreadBuffer* BufferForThisThread() SOC_EXCLUDES(mutex_);

  const std::uint64_t id_;  // Process-unique; keys the thread-local cache.
  const EventLogOptions options_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> sample_counter_{0};
  std::atomic<std::int64_t> recorded_{0};
  std::atomic<std::int64_t> dropped_{0};
  std::atomic<std::int64_t> sampled_out_{0};

  mutable Mutex mutex_{lock_rank::kEventLog};
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ SOC_GUARDED_BY(mutex_);
};

// Appends wide events as JSONL, rotating by size: when the current file
// would exceed max_bytes, it is closed and renamed path -> path.1
// (shifting existing rotations up, dropping the oldest past
// max_rotations) and a fresh file is opened at `path`.
class JsonlEventSink {
 public:
  struct Options {
    std::string path;
    std::int64_t max_bytes = 64 * 1024 * 1024;
    int max_rotations = 3;
  };

  explicit JsonlEventSink(Options options);
  ~JsonlEventSink();

  JsonlEventSink(const JsonlEventSink&) = delete;
  JsonlEventSink& operator=(const JsonlEventSink&) = delete;

  Status Open();
  Status Write(const std::vector<WideEvent>& events);
  Status Close();

  std::int64_t bytes_written() const { return bytes_written_; }
  int rotations() const { return rotations_; }

 private:
  Status Rotate();

  const Options options_;
  std::FILE* file_ = nullptr;
  std::int64_t current_bytes_ = 0;
  std::int64_t bytes_written_ = 0;
  int rotations_ = 0;
};

// Drains an EventLog into a callback on a fixed cadence. Scheduling is
// by absolute next-deadline (next += interval), so slow sinks delay
// individual drains without compounding drift; a drain that overruns a
// whole interval skips the missed ticks rather than bursting.
class EventPump {
 public:
  using Sink = std::function<void(const std::vector<WideEvent>&)>;

  struct Options {
    double interval_s = 0.25;  // Clamped to >= 0.01.
    EventLog* log = nullptr;   // Non-owning; must outlive the pump.
    Sink sink;
  };

  explicit EventPump(Options options);
  ~EventPump();

  EventPump(const EventPump&) = delete;
  EventPump& operator=(const EventPump&) = delete;

  // Stops the cadence after one final drain+flush; idempotent.
  void Stop();

  std::int64_t drains() const;

 private:
  void Loop();
  void DrainOnce();

  const Options options_;
  mutable Mutex mutex_{lock_rank::kEventPump};
  CondVar wake_;
  bool stop_ SOC_GUARDED_BY(mutex_) = false;
  std::int64_t drains_ SOC_GUARDED_BY(mutex_) = 0;
  std::vector<WideEvent> scratch_;  // Loop-thread only.
  ThreadPool loop_pool_{1};  // Last member: the loop dies first.
};

}  // namespace soc::obs

#endif  // SOC_OBS_EVENT_LOG_H_
