#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#if defined(__linux__) && __has_include(<execinfo.h>)
#define SOC_PROFILER_SUPPORTED 1
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>
#else
#define SOC_PROFILER_SUPPORTED 0
#endif

namespace soc::obs {

#if SOC_PROFILER_SUPPORTED

namespace {

// All handler-visible state is process-global and preallocated by
// Start(); the handler itself touches nothing else. kMaxDepthLimit caps
// the per-sample frame array so storage is a flat preallocated block.
constexpr int kMaxDepthLimit = 128;

struct RawSample {
  void* pcs[kMaxDepthLimit];
  int depth = 0;
};

std::atomic<bool> g_active{false};
std::atomic<std::int64_t> g_cursor{0};
std::atomic<std::int64_t> g_dropped{0};
// Owned by Profiler::Start/Stop; the handler only indexes into it.
std::vector<RawSample>* g_samples = nullptr;
int g_max_depth = 64;
std::size_t g_max_samples = 0;

void ProfilerSignalHandler(int) {
  if (!g_active.load(std::memory_order_relaxed)) return;
  const std::int64_t slot =
      g_cursor.fetch_add(1, std::memory_order_relaxed);
  if (slot < 0 || static_cast<std::size_t>(slot) >= g_max_samples) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  RawSample& sample = (*g_samples)[static_cast<std::size_t>(slot)];
  // backtrace(3) is primed at Start so the libgcc unwinder is already
  // loaded; after that it is self-contained frame walking.
  sample.depth = backtrace(sample.pcs, g_max_depth);
}

std::string SymbolizePc(void* pc, std::map<void*, std::string>* cache) {
  const auto it = cache->find(pc);
  if (it != cache->end()) return it->second;
  std::string name;
  Dl_info info;
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int demangle_status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr,
                                          &demangle_status);
    if (demangle_status == 0 && demangled != nullptr) {
      name = demangled;
    } else {
      name = info.dli_sname;
    }
    std::free(demangled);
    // Flamegraph separators are ';'; scrub them out of symbol names.
    std::replace(name.begin(), name.end(), ';', ',');
  } else {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "0x%zx",
                  reinterpret_cast<std::size_t>(pc));
    name = buffer;
  }
  (*cache)[pc] = name;
  return name;
}

struct sigaction g_previous_action;
itimerval g_previous_timer;

}  // namespace

Profiler& Profiler::Instance() {
  static Profiler* instance = new Profiler;
  return *instance;
}

Status Profiler::Start(ProfilerOptions options) {
  options.sample_hz = std::clamp(options.sample_hz, 1, 10000);
  options.max_samples = std::max<std::size_t>(64, options.max_samples);
  options.max_depth = std::clamp(options.max_depth, 2, kMaxDepthLimit);
  MutexLock lock(mutex_);
  if (running_) {
    return FailedPreconditionError("profiler already running");
  }
  options_ = options;

  // Prime the unwinder outside the signal path (first call may dlopen).
  void* prime[2];
  backtrace(prime, 2);

  if (g_samples == nullptr) g_samples = new std::vector<RawSample>;
  g_samples->assign(options.max_samples, RawSample{});
  g_max_depth = options.max_depth;
  g_max_samples = options.max_samples;
  g_cursor.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_active.store(true, std::memory_order_release);

  struct sigaction action = {};
  action.sa_handler = &ProfilerSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (sigaction(SIGPROF, &action, &g_previous_action) != 0) {
    g_active.store(false, std::memory_order_relaxed);
    return InternalError("sigaction(SIGPROF) failed");
  }

  itimerval timer = {};
  const long interval_us = 1000000L / options.sample_hz;
  timer.it_interval.tv_sec = interval_us / 1000000L;
  timer.it_interval.tv_usec = interval_us % 1000000L;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, &g_previous_timer) != 0) {
    g_active.store(false, std::memory_order_relaxed);
    sigaction(SIGPROF, &g_previous_action, nullptr);
    return InternalError("setitimer(ITIMER_PROF) failed");
  }

  running_ = true;
  return Status::OK();
}

Status Profiler::Stop() {
  MutexLock lock(mutex_);
  if (!running_) return Status::OK();

  // Disarm before restoring the handler so no tick lands in between.
  setitimer(ITIMER_PROF, &g_previous_timer, nullptr);
  g_active.store(false, std::memory_order_release);
  sigaction(SIGPROF, &g_previous_action, nullptr);
  running_ = false;

  // Offline symbolization: fold identical stacks, outermost frame
  // first. The innermost two frames are the handler and the signal
  // trampoline — profiling noise, skipped.
  const std::int64_t captured = std::min<std::int64_t>(
      g_cursor.load(std::memory_order_relaxed),
      static_cast<std::int64_t>(g_max_samples));
  std::map<void*, std::string> symbol_cache;
  std::map<std::string, std::int64_t> folded;
  constexpr int kSkipInnermost = 2;
  for (std::int64_t i = 0; i < captured; ++i) {
    const RawSample& sample = (*g_samples)[static_cast<std::size_t>(i)];
    if (sample.depth <= kSkipInnermost) continue;
    std::string stack;
    for (int frame = sample.depth - 1; frame >= kSkipInnermost; --frame) {
      if (!stack.empty()) stack.push_back(';');
      stack += SymbolizePc(sample.pcs[frame], &symbol_cache);
    }
    folded[stack] += 1;
  }
  collapsed_.assign(folded.begin(), folded.end());
  return Status::OK();
}

bool Profiler::running() const {
  MutexLock lock(mutex_);
  return running_;
}

std::int64_t Profiler::samples() const {
  return std::min<std::int64_t>(g_cursor.load(std::memory_order_relaxed),
                                static_cast<std::int64_t>(g_max_samples));
}

std::int64_t Profiler::dropped() const {
  return g_dropped.load(std::memory_order_relaxed);
}

#else  // !SOC_PROFILER_SUPPORTED

Profiler& Profiler::Instance() {
  static Profiler* instance = new Profiler;
  return *instance;
}

Status Profiler::Start(ProfilerOptions) {
  return UnimplementedError(
      "sampling profiler requires linux with <execinfo.h>");
}

Status Profiler::Stop() { return Status::OK(); }

bool Profiler::running() const {
  MutexLock lock(mutex_);
  return running_;
}

std::int64_t Profiler::samples() const { return 0; }
std::int64_t Profiler::dropped() const { return 0; }

#endif  // SOC_PROFILER_SUPPORTED

std::vector<std::pair<std::string, std::int64_t>> Profiler::CollapsedStacks()
    const {
  MutexLock lock(mutex_);
  return collapsed_;
}

Status Profiler::WriteCollapsed(const std::string& path) const {
  const auto stacks = CollapsedStacks();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return InternalError("cannot open profile output " + path);
  }
  for (const auto& [stack, count] : stacks) {
    std::fprintf(file, "%s %lld\n", stack.c_str(),
                 static_cast<long long>(count));
  }
  if (std::fclose(file) != 0) {
    return InternalError("short write to profile output " + path);
  }
  return Status::OK();
}

}  // namespace soc::obs
