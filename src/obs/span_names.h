// The canonical span-name table for the tracing layer.
//
// Every span or phase created in the solver and serving layers (via
// soc::PhaseScope or obs::TraceSpan) must use one of these names, so
// traces stay greppable and tooling can key on a stable taxonomy. The
// table is machine-checked: soc_lint's "span-name" rule parses the
// kSpanNames[] table below and flags any span construction in src/core,
// src/lp, src/itemsets or src/serve whose string-literal name is absent
// (the same parity pattern as the solver-registry rule).
//
// Taxonomy (one request, outermost first):
//
//   admission       Submit-side validation + queue-bound decision.
//   queue_wait      Submit -> worker pickup (reconstructed span).
//   request         Worker-side lifetime of one request.
//   solve           Solver dispatch within a request.
//   response        Promise resolution + latency accounting.
//
// Solver phases (nested under "solve", emitted through PhaseScope):
//
//   greedy_seed     ConsumeAttrCumul seeding of exact solvers.
//   mining          MFI solver waiting for / producing maximal itemsets.
//   cache_wait      Single-flight follower blocked on a mining leader.
//   mine_walk       Random-walk maximal itemset mining pass.
//   mine_dfs        Exact DFS maximal itemset mining pass.
//   subset_scan     Level-(M-m) subset scan over the maximal itemsets.
//   build_model     ILP model construction.
//   bnb             Branch-and-bound search (whole tree).
//   bnb_node        One branch-and-bound node expansion.
//   simplex         One LP relaxation solve (both phases).
//   fallback_exact  FallbackSolver's exact tier.
//   fallback_rescue FallbackSolver's greedy rescue tier.
//
// Multi-tenant layer (src/tenant):
//
//   route           Sharded-service Submit: tenant -> shard routing +
//                   hand-off.
//   result_cache_wait  Single-flight follower blocked on a result-cache
//                   leader solving the same (tenant, tuple, m, epoch).
//   publish_epoch   Admin-path snapshot build + registry slot swap.
//
// Instant events:
//
//   degraded        A stop condition fired mid-solve (args: stop reason,
//                   ticks/budget, remaining deadline).
//   stuck_worker    The watchdog declared a solve wedged past its hard
//                   wall budget and fired cancellation (args: request id,
//                   elapsed/budget wall ms).
//   shed            Admission proactively rejected a request (args: shed
//                   reason, predicted wait/solve, retry_after_ms).
//   cache_hit       A request was answered from the ResultCache without
//                   dispatching a solver (args: tenant, epoch).

#ifndef SOC_OBS_SPAN_NAMES_H_
#define SOC_OBS_SPAN_NAMES_H_

namespace soc::obs {

inline constexpr const char* kSpanNames[] = {
    "admission",      "queue_wait",  "request",     "solve",
    "response",       "greedy_seed", "mining",      "cache_wait",
    "mine_walk",      "mine_dfs",    "subset_scan", "build_model",
    "bnb",            "bnb_node",    "simplex",     "fallback_exact",
    "fallback_rescue", "degraded",   "stuck_worker", "shed",
    "route",          "result_cache_wait", "publish_epoch", "cache_hit",
};

// True iff `name` is an entry of kSpanNames (exact match).
bool IsCanonicalSpanName(const char* name);

}  // namespace soc::obs

#endif  // SOC_OBS_SPAN_NAMES_H_
