// A SIGPROF sampling profiler with collapsed-stack (flamegraph) output
// (observability v2, DESIGN.md §15): answers "where does CPU go?" for
// in-repo binaries — socvis_serve, socvis_solve and the benches grow a
// --profile-out flag — without an external profiler attached.
//
// How it samples. Start() arms ITIMER_PROF, which delivers SIGPROF to
// the process every 1/sample_hz seconds of *CPU* time (so idle threads
// are never sampled, and a multi-worker solve is sampled in proportion
// to the CPU it burns). The handler is held to the async-signal-safety
// rules:
//   * all sample storage is preallocated at Start — the handler never
//     allocates, locks, or calls the libc I/O layer;
//   * the one library call it makes, backtrace(3), is primed at Start
//     (the first backtrace() call may dlopen libgcc, which is unsafe
//     in a handler; priming forces that load up front);
//   * slots are claimed with a relaxed fetch_add; when the buffer is
//     full, samples are dropped and counted, never blocked on.
//
// Symbolization (dladdr + __cxa_demangle) runs offline in Stop(), off
// the signal path entirely. CollapsedStacks() folds the raw PC stacks
// into "outermost;...;innermost count" lines — the exact input format
// of flamegraph.pl / inferno / speedscope. Executables that want
// symbol names (not hex addresses) must export their symbols:
// CMake `ENABLE_EXPORTS TRUE` (-rdynamic), already set on the binaries
// that expose --profile-out.
//
// SIGPROF and the interval timer are process-global, so the profiler is
// a singleton; a second concurrent Start() fails. Non-Linux platforms
// (or builds without <execinfo.h>) get kUnimplemented from Start().

#ifndef SOC_OBS_PROFILER_H_
#define SOC_OBS_PROFILER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace soc::obs {

struct ProfilerOptions {
  int sample_hz = 99;            // Odd rate: avoids lockstep with 100Hz work.
  std::size_t max_samples = 1 << 16;
  int max_depth = 64;            // Frames kept per sample.
};

class Profiler {
 public:
  // The process-wide instance (SIGPROF cannot be scoped narrower).
  static Profiler& Instance();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Arms the timer and installs the SIGPROF handler. Fails with
  // kFailedPrecondition when already running, kUnimplemented when the
  // platform has no backtrace support.
  Status Start(ProfilerOptions options = {}) SOC_EXCLUDES(mutex_);

  // Disarms the timer, restores the previous handler, and symbolizes
  // the captured samples. Idempotent once stopped.
  Status Stop() SOC_EXCLUDES(mutex_);

  bool running() const SOC_EXCLUDES(mutex_);
  std::int64_t samples() const;  // Captured (post-Start, live counter).
  std::int64_t dropped() const;

  // Folded stacks from the last Start/Stop session:
  // ("frameA;frameB;frameC", count), outermost frame first, sorted by
  // stack string. Empty before the first completed session.
  std::vector<std::pair<std::string, std::int64_t>> CollapsedStacks() const
      SOC_EXCLUDES(mutex_);

  // Writes CollapsedStacks() as "stack count\n" lines — feed directly
  // to flamegraph.pl.
  Status WriteCollapsed(const std::string& path) const SOC_EXCLUDES(mutex_);

 private:
  Profiler() = default;

  mutable Mutex mutex_{lock_rank::kProfiler};
  bool running_ SOC_GUARDED_BY(mutex_) = false;
  ProfilerOptions options_ SOC_GUARDED_BY(mutex_);
  // Collapsed (symbolized) stacks of the last finished session.
  std::vector<std::pair<std::string, std::int64_t>> collapsed_
      SOC_GUARDED_BY(mutex_);
};

}  // namespace soc::obs

#endif  // SOC_OBS_PROFILER_H_
