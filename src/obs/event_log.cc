#include "obs/event_log.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace soc::obs {

namespace {

// Process-unique log ids; id 0 is reserved so a zero-initialized
// thread-local cache can never falsely hit (same scheme as
// TraceRecorder).
std::atomic<std::uint64_t> next_event_log_id{1};

}  // namespace

EventLog::EventLog(EventLogOptions options)
    : id_(next_event_log_id.fetch_add(1, std::memory_order_relaxed)),
      options_([&options] {
        options.per_thread_capacity =
            std::max<std::size_t>(1, options.per_thread_capacity);
        options.sample_every = std::max<std::int64_t>(1, options.sample_every);
        return options;
      }()),
      epoch_(std::chrono::steady_clock::now()) {}

EventLog::~EventLog() = default;

double EventLog::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

EventLog::ThreadBuffer* EventLog::BufferForThisThread() {
  struct TlsCache {
    std::uint64_t log_id = 0;
    ThreadBuffer* buffer = nullptr;
  };
  static thread_local TlsCache cache;
  if (cache.log_id == id_) return cache.buffer;
  MutexLock lock(mutex_);
  buffers_.push_back(
      std::make_unique<ThreadBuffer>(options_.per_thread_capacity));
  cache = {id_, buffers_.back().get()};
  return cache.buffer;
}

bool EventLog::ShouldRecord() {
  if (!enabled()) return false;
  if (options_.sample_every > 1) {
    const std::int64_t n =
        sample_counter_.fetch_add(1, std::memory_order_relaxed);
    if (n % options_.sample_every != 0) {
      sampled_out_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  return true;
}

void EventLog::Record(WideEvent event) {
  if (!enabled()) return;
  event.ts_ms = NowMs();
  ThreadBuffer* buffer = BufferForThisThread();
  const std::uint64_t head = buffer->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = buffer->tail.load(std::memory_order_acquire);
  if (head - tail >= buffer->slots.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer->slots[head % buffer->slots.size()] = std::move(event);
  // Publish: the drainer acquires `head` and only touches slots below it.
  buffer->head.store(head + 1, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t EventLog::Drain(std::vector<WideEvent>* out) {
  std::size_t drained = 0;
  MutexLock lock(mutex_);
  for (const auto& buffer : buffers_) {
    const std::uint64_t head = buffer->head.load(std::memory_order_acquire);
    std::uint64_t tail = buffer->tail.load(std::memory_order_relaxed);
    while (tail < head) {
      out->push_back(std::move(buffer->slots[tail % buffer->slots.size()]));
      ++tail;
      ++drained;
    }
    // Free the consumed slots for the producer (it acquires `tail`).
    buffer->tail.store(tail, std::memory_order_release);
  }
  return drained;
}

JsonlEventSink::JsonlEventSink(Options options)
    : options_(std::move(options)) {}

JsonlEventSink::~JsonlEventSink() { IgnoreError(Close(), "sink dtor"); }

Status JsonlEventSink::Open() {
  if (file_ != nullptr) return Status::OK();
  file_ = std::fopen(options_.path.c_str(), "wb");
  if (file_ == nullptr) {
    return InternalError("cannot open event log output " + options_.path);
  }
  current_bytes_ = 0;
  return Status::OK();
}

Status JsonlEventSink::Rotate() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  // Shift path.(n-1) -> path.n oldest-first, then path -> path.1. A
  // rename of a missing rotation slot is harmless.
  for (int i = std::max(1, options_.max_rotations) - 1; i >= 1; --i) {
    const std::string from = options_.path + "." + std::to_string(i);
    const std::string to = options_.path + "." + std::to_string(i + 1);
    std::rename(from.c_str(), to.c_str());
  }
  std::rename(options_.path.c_str(), (options_.path + ".1").c_str());
  ++rotations_;
  return Open();
}

Status JsonlEventSink::Write(const std::vector<WideEvent>& events) {
  if (file_ == nullptr) SOC_RETURN_IF_ERROR(Open());
  for (const WideEvent& event : events) {
    const std::string line = WideEventToJsonLine(event) + "\n";
    if (options_.max_bytes > 0 && current_bytes_ > 0 &&
        current_bytes_ + static_cast<std::int64_t>(line.size()) >
            options_.max_bytes) {
      SOC_RETURN_IF_ERROR(Rotate());
    }
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
      return InternalError("short write to event log " + options_.path);
    }
    current_bytes_ += static_cast<std::int64_t>(line.size());
    bytes_written_ += static_cast<std::int64_t>(line.size());
  }
  return Status::OK();
}

Status JsonlEventSink::Close() {
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) {
    return InternalError("close failed on event log " + options_.path);
  }
  return Status::OK();
}

EventPump::EventPump(Options options) : options_(std::move(options)) {
  loop_pool_.Submit([this] { Loop(); });
}

EventPump::~EventPump() { Stop(); }

void EventPump::Stop() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.NotifyAll();
  // Joins the cadence task; the final drain has happened when this
  // returns.
  loop_pool_.Shutdown();
}

std::int64_t EventPump::drains() const {
  MutexLock lock(mutex_);
  return drains_;
}

void EventPump::DrainOnce() {
  scratch_.clear();
  if (options_.log != nullptr) options_.log->Drain(&scratch_);
  if (options_.sink && !scratch_.empty()) options_.sink(scratch_);
  MutexLock lock(mutex_);
  ++drains_;
}

void EventPump::Loop() {
  using Clock = std::chrono::steady_clock;
  const auto interval = std::chrono::duration<double>(
      std::max(0.01, options_.interval_s));
  auto next = Clock::now() + interval;
  for (;;) {
    bool stopping = false;
    {
      MutexLock lock(mutex_);
      while (!stop_ && Clock::now() < next) {
        const double remaining =
            std::chrono::duration<double>(next - Clock::now()).count();
        wake_.WaitFor(mutex_, std::max(0.0, remaining));
      }
      stopping = stop_;
    }
    DrainOnce();
    if (stopping) return;
    next += interval;
    const auto now = Clock::now();
    // A drain that overran a full interval re-anchors instead of
    // bursting to catch up.
    if (next < now) next = now + interval;
  }
}

}  // namespace soc::obs
