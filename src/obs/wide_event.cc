#include "obs/wide_event.h"

#include <cmath>
#include <limits>
#include <map>

#include "common/json_reader.h"
#include "common/json_writer.h"
#include "common/solve_context.h"

namespace soc::obs {

namespace {

bool InTable(const std::string& value, const char* const* table,
             std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    if (value == table[i]) return true;
  }
  return false;
}

// A latency/hint field: finite and nonnegative.
Status CheckMs(const char* field, double value) {
  if (!std::isfinite(value) || value < 0) {
    return InvalidArgumentError(std::string("wide event field '") + field +
                                "' must be finite and nonnegative");
  }
  return Status::OK();
}

// Shared between the encoder's input contract and the parser, so a
// struct that violates the schema cannot encode to an accepted line.
Status Validate(const WideEvent& event) {
  SOC_RETURN_IF_ERROR(CheckMs("ts_ms", event.ts_ms));
  SOC_RETURN_IF_ERROR(CheckMs("queue_ms", event.queue_ms));
  SOC_RETURN_IF_ERROR(CheckMs("solve_ms", event.solve_ms));
  SOC_RETURN_IF_ERROR(CheckMs("total_ms", event.total_ms));
  SOC_RETURN_IF_ERROR(CheckMs("retry_after_ms", event.retry_after_ms));
  if (!std::isfinite(event.deadline_ms) ||
      !std::isfinite(event.predicted_ms) ||
      !std::isfinite(event.collapse_ratio) || event.collapse_ratio < 0) {
    return InvalidArgumentError(
        "wide event numeric fields must be finite (collapse_ratio >= 0)");
  }
  if (event.m < -1 || event.num_queries < 0 || event.num_attributes < 0 ||
      event.satisfied < -1 || event.shard < -1 || event.epoch < 0) {
    return InvalidArgumentError("wide event count field out of range");
  }
  if (!IsWideEventOutcome(event.outcome)) {
    return InvalidArgumentError("wide event outcome '" + event.outcome +
                                "' is not in the schema vocabulary");
  }
  if (!event.shed_reason.empty() &&
      !IsWideEventShedReason(event.shed_reason)) {
    return InvalidArgumentError("wide event shed_reason '" +
                                event.shed_reason +
                                "' is not in the schema vocabulary");
  }
  StatusCode code;
  if (!StatusCodeFromString(event.code, &code)) {
    return InvalidArgumentError("wide event code '" + event.code +
                                "' is not a status code name");
  }
  if (!event.stop_reason.empty()) {
    StopReason reason;
    if (!StopReasonFromString(event.stop_reason, &reason) ||
        reason == StopReason::kNone) {
      return InvalidArgumentError("wide event stop_reason '" +
                                  event.stop_reason + "' is not a reason");
    }
  }
  return Status::OK();
}

}  // namespace

bool IsWideEventOutcome(const std::string& outcome) {
  return InTable(outcome, kWideEventOutcomes,
                 std::size(kWideEventOutcomes));
}

bool IsWideEventShedReason(const std::string& reason) {
  return InTable(reason, kWideEventShedReasons,
                 std::size(kWideEventShedReasons));
}

std::string WideEventToJsonLine(const WideEvent& event) {
  JsonValue object = JsonValue::Object();
  object.Set("v", JsonValue::Int(kWideEventSchemaVersion))
      .Set("ts_ms", JsonValue::Number(event.ts_ms))
      .Set("id", JsonValue::String(event.id));
  if (!event.tenant.empty()) {
    object.Set("tenant", JsonValue::String(event.tenant));
  }
  if (event.shard >= 0) object.Set("shard", JsonValue::Int(event.shard));
  if (event.epoch > 0) object.Set("epoch", JsonValue::Int(event.epoch));
  object.Set("solver_req", JsonValue::String(event.solver_req))
      .Set("solver", JsonValue::String(event.solver))
      .Set("m", JsonValue::Int(event.m));
  if (event.deadline_ms > 0) {
    object.Set("deadline_ms", JsonValue::Number(event.deadline_ms));
  }
  object.Set("num_queries", JsonValue::Int(event.num_queries))
      .Set("num_attributes", JsonValue::Int(event.num_attributes))
      .Set("collapse_ratio", JsonValue::Number(event.collapse_ratio))
      .Set("queue_ms", JsonValue::Number(event.queue_ms))
      .Set("solve_ms", JsonValue::Number(event.solve_ms))
      .Set("total_ms", JsonValue::Number(event.total_ms));
  if (event.predicted_ms > 0) {
    object.Set("predicted_ms", JsonValue::Number(event.predicted_ms));
  }
  object.Set("outcome", JsonValue::String(event.outcome))
      .Set("code", JsonValue::String(event.code));
  if (!event.shed_reason.empty()) {
    object.Set("shed_reason", JsonValue::String(event.shed_reason));
  }
  if (!event.stop_reason.empty()) {
    object.Set("stop_reason", JsonValue::String(event.stop_reason));
  }
  if (event.degraded) object.Set("degraded", JsonValue::Bool(true));
  if (event.fast_path) object.Set("fast_path", JsonValue::Bool(true));
  if (event.cache_hit) object.Set("cache_hit", JsonValue::Bool(true));
  if (event.breaker_rerouted) {
    object.Set("breaker_rerouted", JsonValue::Bool(true));
  }
  if (event.ladder_downgraded) {
    object.Set("ladder_downgraded", JsonValue::Bool(true));
  }
  if (event.satisfied >= 0) {
    object.Set("satisfied", JsonValue::Int(event.satisfied));
  }
  if (event.retry_after_ms > 0) {
    object.Set("retry_after_ms", JsonValue::Number(event.retry_after_ms));
  }
  return object.ToString();
}

StatusOr<WideEvent> ParseWideEventLine(const std::string& line) {
  SOC_ASSIGN_OR_RETURN(auto object, ParseFlatJsonObject(line));

  auto take = [&object](const char* key) -> const JsonScalar* {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  };
  auto read_string = [&take](const char* key, std::string* out,
                             bool required) -> Status {
    const JsonScalar* scalar = take(key);
    if (scalar == nullptr) {
      if (required) {
        return InvalidArgumentError(
            std::string("wide event missing required field '") + key + "'");
      }
      return Status::OK();
    }
    if (scalar->kind != JsonScalar::Kind::kString) {
      return InvalidArgumentError(std::string("wide event field '") + key +
                                  "' must be a string");
    }
    *out = scalar->string_value;
    return Status::OK();
  };
  auto read_number = [&take](const char* key, double* out,
                             bool required) -> Status {
    const JsonScalar* scalar = take(key);
    if (scalar == nullptr) {
      if (required) {
        return InvalidArgumentError(
            std::string("wide event missing required field '") + key + "'");
      }
      return Status::OK();
    }
    if (scalar->kind != JsonScalar::Kind::kNumber) {
      return InvalidArgumentError(std::string("wide event field '") + key +
                                  "' must be a number");
    }
    *out = scalar->number_value;
    return Status::OK();
  };
  auto read_int = [&read_number](const char* key, auto* out,
                                 bool required) -> Status {
    double value = static_cast<double>(*out);
    SOC_RETURN_IF_ERROR(read_number(key, &value, required));
    if (value != std::floor(value) ||
        std::abs(value) > 9007199254740992.0 /* 2^53 */) {
      return InvalidArgumentError(std::string("wide event field '") + key +
                                  "' must be an integer");
    }
    *out = static_cast<std::remove_pointer_t<decltype(out)>>(value);
    return Status::OK();
  };
  auto read_bool = [&take](const char* key, bool* out) -> Status {
    const JsonScalar* scalar = take(key);
    if (scalar == nullptr) return Status::OK();
    if (scalar->kind != JsonScalar::Kind::kBool) {
      return InvalidArgumentError(std::string("wide event field '") + key +
                                  "' must be a bool");
    }
    *out = scalar->bool_value;
    return Status::OK();
  };

  WideEvent event;
  int version = 0;
  SOC_RETURN_IF_ERROR(read_int("v", &version, /*required=*/true));
  if (version != kWideEventSchemaVersion) {
    return InvalidArgumentError("unsupported wide event schema version " +
                                std::to_string(version));
  }
  SOC_RETURN_IF_ERROR(read_number("ts_ms", &event.ts_ms, true));
  SOC_RETURN_IF_ERROR(read_string("id", &event.id, true));
  SOC_RETURN_IF_ERROR(read_string("tenant", &event.tenant, false));
  SOC_RETURN_IF_ERROR(read_int("shard", &event.shard, false));
  SOC_RETURN_IF_ERROR(read_int("epoch", &event.epoch, false));
  SOC_RETURN_IF_ERROR(read_string("solver_req", &event.solver_req, true));
  SOC_RETURN_IF_ERROR(read_string("solver", &event.solver, true));
  SOC_RETURN_IF_ERROR(read_int("m", &event.m, true));
  SOC_RETURN_IF_ERROR(read_number("deadline_ms", &event.deadline_ms, false));
  SOC_RETURN_IF_ERROR(read_int("num_queries", &event.num_queries, true));
  SOC_RETURN_IF_ERROR(
      read_int("num_attributes", &event.num_attributes, true));
  SOC_RETURN_IF_ERROR(
      read_number("collapse_ratio", &event.collapse_ratio, true));
  SOC_RETURN_IF_ERROR(read_number("queue_ms", &event.queue_ms, true));
  SOC_RETURN_IF_ERROR(read_number("solve_ms", &event.solve_ms, true));
  SOC_RETURN_IF_ERROR(read_number("total_ms", &event.total_ms, true));
  SOC_RETURN_IF_ERROR(
      read_number("predicted_ms", &event.predicted_ms, false));
  SOC_RETURN_IF_ERROR(read_string("outcome", &event.outcome, true));
  SOC_RETURN_IF_ERROR(read_string("code", &event.code, true));
  SOC_RETURN_IF_ERROR(read_string("shed_reason", &event.shed_reason, false));
  SOC_RETURN_IF_ERROR(read_string("stop_reason", &event.stop_reason, false));
  SOC_RETURN_IF_ERROR(read_bool("degraded", &event.degraded));
  SOC_RETURN_IF_ERROR(read_bool("fast_path", &event.fast_path));
  SOC_RETURN_IF_ERROR(read_bool("cache_hit", &event.cache_hit));
  SOC_RETURN_IF_ERROR(
      read_bool("breaker_rerouted", &event.breaker_rerouted));
  SOC_RETURN_IF_ERROR(
      read_bool("ladder_downgraded", &event.ladder_downgraded));
  SOC_RETURN_IF_ERROR(read_int("satisfied", &event.satisfied, false));
  SOC_RETURN_IF_ERROR(
      read_number("retry_after_ms", &event.retry_after_ms, false));

  static constexpr const char* kKnownFields[] = {
      "v",           "ts_ms",          "id",
      "tenant",      "shard",          "epoch",
      "solver_req",  "solver",         "m",
      "deadline_ms", "num_queries",    "num_attributes",
      "collapse_ratio", "queue_ms",    "solve_ms",
      "total_ms",    "predicted_ms",   "outcome",
      "code",        "shed_reason",    "stop_reason",
      "degraded",    "fast_path",      "cache_hit",
      "breaker_rerouted", "ladder_downgraded", "satisfied",
      "retry_after_ms"};
  for (const auto& [key, value] : object) {
    if (!InTable(key, kKnownFields, std::size(kKnownFields))) {
      return InvalidArgumentError("wide event has unknown field '" + key +
                                  "'");
    }
  }

  // Optional fields present at their "omitted" value would re-encode
  // without them; that is still one canonical event, so accept it.
  SOC_RETURN_IF_ERROR(Validate(event));
  return event;
}

}  // namespace soc::obs
