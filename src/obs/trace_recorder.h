// A low-overhead, thread-safe trace recorder exporting Chrome
// trace_event JSON (loadable in chrome://tracing and Perfetto).
//
// Design. Each recording thread owns a pre-sized per-thread buffer;
// appends touch no shared lock — the writer fills the next slot and
// publishes it with one release store of the buffer's size, readers
// (export, counters) acquire-load the size and only read below it. The
// recorder's mutex guards nothing but buffer registration and the export
// walk, so concurrent solver threads never contend with each other. A
// full buffer drops events and counts the drops instead of reallocating
// (or worse, blocking) mid-solve.
//
// Cost model: with the recorder disabled, TraceSpan construction is one
// relaxed atomic load; there is no global singleton — whoever owns a
// recorder (socvis_serve --trace-out, tests) threads a pointer through,
// and a nullptr recorder makes every entry point inert.
//
// Span names come from the canonical table in span_names.h (lint rule
// "span-name"); free-form strings belong in args, not names.

#ifndef SOC_OBS_TRACE_RECORDER_H_
#define SOC_OBS_TRACE_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace soc::obs {

// One key/value attached to a trace event. The value is stored as a
// pre-serialized JSON fragment so the hot path never walks a tree.
struct TraceArg {
  static TraceArg Str(std::string key, const std::string& value);
  static TraceArg Num(std::string key, double value);
  static TraceArg Int(std::string key, long long value);

  std::string key;
  std::string json_value;
};

struct TraceEvent {
  const char* name = "";      // Static storage: a span-name constant.
  const char* category = "";  // Static storage, e.g. "serve", "solve".
  char phase = 'X';           // 'X' complete span, 'i' instant event.
  std::int64_t ts_ns = 0;     // Steady-clock nanos since recorder epoch.
  std::int64_t dur_ns = 0;    // Complete spans only.
  std::uint32_t tid = 0;      // Recorder-assigned, dense from 1.
  std::vector<TraceArg> args;
};

class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultPerThreadCapacity = 1 << 16;

  explicit TraceRecorder(
      std::size_t per_thread_capacity = kDefaultPerThreadCapacity);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Recording is off until enabled; a disabled recorder makes Record a
  // no-op and TraceSpan construction a single relaxed load.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Nanoseconds of steady clock since this recorder's construction.
  std::int64_t NowNanos() const;

  // Appends to the calling thread's buffer (stamping the tid); silently
  // counted as dropped when the buffer is full or recording is disabled.
  void Record(TraceEvent event) SOC_EXCLUDES(mutex_);

  // Convenience wrappers around Record.
  void RecordComplete(const char* name, const char* category,
                      std::int64_t start_ns, std::int64_t dur_ns,
                      std::vector<TraceArg> args = {});
  void RecordInstant(const char* name, const char* category,
                     std::vector<TraceArg> args = {});

  // Events currently held across all thread buffers / dropped on full
  // buffers. Safe to call concurrently with recording.
  std::int64_t events_recorded() const SOC_EXCLUDES(mutex_);
  std::int64_t events_dropped() const SOC_EXCLUDES(mutex_);

  // Chrome trace_event JSON: {"traceEvents":[...],...}, events merged
  // across threads in timestamp order, one event object per line (so
  // line-oriented tools — and our flat json_reader in tests — can
  // round-trip individual events). Safe concurrently with recording;
  // events published after the walk starts may be missed.
  std::string ToChromeTraceJson() const SOC_EXCLUDES(mutex_);
  Status WriteChromeTrace(const std::string& path) const;

 private:
  struct ThreadBuffer {
    explicit ThreadBuffer(std::size_t capacity, std::uint32_t tid)
        : tid(tid), events(capacity) {}
    const std::uint32_t tid;
    std::vector<TraceEvent> events;  // Slots < size are published.
    std::atomic<std::size_t> size{0};
    std::atomic<std::int64_t> dropped{0};
  };

  // The calling thread's buffer, registering it on first use. The
  // thread-local cache is keyed by a process-unique recorder id, so a
  // recorder reallocated at a dead one's address can never be confused
  // with it (the stale cache misses and re-registers).
  ThreadBuffer* BufferForThisThread() SOC_EXCLUDES(mutex_);

  const std::uint64_t id_;
  const std::size_t per_thread_capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};

  mutable Mutex mutex_{lock_rank::kTraceRecorder};
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ SOC_GUARDED_BY(mutex_);
};

// RAII span: captures the start time at construction and records one
// complete event at destruction. Inert (single branch) when `recorder`
// is nullptr or disabled at construction time.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, const char* name, const char* category);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // True iff the span will be recorded (lets callers skip building args).
  bool active() const { return recorder_ != nullptr; }
  void AddArg(TraceArg arg);

 private:
  TraceRecorder* const recorder_;  // nullptr = inert.
  const char* const name_;
  const char* const category_;
  std::int64_t start_ns_ = 0;
  std::vector<TraceArg> args_;
};

}  // namespace soc::obs

#endif  // SOC_OBS_TRACE_RECORDER_H_
