// TracingPhaseListener: the bridge between the solver layers' abstract
// phase hooks (soc::PhaseListener, common/solve_context.h) and a concrete
// TraceRecorder.
//
// The serving layer (or a CLI) attaches one listener per solve to the
// request's SolveContext; solvers mark phases with PhaseScope and never
// see the recorder. Phase begin/end pairs become nested complete spans on
// the solving thread; the one-shot OnStop becomes a "degraded" instant
// event carrying the stop reason and the remaining-budget picture, so a
// blown deadline is diagnosable from the trace alone.
//
// Not thread-safe: one listener belongs to the single thread driving its
// solve, like the SolveContext it is attached to.

#ifndef SOC_OBS_CONTEXT_TRACER_H_
#define SOC_OBS_CONTEXT_TRACER_H_

#include <cstdint>
#include <vector>

#include "common/solve_context.h"
#include "obs/trace_recorder.h"

namespace soc::obs {

class TracingPhaseListener : public PhaseListener {
 public:
  // `recorder` is non-owning and may be nullptr (inert listener).
  // `category` must have static storage duration.
  TracingPhaseListener(TraceRecorder* recorder, const char* category)
      : recorder_(recorder), category_(category) {}

  void OnPhaseBegin(const char* name) override;
  void OnPhaseEnd(const char* name) override;
  void OnStop(StopReason reason, std::int64_t ticks,
              std::int64_t tick_budget,
              double deadline_remaining_s) override;

 private:
  struct OpenPhase {
    const char* name;
    std::int64_t start_ns;
  };

  TraceRecorder* const recorder_;
  const char* const category_;
  std::vector<OpenPhase> open_;  // Innermost phase last.
};

}  // namespace soc::obs

#endif  // SOC_OBS_CONTEXT_TRACER_H_
