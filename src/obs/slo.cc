#include "obs/slo.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

namespace soc::obs {

namespace {

constexpr char kOverflowTenant[] = "other";

double BurnRate(std::int64_t good, std::int64_t bad, double target) {
  const std::int64_t total = good + bad;
  if (total == 0) return 0;
  const double bad_fraction =
      static_cast<double>(bad) / static_cast<double>(total);
  const double budget = 1.0 - target;
  return bad_fraction / budget;
}

SloEngineOptions Normalize(SloEngineOptions options) {
  options.fast_window_s = std::max(1.0, options.fast_window_s);
  options.slow_window_s =
      std::max(options.fast_window_s, options.slow_window_s);
  options.max_tenants = std::max<std::size_t>(1, options.max_tenants);
  auto clamp_target = [](SloObjective* objective) {
    objective->availability_target =
        std::clamp(objective->availability_target, 0.0, 0.9999);
    objective->latency_threshold_ms =
        std::max(0.0, objective->latency_threshold_ms);
  };
  clamp_target(&options.default_objective);
  if (!options.clock) {
    options.clock = [epoch = std::chrono::steady_clock::now()] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - epoch)
          .count();
    };
  }
  return options;
}

}  // namespace

void SloEngine::Window::Advance(std::int64_t second) {
  if (newest_second < 0) {
    newest_second = second;
    return;
  }
  if (second <= newest_second) return;  // Backwards step: clamp.
  const std::int64_t span = static_cast<std::int64_t>(good.size());
  const std::int64_t steps = std::min(second - newest_second, span);
  for (std::int64_t i = 1; i <= steps; ++i) {
    const std::size_t slot =
        static_cast<std::size_t>((newest_second + i) % span);
    good[slot] = 0;
    bad[slot] = 0;
  }
  newest_second = second;
}

void SloEngine::Window::Add(std::int64_t second, bool is_good) {
  Advance(second);
  const std::size_t slot = static_cast<std::size_t>(
      newest_second % static_cast<std::int64_t>(good.size()));
  (is_good ? good : bad)[slot] += 1;
}

void SloEngine::Window::Totals(std::int64_t now_s, int span_s,
                               std::int64_t* good_total,
                               std::int64_t* bad_total) const {
  *good_total = 0;
  *bad_total = 0;
  if (newest_second < 0) return;
  const std::int64_t ring = static_cast<std::int64_t>(good.size());
  const std::int64_t end = std::max(now_s, newest_second);
  // Buckets newer than newest_second are empty by construction; buckets
  // older than newest_second - ring + 1 have been overwritten. Seconds
  // are never negative (RecordOutcome floors the clock at 0), so the
  // window also never reaches below bucket 0 — without that clamp a
  // negative s would take C++'s negative remainder and index off the
  // ring.
  const std::int64_t oldest_valid = newest_second - ring + 1;
  const std::int64_t start =
      std::max({end - span_s + 1, oldest_valid, std::int64_t{0}});
  for (std::int64_t s = start; s <= std::min(end, newest_second); ++s) {
    const std::size_t slot = static_cast<std::size_t>(s % ring);
    *good_total += good[slot];
    *bad_total += bad[slot];
  }
}

SloEngine::SloEngine(SloEngineOptions options)
    : options_(Normalize(std::move(options))) {}

SloEngine::Tenant& SloEngine::TenantFor(const std::string& tenant) {
  const auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return it->second;
  std::string key = tenant;
  if (tenants_.size() >= options_.max_tenants &&
      tenants_.count(kOverflowTenant) == 0) {
    key = kOverflowTenant;
  } else if (tenants_.size() >= options_.max_tenants) {
    return tenants_.at(kOverflowTenant);
  }
  return tenants_
      .emplace(key, Tenant(options_.default_objective,
                           static_cast<int>(options_.slow_window_s)))
      .first->second;
}

void SloEngine::SetObjective(const std::string& tenant,
                             SloObjective objective) {
  objective.availability_target =
      std::clamp(objective.availability_target, 0.0, 0.9999);
  objective.latency_threshold_ms =
      std::max(0.0, objective.latency_threshold_ms);
  MutexLock lock(mutex_);
  TenantFor(tenant).objective = objective;
}

void SloEngine::RecordOutcome(const std::string& tenant, bool ok,
                              double latency_ms) {
  const double now = options_.clock();
  const std::int64_t second =
      static_cast<std::int64_t>(std::floor(std::max(0.0, now)));
  MutexLock lock(mutex_);
  Tenant& state = TenantFor(tenant);
  const bool good =
      ok && std::isfinite(latency_ms) &&
      latency_ms <= state.objective.latency_threshold_ms;
  state.window.Add(second, good);
  (good ? state.good : state.bad) += 1;
}

TenantSlo SloEngine::StateOf(const Tenant& tenant,
                             std::int64_t now_s) const {
  TenantSlo state;
  state.objective = tenant.objective;
  state.good = tenant.good;
  state.bad = tenant.bad;
  std::int64_t good = 0, bad = 0;
  tenant.window.Totals(now_s, static_cast<int>(options_.fast_window_s),
                       &good, &bad);
  state.burn_fast =
      BurnRate(good, bad, tenant.objective.availability_target);
  tenant.window.Totals(now_s, static_cast<int>(options_.slow_window_s),
                       &good, &bad);
  state.burn_slow =
      BurnRate(good, bad, tenant.objective.availability_target);
  state.alerting = state.burn_fast > options_.fast_burn_threshold &&
                   state.burn_slow > options_.slow_burn_threshold;
  return state;
}

SloReport SloEngine::Report() const {
  const double now = options_.clock();
  const std::int64_t now_s =
      static_cast<std::int64_t>(std::floor(std::max(0.0, now)));
  SloReport report;
  MutexLock lock(mutex_);
  report.tenants.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) {
    report.tenants.emplace_back(id, StateOf(tenant, now_s));
  }
  return report;
}

JsonValue SloReport::ToJson() const {
  JsonValue object = JsonValue::Object();
  for (const auto& [id, state] : tenants) {
    JsonValue entry = JsonValue::Object();
    entry.Set("latency_threshold_ms",
              JsonValue::Number(state.objective.latency_threshold_ms))
        .Set("availability_target",
             JsonValue::Number(state.objective.availability_target))
        .Set("good", JsonValue::Int(state.good))
        .Set("bad", JsonValue::Int(state.bad))
        .Set("burn_fast", JsonValue::Number(state.burn_fast))
        .Set("burn_slow", JsonValue::Number(state.burn_slow))
        .Set("alerting", JsonValue::Bool(state.alerting));
    object.Set(id, std::move(entry));
  }
  return object;
}

}  // namespace soc::obs
