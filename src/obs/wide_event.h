// The wide-event request log: one structured, flat JSON record per
// served request — the "canonical queryable event" of observability v2
// (DESIGN.md §15). Where metrics aggregate and traces narrate, a wide
// event carries *everything known about one request* in one row:
// routing (tenant, shard, epoch), the CostModel instance features the
// admission decision saw, the solver requested vs. the solver that
// actually ran, all three latencies, and every outcome bit (shed /
// degrade / breaker reroute / ladder downgrade / cache hit). The JSONL
// file socvis_serve writes behind --events-out is the training set the
// ROADMAP's adaptive solver portfolio will learn its dispatcher from,
// so the schema is versioned and round-trips bit-exactly.
//
// Schema v1 (field → meaning; optional fields are omitted at their
// default, so encode(parse(line)) == line for every accepted line):
//
//   v               int     required; always 1 (readers reject others)
//   ts_ms           double  steady-clock ms since the EventLog epoch
//   id              string  request id, echoed from the protocol
//   tenant          string  optional; tenant id on the sharded path
//   shard           int     optional (default -1); shard index
//   epoch           int     optional (default 0); snapshot epoch served
//   solver_req      string  solver named by the client
//   solver          string  solver that actually ran (after downgrades)
//   m               int     requested attribute budget (-1: the client
//                           sent a negative budget and was rejected)
//   deadline_ms     double  optional; effective deadline
//   num_queries     int     CostModel feature |Q| (collapsed log size)
//   num_attributes  int     CostModel feature: attribute count
//   collapse_ratio  double  CostModel feature: collapsed/raw |Q|
//   queue_ms        double  submit → worker pickup
//   solve_ms        double  pickup → response
//   total_ms        double  submit → response
//   predicted_ms    double  optional; CostModel solve-time prediction
//   outcome         string  one of kWideEventOutcomes
//   code            string  StatusCodeToString of the response status
//   shed_reason     string  optional; one of kWideEventShedReasons
//   stop_reason     string  optional; degrade reason ("deadline", ...)
//   degraded, fast_path, cache_hit, breaker_rerouted, ladder_downgraded
//                   bool    optional outcome bits (omitted when false)
//   satisfied       int     optional (default -1); objective value
//   retry_after_ms  double  optional; backoff hint on sheds
//
// This header is in the obs layer (below serve), so the shed-reason
// vocabulary is declared here as a canonical table rather than included
// from serve/visibility_service.h; soc_lint's event-field-parity rule
// keeps the two lists identical in both directions.

#ifndef SOC_OBS_WIDE_EVENT_H_
#define SOC_OBS_WIDE_EVENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace soc::obs {

// Bumped whenever a field changes meaning or type; additions that keep
// old readers correct may reuse the version.
inline constexpr int kWideEventSchemaVersion = 1;

// Canonical outcome classification, exactly one per event.
inline constexpr const char* kWideEventOutcomes[] = {
    "ok",       // Served a solution (possibly degraded / from cache).
    "shed",     // Load-shed with kOverloaded; see shed_reason.
    "invalid",  // Client error: malformed request or unknown name.
    "error",    // Solver / internal fault.
};

// Canonical shed_reason vocabulary. Must match the kShedReason*
// constants in src/serve/visibility_service.h (lint rule
// event-field-parity checks both directions).
inline constexpr const char* kWideEventShedReasons[] = {
    "queue_full",
    "predicted_deadline_miss",
    "deadline_expired",
    "shutdown",
};

struct WideEvent {
  double ts_ms = 0;
  std::string id;
  std::string tenant;            // Empty on the single-tenant path.
  int shard = -1;                // -1 = single-tenant.
  std::int64_t epoch = 0;        // 0 = no snapshot epoch.
  std::string solver_req;
  std::string solver;
  int m = 0;
  double deadline_ms = 0;
  // CostModel instance features (serve/cost_model.h CostFeatures).
  int num_queries = 0;
  int num_attributes = 0;
  double collapse_ratio = 0;
  double queue_ms = 0;
  double solve_ms = 0;
  double total_ms = 0;
  double predicted_ms = 0;
  std::string outcome = "ok";
  std::string code = "OK";
  std::string shed_reason;
  std::string stop_reason;       // Empty = not degraded.
  bool degraded = false;
  bool fast_path = false;
  bool cache_hit = false;
  bool breaker_rerouted = false;
  bool ladder_downgraded = false;
  int satisfied = -1;            // -1 = no solution attached.
  double retry_after_ms = 0;
};

bool IsWideEventOutcome(const std::string& outcome);
bool IsWideEventShedReason(const std::string& reason);

// One line of JSONL, no trailing newline. Deterministic: fixed field
// order, optional fields omitted at their defaults.
std::string WideEventToJsonLine(const WideEvent& event);

// Strict inverse: rejects unknown fields, wrong types, non-finite or
// negative latencies, out-of-vocabulary enums and schema versions other
// than kWideEventSchemaVersion. Encoding is a fixed point of
// parse∘encode: for every event e,
// WideEventToJsonLine(*ParseWideEventLine(WideEventToJsonLine(e))) ==
// WideEventToJsonLine(e) (an accepted non-canonical spelling like
// "0.1" may re-encode to its %.17g form, but never drifts further).
StatusOr<WideEvent> ParseWideEventLine(const std::string& line);

}  // namespace soc::obs

#endif  // SOC_OBS_WIDE_EVENT_H_
