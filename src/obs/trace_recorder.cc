#include "obs/trace_recorder.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

#include "common/json_writer.h"
#include "common/string_util.h"

namespace soc::obs {

namespace {

// Process-unique recorder ids; id 0 is reserved as "no recorder" so a
// zero-initialized thread-local cache can never falsely hit.
std::atomic<std::uint64_t> next_recorder_id{1};

// %.3f without locale surprises; Chrome timestamps are microseconds.
std::string Micros(std::int64_t ns) {
  return StrFormat("%.3f", static_cast<double>(ns) / 1000.0);
}

}  // namespace

TraceArg TraceArg::Str(std::string key, const std::string& value) {
  return TraceArg{std::move(key), JsonEscape(value)};
}

TraceArg TraceArg::Num(std::string key, double value) {
  JsonValue json = JsonValue::Number(value);  // null for non-finite.
  return TraceArg{std::move(key), json.ToString()};
}

TraceArg TraceArg::Int(std::string key, long long value) {
  return TraceArg{std::move(key), std::to_string(value)};
}

TraceRecorder::TraceRecorder(std::size_t per_thread_capacity)
    : id_(next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      per_thread_capacity_(std::max<std::size_t>(1, per_thread_capacity)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() = default;

std::int64_t TraceRecorder::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  struct TlsCache {
    std::uint64_t recorder_id = 0;
    ThreadBuffer* buffer = nullptr;
  };
  static thread_local TlsCache cache;
  if (cache.recorder_id == id_) return cache.buffer;
  // First event from this thread on this recorder: register a buffer.
  // A thread alternating between two live recorders re-registers on each
  // switch (a fresh buffer per switch); the only user with more than one
  // recorder is the test suite, which never interleaves.
  MutexLock lock(mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>(
      per_thread_capacity_, static_cast<std::uint32_t>(buffers_.size() + 1)));
  cache = {id_, buffers_.back().get()};
  return cache.buffer;
}

void TraceRecorder::Record(TraceEvent event) {
  if (!enabled()) return;
  ThreadBuffer* buffer = BufferForThisThread();
  const std::size_t slot = buffer->size.load(std::memory_order_relaxed);
  if (slot >= buffer->events.size()) {
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  event.tid = buffer->tid;
  buffer->events[slot] = std::move(event);
  // Publish: readers acquire `size` and only touch slots below it.
  buffer->size.store(slot + 1, std::memory_order_release);
}

void TraceRecorder::RecordComplete(const char* name, const char* category,
                                   std::int64_t start_ns, std::int64_t dur_ns,
                                   std::vector<TraceArg> args) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'X';
  event.ts_ns = start_ns;
  event.dur_ns = dur_ns;
  event.args = std::move(args);
  Record(std::move(event));
}

void TraceRecorder::RecordInstant(const char* name, const char* category,
                                  std::vector<TraceArg> args) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'i';
  event.ts_ns = NowNanos();
  event.args = std::move(args);
  Record(std::move(event));
}

std::int64_t TraceRecorder::events_recorded() const {
  MutexLock lock(mutex_);
  std::int64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += static_cast<std::int64_t>(
        buffer->size.load(std::memory_order_acquire));
  }
  return total;
}

std::int64_t TraceRecorder::events_dropped() const {
  MutexLock lock(mutex_);
  std::int64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  std::vector<const TraceEvent*> merged;
  std::int64_t dropped = 0;
  MutexLock lock(mutex_);
  for (const auto& buffer : buffers_) {
    const std::size_t n = buffer->size.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) merged.push_back(&buffer->events[i]);
    dropped += buffer->dropped.load(std::memory_order_relaxed);
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->ts_ns < b->ts_ns;
                   });

  std::string out = "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const TraceEvent& event = *merged[i];
    out += "{\"name\":" + JsonEscape(event.name) +
           ",\"cat\":" + JsonEscape(event.category) + ",\"ph\":\"" +
           event.phase + "\",\"pid\":1,\"tid\":" +
           std::to_string(event.tid) + ",\"ts\":" + Micros(event.ts_ns);
    if (event.phase == 'X') out += ",\"dur\":" + Micros(event.dur_ns);
    if (event.phase == 'i') out += ",\"s\":\"t\"";  // Thread-scoped.
    if (!event.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t a = 0; a < event.args.size(); ++a) {
        if (a > 0) out += ',';
        out += JsonEscape(event.args[a].key) + ":" +
               event.args[a].json_value;
      }
      out += '}';
    }
    out += '}';
    if (i + 1 < merged.size()) out += ',';
    out += '\n';
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":" +
         std::to_string(dropped) + "}}\n";
  return out;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return InternalError("cannot open trace output " + path);
  out << ToChromeTraceJson();
  if (!out) return InternalError("short write to trace output " + path);
  return Status::OK();
}

TraceSpan::TraceSpan(TraceRecorder* recorder, const char* name,
                     const char* category)
    : recorder_(recorder != nullptr && recorder->enabled() ? recorder
                                                           : nullptr),
      name_(name),
      category_(category) {
  if (recorder_ != nullptr) start_ns_ = recorder_->NowNanos();
}

TraceSpan::~TraceSpan() {
  if (recorder_ == nullptr) return;
  recorder_->RecordComplete(name_, category_, start_ns_,
                            recorder_->NowNanos() - start_ns_,
                            std::move(args_));
}

void TraceSpan::AddArg(TraceArg arg) {
  if (recorder_ != nullptr) args_.push_back(std::move(arg));
}

}  // namespace soc::obs
