#include "obs/span_names.h"

#include <cstring>

namespace soc::obs {

bool IsCanonicalSpanName(const char* name) {
  for (const char* canonical : kSpanNames) {
    if (std::strcmp(canonical, name) == 0) return true;
  }
  return false;
}

}  // namespace soc::obs
