// Per-tenant SLO burn-rate engine (observability v2, DESIGN.md §15).
//
// Each tenant declares an objective: a latency threshold and an
// availability target. Every finished (or shed) request is recorded as
// *good* — status OK and total latency within threshold — or *bad*,
// into per-second ring buckets. Burn rate over a window is the
// SRE-handbook definition:
//
//   burn = (bad / (good + bad)) / (1 - availability_target)
//
// i.e. the speed at which the tenant's error budget is being spent:
// burn 1 spends exactly the budget, burn N exhausts it N× too fast.
// Alerting is multi-window: a tenant alerts only while BOTH the fast
// window (~5 min: reacts quickly) and the slow window (~1 h: suppresses
// blips) burn above their thresholds — the standard fast+slow pairing
// that keeps alerts both prompt and low-noise.
//
// The engine is thread-safe (one leaf mutex, rank kSloEngine), bounds
// tenant cardinality the same way ServeMetrics bounds labels (beyond
// max_tenants new tenants fold into "other"), and takes an injectable
// clock so tests can step time across bucket boundaries, wraparound and
// backwards steps deterministically.

#ifndef SOC_OBS_SLO_H_
#define SOC_OBS_SLO_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace soc::obs {

struct SloObjective {
  // A request slower than this is bad even when it succeeds.
  double latency_threshold_ms = 1000;
  // Fraction of requests that must be good, in [0, 0.9999]; the error
  // budget is 1 - availability_target.
  double availability_target = 0.999;
};

struct SloEngineOptions {
  SloObjective default_objective;
  double fast_window_s = 300;    // ~5 min.
  double slow_window_s = 3600;   // ~1 h.
  // Alert while burn_fast > fast AND burn_slow > slow. The defaults are
  // the SRE-handbook page-severity pair for a 30-day budget.
  double fast_burn_threshold = 14.4;
  double slow_burn_threshold = 6.0;
  // Distinct tenants tracked; later tenants fold into "other".
  std::size_t max_tenants = 256;
  // Seconds on a monotonic clock; injectable for tests. Defaults to
  // steady_clock anchored at engine construction.
  std::function<double()> clock;
};

// One tenant's point-in-time SLO state.
struct TenantSlo {
  SloObjective objective;
  std::int64_t good = 0;  // Cumulative, not windowed.
  std::int64_t bad = 0;
  double burn_fast = 0;
  double burn_slow = 0;
  bool alerting = false;
};

struct SloReport {
  // Tenant id -> state, sorted by id ("other" holds the overflow).
  std::vector<std::pair<std::string, TenantSlo>> tenants;
  // {"objectives":..,"tenants":{id:{...}}}; stable field order.
  JsonValue ToJson() const;
};

class SloEngine {
 public:
  explicit SloEngine(SloEngineOptions options = {});

  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  // Declares/overrides one tenant's objective. Tenants without an
  // explicit objective get the default on first Record.
  void SetObjective(const std::string& tenant, SloObjective objective)
      SOC_EXCLUDES(mutex_);

  // Records one outcome: good iff `ok` and latency_ms is within the
  // tenant's threshold. Admission sheds record as (ok=false, 0).
  void RecordOutcome(const std::string& tenant, bool ok, double latency_ms)
      SOC_EXCLUDES(mutex_);

  // Point-in-time burn rates and alert state for every known tenant.
  SloReport Report() const SOC_EXCLUDES(mutex_);

  const SloEngineOptions& options() const { return options_; }

 private:
  // Per-second (good, bad) ring sized to the slow window. now_s beyond
  // the newest bucket clears the skipped range; a backwards clock step
  // clamps into the newest bucket (monotonic clocks only step forward,
  // but an injected test clock may not).
  struct Window {
    explicit Window(int seconds)
        : good(seconds, 0), bad(seconds, 0) {}
    std::vector<std::int64_t> good;
    std::vector<std::int64_t> bad;
    std::int64_t newest_second = -1;  // -1 = empty.

    void Advance(std::int64_t second);
    void Add(std::int64_t second, bool is_good);
    // Totals over the trailing `span_s` seconds ending at
    // max(newest_second, now_s).
    void Totals(std::int64_t now_s, int span_s, std::int64_t* good_total,
                std::int64_t* bad_total) const;
  };

  struct Tenant {
    explicit Tenant(SloObjective objective, int slow_window_s)
        : objective(objective), window(slow_window_s) {}
    SloObjective objective;
    Window window;
    std::int64_t good = 0;
    std::int64_t bad = 0;
  };

  Tenant& TenantFor(const std::string& tenant) SOC_REQUIRES(mutex_);
  TenantSlo StateOf(const Tenant& tenant, std::int64_t now_s) const
      SOC_REQUIRES(mutex_);

  const SloEngineOptions options_;
  mutable Mutex mutex_{lock_rank::kSloEngine};
  std::map<std::string, Tenant> tenants_ SOC_GUARDED_BY(mutex_);
};

}  // namespace soc::obs

#endif  // SOC_OBS_SLO_H_
