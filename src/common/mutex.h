// Annotated mutex wrappers for Clang Thread Safety Analysis.
//
// std::mutex / std::shared_mutex carry no thread-safety attributes under
// libstdc++, so locking through them is invisible to -Wthread-safety.
// These thin wrappers (zero overhead beyond the underlying primitive)
// re-expose the std types as annotated capabilities, following the
// absl::Mutex vocabulary:
//
//   Mutex / SharedMutex      — the capabilities themselves
//   MutexLock                — scoped exclusive lock on a Mutex
//   ReaderMutexLock /
//   WriterMutexLock          — scoped shared / exclusive lock on a
//                              SharedMutex
//   CondVar                  — condition variable whose Wait requires the
//                              Mutex it atomically releases
//
// Code that waits on a CondVar must hold the Mutex via a scope the
// analysis can see (a MutexLock in the same function) and loop on its
// predicate explicitly: `while (!ready) cv.Wait(mu);`. Predicate lambdas
// are analyzed as separate unannotated functions and would defeat the
// analysis.
//
// Deadlock freedom is enforced on a second axis: long-lived mutexes are
// constructed with a LockRank from the project hierarchy
// (common/lock_rank.h). In debug/sanitizer builds every acquisition is
// checked against a thread-local stack of held ranks and an
// out-of-order acquisition aborts with both lock names; release builds
// compile the check away entirely (the stored rank is never read). The
// same declared ranks are what soc_lint's lock-hierarchy pass verifies
// statically, so the dynamic checker and the static analyzer agree on
// one table.

#ifndef SOC_COMMON_MUTEX_H_
#define SOC_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace soc {

class SOC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SOC_ACQUIRE() {
    // Checked before the native lock: an inversion reports and aborts
    // instead of deadlocking.
    lock_rank_internal::CheckAcquire(rank_);
    mu_.lock();
    lock_rank_internal::Push(rank_);
  }
  void Unlock() SOC_RELEASE() {
    lock_rank_internal::Pop(rank_);
    mu_.unlock();
  }
  bool TryLock() SOC_TRY_ACQUIRE(true) {
    // TryLock never blocks, so out-of-order attempts are legal; only a
    // successful acquisition joins the held stack.
    if (!mu_.try_lock()) return false;
    lock_rank_internal::Push(rank_);
    return true;
  }

 private:
  friend class CondVar;
  std::mutex mu_;
  LockRank rank_{};
};

class SOC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SOC_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SOC_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// A condition variable bound to soc::Mutex. Wait atomically releases the
// (held) mutex while sleeping and reacquires it before returning, so from
// the analysis' point of view the capability is held throughout.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) SOC_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() hands ownership back without unlocking.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  // Timed wait: returns false if `seconds` elapsed without a notification
  // (spurious wakeups return true; callers loop on their predicate either
  // way, re-deriving the remaining time).
  bool WaitFor(Mutex& mu, double seconds) SOC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::duration<double>(seconds));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

class SOC_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(LockRank rank) : rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SOC_ACQUIRE() {
    lock_rank_internal::CheckAcquire(rank_);
    mu_.lock();
    lock_rank_internal::Push(rank_);
  }
  void Unlock() SOC_RELEASE() {
    lock_rank_internal::Pop(rank_);
    mu_.unlock();
  }
  // Shared acquisitions participate in the hierarchy exactly like
  // exclusive ones: a reader blocked behind a writer deadlocks the same
  // way.
  void ReaderLock() SOC_ACQUIRE_SHARED() {
    lock_rank_internal::CheckAcquire(rank_);
    mu_.lock_shared();
    lock_rank_internal::Push(rank_);
  }
  void ReaderUnlock() SOC_RELEASE_SHARED() {
    lock_rank_internal::Pop(rank_);
    mu_.unlock_shared();
  }

 private:
  std::shared_mutex mu_;
  LockRank rank_{};
};

class SOC_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) SOC_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.ReaderLock();
  }
  // Scoped releases are "generic" to the analysis: it knows the mode from
  // the constructor.
  ~ReaderMutexLock() SOC_RELEASE_GENERIC() { mu_.ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

class SOC_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) SOC_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() SOC_RELEASE_GENERIC() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace soc

#endif  // SOC_COMMON_MUTEX_H_
