// Top-level key surgery on serialized JSON objects, for benchmark
// artifacts that several binaries co-own (BENCH_serve.json: the
// serve_throughput sweep and the multitenant_load bench each rewrite
// only their own section). A full JSON document model would be overkill
// — these helpers tokenize just enough (strings with escapes, balanced
// {}/[] nesting) to locate one top-level key's value span.
//
// Both helpers validate only the object *skeleton*; nested values are
// treated as opaque spans and copied verbatim.

#ifndef SOC_COMMON_JSON_SPLICE_H_
#define SOC_COMMON_JSON_SPLICE_H_

#include <string>

#include "common/status.h"

namespace soc {

// Returns the serialized value of `key` in the top-level object of
// `json_text` (whitespace-trimmed, quotes and braces included).
// NotFoundError when the key is absent; InvalidArgumentError when the
// text is not an object.
StatusOr<std::string> JsonExtractTopLevelKey(const std::string& json_text,
                                             const std::string& key);

// Returns `json_text` with `key` bound to `value_text` (which must be a
// serialized JSON value): replaces the existing value span in place, or
// appends the pair before the closing brace when the key is absent. The
// rest of the document is byte-preserved.
StatusOr<std::string> JsonSpliceTopLevelKey(const std::string& json_text,
                                            const std::string& key,
                                            const std::string& value_text);

}  // namespace soc

#endif  // SOC_COMMON_JSON_SPLICE_H_
