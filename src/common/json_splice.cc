#include "common/json_splice.h"

#include <cstddef>

namespace soc {
namespace {

// One located top-level entry: [key_start, value_end) covers
// `"key": value`; [value_start, value_end) the value alone.
struct EntrySpan {
  std::size_t key_start = 0;
  std::size_t value_start = 0;
  std::size_t value_end = 0;
  std::string key;
};

bool IsJsonSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

std::size_t SkipSpace(const std::string& text, std::size_t pos) {
  while (pos < text.size() && IsJsonSpace(text[pos])) ++pos;
  return pos;
}

// Advances past one string literal starting at the opening quote.
Status SkipString(const std::string& text, std::size_t* pos) {
  ++*pos;  // Opening quote.
  while (*pos < text.size()) {
    const char c = text[*pos];
    if (c == '\\') {
      *pos += 2;
      continue;
    }
    ++*pos;
    if (c == '"') return Status::OK();
  }
  return InvalidArgumentError("unterminated string literal");
}

// Advances past one value (scalar, string, object or array) starting at
// its first byte.
Status SkipValue(const std::string& text, std::size_t* pos) {
  if (*pos >= text.size()) return InvalidArgumentError("missing value");
  const char first = text[*pos];
  if (first == '"') return SkipString(text, pos);
  if (first == '{' || first == '[') {
    int depth = 0;
    while (*pos < text.size()) {
      const char c = text[*pos];
      if (c == '"') {
        const Status status = SkipString(text, pos);
        if (!status.ok()) return status;
        continue;
      }
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') --depth;
      ++*pos;
      if (depth == 0) return Status::OK();
    }
    return InvalidArgumentError("unbalanced brackets");
  }
  // Scalar: runs to the next top-of-value delimiter.
  const std::size_t start = *pos;
  while (*pos < text.size()) {
    const char c = text[*pos];
    if (c == ',' || c == '}' || c == ']' || IsJsonSpace(c)) break;
    ++*pos;
  }
  if (*pos == start) return InvalidArgumentError("missing value");
  return Status::OK();
}

// Walks the top-level object; returns the span of `key` via `found`
// (found->value_end == 0 when absent) and the closing-brace position via
// `close_brace`.
Status LocateKey(const std::string& text, const std::string& key,
                 EntrySpan* found, std::size_t* close_brace,
                 bool* object_empty) {
  std::size_t pos = SkipSpace(text, 0);
  if (pos >= text.size() || text[pos] != '{') {
    return InvalidArgumentError("not a JSON object");
  }
  ++pos;
  *object_empty = true;
  found->value_end = 0;
  while (true) {
    pos = SkipSpace(text, pos);
    if (pos >= text.size()) return InvalidArgumentError("unterminated object");
    if (text[pos] == '}') {
      *close_brace = pos;
      return Status::OK();
    }
    if (text[pos] != '"') {
      return InvalidArgumentError("expected a string key");
    }
    *object_empty = false;
    EntrySpan entry;
    entry.key_start = pos;
    const std::size_t key_open = pos;
    SOC_RETURN_IF_ERROR(SkipString(text, &pos));
    entry.key = text.substr(key_open + 1, pos - key_open - 2);
    pos = SkipSpace(text, pos);
    if (pos >= text.size() || text[pos] != ':') {
      return InvalidArgumentError("expected ':' after key '" + entry.key +
                                  "'");
    }
    pos = SkipSpace(text, pos + 1);
    entry.value_start = pos;
    SOC_RETURN_IF_ERROR(SkipValue(text, &pos));
    entry.value_end = pos;
    if (entry.key == key) *found = entry;
    pos = SkipSpace(text, pos);
    if (pos >= text.size()) return InvalidArgumentError("unterminated object");
    if (text[pos] == ',') {
      ++pos;
      continue;
    }
    if (text[pos] != '}') {
      return InvalidArgumentError("expected ',' or '}' after value of '" +
                                  entry.key + "'");
    }
    *close_brace = pos;
    return Status::OK();
  }
}

}  // namespace

StatusOr<std::string> JsonExtractTopLevelKey(const std::string& json_text,
                                             const std::string& key) {
  EntrySpan found;
  std::size_t close_brace = 0;
  bool object_empty = false;
  SOC_RETURN_IF_ERROR(
      LocateKey(json_text, key, &found, &close_brace, &object_empty));
  if (found.value_end == 0) {
    return NotFoundError("no top-level key '" + key + "'");
  }
  return json_text.substr(found.value_start,
                          found.value_end - found.value_start);
}

StatusOr<std::string> JsonSpliceTopLevelKey(const std::string& json_text,
                                            const std::string& key,
                                            const std::string& value_text) {
  EntrySpan found;
  std::size_t close_brace = 0;
  bool object_empty = false;
  SOC_RETURN_IF_ERROR(
      LocateKey(json_text, key, &found, &close_brace, &object_empty));
  if (found.value_end != 0) {
    return json_text.substr(0, found.value_start) + value_text +
           json_text.substr(found.value_end);
  }
  const std::string separator = object_empty ? "" : ",";
  return json_text.substr(0, close_brace) + separator + "\"" + key +
         "\":" + value_text + json_text.substr(close_brace);
}

}  // namespace soc
