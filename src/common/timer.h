// Wall-clock timing helpers for the benchmark harnesses.

#ifndef SOC_COMMON_TIMER_H_
#define SOC_COMMON_TIMER_H_

#include <chrono>
#include <limits>

namespace soc {

// Measures elapsed wall time from construction (or the last Restart()).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// A wall-clock deadline; never expires when constructed with Infinite().
class Deadline {
 public:
  static Deadline Infinite() { return Deadline(); }

  static Deadline AfterSeconds(double seconds) {
    Deadline deadline;
    deadline.has_deadline_ = true;
    deadline.expiry_ =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
    return deadline;
  }

  bool Expired() const {
    return has_deadline_ && Clock::now() >= expiry_;
  }

  bool has_deadline() const { return has_deadline_; }

  // Strict expiry order; an Infinite() deadline sorts after every finite
  // one (and never before another Infinite()). The EDF scheduler in the
  // serving layer keys its queue on this.
  bool ExpiresBefore(const Deadline& other) const {
    if (!has_deadline_) return false;
    if (!other.has_deadline_) return true;
    return expiry_ < other.expiry_;
  }

  // Seconds until expiry (negative once expired); +infinity for Infinite().
  double RemainingSeconds() const {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(expiry_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Deadline() = default;

  bool has_deadline_ = false;
  Clock::time_point expiry_{};
};

}  // namespace soc

#endif  // SOC_COMMON_TIMER_H_
