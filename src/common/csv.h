// A small CSV reader/writer for persisting datasets and workloads.
//
// Supports RFC-4180-style quoting ("field with, comma", doubled quotes).
// This is sufficient for the library's own data files; it is not a general
// purpose CSV implementation (no embedded newlines inside quoted fields).

#ifndef SOC_COMMON_CSV_H_
#define SOC_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace soc {

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

// Parses CSV text. If `has_header` the first record populates `header`.
// Every record must have the same number of fields.
StatusOr<CsvTable> ParseCsv(const std::string& text, bool has_header);

// Reads and parses a CSV file.
StatusOr<CsvTable> ReadCsvFile(const std::string& path, bool has_header);

// Serializes a table to CSV text (header first when non-empty). Fields
// containing commas, quotes or spaces are quoted.
std::string WriteCsv(const CsvTable& table);

// Writes `table` to `path`.
Status WriteCsvFile(const CsvTable& table, const std::string& path);

}  // namespace soc

#endif  // SOC_COMMON_CSV_H_
