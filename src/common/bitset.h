// DynamicBitset: a runtime-sized bitset used throughout the library to
// represent tuples, queries and itemsets (as attribute sets) as well as
// transaction-id sets in the itemset miners.
//
// The representation is an array of 64-bit words; unused high bits of the
// last word are kept zero as a class invariant, so whole-word operations
// (popcount, subset tests, hashing) need no per-call masking.

#ifndef SOC_COMMON_BITSET_H_
#define SOC_COMMON_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace soc {

class DynamicBitset {
 public:
  DynamicBitset() : size_(0) {}

  // Creates a bitset with `size` bits, all zero.
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  DynamicBitset(const DynamicBitset&) = default;
  DynamicBitset& operator=(const DynamicBitset&) = default;
  DynamicBitset(DynamicBitset&&) = default;
  DynamicBitset& operator=(DynamicBitset&&) = default;

  // Builds a bitset of `size` bits with the given bit indices set.
  static DynamicBitset FromIndices(std::size_t size,
                                   const std::vector<int>& indices);

  // Parses a string of '0'/'1' characters, index 0 first.
  static DynamicBitset FromString(const std::string& bits);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Test(std::size_t pos) const {
    SOC_CHECK_LT(pos, size_);
    return (words_[pos >> 6] >> (pos & 63)) & 1;
  }

  void Set(std::size_t pos, bool value = true) {
    SOC_CHECK_LT(pos, size_);
    const std::uint64_t mask = std::uint64_t{1} << (pos & 63);
    if (value) {
      words_[pos >> 6] |= mask;
    } else {
      words_[pos >> 6] &= ~mask;
    }
  }

  void Reset(std::size_t pos) { Set(pos, false); }

  void Flip(std::size_t pos) {
    SOC_CHECK_LT(pos, size_);
    words_[pos >> 6] ^= std::uint64_t{1} << (pos & 63);
  }

  // Sets all bits to zero / one.
  void ResetAll();
  void SetAll();

  // Number of set bits.
  std::size_t Count() const;

  bool Any() const;
  bool None() const { return !Any(); }
  bool All() const { return Count() == size_; }

  // In-place logical operations. Both operands must have equal size.
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator^=(const DynamicBitset& other);
  // this &= ~other
  DynamicBitset& AndNot(const DynamicBitset& other);

  // Returns ~(*this) with trailing bits kept zero.
  DynamicBitset Complement() const;

  // True iff every set bit of *this is also set in `other`.
  bool IsSubsetOf(const DynamicBitset& other) const;

  // True iff *this is a subset of `other` and the two differ.
  bool IsProperSubsetOf(const DynamicBitset& other) const;

  // True iff the two bitsets share at least one set bit.
  bool Intersects(const DynamicBitset& other) const;

  // popcount(*this & other) without materializing the intersection.
  std::size_t IntersectionCount(const DynamicBitset& other) const;

  // True iff (*this & other) is empty, i.e. *this ⊆ ~other.
  bool DisjointWith(const DynamicBitset& other) const {
    return !Intersects(other);
  }

  // Index of the first set bit, or npos if none.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t FindFirst() const;
  // Index of the first set bit strictly after `pos`, or npos.
  std::size_t FindNext(std::size_t pos) const;

  // Indices of all set bits, ascending.
  std::vector<int> SetBits() const;

  // Calls `fn(index)` for each set bit in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(static_cast<int>(w * 64 + bit));
        word &= word - 1;
      }
    }
  }

  // "0101..." with index 0 first.
  std::string ToString() const;

  // Grows or shrinks to `new_size` bits; new bits are zero.
  void Resize(std::size_t new_size);

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }
  friend bool operator!=(const DynamicBitset& a, const DynamicBitset& b) {
    return !(a == b);
  }
  // Arbitrary-but-total order so bitsets can key std::map / be sorted.
  friend bool operator<(const DynamicBitset& a, const DynamicBitset& b) {
    if (a.size_ != b.size_) return a.size_ < b.size_;
    return a.words_ < b.words_;
  }

  std::size_t Hash() const;

  // Raw word access for performance-critical kernels (miners, evaluators).
  const std::uint64_t* words() const { return words_.data(); }
  std::size_t word_count() const { return words_.size(); }

 private:
  // Zeroes bits at positions >= size_ in the last word.
  void ClearTrailingBits();

  std::size_t size_;
  std::vector<std::uint64_t> words_;
};

DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b);
DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b);
DynamicBitset operator^(DynamicBitset a, const DynamicBitset& b);

struct DynamicBitsetHash {
  std::size_t operator()(const DynamicBitset& b) const { return b.Hash(); }
};

}  // namespace soc

#endif  // SOC_COMMON_BITSET_H_
