#include "common/status.h"

#include <cstdio>

namespace soc {

void IgnoreError(Status&& status, const char* reason) {
#ifndef NDEBUG
  if (!status.ok()) {
    std::fprintf(stderr, "soc: ignored status (%s): %s\n",
                 reason == nullptr ? "unspecified" : reason,
                 status.ToString().c_str());
  }
#else
  (void)status;
  (void)reason;
#endif
}

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

bool StatusCodeFromString(const std::string& name, StatusCode* code) {
  static constexpr StatusCode kAllCodes[] = {
      StatusCode::kOk,
      StatusCode::kInvalidArgument,
      StatusCode::kNotFound,
      StatusCode::kOutOfRange,
      StatusCode::kFailedPrecondition,
      StatusCode::kResourceExhausted,
      StatusCode::kInternal,
      StatusCode::kUnimplemented,
      StatusCode::kDeadlineExceeded,
      StatusCode::kOverloaded,
  };
  for (StatusCode candidate : kAllCodes) {
    if (name == StatusCodeToString(candidate)) {
      *code = candidate;
      return true;
    }
  }
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status OverloadedError(std::string message) {
  return Status(StatusCode::kOverloaded, std::move(message));
}

}  // namespace soc
