#include "common/json_writer.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace soc {

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_value_ = value;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_value_ = value;
  return v;
}

JsonValue JsonValue::Int(long long value) {
  JsonValue v;
  v.kind_ = Kind::kInt;
  v.int_value_ = value;
  return v;
}

JsonValue JsonValue::String(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_value_ = std::move(value);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  SOC_CHECK(kind_ == Kind::kObject);
  for (const auto& [existing, unused] : object_) {
    SOC_CHECK(existing != key);
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

std::string JsonEscape(const std::string& text) {
  std::string out = "\"";
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonValue::AppendTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_value_ ? "true" : "false";
      break;
    case Kind::kNumber:
      if (std::isfinite(number_value_)) {
        *out += StrFormat("%.17g", number_value_);
      } else {
        *out += "null";
      }
      break;
    case Kind::kInt:
      *out += StrFormat("%lld", int_value_);
      break;
    case Kind::kString:
      *out += JsonEscape(string_value_);
      break;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : array_) {
        if (!first) out->push_back(',');
        item.AppendTo(out);
        first = false;
      }
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        *out += JsonEscape(key);
        out->push_back(':');
        value.AppendTo(out);
        first = false;
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::ToString() const {
  std::string out;
  AppendTo(&out);
  return out;
}

}  // namespace soc
