// A minimal JSON reader for line-oriented telemetry (the serve JSONL
// protocol, wide-event logs): parses one *flat*
// JSON object (string / number / bool / null values; no nested arrays or
// objects) per line. The write side is common/json_writer.h; this is the
// matching read side, deliberately scoped to what the protocol needs
// rather than a general JSON library.
//
// Escapes: the full RFC 8259 set (\" \\ \/ \b \f \n \r \t and \uXXXX,
// including surrogate pairs, decoded to UTF-8). Raw multi-byte UTF-8 in
// string values passes through unmodified.

#ifndef SOC_COMMON_JSON_READER_H_
#define SOC_COMMON_JSON_READER_H_

#include <map>
#include <string>

#include "common/status.h"

namespace soc {

struct JsonScalar {
  enum class Kind { kNull, kBool, kNumber, kString };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
};

// Parses `text` as a single flat JSON object; trailing garbage after the
// closing brace (other than whitespace) is an error. Duplicate keys keep
// the last value, as most JSON parsers do.
StatusOr<std::map<std::string, JsonScalar>> ParseFlatJsonObject(
    const std::string& text);

}  // namespace soc

#endif  // SOC_COMMON_JSON_READER_H_
