#include "common/json_reader.h"

#include <cctype>
#include <cstdlib>

namespace soc {

namespace {

// Cursor over `text`; all helpers return false / error on malformed
// input and never read past the end.
struct Cursor {
  const std::string& text;
  std::size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipWhitespace() {
    while (!AtEnd() && (text[pos] == ' ' || text[pos] == '\t' ||
                        text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Consume(char c) {
    if (AtEnd() || text[pos] != c) return false;
    ++pos;
    return true;
  }
};

void AppendUtf8(unsigned int code_point, std::string* out) {
  if (code_point < 0x80) {
    out->push_back(static_cast<char>(code_point));
  } else if (code_point < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (code_point >> 6)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else if (code_point < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (code_point >> 12)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (code_point >> 18)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  }
}

Status ParseHex4(Cursor* cursor, unsigned int* value) {
  *value = 0;
  for (int i = 0; i < 4; ++i) {
    if (cursor->AtEnd()) return InvalidArgumentError("truncated \\u escape");
    const char c = cursor->text[cursor->pos++];
    *value <<= 4;
    if (c >= '0' && c <= '9') {
      *value |= static_cast<unsigned int>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      *value |= static_cast<unsigned int>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      *value |= static_cast<unsigned int>(c - 'A' + 10);
    } else {
      return InvalidArgumentError("bad hex digit in \\u escape");
    }
  }
  return Status::OK();
}

StatusOr<std::string> ParseString(Cursor* cursor) {
  if (!cursor->Consume('"')) return InvalidArgumentError("expected '\"'");
  std::string out;
  while (true) {
    if (cursor->AtEnd()) return InvalidArgumentError("unterminated string");
    const char c = cursor->text[cursor->pos++];
    if (c == '"') return out;
    if (static_cast<unsigned char>(c) < 0x20) {
      return InvalidArgumentError("raw control character in string");
    }
    if (c != '\\') {
      out.push_back(c);  // Includes raw multi-byte UTF-8 sequences.
      continue;
    }
    if (cursor->AtEnd()) return InvalidArgumentError("truncated escape");
    const char escape = cursor->text[cursor->pos++];
    switch (escape) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        unsigned int code_point = 0;
        SOC_RETURN_IF_ERROR(ParseHex4(cursor, &code_point));
        if (code_point >= 0xD800 && code_point <= 0xDBFF) {
          // High surrogate: a low surrogate must follow.
          if (!cursor->Consume('\\') || !cursor->Consume('u')) {
            return InvalidArgumentError("unpaired high surrogate");
          }
          unsigned int low = 0;
          SOC_RETURN_IF_ERROR(ParseHex4(cursor, &low));
          if (low < 0xDC00 || low > 0xDFFF) {
            return InvalidArgumentError("invalid low surrogate");
          }
          code_point =
              0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
        } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
          return InvalidArgumentError("unpaired low surrogate");
        }
        AppendUtf8(code_point, &out);
        break;
      }
      default:
        return InvalidArgumentError("unknown escape character");
    }
  }
}

StatusOr<JsonScalar> ParseValue(Cursor* cursor) {
  cursor->SkipWhitespace();
  if (cursor->AtEnd()) return InvalidArgumentError("expected a value");
  JsonScalar scalar;
  const char c = cursor->Peek();
  if (c == '"') {
    SOC_ASSIGN_OR_RETURN(scalar.string_value, ParseString(cursor));
    scalar.kind = JsonScalar::Kind::kString;
    return scalar;
  }
  if (c == '{' || c == '[') {
    return InvalidArgumentError(
        "nested objects/arrays are not part of the flat JSONL protocol");
  }
  if (cursor->text.compare(cursor->pos, 4, "true") == 0) {
    cursor->pos += 4;
    scalar.kind = JsonScalar::Kind::kBool;
    scalar.bool_value = true;
    return scalar;
  }
  if (cursor->text.compare(cursor->pos, 5, "false") == 0) {
    cursor->pos += 5;
    scalar.kind = JsonScalar::Kind::kBool;
    scalar.bool_value = false;
    return scalar;
  }
  if (cursor->text.compare(cursor->pos, 4, "null") == 0) {
    cursor->pos += 4;
    scalar.kind = JsonScalar::Kind::kNull;
    return scalar;
  }
  // Number: delegate validation to strtod over the maximal plausible span.
  const char* start = cursor->text.c_str() + cursor->pos;
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  if (end == start) return InvalidArgumentError("malformed JSON value");
  cursor->pos += static_cast<std::size_t>(end - start);
  scalar.kind = JsonScalar::Kind::kNumber;
  scalar.number_value = value;
  return scalar;
}

}  // namespace

StatusOr<std::map<std::string, JsonScalar>> ParseFlatJsonObject(
    const std::string& text) {
  Cursor cursor{text};
  cursor.SkipWhitespace();
  if (!cursor.Consume('{')) return InvalidArgumentError("expected '{'");
  std::map<std::string, JsonScalar> object;
  cursor.SkipWhitespace();
  if (!cursor.Consume('}')) {
    while (true) {
      cursor.SkipWhitespace();
      SOC_ASSIGN_OR_RETURN(std::string key, ParseString(&cursor));
      cursor.SkipWhitespace();
      if (!cursor.Consume(':')) return InvalidArgumentError("expected ':'");
      SOC_ASSIGN_OR_RETURN(JsonScalar value, ParseValue(&cursor));
      object[std::move(key)] = std::move(value);
      cursor.SkipWhitespace();
      if (cursor.Consume(',')) continue;
      if (cursor.Consume('}')) break;
      return InvalidArgumentError("expected ',' or '}'");
    }
  }
  cursor.SkipWhitespace();
  if (!cursor.AtEnd()) {
    return InvalidArgumentError("trailing characters after JSON object");
  }
  return object;
}

}  // namespace soc
