#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace soc {

namespace {

// Parses one CSV line into fields, honoring double-quote escaping.
Status ParseLine(const std::string& line, int line_number,
                 std::vector<std::string>* fields) {
  fields->clear();
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields->push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) {
    return InvalidArgumentError(
        StrFormat("unterminated quote on CSV line %d", line_number));
  }
  fields->push_back(current);
  return Status::OK();
}

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += "\"\"";
    else quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

}  // namespace

StatusOr<CsvTable> ParseCsv(const std::string& text, bool has_header) {
  CsvTable table;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  std::size_t expected_fields = 0;
  bool saw_first_record = false;
  while (std::getline(stream, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields;
    SOC_RETURN_IF_ERROR(ParseLine(line, line_number, &fields));
    if (!saw_first_record) {
      expected_fields = fields.size();
      saw_first_record = true;
      if (has_header) {
        table.header = std::move(fields);
        continue;
      }
    } else if (fields.size() != expected_fields) {
      return InvalidArgumentError(
          StrFormat("CSV line %d has %zu fields, expected %zu", line_number,
                    fields.size(), expected_fields));
    }
    table.rows.push_back(std::move(fields));
  }
  return table;
}

StatusOr<CsvTable> ReadCsvFile(const std::string& path, bool has_header) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return NotFoundError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsv(buffer.str(), has_header);
}

std::string WriteCsv(const CsvTable& table) {
  std::ostringstream out;
  auto write_record = [&out](const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out << ',';
      out << QuoteField(fields[i]);
    }
    out << '\n';
  };
  if (!table.header.empty()) write_record(table.header);
  for (const auto& row : table.rows) write_record(row);
  return out.str();
}

Status WriteCsvFile(const CsvTable& table, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return InvalidArgumentError("cannot open file for write: " + path);
  file << WriteCsv(table);
  if (!file) return InternalError("short write to " + path);
  return Status::OK();
}

}  // namespace soc
