// Status and StatusOr<T>: the library's error-reporting model.
//
// Modeled after absl::Status / arrow::Result. Functions that can fail on
// bad *input data* (malformed CSV, infeasible models, out-of-range
// parameters supplied by a caller) return Status or StatusOr<T>.
// Programmer errors (violated preconditions) use SOC_CHECK instead.

#ifndef SOC_COMMON_STATUS_H_
#define SOC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"

namespace soc {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kDeadlineExceeded,
  // A serving layer declined the work under load-shedding / admission
  // control (queue full, deadline already unmeetable). Retryable later.
  kOverloaded,
};

// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

// Inverse of StatusCodeToString; false iff `name` is not a code name.
// Wire formats (the serve JSONL protocol) round-trip codes through this.
bool StatusCodeFromString(const std::string& name, StatusCode* code);

// A success-or-error value. Cheap to copy on the OK path.
//
// [[nodiscard]]: a function returning Status can fail, and a caller that
// drops the return silently swallows the failure. Deliberate drops must
// go through soc::IgnoreError(..., "reason") below.
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    SOC_CHECK(code != StatusCode::kOk);
  }

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status DeadlineExceededError(std::string message);
Status OverloadedError(std::string message);

// Discards `status` on purpose (best-effort teardown, optional warm-up,
// ...). `reason` documents why at the call site; debug builds log
// non-OK drops so "expected to be harmless" claims stay observable.
void IgnoreError(Status&& status, const char* reason);

// Either a value of type T or an error Status. Accessing the value of a
// non-OK StatusOr is a checked programmer error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr: allows
  // `return value;` and `return SomeError(...);` from the same function.
  StatusOr(T value) : value_(std::move(value)) {}             // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    SOC_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SOC_CHECK(ok());
    return *value_;
  }
  T& value() & {
    SOC_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    SOC_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status from an expression to the caller.
#define SOC_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::soc::Status soc_status_tmp_ = (expr);        \
    if (!soc_status_tmp_.ok()) return soc_status_tmp_; \
  } while (0)

// Evaluates `rexpr` (a StatusOr<T>), propagating an error or assigning the
// value into `lhs`. `lhs` may include a declaration, e.g.
// SOC_ASSIGN_OR_RETURN(auto x, Foo());
#define SOC_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  SOC_ASSIGN_OR_RETURN_IMPL_(                                  \
      SOC_STATUS_CONCAT_(soc_statusor_, __LINE__), lhs, rexpr)

#define SOC_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                               \
  if (!statusor.ok()) return statusor.status();          \
  lhs = std::move(statusor).value()

#define SOC_STATUS_CONCAT_(a, b) SOC_STATUS_CONCAT_IMPL_(a, b)
#define SOC_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace soc

#endif  // SOC_COMMON_STATUS_H_
