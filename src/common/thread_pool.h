// A fixed-size worker thread pool with a condition-variable task queue.
//
// Workers pop std::function<void()> tasks in FIFO order. The pool is the
// execution substrate of the serving layer (serve/visibility_service.h):
// admission control and queue bounds live in the *caller* — the pool
// itself never rejects work before shutdown, so a caller that wants a
// bounded queue checks queue_depth() first.
//
// Shutdown contract: Shutdown() (also run by the destructor) stops intake,
// lets the workers drain every task already queued, then joins. Submitting
// after shutdown returns false and drops the task. Tasks must not block on
// the pool itself (no Submit-and-wait from a worker), or drain can
// deadlock.
//
// Exception policy: the library is no-throw by convention (Status-based),
// but a defective task must not take the worker thread or the process
// down with it. Workers catch everything, count the failure
// (tasks_failed()) and keep serving.
//
// Locking discipline is enforced at compile time by Clang Thread Safety
// Analysis (common/thread_annotations.h): every mutable member is
// SOC_GUARDED_BY(mutex_).

#ifndef SOC_COMMON_THREAD_POOL_H_
#define SOC_COMMON_THREAD_POOL_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace soc {

class ThreadPool {
 public:
  // Starts `num_threads` workers immediately (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  // Joins the workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Returns false (dropping the task) iff Shutdown() has
  // already begun.
  bool Submit(std::function<void()> task) SOC_EXCLUDES(mutex_);

  // Stops intake, drains already-queued tasks and joins the workers.
  // Idempotent; safe to call concurrently with Submit.
  void Shutdown() SOC_EXCLUDES(mutex_);

  int num_threads() const { return num_threads_; }

  // Tasks currently queued but not yet claimed by a worker.
  std::size_t queue_depth() const SOC_EXCLUDES(mutex_);

  // Tasks that ran to completion (including ones that threw).
  std::int64_t tasks_completed() const SOC_EXCLUDES(mutex_);
  // Tasks whose callable threw; always <= tasks_completed().
  std::int64_t tasks_failed() const SOC_EXCLUDES(mutex_);

  // Cumulative milliseconds tasks spent queued before a worker claimed
  // them. Queue wait ends at claim time, so a long-running task inflates
  // its successors' wait, not its own execute time.
  double total_queue_wait_ms() const SOC_EXCLUDES(mutex_);
  // Cumulative milliseconds workers spent inside task callables.
  double total_execute_ms() const SOC_EXCLUDES(mutex_);
  // Workers currently inside a task callable (gauge, 0..num_threads).
  int busy_workers() const SOC_EXCLUDES(mutex_);

 private:
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop() SOC_EXCLUDES(mutex_);

  int num_threads_ = 0;  // Immutable after construction.
  mutable Mutex mutex_{lock_rank::kThreadPool};
  CondVar wake_workers_;
  // Signals the completion of the one Shutdown call that won the
  // worker-joining race, so every other Shutdown call can honor the
  // "returns only after drain + join" contract instead of returning
  // early while workers still run.
  CondVar shutdown_done_;
  std::deque<QueuedTask> queue_ SOC_GUARDED_BY(mutex_);
  bool shutting_down_ SOC_GUARDED_BY(mutex_) = false;
  bool joined_ SOC_GUARDED_BY(mutex_) = false;
  std::int64_t tasks_completed_ SOC_GUARDED_BY(mutex_) = 0;
  std::int64_t tasks_failed_ SOC_GUARDED_BY(mutex_) = 0;
  double total_queue_wait_ms_ SOC_GUARDED_BY(mutex_) = 0;
  double total_execute_ms_ SOC_GUARDED_BY(mutex_) = 0;
  int busy_workers_ SOC_GUARDED_BY(mutex_) = 0;
  std::vector<std::thread> workers_ SOC_GUARDED_BY(mutex_);
};

}  // namespace soc

#endif  // SOC_COMMON_THREAD_POOL_H_
