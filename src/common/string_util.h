// Small string helpers (join/split/trim/printf-style formatting).

#ifndef SOC_COMMON_STRING_UTIL_H_
#define SOC_COMMON_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace soc {

// Joins the elements of `parts` with `separator`, using operator<<.
template <typename Container>
std::string Join(const Container& parts, const std::string& separator) {
  std::ostringstream out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) out << separator;
    out << part;
    first = false;
  }
  return out.str();
}

// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(const std::string& text, char delimiter);

// Removes leading/trailing ASCII whitespace.
std::string Trim(const std::string& text);

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// Lowercases ASCII letters.
std::string AsciiToLower(const std::string& text);

}  // namespace soc

#endif  // SOC_COMMON_STRING_UTIL_H_
