// Deterministic pseudo-random number generation.
//
// We do not use std::mt19937 because its distributions
// (std::uniform_int_distribution etc.) are not guaranteed to produce the
// same streams across standard-library implementations; benchmarks and
// property tests depend on reproducible workloads. Rng is a Xoshiro256**
// generator seeded via SplitMix64, with hand-written distribution helpers.

#ifndef SOC_COMMON_RANDOM_H_
#define SOC_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace soc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Raw 64 random bits.
  std::uint64_t Next();

  // Uniform integer in [0, bound). `bound` must be positive.
  // Uses rejection sampling, so the result is unbiased.
  std::uint64_t NextUint64(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int NextInt(int lo, int hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = NextUint64(i);
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  // k distinct integers sampled uniformly from [0, n), in random order.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  // Index in [0, weights.size()) drawn proportionally to `weights`
  // (non-negative, not all zero).
  std::size_t NextWeighted(const std::vector<double>& weights);

 private:
  std::uint64_t state_[4];
};

// Precomputed Zipf(s) distribution over ranks 0..n-1 (rank 0 most likely).
// Draws are O(log n) via binary search on the CDF.
class ZipfDistribution {
 public:
  ZipfDistribution(int n, double exponent);

  int Sample(Rng& rng) const;
  int size() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace soc

#endif  // SOC_COMMON_RANDOM_H_
