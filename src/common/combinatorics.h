// Combination enumeration and counting helpers used by the brute-force
// solver and the maximal-frequent-itemset subset scan.

#ifndef SOC_COMMON_COMBINATORICS_H_
#define SOC_COMMON_COMBINATORICS_H_

#include <cstdint>
#include <vector>

namespace soc {

// C(n, k), saturating at std::uint64_t max instead of overflowing.
std::uint64_t BinomialSaturating(int n, int k);

// Enumerates k-subsets of {0..n-1} in lexicographic order.
//
//   CombinationEnumerator combos(n, k);
//   while (combos.HasValue()) {
//     const std::vector<int>& indices = combos.Value();
//     ...
//     combos.Advance();
//   }
//
// k == 0 yields exactly one (empty) combination.
class CombinationEnumerator {
 public:
  CombinationEnumerator(int n, int k);

  bool HasValue() const { return has_value_; }
  const std::vector<int>& Value() const { return indices_; }
  void Advance();

 private:
  int n_;
  int k_;
  bool has_value_;
  std::vector<int> indices_;
};

// Calls `fn(const std::vector<int>&)` for every k-subset of `pool`
// (a vector of distinct values); the argument holds pool values, not
// positions. Returns early if `fn` returns false.
template <typename Fn>
void ForEachCombination(const std::vector<int>& pool, int k, Fn&& fn) {
  if (k < 0 || k > static_cast<int>(pool.size())) return;
  CombinationEnumerator combos(static_cast<int>(pool.size()), k);
  std::vector<int> selected(k);
  while (combos.HasValue()) {
    const std::vector<int>& positions = combos.Value();
    for (int i = 0; i < k; ++i) selected[i] = pool[positions[i]];
    if (!fn(static_cast<const std::vector<int>&>(selected))) return;
    combos.Advance();
  }
}

}  // namespace soc

#endif  // SOC_COMMON_COMBINATORICS_H_
