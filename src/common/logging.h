// Minimal CHECK-style assertion macros.
//
// The library follows the Google C++ style: exceptions are not used, and
// violations of API preconditions (programmer errors, as opposed to bad
// input data, which is reported through soc::Status) abort the process with
// a diagnostic message.

#ifndef SOC_COMMON_LOGGING_H_
#define SOC_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

// Aborts with a message if `condition` is false. Active in all build modes:
// the checks guard invariants whose violation would lead to memory errors or
// silently wrong results, so we keep them in release builds too (they are on
// cold paths).
#define SOC_CHECK(condition)                                                 \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "SOC_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #condition);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define SOC_CHECK_OP(a, op, b) SOC_CHECK((a)op(b))
#define SOC_CHECK_EQ(a, b) SOC_CHECK_OP(a, ==, b)
#define SOC_CHECK_NE(a, b) SOC_CHECK_OP(a, !=, b)
#define SOC_CHECK_LT(a, b) SOC_CHECK_OP(a, <, b)
#define SOC_CHECK_LE(a, b) SOC_CHECK_OP(a, <=, b)
#define SOC_CHECK_GT(a, b) SOC_CHECK_OP(a, >, b)
#define SOC_CHECK_GE(a, b) SOC_CHECK_OP(a, >=, b)

#endif  // SOC_COMMON_LOGGING_H_
