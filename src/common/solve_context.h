// Cooperative execution control for long-running solves.
//
// A SolveContext carries a wall-clock Deadline, an external cancellation
// flag and a deterministic work budget (counted in "ticks") through every
// solver layer: subset enumeration, branch-and-bound search, itemset
// mining loops and simplex pivots. Each unit of work calls Checkpoint()
// once; the call bumps the tick counter and — once every
// kStopCheckInterval ticks, the same cadence the simplex uses for its own
// deadline check — consults the cancellation flag and the wall clock.
// Stop conditions are sticky: once one fires, every further Checkpoint()
// returns true immediately and stop_reason() reports why.
//
// Solvers react by *degrading*, not failing: they surrender their best
// incumbent as a partial SocSolution (see core/solver.h) instead of
// discarding completed work behind an error Status.
//
// Fault injection: InjectFault(reason, at_tick) forces `reason` from the
// at_tick-th Checkpoint() call onward, which makes every degradation exit
// path unit-testable without wall-clock flakiness.

#ifndef SOC_COMMON_SOLVE_CONTEXT_H_
#define SOC_COMMON_SOLVE_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/timer.h"

namespace soc {

// Cooperative loops consult their expensive stop conditions (wall clock,
// cancellation flag) once every kStopCheckInterval iterations, via
// `(iteration & kStopCheckMask) == 0`. Shared by the simplex, the LP
// branch-and-bound and SolveContext::Checkpoint so the cadence is tuned in
// one place.
inline constexpr std::int64_t kStopCheckInterval = 64;
inline constexpr std::int64_t kStopCheckMask = kStopCheckInterval - 1;

// Why a solve stopped early. kResourceLimit is stamped by solvers whose
// own structural guards trip (max_combinations, node caps, subset-scan
// caps, ...); the context itself only raises the first three.
enum class StopReason {
  kNone = 0,
  kDeadline = 1,       // Wall-clock deadline expired.
  kCancelled = 2,      // The external cancellation flag was set.
  kTickBudget = 3,     // The deterministic work budget ran out.
  kResourceLimit = 4,  // A solver-local structural cap tripped.
};

// "none", "deadline", "cancelled", "tick_budget", "resource_limit".
const char* StopReasonToString(StopReason reason);

// Inverse of StopReasonToString; false iff `name` is not a reason name.
// The serve protocol round-trips degraded responses through this.
bool StopReasonFromString(const std::string& name, StopReason* reason);

// Observation hooks a SolveContext carries through the solver layers.
//
// Solvers mark their phases (mining, LP relaxation, branch-and-bound
// search, fallback tiers, ...) with PhaseScope below; whoever owns the
// context — the serving layer, a CLI with --trace-out — attaches a
// listener (obs::TracingPhaseListener turns the calls into trace spans)
// without the solvers ever depending on a concrete recorder. Phase names
// must come from the canonical span-name table in src/obs/span_names.h
// (lint rule "span-name").
//
// A listener is used from the single thread driving the solve; it must
// outlive the context's last Checkpoint()/PhaseScope.
class PhaseListener {
 public:
  virtual ~PhaseListener() = default;

  // Balanced per phase; phases nest strictly (LIFO). `name` has static
  // storage duration (a span-name constant or string literal).
  virtual void OnPhaseBegin(const char* name) = 0;
  virtual void OnPhaseEnd(const char* name) = 0;

  // Fired exactly once, by the Checkpoint() call that trips a stop
  // condition, with the remaining-budget picture at that instant:
  // `ticks` of `tick_budget` consumed (0 = unlimited) and
  // `deadline_remaining_s` (negative once blown, +inf without deadline).
  // Degraded solves are thereby diagnosable from the trace alone.
  virtual void OnStop(StopReason reason, std::int64_t ticks,
                      std::int64_t tick_budget,
                      double deadline_remaining_s) = 0;
};

class SolveContext {
 public:
  // Unlimited: Checkpoint() never stops.
  SolveContext() = default;
  explicit SolveContext(Deadline deadline) : deadline_(deadline) {}

  void set_deadline(Deadline deadline) { deadline_ = deadline; }
  // Deterministic work budget; <= 0 means unlimited.
  void set_tick_budget(std::int64_t ticks) { tick_budget_ = ticks; }
  // Non-owning; typically flipped from another thread. nullptr disables.
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_flag_ = flag; }
  // Non-owning observation hook (see PhaseListener); nullptr disables.
  void set_phase_listener(PhaseListener* listener) { listener_ = listener; }
  PhaseListener* phase_listener() const { return listener_; }

  // Deterministic fault injection for tests: Checkpoint() reports `reason`
  // from the at_tick-th call onward (at_tick >= 1, so 1 fires on the very
  // first checkpoint). Overrides deadline/cancellation/budget.
  void InjectFault(StopReason reason, std::int64_t at_tick) {
    injected_reason_ = reason;
    inject_at_tick_ = at_tick;
  }

  // One unit of cooperative work. Returns true when the solve should stop;
  // the verdict is sticky. The cancellation flag and the wall clock are
  // only consulted on the first tick and then every kStopCheckInterval
  // ticks, so calling this in a tight inner loop is cheap.
  bool Checkpoint() {
    if (reason_ != StopReason::kNone) return true;
    ++ticks_;
    if (injected_reason_ != StopReason::kNone && ticks_ >= inject_at_tick_) {
      return Stop(injected_reason_);
    }
    if (tick_budget_ > 0 && ticks_ > tick_budget_) {
      return Stop(StopReason::kTickBudget);
    }
    if (ticks_ == 1 || (ticks_ & kStopCheckMask) == 0) {
      if (cancel_flag_ != nullptr &&
          cancel_flag_->load(std::memory_order_relaxed)) {
        return Stop(StopReason::kCancelled);
      }
      if (deadline_.Expired()) {
        return Stop(StopReason::kDeadline);
      }
    }
    return false;
  }

  // True iff a stop condition already fired (does not tick).
  bool stop_requested() const { return reason_ != StopReason::kNone; }
  StopReason stop_reason() const { return reason_; }
  std::int64_t ticks() const { return ticks_; }

 private:
  // Records the (sticky) stop verdict; the flipping Checkpoint also tells
  // the listener, so a blown budget mid-phase leaves a trace event even
  // when the solver only notices many iterations later.
  bool Stop(StopReason reason) {
    reason_ = reason;
    if (listener_ != nullptr) {
      listener_->OnStop(reason, ticks_, tick_budget_,
                        deadline_.RemainingSeconds());
    }
    return true;
  }

  Deadline deadline_ = Deadline::Infinite();
  std::int64_t tick_budget_ = 0;
  const std::atomic<bool>* cancel_flag_ = nullptr;
  PhaseListener* listener_ = nullptr;
  StopReason injected_reason_ = StopReason::kNone;
  std::int64_t inject_at_tick_ = 0;
  StopReason reason_ = StopReason::kNone;
  std::int64_t ticks_ = 0;
};

// RAII phase marker for solver code: nothing but two virtual calls when a
// listener is attached, a pointer test when not (the hot-path case), so
// phase marks may sit on per-node / per-pass boundaries. `name` must have
// static storage duration and come from the canonical span-name table.
class PhaseScope {
 public:
  PhaseScope(const SolveContext* context, const char* name)
      : listener_(context != nullptr ? context->phase_listener() : nullptr),
        name_(name) {
    if (listener_ != nullptr) listener_->OnPhaseBegin(name_);
  }
  ~PhaseScope() {
    if (listener_ != nullptr) listener_->OnPhaseEnd(name_);
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseListener* const listener_;
  const char* const name_;
};

}  // namespace soc

#endif  // SOC_COMMON_SOLVE_CONTEXT_H_
