#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace soc {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_);
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) return false;
    queue_.push_back(std::move(task));
  }
  wake_workers_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
  }
  wake_workers_.notify_all();
  // Joining threads that already exited is fine; guard against a second
  // concurrent Shutdown by swapping the worker list out under the lock.
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    workers.swap(workers_);
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::int64_t ThreadPool::tasks_completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_completed_;
}

std::int64_t ThreadPool::tasks_failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_failed_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_workers_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutting down and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    bool failed = false;
    try {
      task();
    } catch (...) {
      failed = true;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++tasks_completed_;
      if (failed) ++tasks_failed_;
    }
  }
}

}  // namespace soc
