#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace soc {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  // Constructors run before the object is shared, but holding the lock
  // here is free: workers block on their first queue wait anyway.
  MutexLock lock(mutex_);
  workers_.reserve(num_threads_);
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    if (shutting_down_) return false;
    queue_.push_back({std::move(task), std::chrono::steady_clock::now()});
  }
  wake_workers_.NotifyOne();
  return true;
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  wake_workers_.NotifyAll();
  // Joining threads that already exited is fine; guard against a second
  // concurrent Shutdown by swapping the worker list out under the lock.
  std::vector<std::thread> workers;
  {
    MutexLock lock(mutex_);
    workers.swap(workers_);
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
  MutexLock lock(mutex_);
  if (!workers.empty()) {
    // This call owned the join; release everyone who lost the swap race.
    joined_ = true;
    shutdown_done_.NotifyAll();
  } else {
    // Another Shutdown owns the join. Every Shutdown call promises
    // "drained and joined" on return, so wait for the owner to finish
    // rather than returning while workers still run.
    while (!joined_) shutdown_done_.Wait(mutex_);
  }
}

std::size_t ThreadPool::queue_depth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

std::int64_t ThreadPool::tasks_completed() const {
  MutexLock lock(mutex_);
  return tasks_completed_;
}

std::int64_t ThreadPool::tasks_failed() const {
  MutexLock lock(mutex_);
  return tasks_failed_;
}

double ThreadPool::total_queue_wait_ms() const {
  MutexLock lock(mutex_);
  return total_queue_wait_ms_;
}

double ThreadPool::total_execute_ms() const {
  MutexLock lock(mutex_);
  return total_execute_ms_;
}

int ThreadPool::busy_workers() const {
  MutexLock lock(mutex_);
  return busy_workers_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // Explicit predicate loop: a lambda predicate would be analyzed as
      // an unannotated function and hide the guarded reads.
      while (!shutting_down_ && queue_.empty()) wake_workers_.Wait(mutex_);
      if (queue_.empty()) return;  // Shutting down and drained.
      task = std::move(queue_.front().fn);
      total_queue_wait_ms_ +=
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - queue_.front().enqueued)
              .count();
      queue_.pop_front();
      ++busy_workers_;
    }
    bool failed = false;
    const auto started = std::chrono::steady_clock::now();
    try {
      task();
    } catch (...) {
      failed = true;
    }
    const double execute_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - started)
            .count();
    {
      MutexLock lock(mutex_);
      --busy_workers_;
      total_execute_ms_ += execute_ms;
      ++tasks_completed_;
      if (failed) ++tasks_failed_;
    }
  }
}

}  // namespace soc
