#include "common/bitset.h"

#include <algorithm>

namespace soc {

DynamicBitset DynamicBitset::FromIndices(std::size_t size,
                                         const std::vector<int>& indices) {
  DynamicBitset result(size);
  for (int index : indices) {
    SOC_CHECK_GE(index, 0);
    result.Set(static_cast<std::size_t>(index));
  }
  return result;
}

DynamicBitset DynamicBitset::FromString(const std::string& bits) {
  DynamicBitset result(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    SOC_CHECK(bits[i] == '0' || bits[i] == '1');
    if (bits[i] == '1') result.Set(i);
  }
  return result;
}

void DynamicBitset::ResetAll() {
  std::fill(words_.begin(), words_.end(), 0);
}

void DynamicBitset::SetAll() {
  std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
  ClearTrailingBits();
}

std::size_t DynamicBitset::Count() const {
  std::size_t count = 0;
  for (std::uint64_t word : words_) count += std::popcount(word);
  return count;
}

bool DynamicBitset::Any() const {
  for (std::uint64_t word : words_) {
    if (word != 0) return true;
  }
  return false;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  SOC_CHECK_EQ(size_, other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  SOC_CHECK_EQ(size_, other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& other) {
  SOC_CHECK_EQ(size_, other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::AndNot(const DynamicBitset& other) {
  SOC_CHECK_EQ(size_, other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

DynamicBitset DynamicBitset::Complement() const {
  DynamicBitset result(*this);
  for (std::uint64_t& word : result.words_) word = ~word;
  result.ClearTrailingBits();
  return result;
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  SOC_CHECK_EQ(size_, other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool DynamicBitset::IsProperSubsetOf(const DynamicBitset& other) const {
  return IsSubsetOf(other) && *this != other;
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  SOC_CHECK_EQ(size_, other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

std::size_t DynamicBitset::IntersectionCount(const DynamicBitset& other) const {
  SOC_CHECK_EQ(size_, other.size_);
  std::size_t count = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    count += std::popcount(words_[i] & other.words_[i]);
  }
  return count;
}

std::size_t DynamicBitset::FindFirst() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) return w * 64 + std::countr_zero(words_[w]);
  }
  return npos;
}

std::size_t DynamicBitset::FindNext(std::size_t pos) const {
  if (pos + 1 >= size_) return npos;
  std::size_t start = pos + 1;
  std::size_t w = start >> 6;
  std::uint64_t word = words_[w] & (~std::uint64_t{0} << (start & 63));
  while (true) {
    if (word != 0) return w * 64 + std::countr_zero(word);
    if (++w >= words_.size()) return npos;
    word = words_[w];
  }
}

std::vector<int> DynamicBitset::SetBits() const {
  std::vector<int> result;
  result.reserve(Count());
  ForEachSetBit([&result](int index) { result.push_back(index); });
  return result;
}

std::string DynamicBitset::ToString() const {
  std::string result(size_, '0');
  ForEachSetBit([&result](int index) { result[index] = '1'; });
  return result;
}

void DynamicBitset::Resize(std::size_t new_size) {
  size_ = new_size;
  words_.resize((new_size + 63) / 64, 0);
  ClearTrailingBits();
}

std::size_t DynamicBitset::Hash() const {
  // FNV-1a over the words plus the size.
  std::uint64_t hash = 14695981039346656037ull;
  auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  mix(size_);
  for (std::uint64_t word : words_) mix(word);
  return static_cast<std::size_t>(hash);
}

void DynamicBitset::ClearTrailingBits() {
  const std::size_t used = size_ & 63;
  if (used != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << used) - 1;
  }
}

DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
  a &= b;
  return a;
}

DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
  a |= b;
  return a;
}

DynamicBitset operator^(DynamicBitset a, const DynamicBitset& b) {
  a ^= b;
  return a;
}

}  // namespace soc
