// Portable Clang Thread Safety Analysis annotations.
//
// The macros below expand to Clang's thread-safety attributes when the
// compiler supports them (Clang with -Wthread-safety; enabled in CI via
// the SOC_THREAD_SAFETY_ANALYSIS CMake option) and to nothing elsewhere,
// so GCC builds are unaffected. They follow the naming of
// absl/base/thread_annotations.h with a SOC_ prefix.
//
// The annotations only have teeth on lock types that are themselves
// annotated; the project's annotated wrappers live in common/mutex.h.
// See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.

#ifndef SOC_COMMON_THREAD_ANNOTATIONS_H_
#define SOC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define SOC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SOC_THREAD_ANNOTATION_(x)  // No-op outside Clang.
#endif

// On a class: instances can be held as a capability (a lock).
#define SOC_CAPABILITY(x) SOC_THREAD_ANNOTATION_(capability(x))
// Legacy spelling kept for call sites written against the older attribute
// vocabulary; identical to SOC_CAPABILITY("mutex").
#define SOC_LOCKABLE SOC_THREAD_ANNOTATION_(capability("mutex"))

// On an RAII class: acquires in the constructor, releases in the
// destructor (MutexLock and friends).
#define SOC_SCOPED_CAPABILITY SOC_THREAD_ANNOTATION_(scoped_lockable)

// On a data member: may only be read or written while holding `x`
// (exclusively for writes, at least shared for reads).
#define SOC_GUARDED_BY(x) SOC_THREAD_ANNOTATION_(guarded_by(x))
// On a pointer member: the pointed-to data is guarded by `x`.
#define SOC_PT_GUARDED_BY(x) SOC_THREAD_ANNOTATION_(pt_guarded_by(x))

// On a function: the caller must hold the given capabilities
// (exclusively / at least shared).
#define SOC_REQUIRES(...) \
  SOC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define SOC_REQUIRES_SHARED(...) \
  SOC_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// On a function: acquires / releases the given capabilities. With no
// arguments inside a capability class, refers to `this`.
#define SOC_ACQUIRE(...) \
  SOC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define SOC_ACQUIRE_SHARED(...) \
  SOC_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define SOC_RELEASE(...) \
  SOC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define SOC_RELEASE_SHARED(...) \
  SOC_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define SOC_RELEASE_GENERIC(...) \
  SOC_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

// On a function returning bool: acquires the capability iff the return
// value equals the first macro argument.
#define SOC_TRY_ACQUIRE(...) \
  SOC_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// On a function: the caller must NOT hold the given capabilities (the
// function acquires them itself; prevents self-deadlock).
#define SOC_EXCLUDES(...) SOC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// On a function: asserts the capability is held without acquiring it.
#define SOC_ASSERT_CAPABILITY(x) \
  SOC_THREAD_ANNOTATION_(assert_capability(x))

// On a function returning a reference to a capability.
#define SOC_RETURN_CAPABILITY(x) SOC_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: disables analysis inside one function. Every use needs a
// comment explaining why the analysis cannot see the invariant.
#define SOC_NO_THREAD_SAFETY_ANALYSIS \
  SOC_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // SOC_COMMON_THREAD_ANNOTATIONS_H_
