#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace soc {

std::vector<std::string> Split(const std::string& text, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (size <= 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string result(static_cast<std::size_t>(size), '\0');
  std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  va_end(args_copy);
  return result;
}

std::string AsciiToLower(const std::string& text) {
  std::string result = text;
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

}  // namespace soc
