// The project-wide lock hierarchy: every long-lived Mutex/SharedMutex is
// constructed with one of the ranks below, and ranks must be acquired in
// strictly increasing order on any one thread. The table *is* the
// deadlock-freedom argument: a cycle in the acquisition order would need
// some rank to be acquired under a greater-or-equal one, which
//
//   - the static side rejects in CI (soc_lint's lock-hierarchy pass
//     reconstructs held-lock regions from MutexLock scopes, builds the
//     cross-TU acquisition graph, and checks every edge against these
//     ranks), and
//   - the runtime side rejects in every debug/sanitizer build (each
//     thread keeps a stack of held ranks; an out-of-order acquisition
//     aborts with both lock names before it can deadlock).
//
// Adding a mutex: pick the slot that reflects who may hold what while
// acquiring it — outer coordination layers get low ranks, leaf utilities
// that everything may call into (metrics, tracing, the thread pool) get
// high ranks — then construct the mutex with that rank and re-run
// `soc_lint`. Gaps of 5 are left between neighbours so a new lock can
// slot between two existing ones without renumbering. Rank 0 means
// "unranked" (short-lived test/local mutexes); unranked locks are exempt
// from the runtime check but soc_lint requires a rank on every mutex
// member declared in the serving layers. See DESIGN.md §14.

#ifndef SOC_COMMON_LOCK_RANK_H_
#define SOC_COMMON_LOCK_RANK_H_

#include <cstdio>
#include <cstdlib>

// Runtime enforcement is on wherever a deadlock would be caught by CI
// anyway (debug and sanitizer builds) and off in release builds, where
// the checked hierarchy is already a compile/CI-time fact. The CMake
// option SOC_LOCK_RANKING=ON force-defines it for any build type.
#if !defined(SOC_LOCK_RANKING)
#if !defined(NDEBUG) || defined(__SANITIZE_THREAD__) || \
    defined(__SANITIZE_ADDRESS__)
#define SOC_LOCK_RANKING 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SOC_LOCK_RANKING 1
#else
#define SOC_LOCK_RANKING 0
#endif
#else
#define SOC_LOCK_RANKING 0
#endif
#endif

namespace soc {

// A rank in the lock hierarchy. Aggregate so the table below stays
// constexpr; rank 0 (the default) means unranked/exempt.
struct LockRank {
  int rank = 0;
  const char* name = nullptr;
};

inline constexpr bool kLockRankingEnabled = SOC_LOCK_RANKING != 0;

namespace lock_rank {

// ---- tenant layer: routing and per-shard state (outermost) ----
inline constexpr LockRank kTenantRegistry{10, "tenant.registry"};
inline constexpr LockRank kShardInflight{15, "tenant.shard.inflight"};
inline constexpr LockRank kShardQueue{20, "tenant.shard.queue"};
inline constexpr LockRank kResultCacheFlightTable{25,
                                                  "tenant.result_cache.flights"};
inline constexpr LockRank kResultCacheLru{30, "tenant.result_cache.lru"};
inline constexpr LockRank kResultCacheFlight{35, "tenant.result_cache.flight"};

// ---- serve layer: single-service queueing and preprocessing ----
inline constexpr LockRank kServeInflight{40, "serve.inflight"};
inline constexpr LockRank kServeQueue{45, "serve.queue"};
inline constexpr LockRank kMfiFlightTable{50, "serve.mfi.flights"};
inline constexpr LockRank kMfiCache{55, "serve.mfi.cache"};
inline constexpr LockRank kMfiFlight{60, "serve.mfi.flight"};
inline constexpr LockRank kPreprocessingBitmaps{65, "serve.bitmaps"};

// ---- serve layer: overload-control components ----
inline constexpr LockRank kCostModel{70, "serve.cost_model"};
inline constexpr LockRank kCircuitBreaker{72, "serve.breaker"};
inline constexpr LockRank kDegradationLadder{74, "serve.ladder"};
inline constexpr LockRank kRetryBudget{76, "serve.retry"};
inline constexpr LockRank kWatchdog{78, "serve.watchdog"};
inline constexpr LockRank kMetricsExporter{80, "serve.metrics_exporter"};

// ---- observability v2: SLO accounting and the wide-event pipeline ----
inline constexpr LockRank kSloEngine{82, "obs.slo_engine"};
inline constexpr LockRank kEventPump{84, "obs.event_pump"};

// ---- leaf utilities: anything above may hold a lock while entering ----
inline constexpr LockRank kServeMetrics{85, "serve.metrics"};
inline constexpr LockRank kEventLog{86, "obs.event_log"};
inline constexpr LockRank kProfiler{88, "obs.profiler"};
inline constexpr LockRank kTraceRecorder{90, "obs.trace_recorder"};
inline constexpr LockRank kThreadPool{95, "common.thread_pool"};

}  // namespace lock_rank

namespace lock_rank_internal {

#if SOC_LOCK_RANKING

// Per-thread stack of held ranked locks. Fixed capacity: the hierarchy
// is ~20 ranks deep in total, so 64 simultaneously held ranked locks on
// one thread is unreachable short of a bug this checker exists to catch.
struct HeldStack {
  static constexpr int kCapacity = 64;
  LockRank entries[kCapacity];
  int size = 0;
};

inline HeldStack& Held() {
  thread_local HeldStack stack;
  return stack;
}

// Called before the underlying lock is taken, so an inversion aborts
// with a report instead of deadlocking. Strictly increasing: acquiring
// rank r while any held rank >= r is a violation (equal ranks never
// nest — two locks that may be held together must occupy distinct
// slots in the table).
inline void CheckAcquire(const LockRank& rank) {
  if (rank.rank == 0) return;
  const HeldStack& held = Held();
  for (int i = held.size - 1; i >= 0; --i) {
    if (held.entries[i].rank >= rank.rank) {
      std::fprintf(
          stderr,
          "soc: lock-rank violation: acquiring \"%s\" (rank %d) while "
          "holding \"%s\" (rank %d); locks must be acquired in strictly "
          "increasing rank order (common/lock_rank.h, DESIGN.md \xC2\xA7"
          "14)\n",
          rank.name != nullptr ? rank.name : "?", rank.rank,
          held.entries[i].name != nullptr ? held.entries[i].name : "?",
          held.entries[i].rank);
      std::abort();
    }
  }
}

// Called after a successful acquisition (TryLock pushes only on true).
inline void Push(const LockRank& rank) {
  if (rank.rank == 0) return;
  HeldStack& held = Held();
  if (held.size >= HeldStack::kCapacity) {
    std::fprintf(stderr,
                 "soc: lock-rank stack overflow acquiring \"%s\"\n",
                 rank.name != nullptr ? rank.name : "?");
    std::abort();
  }
  held.entries[held.size++] = rank;
}

// Unlock order is usually LIFO but not required to be; drop the most
// recent matching entry.
inline void Pop(const LockRank& rank) {
  if (rank.rank == 0) return;
  HeldStack& held = Held();
  for (int i = held.size - 1; i >= 0; --i) {
    if (held.entries[i].rank == rank.rank &&
        held.entries[i].name == rank.name) {
      for (int j = i; j + 1 < held.size; ++j) {
        held.entries[j] = held.entries[j + 1];
      }
      --held.size;
      return;
    }
  }
}

#else  // !SOC_LOCK_RANKING

inline void CheckAcquire(const LockRank&) {}
inline void Push(const LockRank&) {}
inline void Pop(const LockRank&) {}

#endif  // SOC_LOCK_RANKING

}  // namespace lock_rank_internal
}  // namespace soc

#endif  // SOC_COMMON_LOCK_RANK_H_
