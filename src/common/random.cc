#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace soc {

namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t RotateLeft(std::uint64_t value, int amount) {
  return (value << amount) | (value >> (64 - amount));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm_state = seed;
  for (auto& word : state_) word = SplitMix64(sm_state);
}

std::uint64_t Rng::Next() {
  // Xoshiro256** step.
  const std::uint64_t result = RotateLeft(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotateLeft(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextUint64(std::uint64_t bound) {
  SOC_CHECK_GT(bound, 0u);
  // Rejection sampling on the top of the range to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  while (true) {
    const std::uint64_t value = Next();
    if (value >= threshold) return value % bound;
  }
}

int Rng::NextInt(int lo, int hi) {
  SOC_CHECK_LE(lo, hi);
  const std::uint64_t range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<int>(NextUint64(range));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  SOC_CHECK_GE(n, 0);
  SOC_CHECK_GE(k, 0);
  SOC_CHECK_LE(k, n);
  if (k == 0) return {};
  // For dense samples, partial Fisher-Yates over 0..n-1; for sparse samples,
  // rejection via a hash set. The threshold keeps both paths O(k) in memory
  // when k << n.
  if (k * 3 >= n) {
    std::vector<int> all(n);
    for (int i = 0; i < n; ++i) all[i] = i;
    for (int i = 0; i < k; ++i) {
      const int j = i + static_cast<int>(NextUint64(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  std::unordered_set<int> seen;
  std::vector<int> result;
  result.reserve(k);
  while (static_cast<int>(result.size()) < k) {
    const int value = static_cast<int>(NextUint64(n));
    if (seen.insert(value).second) result.push_back(value);
  }
  return result;
}

std::size_t Rng::NextWeighted(const std::vector<double>& weights) {
  SOC_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SOC_CHECK_GE(w, 0.0);
    total += w;
  }
  SOC_CHECK_GT(total, 0.0);
  double target = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Guard against floating-point drift.
}

ZipfDistribution::ZipfDistribution(int n, double exponent) {
  SOC_CHECK_GT(n, 0);
  SOC_CHECK_GT(exponent, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (int rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
    cdf_[rank] = total;
  }
  for (double& value : cdf_) value /= total;
}

int ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return static_cast<int>(cdf_.size()) - 1;
  return static_cast<int>(it - cdf_.begin());
}

}  // namespace soc
