#include "common/combinatorics.h"

#include <limits>

#include "common/logging.h"

namespace soc {

std::uint64_t BinomialSaturating(int n, int k) {
  if (k < 0 || n < 0 || k > n) return 0;
  if (k > n - k) k = n - k;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    const std::uint64_t numerator = static_cast<std::uint64_t>(n - k + i);
    // result = result * numerator / i, detecting overflow of the product.
    if (result > kMax / numerator) return kMax;
    result = result * numerator / static_cast<std::uint64_t>(i);
  }
  return result;
}

CombinationEnumerator::CombinationEnumerator(int n, int k) : n_(n), k_(k) {
  SOC_CHECK_GE(n, 0);
  SOC_CHECK_GE(k, 0);
  has_value_ = k <= n;
  indices_.resize(k);
  for (int i = 0; i < k; ++i) indices_[i] = i;
}

void CombinationEnumerator::Advance() {
  SOC_CHECK(has_value_);
  if (k_ == 0) {
    has_value_ = false;
    return;
  }
  // Find the rightmost index that can still move right.
  int i = k_ - 1;
  while (i >= 0 && indices_[i] == n_ - k_ + i) --i;
  if (i < 0) {
    has_value_ = false;
    return;
  }
  ++indices_[i];
  for (int j = i + 1; j < k_; ++j) indices_[j] = indices_[j - 1] + 1;
}

}  // namespace soc
