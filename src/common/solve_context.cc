#include "common/solve_context.h"

namespace soc {

const char* StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kTickBudget:
      return "tick_budget";
    case StopReason::kResourceLimit:
      return "resource_limit";
  }
  return "unknown";
}

}  // namespace soc
