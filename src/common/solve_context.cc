#include "common/solve_context.h"

#include <string>

namespace soc {

const char* StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kTickBudget:
      return "tick_budget";
    case StopReason::kResourceLimit:
      return "resource_limit";
  }
  return "unknown";
}

bool StopReasonFromString(const std::string& name, StopReason* reason) {
  static constexpr StopReason kAllReasons[] = {
      StopReason::kNone,        StopReason::kDeadline,
      StopReason::kCancelled,   StopReason::kTickBudget,
      StopReason::kResourceLimit,
  };
  for (StopReason candidate : kAllReasons) {
    if (name == StopReasonToString(candidate)) {
      *reason = candidate;
      return true;
    }
  }
  return false;
}

}  // namespace soc
