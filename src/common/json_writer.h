// A minimal JSON value builder for machine-readable tool output
// (socvis_solve --json). Write-only: no parsing.

#ifndef SOC_COMMON_JSON_WRITER_H_
#define SOC_COMMON_JSON_WRITER_H_

#include <memory>
#include <string>
#include <vector>

namespace soc {

// An owned JSON value (null / bool / number / string / array / object).
class JsonValue {
 public:
  static JsonValue Null();
  static JsonValue Bool(bool value);
  static JsonValue Number(double value);
  static JsonValue Int(long long value);
  static JsonValue String(std::string value);
  static JsonValue Array(std::vector<JsonValue> items);

  // Object construction: keys keep insertion order; duplicate keys are a
  // checked programmer error.
  static JsonValue Object();
  JsonValue& Set(const std::string& key, JsonValue value);

  // Serializes compactly (no insignificant whitespace). Strings are
  // escaped per RFC 8259; non-finite numbers render as null.
  std::string ToString() const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInt, kString, kArray, kObject };

  Kind kind_ = Kind::kNull;
  bool bool_value_ = false;
  double number_value_ = 0.0;
  long long int_value_ = 0;
  std::string string_value_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;

  void AppendTo(std::string* out) const;
};

// Escapes `text` as a JSON string literal (with quotes).
std::string JsonEscape(const std::string& text);

}  // namespace soc

#endif  // SOC_COMMON_JSON_WRITER_H_
