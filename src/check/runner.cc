#include "check/runner.h"

#include <memory>
#include <utility>

#include "check/properties.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/solver_registry.h"

namespace soc::check {

namespace {

// Checks every catalog property for one solver on one instance, shrinking
// and recording the first violation. Returns true when a failure was
// recorded.
bool CheckSolverOnInstance(const Instance& instance, const SocSolver& solver,
                           std::uint64_t seed, TrialReport* report) {
  for (const PropertyCheck& property : PropertyCatalog()) {
    ++report->checks;
    const Status status = property.check(instance, solver);
    if (status.ok()) continue;

    PropertyFailure failure;
    failure.solver = solver.name();
    failure.property = property.name;
    failure.seed = seed;
    failure.shrunken = Shrink(
        instance,
        [&property, &solver](const Instance& candidate) {
          return !property.check(candidate, solver).ok();
        },
        &failure.shrink_stats);
    // Report the violation message from the minimized instance (the
    // original message may reference queries that were shrunk away).
    const Status shrunken_status = property.check(failure.shrunken, solver);
    failure.message =
        shrunken_status.ok() ? status.ToString() : shrunken_status.ToString();
    report->failures.push_back(std::move(failure));
    return true;
  }
  return false;
}

}  // namespace

TrialReport RunTrials(const TrialOptions& options) {
  std::vector<std::string> names = options.solvers;
  if (names.empty()) names = PropertyCheckedSolvers();

  std::vector<std::unique_ptr<SocSolver>> solvers;
  solvers.reserve(names.size());
  TrialReport report;
  for (const std::string& name : names) {
    auto solver = CreateSolverByName(name);
    if (!solver.ok()) {
      PropertyFailure failure;
      failure.solver = name;
      failure.property = "registry";
      failure.message = solver.status().ToString();
      report.failures.push_back(std::move(failure));
      return report;
    }
    solvers.push_back(std::move(solver).value());
  }

  for (int trial = 0; trial < options.trials; ++trial) {
    const std::uint64_t seed = options.seed + static_cast<std::uint64_t>(trial);
    const Instance instance = GenerateInstance(seed, options.generator);
    ++report.trials;
    for (const std::unique_ptr<SocSolver>& solver : solvers) {
      if (CheckSolverOnInstance(instance, *solver, seed, &report) &&
          static_cast<int>(report.failures.size()) >= options.max_failures) {
        return report;
      }
    }
  }
  return report;
}

TrialReport RunTrialsOnSolver(const SocSolver& solver,
                              const TrialOptions& options) {
  TrialReport report;
  for (int trial = 0; trial < options.trials; ++trial) {
    const std::uint64_t seed = options.seed + static_cast<std::uint64_t>(trial);
    const Instance instance = GenerateInstance(seed, options.generator);
    ++report.trials;
    if (CheckSolverOnInstance(instance, solver, seed, &report) &&
        static_cast<int>(report.failures.size()) >= options.max_failures) {
      return report;
    }
  }
  return report;
}

Status ReplayInstance(const Instance& instance,
                      const std::vector<std::string>& solvers) {
  std::vector<std::string> names = solvers;
  if (names.empty()) names = PropertyCheckedSolvers();
  for (const std::string& name : names) {
    SOC_ASSIGN_OR_RETURN(const std::unique_ptr<SocSolver> solver,
                         CreateSolverByName(name));
    SOC_RETURN_IF_ERROR(CheckAllProperties(instance, *solver));
  }
  return Status::OK();
}

std::string FailureToText(const PropertyFailure& failure) {
  std::string text;
  text += "property violation: " + failure.property + " (solver " +
          failure.solver + ")\n";
  text += "  " + failure.message + "\n";
  text += "  originating seed: " + std::to_string(failure.seed) + "\n";
  text += "  shrunk in " + std::to_string(failure.shrink_stats.rounds) +
          " rounds, " + std::to_string(failure.shrink_stats.attempts) +
          " attempts, " + std::to_string(failure.shrink_stats.accepted) +
          " accepted\n";
  text += "  minimized instance (" + InstanceSummary(failure.shrunken) +
          "):\n";
  for (const std::string& line :
       Split(Trim(InstanceToText(failure.shrunken)), '\n')) {
    text += "    " + line + "\n";
  }
  text += "  repro: socvis_check --trials=1 --seed=" +
          std::to_string(failure.seed) + " --solvers=" + failure.solver +
          "\n";
  return text;
}

JsonValue FailureToJson(const PropertyFailure& failure) {
  JsonValue json = JsonValue::Object();
  json.Set("solver", JsonValue::String(failure.solver));
  json.Set("property", JsonValue::String(failure.property));
  json.Set("message", JsonValue::String(failure.message));
  json.Set("seed",
           JsonValue::Int(static_cast<long long>(failure.seed)));
  json.Set("instance", JsonValue::String(InstanceToText(failure.shrunken)));
  json.Set("instance_summary",
           JsonValue::String(InstanceSummary(failure.shrunken)));
  json.Set("shrink_rounds", JsonValue::Int(failure.shrink_stats.rounds));
  json.Set("shrink_attempts", JsonValue::Int(failure.shrink_stats.attempts));
  json.Set("shrink_accepted", JsonValue::Int(failure.shrink_stats.accepted));
  json.Set("repro", JsonValue::String(
                        "socvis_check --trials=1 --seed=" +
                        std::to_string(failure.seed) +
                        " --solvers=" + failure.solver));
  return json;
}

}  // namespace soc::check
