#include "check/properties.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "boolean/evaluator.h"
#include "boolean/schema.h"
#include "common/solve_context.h"
#include "common/timer.h"
#include "core/solver_registry.h"
#include "core/weighted.h"
#include "kernels/kernels.h"

namespace soc::check {

namespace {

// Lint parity (property-parity rule): every solver in kRegistry must be
// listed here, and the nightly/property drivers run the catalog against
// each. Adding a solver to the registry without adding it here fails
// soc_lint.
constexpr const char* kPropertyCheckedSolvers[] = {
    "BruteForce",
    "BranchAndBound",
    "ILP",
    "MaxFreqItemSets",
    "MaxFreqItemSets-dfs",
    "ConsumeAttr",
    "ConsumeAttrCumul",
    "ConsumeQueries",
    "Fallback",
};

int EffectiveBudget(const Instance& instance) {
  return std::min(instance.m, static_cast<int>(instance.tuple.Count()));
}

Status Violation(const std::string& message, const Instance& instance) {
  return FailedPreconditionError(message + " [" + InstanceSummary(instance) +
                                 "]");
}

// The solution invariants every solver guarantees, clean or degraded
// (mirrors ExpectValidSolution in tests/robustness_test.cc).
Status ValidateSolution(const Instance& instance, const SocSolution& solution,
                        const std::string& label) {
  const int m_eff = EffectiveBudget(instance);
  if (solution.selected.size() !=
      static_cast<std::size_t>(instance.log.num_attributes())) {
    return Violation(label + ": selection width " +
                         std::to_string(solution.selected.size()) +
                         " != attribute count",
                     instance);
  }
  if (!solution.selected.IsSubsetOf(instance.tuple)) {
    return Violation(label + ": selection is not a subset of the tuple",
                     instance);
  }
  if (static_cast<int>(solution.selected.Count()) != m_eff) {
    return Violation(label + ": selection has " +
                         std::to_string(solution.selected.Count()) +
                         " attributes, want m_eff=" + std::to_string(m_eff),
                     instance);
  }
  const int recount = CountSatisfiedQueries(instance.log, solution.selected);
  if (solution.satisfied_queries != recount) {
    return Violation(label + ": reported objective " +
                         std::to_string(solution.satisfied_queries) +
                         " != reference recount " + std::to_string(recount),
                     instance);
  }
  if (IsDegraded(solution)) {
    if (solution.proved_optimal) {
      return Violation(label + ": degraded solution claims proved_optimal",
                       instance);
    }
    if (SolutionStopReason(solution) == StopReason::kNone) {
      return Violation(label + ": degraded solution has stop reason kNone",
                       instance);
    }
  } else if (SolutionStopReason(solution) != StopReason::kNone) {
    return Violation(label + ": undegraded solution carries a stop reason",
                     instance);
  }
  return Status::OK();
}

StatusOr<SocSolution> SolveOrExplain(const SocSolver& solver,
                                     const QueryLog& log,
                                     const DynamicBitset& tuple, int m) {
  auto result = solver.Solve(log, tuple, m);
  if (!result.ok()) {
    return InternalError("solver " + solver.name() +
                         " errored on a clean solve: " +
                         result.status().ToString());
  }
  return *std::move(result);
}

// Brute-force optimum; errors if brute force cannot certify (never happens
// on generator-sized instances).
StatusOr<int> BruteOptimum(const Instance& instance) {
  SOC_ASSIGN_OR_RETURN(const std::unique_ptr<SocSolver> brute,
                       CreateSolverByName("BruteForce"));
  SOC_ASSIGN_OR_RETURN(
      const SocSolution solution,
      SolveOrExplain(*brute, instance.log, instance.tuple, instance.m));
  if (!solution.proved_optimal) {
    return InternalError("brute force failed to certify optimality on " +
                         InstanceSummary(instance));
  }
  return solution.satisfied_queries;
}

Status CheckValidSolution(const Instance& instance, const SocSolver& solver) {
  SOC_ASSIGN_OR_RETURN(
      const SocSolution solution,
      SolveOrExplain(solver, instance.log, instance.tuple, instance.m));
  return ValidateSolution(instance, solution, solver.name());
}

Status CheckBounds(const Instance& instance, const SocSolver& solver) {
  SOC_ASSIGN_OR_RETURN(
      const SocSolution solution,
      SolveOrExplain(solver, instance.log, instance.tuple, instance.m));
  SOC_ASSIGN_OR_RETURN(const int optimum, BruteOptimum(instance));
  const int m_eff = EffectiveBudget(instance);
  int upper = 0;  // #{q : q ⊆ t, |q| <= m_eff}: no selection can beat it.
  for (const DynamicBitset& q : instance.log.queries()) {
    if (static_cast<int>(q.Count()) <= m_eff && q.IsSubsetOf(instance.tuple)) {
      ++upper;
    }
  }
  if (solution.satisfied_queries > optimum) {
    return Violation(solver.name() + " reports " +
                         std::to_string(solution.satisfied_queries) +
                         " satisfied queries, above the optimum " +
                         std::to_string(optimum),
                     instance);
  }
  if (optimum > upper) {
    return Violation("brute-force optimum " + std::to_string(optimum) +
                         " exceeds the satisfiable-size upper bound " +
                         std::to_string(upper),
                     instance);
  }
  if (solution.proved_optimal && solution.satisfied_queries != optimum) {
    return Violation(solver.name() + " claims optimality at " +
                         std::to_string(solution.satisfied_queries) +
                         " but the optimum is " + std::to_string(optimum),
                     instance);
  }
  return Status::OK();
}

Status CheckMonotoneInM(const Instance& instance, const SocSolver& solver) {
  SOC_ASSIGN_OR_RETURN(
      const SocSolution at_m,
      SolveOrExplain(solver, instance.log, instance.tuple, instance.m));
  SOC_ASSIGN_OR_RETURN(
      const SocSolution at_m1,
      SolveOrExplain(solver, instance.log, instance.tuple, instance.m + 1));
  // Sound for certified optima always; for the prefix-greedy heuristics
  // (their pick sequence does not depend on the budget, so the m-selection
  // is a prefix of the (m+1)-selection) unconditionally. ConsumeQueries is
  // deliberately absent: its choices depend on the remaining slack.
  const std::string name = solver.name();
  const bool prefix_greedy =
      name == "ConsumeAttr" || name == "ConsumeAttrCumul";
  if ((at_m.proved_optimal && at_m1.proved_optimal) || prefix_greedy) {
    if (at_m.satisfied_queries > at_m1.satisfied_queries) {
      return Violation(name + ": raising m from " +
                           std::to_string(instance.m) + " to " +
                           std::to_string(instance.m + 1) +
                           " dropped visibility " +
                           std::to_string(at_m.satisfied_queries) + " -> " +
                           std::to_string(at_m1.satisfied_queries),
                       instance);
    }
  }
  return Status::OK();
}

Status CheckAddedQuery(const Instance& instance, const SocSolver& solver) {
  SOC_ASSIGN_OR_RETURN(
      const SocSolution before,
      SolveOrExplain(solver, instance.log, instance.tuple, instance.m));
  if (!before.proved_optimal) return Status::OK();
  // Append a query equal to the optimal selection: it is satisfied by that
  // same selection, so the new optimum must gain at least one.
  Instance extended;
  extended.tuple = instance.tuple;
  extended.m = instance.m;
  extended.log = instance.log;
  extended.log.AddQuery(before.selected);
  SOC_ASSIGN_OR_RETURN(
      const SocSolution after,
      SolveOrExplain(solver, extended.log, extended.tuple, extended.m));
  if (!after.proved_optimal) return Status::OK();
  if (after.satisfied_queries < before.satisfied_queries + 1) {
    return Violation(solver.name() +
                         ": adding a query satisfied by the optimum moved "
                         "visibility " +
                         std::to_string(before.satisfied_queries) + " -> " +
                         std::to_string(after.satisfied_queries),
                     instance);
  }
  return Status::OK();
}

Status CheckPermutationInvariance(const Instance& instance,
                                  const SocSolver& solver) {
  const int n = instance.log.num_attributes();
  Instance reversed;
  reversed.m = instance.m;
  reversed.tuple = DynamicBitset(static_cast<std::size_t>(n));
  for (int a = 0; a < n; ++a) {
    if (instance.tuple.Test(static_cast<std::size_t>(a))) {
      reversed.tuple.Set(static_cast<std::size_t>(n - 1 - a));
    }
  }
  reversed.log = QueryLog(AttributeSchema::Anonymous(n));
  for (const DynamicBitset& q : instance.log.queries()) {
    DynamicBitset rq(static_cast<std::size_t>(n));
    q.ForEachSetBit([&rq, n](int a) {
      rq.Set(static_cast<std::size_t>(n - 1 - a));
    });
    reversed.log.AddQuery(std::move(rq));
  }
  SOC_ASSIGN_OR_RETURN(
      const SocSolution original,
      SolveOrExplain(solver, instance.log, instance.tuple, instance.m));
  SOC_ASSIGN_OR_RETURN(
      const SocSolution permuted,
      SolveOrExplain(solver, reversed.log, reversed.tuple, reversed.m));
  // The objective is permutation-invariant; heuristic tie-breaking is by
  // attribute index, so only certified optima are comparable.
  if (original.proved_optimal && permuted.proved_optimal &&
      original.satisfied_queries != permuted.satisfied_queries) {
    return Violation(solver.name() + ": optimum changed under attribute "
                         "permutation, " +
                         std::to_string(original.satisfied_queries) + " vs " +
                         std::to_string(permuted.satisfied_queries),
                     instance);
  }
  return Status::OK();
}

Status CheckUnitWeights(const Instance& instance, const SocSolver& solver) {
  // One weighted check per instance is enough; anchor it to BruteForce.
  if (solver.name() != "BruteForce") return Status::OK();
  SOC_ASSIGN_OR_RETURN(
      const SocSolution unweighted,
      SolveOrExplain(solver, instance.log, instance.tuple, instance.m));
  if (!unweighted.proved_optimal) return Status::OK();

  WeightedSocInstance unit;
  unit.queries = instance.log;
  unit.weights.assign(static_cast<std::size_t>(instance.log.size()), 1);
  unit.total_weight = instance.log.size();
  SOC_ASSIGN_OR_RETURN(
      const WeightedSolution unit_solution,
      SolveWeightedBruteForce(unit, instance.tuple, instance.m));
  if (unit_solution.proved_optimal &&
      unit_solution.satisfied_weight != unweighted.satisfied_queries) {
    return Violation("weighted brute force with unit weights found " +
                         std::to_string(unit_solution.satisfied_weight) +
                         ", unweighted optimum is " +
                         std::to_string(unweighted.satisfied_queries),
                     instance);
  }

  // Collapsing duplicates into multiplicities must not move the optimum.
  const WeightedSocInstance collapsed =
      WeightedSocInstance::FromLog(instance.log);
  SOC_ASSIGN_OR_RETURN(
      const WeightedSolution collapsed_solution,
      SolveWeightedBruteForce(collapsed, instance.tuple, instance.m));
  if (collapsed_solution.proved_optimal &&
      collapsed_solution.satisfied_weight != unweighted.satisfied_queries) {
    return Violation("collapsed weighted instance optimum " +
                         std::to_string(collapsed_solution.satisfied_weight) +
                         " != raw-log optimum " +
                         std::to_string(unweighted.satisfied_queries),
                     instance);
  }
  return Status::OK();
}

Status CheckDegradeContract(const Instance& instance, const SocSolver& solver) {
  const StopReason reasons[] = {StopReason::kDeadline, StopReason::kCancelled,
                                StopReason::kTickBudget};
  for (const StopReason reason : reasons) {
    for (const std::int64_t at_tick : {std::int64_t{1}, std::int64_t{5}}) {
      SolveContext context;
      context.InjectFault(reason, at_tick);
      auto result = solver.SolveWithContext(instance.log, instance.tuple,
                                            instance.m, &context);
      const std::string label = solver.name() + " fault=" +
                                StopReasonToString(reason) + "@" +
                                std::to_string(at_tick);
      if (!result.ok()) {
        return Violation(label + ": solver must degrade, not error: " +
                             result.status().ToString(),
                         instance);
      }
      SOC_RETURN_IF_ERROR(ValidateSolution(instance, *result, label));
      if (IsDegraded(*result) && SolutionStopReason(*result) != reason) {
        return Violation(label + ": degraded with reason " +
                             StopReasonToString(SolutionStopReason(*result)),
                         instance);
      }
    }
  }

  SolveContext expired;
  expired.set_deadline(Deadline::AfterSeconds(0.0));
  auto result = solver.SolveWithContext(instance.log, instance.tuple,
                                        instance.m, &expired);
  const std::string label = solver.name() + " pre-expired deadline";
  if (!result.ok()) {
    return Violation(label + ": solver must degrade, not error: " +
                         result.status().ToString(),
                     instance);
  }
  SOC_RETURN_IF_ERROR(ValidateSolution(instance, *result, label));
  if (IsDegraded(*result) &&
      SolutionStopReason(*result) != StopReason::kDeadline) {
    return Violation(label + ": degraded with reason " +
                         StopReasonToString(SolutionStopReason(*result)),
                     instance);
  }
  // When there is real work to stop (some nonempty query is satisfiable
  // within the budget), every registry solver must notice the expired
  // deadline; silently completing "optimal" would break the serving
  // layer's latency contract.
  const int m_eff = EffectiveBudget(instance);
  bool has_work = false;
  for (const DynamicBitset& q : instance.log.queries()) {
    if (q.Any() && static_cast<int>(q.Count()) <= m_eff &&
        q.IsSubsetOf(instance.tuple)) {
      has_work = true;
      break;
    }
  }
  if (has_work && !IsDegraded(*result)) {
    return Violation(label + ": solver ignored the expired deadline",
                     instance);
  }
  return Status::OK();
}

Status CheckConsumeAttrSpec(const Instance& instance, const SocSolver& solver) {
  if (solver.name() != "ConsumeAttr") return Status::OK();
  SOC_ASSIGN_OR_RETURN(
      const SocSolution solution,
      SolveOrExplain(solver, instance.log, instance.tuple, instance.m));
  // The documented spec, recomputed independently: the top-m_eff tuple
  // attributes by (query-log frequency desc, index asc). Any off-by-one in
  // the solver's ranking or cutoff shows up as a selection mismatch.
  const std::vector<int> freq = instance.log.AttributeFrequencies();
  std::vector<int> attrs = instance.tuple.SetBits();
  std::sort(attrs.begin(), attrs.end(), [&freq](int a, int b) {
    if (freq[a] != freq[b]) return freq[a] > freq[b];
    return a < b;
  });
  const int m_eff = EffectiveBudget(instance);
  DynamicBitset expected(
      static_cast<std::size_t>(instance.log.num_attributes()));
  for (int i = 0; i < m_eff; ++i) {
    expected.Set(static_cast<std::size_t>(attrs[i]));
  }
  if (solution.selected != expected) {
    return Violation("ConsumeAttr selected {" +
                         solution.selected.ToString() + "}, spec says {" +
                         expected.ToString() + "}",
                     instance);
  }
  return Status::OK();
}

Status CheckKernelDiff(const Instance& instance, const SocSolver& solver) {
  // One kernel check per instance is enough; anchor it to ConsumeAttrCumul
  // (its solve exercises the superset/gain direction end to end).
  if (solver.name() != "ConsumeAttrCumul") return Status::OK();
  const int num_attrs = instance.log.num_attributes();
  const std::size_t width = static_cast<std::size_t>(num_attrs);
  const kernels::CoverageBlockSet blocks(instance.log.queries(), width);

  // Probe selections: empty, the tuple, and the solver's own pick.
  std::vector<DynamicBitset> probes;
  probes.emplace_back(width);
  probes.push_back(instance.tuple);
  SOC_ASSIGN_OR_RETURN(
      const SocSolution solution,
      SolveOrExplain(solver, instance.log, instance.tuple, instance.m));
  probes.push_back(solution.selected);

  std::vector<long long> gains(width, 0);
  for (const kernels::Tier tier : kernels::AvailableTiers()) {
    const kernels::KernelOps* ops = kernels::GetOps(tier);
    const std::string label =
        std::string("kernel tier ") + kernels::TierName(tier);
    for (const DynamicBitset& sel : probes) {
      // Subset (coverage) direction vs. a per-query recount.
      long long covered_ref = 0;
      for (const DynamicBitset& q : instance.log.queries()) {
        if (q.IsSubsetOf(sel)) ++covered_ref;
      }
      const long long covered = kernels::CountCoveredWith(*ops, blocks, sel);
      if (covered != covered_ref) {
        return Violation(label + ": CountCovered " + std::to_string(covered) +
                             " != reference " + std::to_string(covered_ref),
                         instance);
      }
      // Superset (gain) direction vs. the query log's own joint counter.
      const kernels::GainScan scan = kernels::CoverageGainWith(
          *ops, blocks, sel, gains.data(), /*context=*/nullptr);
      if (!scan.completed) {
        return Violation(label + ": context-free gain scan did not complete",
                         instance);
      }
      for (int attr = 0; attr < num_attrs; ++attr) {
        if (sel.Test(attr)) continue;
        DynamicBitset with_attr = sel;
        with_attr.Set(attr);
        const long long joint =
            instance.log.CountQueriesContainingAll(with_attr);
        if (gains[attr] != joint) {
          return Violation(label + ": gain[" + std::to_string(attr) + "] = " +
                               std::to_string(gains[attr]) +
                               " != joint count " + std::to_string(joint),
                           instance);
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

const std::vector<PropertyCheck>& PropertyCatalog() {
  static const std::vector<PropertyCheck>* const kCatalog =
      new std::vector<PropertyCheck>{
          {"valid-solution",
           "selection subset/size/objective invariants, degraded-marker "
           "consistency",
           &CheckValidSolution},
          {"bounds",
           "solver <= brute-force optimum <= satisfiable-size upper bound; "
           "certified solves hit the optimum",
           &CheckBounds},
          {"monotone-in-m",
           "visibility never drops when the budget grows (certified solves "
           "and prefix-greedy heuristics)",
           &CheckMonotoneInM},
          {"added-query",
           "appending a query satisfied by the optimum raises the optimum",
           &CheckAddedQuery},
          {"permutation",
           "the optimum is invariant under attribute reordering",
           &CheckPermutationInvariance},
          {"unit-weights",
           "weighted pipeline with unit weights / collapsed duplicates "
           "reproduces the unweighted optimum",
           &CheckUnitWeights},
          {"degrade-contract",
           "injected faults and pre-expired deadlines yield valid partial "
           "solutions with matching stop reasons",
           &CheckDegradeContract},
          {"consume-attr-spec",
           "ConsumeAttr's selection equals the independently recomputed "
           "frequency ranking",
           &CheckConsumeAttrSpec},
          {"kernel-diff",
           "every available kernel tier matches per-query recounts for "
           "coverage and marginal gains (runs on ConsumeAttrCumul only)",
           &CheckKernelDiff},
      };
  return *kCatalog;
}

Status CheckAllProperties(const Instance& instance, const SocSolver& solver) {
  for (const PropertyCheck& property : PropertyCatalog()) {
    Status status = property.check(instance, solver);
    if (!status.ok()) {
      return Status(status.code(), std::string(property.name) + ": " +
                                       status.message());
    }
  }
  return Status::OK();
}

std::vector<std::string> PropertyCheckedSolvers() {
  return std::vector<std::string>(std::begin(kPropertyCheckedSolvers),
                                  std::end(kPropertyCheckedSolvers));
}

}  // namespace soc::check
