#include "check/shrink.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace soc::check {

namespace {

// Caps runaway fixpoint loops; each round strictly simplifies the
// instance, so this bound is never hit on sane predicates.
constexpr int kMaxRounds = 32;

bool TryReplace(Instance& instance, Instance candidate,
                const FailurePredicate& still_fails, ShrinkStats* stats) {
  ++stats->attempts;
  if (!still_fails(candidate)) return false;
  ++stats->accepted;
  instance = std::move(candidate);
  return true;
}

Instance WithoutQueryRange(const Instance& instance, int start, int count) {
  Instance candidate;
  candidate.tuple = instance.tuple;
  candidate.m = instance.m;
  candidate.log = QueryLog(instance.log.schema());
  for (int i = 0; i < instance.log.size(); ++i) {
    if (i >= start && i < start + count) continue;
    candidate.log.AddQuery(instance.log.query(i));
  }
  return candidate;
}

// ddmin-lite: removes chunks of queries, halving the chunk size until
// single-query removals stop making progress.
bool DropQueries(Instance& instance, const FailurePredicate& still_fails,
                 ShrinkStats* stats) {
  bool any = false;
  int chunk = std::max(1, instance.log.size() / 2);
  while (true) {
    bool progress = false;
    for (int start = 0; start < instance.log.size();) {
      const int count = std::min(chunk, instance.log.size() - start);
      if (TryReplace(instance, WithoutQueryRange(instance, start, count),
                     still_fails, stats)) {
        progress = true;
        any = true;
        // Do not advance: the next chunk slid into this position.
      } else {
        start += count;
      }
    }
    if (chunk == 1) {
      if (!progress) break;
    } else {
      chunk = std::max(1, chunk / 2);
    }
  }
  return any;
}

// Smallest budget that still fails, searched from 0 upward.
bool LowerBudget(Instance& instance, const FailurePredicate& still_fails,
                 ShrinkStats* stats) {
  for (int m = 0; m < instance.m; ++m) {
    Instance candidate = instance;
    candidate.m = m;
    if (TryReplace(instance, std::move(candidate), still_fails, stats)) {
      return true;
    }
  }
  return false;
}

bool ClearTupleBits(Instance& instance, const FailurePredicate& still_fails,
                    ShrinkStats* stats) {
  bool any = false;
  for (int bit : instance.tuple.SetBits()) {
    Instance candidate = instance;
    candidate.tuple.Reset(static_cast<std::size_t>(bit));
    if (TryReplace(instance, std::move(candidate), still_fails, stats)) {
      any = true;
    }
  }
  return any;
}

}  // namespace

Instance Shrink(Instance failing, const FailurePredicate& still_fails,
                ShrinkStats* stats) {
  ShrinkStats local;
  if (stats == nullptr) stats = &local;
  for (int round = 0; round < kMaxRounds; ++round) {
    ++stats->rounds;
    bool progress = DropQueries(failing, still_fails, stats);
    progress |= LowerBudget(failing, still_fails, stats);
    progress |= ClearTupleBits(failing, still_fails, stats);
    if (!progress) break;
  }
  return failing;
}

}  // namespace soc::check
