#include "check/fuzz.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <future>
#include <iterator>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "boolean/evaluator.h"
#include "boolean/query_log.h"
#include "boolean/schema.h"
#include "check/instance.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/solver_registry.h"
#include "common/mutex.h"
#include "obs/event_log.h"
#include "obs/slo.h"
#include "obs/wide_event.h"
#include "serve/event_builder.h"
#include "serve/protocol.h"
#include "serve/visibility_service.h"
#include "tenant/sharded_service.h"

namespace soc::check {

namespace {

// Mutation dictionary: JSON/CSV structure characters plus tokens that have
// historically broken hand-rolled parsers (huge numbers, bare nulls,
// duplicated keys).
constexpr char kDictionaryChars[] = {'"', '{', '}', ':', ',',  '\\',
                                     '0', '1', '9', '-', '.',  'e',
                                     ' ', ';', '=', '\n', '\t', '\x7f'};
const char* const kDictionaryTokens[] = {
    "\"tuple\"", "\"m\"",  "\"solver\"", "\"deadline_ms\"",
    "\"id\"",    "1e309",  "-1",         "18446744073709551616",
    "null",      "[]",     "{}",         "\"\"",
    ",",         "tuple=", "m=",         "a0,a1",
    // Response-line vocabulary (overload guidance + status fields).
    "\"status\"",         "\"error\"",       "\"retry_after_ms\"",
    "\"shed_reason\"",    "\"stop_reason\"", "\"selected\"",
    "\"degraded\"",       "Overloaded",      "predicted_deadline_miss",
    "queue_full",         "deadline",        "true",
    // Multi-tenant vocabulary (routing + epoch/cache metadata).
    "\"tenant_id\"",      "\"epoch\"",       "\"cache_hit\"",
    "\"admin\"",          "publish_epoch",   "acme",
    // Wide-event vocabulary (schema v1 field names + outcome enums).
    "\"v\":1",            "\"ts_ms\"",       "\"outcome\"",
    "\"solver_req\"",     "\"total_ms\"",    "\"collapse_ratio\"",
    "\"satisfied\"",      "ok",              "shed",
    "invalid",            "error",           "deadline_expired",
};

std::string Mutate(std::string input, Rng& rng) {
  const int mutations = rng.NextInt(0, 3);
  for (int i = 0; i < mutations; ++i) {
    switch (rng.NextUint64(5)) {
      case 0:
        input.resize(rng.NextUint64(input.size() + 1));
        break;
      case 1:
        if (!input.empty()) input.erase(rng.NextUint64(input.size()), 1);
        break;
      case 2:
        if (!input.empty()) {
          input[rng.NextUint64(input.size())] =
              kDictionaryChars[rng.NextUint64(std::size(kDictionaryChars))];
        }
        break;
      case 3:
        input.insert(
            rng.NextUint64(input.size() + 1),
            kDictionaryTokens[rng.NextUint64(std::size(kDictionaryTokens))]);
        break;
      case 4: {
        if (input.empty()) break;
        const std::size_t start = rng.NextUint64(input.size());
        const std::size_t len =
            1 + rng.NextUint64(std::min<std::size_t>(16, input.size() - start));
        input.insert(start, input.substr(start, len));
        break;
      }
    }
  }
  return input;
}

// The fixed log every protocol input parses against (width 6, a few
// conjunctive queries — mirrors the paper's car example in shape).
const QueryLog& ProtocolLog() {
  static const QueryLog* const kLog = [] {
    auto* log = new QueryLog(AttributeSchema::Anonymous(6));
    log->AddQueryFromIndices({0, 1});
    log->AddQueryFromIndices({2});
    log->AddQueryFromIndices({1, 3, 5});
    log->AddQueryFromIndices({0, 1, 2, 3});
    return log;
  }();
  return *kLog;
}

std::string RandomBits(Rng& rng, int width) {
  std::string bits(static_cast<std::size_t>(width), '0');
  for (char& c : bits) {
    if (rng.NextBernoulli(0.6)) c = '1';
  }
  return bits;
}

std::string ValidRequestLine(Rng& rng, int width) {
  static const std::vector<std::string>* const kSolvers =
      new std::vector<std::string>(RegisteredSolverNames());
  std::string line = "{";
  if (rng.NextBernoulli(0.7)) {
    line += "\"id\":\"r" + std::to_string(rng.NextInt(0, 999)) + "\",";
  }
  line += "\"tuple\":\"" + RandomBits(rng, width) + "\"";
  line += ",\"m\":" + std::to_string(rng.NextInt(-1, width + 2));
  if (rng.NextBernoulli(0.5)) {
    line += ",\"solver\":\"" +
            (*kSolvers)[rng.NextUint64(kSolvers->size())] + "\"";
  }
  if (rng.NextBernoulli(0.4)) {
    line += ",\"deadline_ms\":" + std::to_string(rng.NextInt(-5, 100));
  }
  // tenant_id variants, weighted toward the legal shapes but explicitly
  // covering every rejection class: absent, empty, oversized, non-string.
  switch (rng.NextUint64(8)) {
    case 0:
    case 1:
    case 2:  // Absent: legal on the single-tenant service.
      break;
    case 3:
    case 4:
    case 5:  // Valid.
      line += ",\"tenant_id\":\"t" + std::to_string(rng.NextInt(0, 99)) + "\"";
      break;
    case 6:  // Empty or oversized: must be rejected.
      if (rng.NextBernoulli(0.5)) {
        line += ",\"tenant_id\":\"\"";
      } else {
        line += ",\"tenant_id\":\"" +
                std::string(static_cast<std::size_t>(
                                serve::kMaxTenantIdBytes + 1 +
                                rng.NextInt(0, 64)),
                            'x') +
                "\"";
      }
      break;
    case 7:  // Non-string: must be rejected.
      line += rng.NextBernoulli(0.5) ? ",\"tenant_id\":42"
                                     : ",\"tenant_id\":null";
      break;
  }
  line += "}";
  return line;
}

std::string ValidResponseLine(Rng& rng, int width) {
  static const std::vector<std::string>* const kSolvers =
      new std::vector<std::string>(RegisteredSolverNames());
  serve::SolveResponse response;
  response.id = "r" + std::to_string(rng.NextInt(0, 999));
  if (rng.NextBernoulli(0.4)) {
    response.tenant_id = "t" + std::to_string(rng.NextInt(0, 99));
    // Epoch/cache metadata rides with tenancy most of the time.
    if (rng.NextBernoulli(0.7)) response.epoch = rng.NextInt(1, 9);
  }
  if (rng.NextBernoulli(0.5)) {
    // OK line, sometimes degraded.
    response.cache_hit = rng.NextBernoulli(0.3);
    response.solver = (*kSolvers)[rng.NextUint64(kSolvers->size())];
    response.solution.selected =
        DynamicBitset::FromString(RandomBits(rng, width));
    response.solution.satisfied_queries = rng.NextInt(0, 50);
    response.solution.proved_optimal = rng.NextBernoulli(0.5);
    if (rng.NextBernoulli(0.3)) {
      response.degraded = true;
      constexpr StopReason kReasons[] = {
          StopReason::kDeadline, StopReason::kCancelled,
          StopReason::kTickBudget, StopReason::kResourceLimit};
      response.stop_reason = kReasons[rng.NextUint64(std::size(kReasons))];
    }
    response.fast_path = rng.NextBernoulli(0.2);
    response.queue_ms = rng.NextDouble() * 10;
    response.solve_ms = rng.NextDouble() * 10;
  } else {
    // Rejection line, usually an overload shed with guidance.
    if (rng.NextBernoulli(0.7)) {
      response.status = OverloadedError("chaos shed");
      constexpr const char* kReasons[] = {
          serve::kShedReasonQueueFull, serve::kShedReasonPredicted,
          serve::kShedReasonExpired, serve::kShedReasonShutdown};
      if (rng.NextBernoulli(0.8)) {
        response.shed_reason = kReasons[rng.NextUint64(std::size(kReasons))];
      }
      if (rng.NextBernoulli(0.7)) {
        response.retry_after_ms = rng.NextDouble() * 50;
      }
    } else {
      response.status = InvalidArgumentError("chaos invalid");
    }
  }
  return serve::ResponseToJson(response).ToString();
}

// Feeds one request line through the protocol decoder; accepted requests
// must carry a log-width tuple and survive a response-encode smoke.
StatusOr<bool> RunProtocolInput(const std::string& line) {
  const QueryLog& log = ProtocolLog();
  auto request = serve::ParseSolveRequestLine(line, log, /*line_number=*/1);
  if (!request.ok()) return false;
  if (static_cast<int>(request->tuple.size()) != log.num_attributes()) {
    return InternalError(
        "protocol accepted a tuple of width " +
        std::to_string(request->tuple.size()) + " against a width-" +
        std::to_string(log.num_attributes()) + " log: " + line);
  }
  // An accepted tenant_id is either absent or a well-formed name; empty
  // and oversized ids must have been rejected above.
  if (!request->tenant_id.empty() &&
      static_cast<int>(request->tenant_id.size()) >
          serve::kMaxTenantIdBytes) {
    return InternalError("protocol accepted an oversized tenant_id (" +
                         std::to_string(request->tenant_id.size()) +
                         " bytes): " + line);
  }
  serve::SolveResponse response;
  response.id = request->id;
  response.solver = request->solver;
  response.solution.selected = request->tuple;
  if (serve::ResponseToJson(response).ToString().empty()) {
    return InternalError("empty response encoding for accepted line: " + line);
  }
  return true;
}

// Response lines must reach a fixed point after one canonical encode:
// accepted line -> response -> JSON -> response -> identical JSON.
StatusOr<bool> RunResponseInput(const std::string& line) {
  auto response = serve::ParseSolveResponseLine(line);
  if (!response.ok()) return false;
  const std::string canonical = serve::ResponseToJson(*response).ToString();
  auto reparsed = serve::ParseSolveResponseLine(canonical);
  if (!reparsed.ok()) {
    return InternalError("accepted response did not reparse: " +
                         reparsed.status().ToString() + " in " + canonical);
  }
  if (serve::ResponseToJson(*reparsed).ToString() != canonical) {
    return InternalError("response round trip changed the encoding: " +
                         canonical);
  }
  return true;
}

StatusOr<bool> RunCsvInput(const std::string& text) {
  auto log = QueryLog::FromCsv(text);
  if (!log.ok()) return false;
  const std::string canonical = log->ToCsv();
  auto reparsed = QueryLog::FromCsv(canonical);
  if (!reparsed.ok()) {
    return InternalError("accepted CSV did not reparse: " +
                         reparsed.status().ToString());
  }
  if (reparsed->num_attributes() != log->num_attributes() ||
      reparsed->queries() != log->queries()) {
    return InternalError("CSV round trip changed the log (" +
                         std::to_string(log->size()) + " queries, " +
                         std::to_string(log->num_attributes()) + " attrs)");
  }
  return true;
}

StatusOr<bool> RunInstanceInput(const std::string& text) {
  auto instance = InstanceFromText(text);
  if (!instance.ok()) return false;
  const std::string canonical = InstanceToText(*instance);
  auto reparsed = InstanceFromText(canonical);
  if (!reparsed.ok()) {
    return InternalError("accepted instance did not reparse: " +
                         reparsed.status().ToString());
  }
  if (reparsed->tuple != instance->tuple || reparsed->m != instance->m ||
      reparsed->log.queries() != instance->log.queries()) {
    return InternalError("instance round trip changed the instance (" +
                         InstanceSummary(*instance) + ")");
  }
  return true;
}

// A schema-valid wide event rendered through the canonical encoder, so
// unmutated inputs are always accepted and mutations explore the
// parser's rejection surface from just outside the schema.
std::string ValidWideEventLine(Rng& rng) {
  obs::WideEvent event;
  event.ts_ms = rng.NextDouble() * 1e4;
  event.id = "e" + std::to_string(rng.NextInt(0, 999));
  if (rng.NextBernoulli(0.4)) {
    // Sharded-path routing fields ride together, as in production.
    event.tenant = "t" + std::to_string(rng.NextInt(0, 99));
    event.shard = rng.NextInt(0, 7);
    event.epoch = rng.NextInt(1, 9);
  }
  if (rng.NextBernoulli(0.5)) event.solver_req = "BranchAndBound";
  event.solver = "Fallback";
  event.m = rng.NextInt(0, 8);
  if (rng.NextBernoulli(0.5)) event.deadline_ms = rng.NextDouble() * 100;
  event.num_queries = rng.NextInt(0, 500);
  event.num_attributes = rng.NextInt(0, 32);
  event.collapse_ratio = rng.NextDouble();
  event.queue_ms = rng.NextDouble() * 10;
  event.solve_ms = rng.NextDouble() * 10;
  event.total_ms = event.queue_ms + event.solve_ms;
  if (rng.NextBernoulli(0.3)) event.predicted_ms = rng.NextDouble() * 10;
  event.outcome = obs::kWideEventOutcomes[rng.NextUint64(
      std::size(obs::kWideEventOutcomes))];
  if (event.outcome == "ok") {
    event.code = StatusCodeToString(StatusCode::kOk);
    event.satisfied = rng.NextInt(0, 50);
    if (rng.NextBernoulli(0.3)) {
      event.degraded = true;
      event.stop_reason = StopReasonToString(StopReason::kDeadline);
    }
    event.fast_path = rng.NextBernoulli(0.2);
    event.cache_hit = rng.NextBernoulli(0.3);
    event.breaker_rerouted = rng.NextBernoulli(0.1);
    event.ladder_downgraded = rng.NextBernoulli(0.1);
  } else if (event.outcome == "shed") {
    event.code = StatusCodeToString(StatusCode::kOverloaded);
    event.shed_reason = obs::kWideEventShedReasons[rng.NextUint64(
        std::size(obs::kWideEventShedReasons))];
    if (rng.NextBernoulli(0.7)) event.retry_after_ms = rng.NextDouble() * 50;
  } else if (event.outcome == "invalid") {
    event.code = StatusCodeToString(rng.NextBernoulli(0.5)
                                        ? StatusCode::kInvalidArgument
                                        : StatusCode::kNotFound);
  } else {
    event.code = StatusCodeToString(StatusCode::kInternal);
  }
  return obs::WideEventToJsonLine(event);
}

// Wide-event lines must reach a fixed point after one canonical encode,
// the same contract the response protocol obeys.
StatusOr<bool> RunEventInput(const std::string& line) {
  auto event = obs::ParseWideEventLine(line);
  if (!event.ok()) return false;
  const std::string canonical = obs::WideEventToJsonLine(*event);
  auto reparsed = obs::ParseWideEventLine(canonical);
  if (!reparsed.ok()) {
    return InternalError("accepted wide event did not reparse: " +
                         reparsed.status().ToString() + " in " + canonical);
  }
  if (obs::WideEventToJsonLine(*reparsed) != canonical) {
    return InternalError("wide event round trip changed the encoding: " +
                         canonical);
  }
  return true;
}

StatusOr<FuzzReport> RunMutationLoop(
    const FuzzOptions& options,
    const std::function<std::string(Rng&)>& generate,
    const std::function<StatusOr<bool>(const std::string&)>& run) {
  Rng rng(options.seed * 0xD1B54A32D192ED03ull + 0x8BB84B93962EACC9ull);
  FuzzReport report;
  for (int i = 0; i < options.iterations; ++i) {
    ++report.iterations;
    const std::string input = Mutate(generate(rng), rng);
    SOC_ASSIGN_OR_RETURN(const bool accepted, run(input));
    if (accepted) {
      ++report.accepted;
    } else {
      ++report.rejected;
    }
  }
  return report;
}

}  // namespace

StatusOr<FuzzReport> FuzzProtocol(const FuzzOptions& options) {
  const int width = ProtocolLog().num_attributes();
  return RunMutationLoop(
      options, [width](Rng& rng) { return ValidRequestLine(rng, width); },
      &RunProtocolInput);
}

StatusOr<FuzzReport> FuzzResponseProtocol(const FuzzOptions& options) {
  const int width = ProtocolLog().num_attributes();
  return RunMutationLoop(
      options, [width](Rng& rng) { return ValidResponseLine(rng, width); },
      &RunResponseInput);
}

StatusOr<FuzzReport> FuzzQueryLogCsv(const FuzzOptions& options) {
  GeneratorOptions small;
  small.max_attrs = 8;
  small.max_queries = 12;
  return RunMutationLoop(
      options,
      [&small](Rng& rng) {
        return GenerateInstance(rng.Next(), small).log.ToCsv();
      },
      &RunCsvInput);
}

StatusOr<FuzzReport> FuzzInstanceText(const FuzzOptions& options) {
  GeneratorOptions small;
  small.max_attrs = 8;
  small.max_queries = 12;
  return RunMutationLoop(
      options,
      [&small](Rng& rng) {
        return InstanceToText(GenerateInstance(rng.Next(), small));
      },
      &RunInstanceInput);
}

StatusOr<FuzzReport> FuzzWideEvent(const FuzzOptions& options) {
  return RunMutationLoop(options, &ValidWideEventLine, &RunEventInput);
}

Status FuzzServe(const ServeFuzzOptions& options) {
  const Instance base = GenerateInstance(options.seed);
  const int width = base.log.num_attributes();

  serve::VisibilityServiceOptions service_options;
  service_options.num_workers = options.num_workers;
  service_options.max_queue = options.max_queue;
  serve::VisibilityService service(base.log, service_options);

  // Plans are generated single-threaded (Rng is not thread-safe), then
  // submitted concurrently from a ThreadPool.
  Rng rng(options.seed * 0xBF58476D1CE4E5B9ull + 0x94D049BB133111EBull);
  const std::vector<std::string> solver_names = RegisteredSolverNames();
  std::vector<serve::SolveRequest> plans;
  plans.reserve(static_cast<std::size_t>(options.requests));
  for (int i = 0; i < options.requests; ++i) {
    serve::SolveRequest request;
    request.id = "f" + std::to_string(i);
    int tuple_width = width;
    if (rng.NextBernoulli(0.1)) {
      tuple_width = std::max(0, width + rng.NextInt(-2, 2));  // Often wrong.
    }
    request.tuple = DynamicBitset(static_cast<std::size_t>(tuple_width));
    for (int b = 0; b < tuple_width; ++b) {
      if (rng.NextBernoulli(0.6)) request.tuple.Set(static_cast<std::size_t>(b));
    }
    request.m = rng.NextInt(-1, width + 2);
    const double solver_roll = rng.NextDouble();
    if (solver_roll < 0.75) {
      request.solver = solver_names[rng.NextUint64(solver_names.size())];
    } else if (solver_roll < 0.85) {
      request.solver = "NoSuchSolver";
    }  // else: default Fallback.
    const double deadline_roll = rng.NextDouble();
    if (deadline_roll < 0.2) {
      request.deadline_ms = 0.01;  // Usually expired at worker pickup.
    } else if (deadline_roll < 0.5) {
      request.deadline_ms = rng.NextInt(5, 100);
    }  // else: no deadline.
    plans.push_back(std::move(request));
  }

  std::vector<std::future<serve::SolveResponse>> futures(plans.size());
  {
    ThreadPool submitters(options.submitter_threads);
    for (int t = 0; t < options.submitter_threads; ++t) {
      submitters.Submit([t, &options, &plans, &futures, &service] {
        for (std::size_t i = static_cast<std::size_t>(t); i < plans.size();
             i += static_cast<std::size_t>(options.submitter_threads)) {
          futures[i] = service.Submit(plans[i]);
        }
      });
    }
    submitters.Shutdown();  // Joins: every future slot is now populated.
  }
  service.Drain();

  std::int64_t ok_responses = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (!futures[i].valid()) {
      return InternalError("request " + plans[i].id + " produced no future");
    }
    const serve::SolveResponse response = futures[i].get();
    if (response.id != plans[i].id) {
      return InternalError("response id '" + response.id +
                           "' does not echo request id '" + plans[i].id + "'");
    }
    if (!response.status.ok()) continue;
    ++ok_responses;
    const SocSolution& solution = response.solution;
    const DynamicBitset& tuple = plans[i].tuple;
    const int m_eff =
        std::min(plans[i].m, static_cast<int>(tuple.Count()));
    if (solution.selected.size() != static_cast<std::size_t>(width) ||
        !solution.selected.IsSubsetOf(tuple) ||
        static_cast<int>(solution.selected.Count()) != m_eff) {
      return InternalError("request " + plans[i].id +
                           ": invalid selection in OK response");
    }
    const int recount = CountSatisfiedQueries(base.log, solution.selected);
    if (solution.satisfied_queries != recount) {
      return InternalError(
          "request " + plans[i].id + ": objective " +
          std::to_string(solution.satisfied_queries) +
          " != reference recount " + std::to_string(recount));
    }
  }

  // The metrics ledger must balance against the observed responses.
  const serve::MetricsSnapshot snapshot = service.Metrics();
  const auto counter = [&snapshot](const std::string& name) {
    const auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? std::int64_t{0} : it->second;
  };
  const std::int64_t submitted = counter("submitted");
  const std::int64_t accepted = counter("accepted");
  const std::int64_t rejected = counter("rejected_invalid") +
                                counter("rejected_queue_full") +
                                counter("shed_predicted");
  const std::int64_t settled = counter("completed") + counter("solve_errors") +
                               counter("rejected_expired") +
                               counter("rejected_shutdown");
  if (submitted != static_cast<std::int64_t>(plans.size())) {
    return InternalError("submitted counter " + std::to_string(submitted) +
                         " != requests " + std::to_string(plans.size()));
  }
  if (accepted + rejected != submitted) {
    return InternalError("admission ledger does not balance: accepted " +
                         std::to_string(accepted) + " + rejected " +
                         std::to_string(rejected) + " != submitted " +
                         std::to_string(submitted));
  }
  if (settled != accepted) {
    return InternalError("completion ledger does not balance: settled " +
                         std::to_string(settled) + " != accepted " +
                         std::to_string(accepted));
  }
  if (counter("degraded") > counter("completed")) {
    return InternalError("degraded exceeds completed");
  }
  if (ok_responses != counter("completed")) {
    return InternalError("OK responses " + std::to_string(ok_responses) +
                         " != completed counter " +
                         std::to_string(counter("completed")));
  }
  return Status::OK();
}

Status FuzzServeChaos(const ChaosServeOptions& options) {
  const Instance base = GenerateInstance(options.seed);
  const int width = base.log.num_attributes();

  // Deterministic per-request injection decisions: a SplitMix64-style
  // finalizer keyed on (seed, request ordinal, decision), so concurrent
  // workers never share RNG state and a seed reproduces its storm.
  const auto chaos_roll = [seed = options.seed](std::uint64_t ordinal,
                                                std::uint64_t decision) {
    std::uint64_t z = seed + ordinal * 0x9E3779B97F4A7C15ull +
                      decision * 0xD1B54A32D192ED03ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) / 9007199254740992.0;  // [0,1)
  };

  serve::VisibilityServiceOptions service_options;
  service_options.num_workers = options.num_workers;
  service_options.max_queue = options.max_queue;
  // The ladder would reroute the faulty exact tier to Fallback under
  // pressure before its breaker sees enough consecutive faults; disable
  // it so the breaker audit below is deterministic. (The ladder has its
  // own deterministic unit tests.)
  service_options.ladder.max_level = 0;
  // Let the watchdog see deadline-less solves, so hard stalls on them
  // get cancelled rather than wedging a worker for the whole storm.
  service_options.watchdog.default_wall_ms = 30;
  service_options.watchdog.min_wall_ms = 10;
  service_options.worker_hook =
      [&options, &chaos_roll](const serve::WorkerHookContext& hook)
      -> Status {
    // Ids are "c<ordinal>"; see the plan loop below.
    const std::uint64_t ordinal =
        std::strtoull(hook.request.id.c_str() + 1, nullptr, 10);
    if (!options.faulty_solver.empty() &&
        hook.solver == options.faulty_solver) {
      return InternalError("chaos: injected fault in " + hook.solver);
    }
    if (chaos_roll(ordinal, 1) < options.fault_rate) {
      return InternalError("chaos: injected fault");
    }
    if (chaos_roll(ordinal, 2) < options.stall_rate) {
      // Hard stall: no checkpoints while asleep — exactly the wedge the
      // watchdog exists for.
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(options.stall_ms));
    } else if (chaos_roll(ordinal, 3) < options.slow_rate) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(options.slow_ms));
    }
    return Status::OK();
  };
  serve::VisibilityService service(base.log, service_options);

  Rng rng(options.seed * 0xA0761D6478BD642Full + 0xE7037ED1A0B428DBull);
  const std::vector<std::string> solver_names = RegisteredSolverNames();
  std::vector<serve::SolveRequest> plans;
  plans.reserve(static_cast<std::size_t>(options.requests));
  for (int i = 0; i < options.requests; ++i) {
    serve::SolveRequest request;
    request.id = "c" + std::to_string(i);
    int tuple_width = width;
    if (rng.NextBernoulli(0.05)) {
      tuple_width = std::max(0, width + rng.NextInt(-2, 2));  // Often wrong.
    }
    request.tuple = DynamicBitset(static_cast<std::size_t>(tuple_width));
    for (int b = 0; b < tuple_width; ++b) {
      if (rng.NextBernoulli(0.6)) {
        request.tuple.Set(static_cast<std::size_t>(b));
      }
    }
    request.m = rng.NextInt(-1, width + 2);
    const double solver_roll = rng.NextDouble();
    if (!options.faulty_solver.empty() && solver_roll < 0.2) {
      // Deadline-less on purpose: never shed at admission, so the faulty
      // tier reliably accumulates the consecutive faults that trip it.
      request.solver = options.faulty_solver;
      plans.push_back(std::move(request));
      continue;
    }
    if (solver_roll < 0.8) {
      request.solver = solver_names[rng.NextUint64(solver_names.size())];
    } else if (solver_roll < 0.85) {
      request.solver = "NoSuchSolver";
    }  // else: default Fallback.
    const double deadline_roll = rng.NextDouble();
    if (deadline_roll < 0.25) {
      request.deadline_ms = 0.01;  // Expired or predictively shed.
    } else if (deadline_roll < 0.6) {
      request.deadline_ms = rng.NextInt(5, 100);
    }  // else: no deadline.
    plans.push_back(std::move(request));
  }

  std::vector<std::future<serve::SolveResponse>> futures(plans.size());
  {
    ThreadPool submitters(options.submitter_threads);
    for (int t = 0; t < options.submitter_threads; ++t) {
      submitters.Submit([t, &options, &plans, &futures, &service] {
        int in_burst = 0;
        for (std::size_t i = static_cast<std::size_t>(t); i < plans.size();
             i += static_cast<std::size_t>(options.submitter_threads)) {
          futures[i] = service.Submit(plans[i]);
          if (options.burst_size > 0 && ++in_burst >= options.burst_size) {
            // Burst arrivals: a breather between bursts, so the queue
            // sees swells and drains rather than one smooth ramp.
            in_burst = 0;
            std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
                options.burst_pause_ms));
          }
        }
      });
    }
    submitters.Shutdown();  // Joins: every future slot is now populated.
  }
  service.Drain();

  std::int64_t ok_responses = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (!futures[i].valid()) {
      return InternalError("request " + plans[i].id + " produced no future");
    }
    const serve::SolveResponse response = futures[i].get();
    if (response.id != plans[i].id) {
      return InternalError("response id '" + response.id +
                           "' does not echo request id '" + plans[i].id + "'");
    }
    if (response.status.code() == StatusCode::kOverloaded) {
      // Every shed must say why, per the protocol's guidance contract.
      if (response.shed_reason.empty()) {
        return InternalError("request " + plans[i].id +
                             ": overloaded response without shed_reason");
      }
      if (response.retry_after_ms < 0) {
        return InternalError("request " + plans[i].id +
                             ": negative retry_after_ms");
      }
    }
    if (!response.status.ok()) continue;
    ++ok_responses;
    const SocSolution& solution = response.solution;
    const DynamicBitset& tuple = plans[i].tuple;
    const int m_eff = std::min(plans[i].m, static_cast<int>(tuple.Count()));
    if (solution.selected.size() != static_cast<std::size_t>(width) ||
        !solution.selected.IsSubsetOf(tuple) ||
        static_cast<int>(solution.selected.Count()) != m_eff) {
      return InternalError("request " + plans[i].id +
                           ": invalid selection in OK response");
    }
    const int recount = CountSatisfiedQueries(base.log, solution.selected);
    if (solution.satisfied_queries != recount) {
      return InternalError(
          "request " + plans[i].id + ": objective " +
          std::to_string(solution.satisfied_queries) +
          " != reference recount " + std::to_string(recount));
    }
  }

  // The chaos ledger: every request accounted for, exactly once.
  const serve::MetricsSnapshot snapshot = service.Metrics();
  const auto counter = [&snapshot](const std::string& name) {
    const auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? std::int64_t{0} : it->second;
  };
  const std::int64_t submitted = counter("submitted");
  const std::int64_t accepted = counter("accepted");
  const std::int64_t rejected = counter("rejected_invalid") +
                                counter("rejected_queue_full") +
                                counter("shed_predicted");
  const std::int64_t settled = counter("completed") + counter("solve_errors") +
                               counter("rejected_expired") +
                               counter("rejected_shutdown");
  if (submitted != static_cast<std::int64_t>(plans.size())) {
    return InternalError("submitted counter " + std::to_string(submitted) +
                         " != requests " + std::to_string(plans.size()));
  }
  if (accepted + rejected != submitted) {
    return InternalError("admission ledger does not balance: accepted " +
                         std::to_string(accepted) + " + rejected " +
                         std::to_string(rejected) + " != submitted " +
                         std::to_string(submitted));
  }
  if (settled != accepted) {
    return InternalError("completion ledger does not balance: settled " +
                         std::to_string(settled) + " != accepted " +
                         std::to_string(accepted));
  }
  if (ok_responses != counter("completed")) {
    return InternalError("OK responses " + std::to_string(ok_responses) +
                         " != completed counter " +
                         std::to_string(counter("completed")));
  }
  if (!options.faulty_solver.empty() && options.fault_rate < 1.0) {
    // Every pickup of the always-faulting tier faults, and post-trip
    // reroutes run (and record) as Fallback, so its failure run is never
    // broken: once it has executed threshold-many times the breaker must
    // have tripped. Under a tiny admission queue its requests may be
    // rejected before pickup — then there is nothing to audit.
    const std::int64_t faulty_errors =
        counter("solver." + options.faulty_solver + ".errors");
    if (faulty_errors >= service_options.breaker.failure_threshold &&
        counter("breaker." + options.faulty_solver + ".trips") < 1) {
      return InternalError("faulty solver '" + options.faulty_solver +
                           "' never tripped its breaker (errors: " +
                           std::to_string(counter(
                               "solver." + options.faulty_solver + ".errors")) +
                           ")");
    }
  }
  return Status::OK();
}

Status FuzzMultiTenantChaos(const MultiTenantChaosOptions& options) {
  Rng rng(options.seed * 0x2545F4914F6CDD1Dull + 0x9E3779B97F4A7C15ull);
  const int num_tenants = std::max(1, options.num_tenants);

  // Per-tenant initial catalogs (distinct shapes via distinct seeds) and
  // a small tuple pool per tenant: repeated tuples are what make the
  // result cache engage under the storm.
  std::vector<std::string> tenant_ids;
  std::vector<QueryLog> initial_logs;
  std::vector<std::vector<DynamicBitset>> tuple_pools;
  for (int t = 0; t < num_tenants; ++t) {
    tenant_ids.push_back("t" + std::to_string(t));
    initial_logs.push_back(
        GenerateInstance(options.seed + static_cast<std::uint64_t>(t) * 7919)
            .log);
    const int width = initial_logs.back().num_attributes();
    std::vector<DynamicBitset> pool;
    for (int p = 0; p < 8; ++p) {
      DynamicBitset tuple(static_cast<std::size_t>(width));
      for (int b = 0; b < width; ++b) {
        if (rng.NextBernoulli(0.6)) tuple.Set(static_cast<std::size_t>(b));
      }
      pool.push_back(std::move(tuple));
    }
    tuple_pools.push_back(std::move(pool));
  }

  // A published epoch keeps the tenant's width (so cached/queued traffic
  // stays type-compatible) but changes the query multiset — which is
  // exactly what makes a stale cached objective detectable.
  const auto mutate_log = [](const QueryLog& base, Rng& mutate_rng) {
    QueryLog next(base.schema());
    for (const DynamicBitset& query : base.queries()) {
      if (mutate_rng.NextBernoulli(0.2)) continue;  // Drop.
      DynamicBitset mutated = query;
      if (mutate_rng.NextBernoulli(0.4) && mutated.size() > 0) {
        const std::size_t bit = mutate_rng.NextUint64(mutated.size());
        if (mutated.Test(bit)) {
          mutated.Reset(bit);
        } else {
          mutated.Set(bit);
        }
      }
      next.AddQuery(std::move(mutated));
    }
    if (next.empty()) next.AddQuery(DynamicBitset(base.queries()[0].size()));
    return next;
  };

  tenant::ShardedServiceOptions service_options;
  service_options.num_shards = options.num_shards;
  service_options.shard.num_workers = options.num_workers;
  service_options.shard.max_queue = options.max_queue;
  service_options.shard.result_cache_capacity = options.result_cache_capacity;
  // Same rationale as FuzzServeChaos: keep tier selection deterministic
  // for the audit.
  service_options.shard.ladder.max_level = 0;
  const auto chaos_roll = [seed = options.seed](std::uint64_t ordinal,
                                                std::uint64_t decision) {
    std::uint64_t z = seed + ordinal * 0x9E3779B97F4A7C15ull +
                      decision * 0xD1B54A32D192ED03ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) / 9007199254740992.0;  // [0,1)
  };
  service_options.shard.worker_hook =
      [&options, &chaos_roll](const serve::WorkerHookContext& hook)
      -> Status {
    // Storm ids are "mt<ordinal>"; the post-storm determinism probes use
    // a different prefix and must run injection-free.
    if (hook.request.id.rfind("mt", 0) != 0) return Status::OK();
    const std::uint64_t ordinal =
        std::strtoull(hook.request.id.c_str() + 2, nullptr, 10);
    if (chaos_roll(ordinal, 1) < options.fault_rate) {
      return InternalError("chaos: injected fault");
    }
    if (chaos_roll(ordinal, 2) < options.slow_rate) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(options.slow_ms));
    }
    return Status::OK();
  };
  // Observability v2 rides the storm: every request becomes a wide
  // event (drained and re-parsed afterwards) and an SLO outcome. Hot
  // (even-index) tenants get a latency threshold of 0 ms so every
  // served request burns their budget and they must alert; cold tenants
  // keep the default objective, whose 0.5 availability target caps
  // burn at bad_fraction / 0.5 <= 2.0 — never strictly above the 2.0
  // fast threshold — so they must not alert no matter what the chaos
  // injection does to them.
  obs::EventLog event_log;
  event_log.set_enabled(true);
  obs::SloEngineOptions slo_options;
  slo_options.default_objective.latency_threshold_ms = 1e9;
  slo_options.default_objective.availability_target = 0.5;
  // Storm-length windows (the storm runs in far under an hour), so the
  // windowed totals the burn rates see equal the cumulative ledgers the
  // audit recomputes.
  slo_options.fast_window_s = 3600;
  slo_options.slow_window_s = 3600;
  slo_options.fast_burn_threshold = 2.0;
  slo_options.slow_burn_threshold = 1.0;
  obs::SloEngine slo_engine(slo_options);
  obs::SloObjective hot_objective;
  hot_objective.latency_threshold_ms = 0;
  hot_objective.availability_target = 0.9;
  std::map<std::string, double> latency_threshold_ms;
  for (int t = 0; t < num_tenants; ++t) {
    if (t % 2 == 0) {
      slo_engine.SetObjective(tenant_ids[static_cast<std::size_t>(t)],
                              hot_objective);
    }
    latency_threshold_ms[tenant_ids[static_cast<std::size_t>(t)]] =
        t % 2 == 0 ? hot_objective.latency_threshold_ms
                   : slo_options.default_objective.latency_threshold_ms;
  }
  service_options.shard.event_log = &event_log;
  service_options.shard.slo_engine = &slo_engine;

  tenant::ShardedService service(service_options);
  for (int t = 0; t < num_tenants; ++t) {
    SOC_RETURN_IF_ERROR(service.CreateTenant(tenant_ids[t], initial_logs[t]));
  }

  // logs_by_epoch[t][e-1] = the query log of tenant t's epoch e, keyed by
  // the epoch PublishEpoch actually returned (publish events for one
  // tenant can execute out of plan order across submitter threads).
  // Filled under logs_mutex as publishes land; epoch 1 is the initial
  // catalog.
  std::vector<std::vector<QueryLog>> logs_by_epoch(
      static_cast<std::size_t>(num_tenants));
  for (int t = 0; t < num_tenants; ++t) {
    logs_by_epoch[static_cast<std::size_t>(t)].push_back(initial_logs[t]);
  }
  Mutex logs_mutex;
  std::atomic<std::int64_t> successful_publishes{0};

  // The request plan. publish_tenant >= 0 marks a plan slot whose
  // submitter publishes a new epoch for that tenant before submitting.
  struct Plan {
    serve::SolveRequest request;
    int tenant = -1;  // -1: unknown-tenant probe.
    int publish_tenant = -1;
    QueryLog publish_log;
  };
  std::vector<Plan> plans;
  plans.reserve(static_cast<std::size_t>(options.requests));
  // Chain mutations per tenant so consecutive planned epochs keep
  // drifting apart.
  std::vector<QueryLog> planned_latest = initial_logs;
  int publish_rotation = 0;
  for (int i = 0; i < options.requests; ++i) {
    Plan plan;
    if (options.publish_every > 0 && i > 0 && i % options.publish_every == 0) {
      plan.publish_tenant = publish_rotation++ % num_tenants;
      QueryLog& latest =
          planned_latest[static_cast<std::size_t>(plan.publish_tenant)];
      plan.publish_log = mutate_log(latest, rng);
      latest = plan.publish_log;
    }
    serve::SolveRequest& request = plan.request;
    request.id = "mt" + std::to_string(i);
    plan.tenant = static_cast<int>(rng.NextUint64(
        static_cast<std::uint64_t>(num_tenants)));
    request.tenant_id = tenant_ids[static_cast<std::size_t>(plan.tenant)];
    const double hostile_roll = rng.NextDouble();
    if (hostile_roll < 0.04) {
      request.tenant_id = "ghost";  // Unknown tenant: rejected_invalid.
      plan.tenant = -1;
    }
    const int width =
        plan.tenant >= 0
            ? initial_logs[static_cast<std::size_t>(plan.tenant)]
                  .num_attributes()
            : 6;
    if (hostile_roll >= 0.04 && hostile_roll < 0.08) {
      // Wrong width: rejected_invalid against any epoch (widths are
      // stable across publishes).
      request.tuple = DynamicBitset(static_cast<std::size_t>(width + 1));
    } else if (plan.tenant >= 0 && rng.NextBernoulli(0.8)) {
      // Pool tuple: the repeat traffic that drives cache hits.
      const auto& pool = tuple_pools[static_cast<std::size_t>(plan.tenant)];
      request.tuple = pool[rng.NextUint64(pool.size())];
    } else {
      DynamicBitset tuple(static_cast<std::size_t>(width));
      for (int b = 0; b < width; ++b) {
        if (rng.NextBernoulli(0.6)) tuple.Set(static_cast<std::size_t>(b));
      }
      request.tuple = std::move(tuple);
    }
    request.m = rng.NextBernoulli(0.05) ? -1 : rng.NextInt(0, 4);
    const double solver_roll = rng.NextDouble();
    if (solver_roll < 0.15) {
      request.solver = "ConsumeAttr";
    } else if (solver_roll < 0.2) {
      request.solver = "NoSuchSolver";
    }  // else: default Fallback (fast, so the storm stays bounded).
    const double deadline_roll = rng.NextDouble();
    if (deadline_roll < 0.15) {
      request.deadline_ms = 0.01;  // Expired or predictively shed.
    } else if (deadline_roll < 0.5) {
      request.deadline_ms = rng.NextInt(5, 100);
    }  // else: no deadline.
    plans.push_back(std::move(plan));
  }

  // epoch_at_submit[i]: the tenant's published epoch observed by the
  // submitter immediately before Submit. Epochs only grow, so the
  // snapshot the request pins must be at least this — the zero-staleness
  // half of the RCU contract.
  std::vector<std::int64_t> epoch_at_submit(plans.size(), 0);
  std::vector<std::future<serve::SolveResponse>> futures(plans.size());
  std::vector<Status> publish_failures(plans.size(), Status::OK());
  {
    ThreadPool submitters(options.submitter_threads);
    for (int t = 0; t < options.submitter_threads; ++t) {
      submitters.Submit([t, &options, &plans, &futures, &service,
                         &epoch_at_submit, &publish_failures, &logs_mutex,
                         &logs_by_epoch, &tenant_ids,
                         &successful_publishes] {
        for (std::size_t i = static_cast<std::size_t>(t); i < plans.size();
             i += static_cast<std::size_t>(options.submitter_threads)) {
          Plan& plan = plans[i];
          if (plan.publish_tenant >= 0) {
            const std::string& id =
                tenant_ids[static_cast<std::size_t>(plan.publish_tenant)];
            auto epoch = service.PublishEpoch(id, plan.publish_log);
            if (epoch.ok()) {
              successful_publishes.fetch_add(1, std::memory_order_relaxed);
              MutexLock lock(logs_mutex);
              auto& epochs =
                  logs_by_epoch[static_cast<std::size_t>(plan.publish_tenant)];
              if (epochs.size() < static_cast<std::size_t>(*epoch)) {
                epochs.resize(static_cast<std::size_t>(*epoch));
              }
              epochs[static_cast<std::size_t>(*epoch - 1)] = plan.publish_log;
            } else if (epoch.status().code() !=
                       StatusCode::kFailedPrecondition) {
              // A lost concurrent-publish race is legal; anything else
              // is a harness bug surfaced after the storm.
              publish_failures[i] = epoch.status();
            }
          }
          if (plan.tenant >= 0) {
            const tenant::SnapshotPtr snapshot =
                service.registry().Acquire(plan.request.tenant_id);
            epoch_at_submit[i] = snapshot != nullptr ? snapshot->epoch() : 0;
          }
          futures[i] = service.Submit(plan.request);
        }
      });
    }
    submitters.Shutdown();
  }
  service.Drain();
  for (const Status& status : publish_failures) {
    if (!status.ok()) {
      return InternalError("mid-storm PublishEpoch failed: " +
                           status.ToString());
    }
  }

  std::int64_t ok_responses = 0;
  std::int64_t cache_hit_responses = 0;
  // Tenant -> (good, bad): the SLO outcomes the responses imply, built
  // with the shard's own classification (serve/event_builder.h) so the
  // engine's ledgers can be audited exactly.
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> expected_slo;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Plan& plan = plans[i];
    if (!futures[i].valid()) {
      return InternalError("request " + plan.request.id +
                           " produced no future");
    }
    const serve::SolveResponse response = futures[i].get();
    if (response.id != plan.request.id) {
      return InternalError("response id '" + response.id +
                           "' does not echo request id '" + plan.request.id +
                           "'");
    }
    if (response.status.code() == StatusCode::kOverloaded &&
        response.shed_reason.empty()) {
      return InternalError("request " + plan.request.id +
                           ": overloaded response without shed_reason");
    }
    if (serve::CountsTowardSlo(response.status)) {
      const std::string& tenant = response.tenant_id.empty()
                                      ? plan.request.tenant_id
                                      : response.tenant_id;
      const auto threshold_it = latency_threshold_ms.find(tenant);
      const double threshold =
          threshold_it == latency_threshold_ms.end()
              ? slo_options.default_objective.latency_threshold_ms
              : threshold_it->second;
      const double latency = response.queue_ms + response.solve_ms;
      auto& [good, bad] = expected_slo[tenant.empty() ? "default" : tenant];
      (response.status.ok() && std::isfinite(latency) &&
               latency <= threshold
           ? good
           : bad) += 1;
    }
    if (!response.status.ok()) continue;
    ++ok_responses;
    if (response.cache_hit) ++cache_hit_responses;
    if (plan.tenant < 0) {
      return InternalError("request " + plan.request.id +
                           ": OK response for an unknown tenant");
    }
    if (response.tenant_id != plan.request.tenant_id) {
      return InternalError("request " + plan.request.id +
                           ": response tenant '" + response.tenant_id +
                           "' does not echo '" + plan.request.tenant_id + "'");
    }
    // Zero staleness, part 1: the answering epoch is never older than
    // the epoch current at submit.
    if (response.epoch < 1 || response.epoch < epoch_at_submit[i]) {
      return InternalError(
          "request " + plan.request.id + ": answered at epoch " +
          std::to_string(response.epoch) + " older than epoch " +
          std::to_string(epoch_at_submit[i]) + " current at submit");
    }
    // Zero staleness, part 2: the objective recounts exactly against the
    // query log of the epoch the response claims — a cached result
    // leaking across a PublishEpoch fails this on any query drift.
    const auto& epochs = logs_by_epoch[static_cast<std::size_t>(plan.tenant)];
    if (response.epoch > static_cast<std::int64_t>(epochs.size())) {
      return InternalError("request " + plan.request.id +
                           ": response epoch " +
                           std::to_string(response.epoch) +
                           " was never published");
    }
    const QueryLog& epoch_log =
        epochs[static_cast<std::size_t>(response.epoch - 1)];
    const SocSolution& solution = response.solution;
    const DynamicBitset& tuple = plan.request.tuple;
    const int m_eff = std::min(plan.request.m,
                               static_cast<int>(tuple.Count()));
    if (solution.selected.size() != tuple.size() ||
        !solution.selected.IsSubsetOf(tuple) ||
        static_cast<int>(solution.selected.Count()) != m_eff) {
      return InternalError("request " + plan.request.id +
                           ": invalid selection in OK response");
    }
    const int recount = CountSatisfiedQueries(epoch_log, solution.selected);
    if (solution.satisfied_queries != recount) {
      return InternalError(
          "request " + plan.request.id + ": objective " +
          std::to_string(solution.satisfied_queries) + " != epoch-" +
          std::to_string(response.epoch) + " recount " +
          std::to_string(recount) + " (stale cache result?)");
    }
  }

  // Ledger audits over the merged snapshot.
  const serve::MetricsSnapshot snapshot = service.Metrics();
  const auto counter = [&snapshot](const std::string& name) {
    const auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? std::int64_t{0} : it->second;
  };
  const std::int64_t submitted = counter("submitted");
  const std::int64_t accepted = counter("accepted");
  const std::int64_t rejected = counter("rejected_invalid") +
                                counter("rejected_queue_full") +
                                counter("shed_predicted");
  if (submitted != static_cast<std::int64_t>(plans.size())) {
    return InternalError("submitted counter " + std::to_string(submitted) +
                         " != requests " + std::to_string(plans.size()));
  }
  if (accepted + rejected != submitted) {
    return InternalError("admission ledger does not balance: accepted " +
                         std::to_string(accepted) + " + rejected " +
                         std::to_string(rejected) + " != submitted " +
                         std::to_string(submitted));
  }
  if (ok_responses != counter("completed")) {
    return InternalError("OK responses " + std::to_string(ok_responses) +
                         " != completed counter " +
                         std::to_string(counter("completed")));
  }
  // Per-tenant ledgers, and their sum against the service totals.
  std::int64_t tenant_accepted_sum = 0;
  for (const std::string& id : tenant_ids) {
    const std::string prefix = "tenant." + id + ".";
    const std::int64_t t_accepted = counter(prefix + "accepted");
    const std::int64_t t_settled = counter(prefix + "completed") +
                                   counter(prefix + "solve_errors") +
                                   counter(prefix + "rejected_expired") +
                                   counter(prefix + "rejected_shutdown");
    if (t_accepted != t_settled) {
      return InternalError("tenant '" + id +
                           "' ledger does not balance: accepted " +
                           std::to_string(t_accepted) + " != settled " +
                           std::to_string(t_settled));
    }
    tenant_accepted_sum += t_accepted;
  }
  if (tenant_accepted_sum != accepted) {
    return InternalError("per-tenant accepted sum " +
                         std::to_string(tenant_accepted_sum) +
                         " != service accepted " + std::to_string(accepted));
  }
  const std::int64_t expected_publishes =
      successful_publishes.load(std::memory_order_relaxed);
  if (counter("epochs_published") != expected_publishes) {
    return InternalError("epochs_published " +
                         std::to_string(counter("epochs_published")) +
                         " != successful publishes " +
                         std::to_string(expected_publishes));
  }

  // Wide-event audit (before the probes below add their own events):
  // every storm request settled through exactly one RecordOutcome, so
  // recorded plus ring drops must equal submitted, and every drained
  // event must re-parse canonically.
  if (event_log.events_recorded() + event_log.events_dropped() !=
      static_cast<std::int64_t>(plans.size())) {
    return InternalError(
        "wide events recorded " + std::to_string(event_log.events_recorded()) +
        " + dropped " + std::to_string(event_log.events_dropped()) +
        " != requests " + std::to_string(plans.size()));
  }
  std::vector<obs::WideEvent> events;
  event_log.Drain(&events);
  if (static_cast<std::int64_t>(events.size()) !=
      event_log.events_recorded()) {
    return InternalError("drained " + std::to_string(events.size()) +
                         " wide events but " +
                         std::to_string(event_log.events_recorded()) +
                         " were recorded");
  }
  for (const obs::WideEvent& event : events) {
    const std::string line = obs::WideEventToJsonLine(event);
    const StatusOr<bool> replay = RunEventInput(line);
    SOC_RETURN_IF_ERROR(replay.status());
    if (!*replay) {
      return InternalError("storm produced an unparseable wide event: " +
                           line);
    }
  }

  // SLO engine audit: every per-tenant ledger must match the counts the
  // responses imply, the alert state must match the burn rates those
  // counts produce, at least one hot tenant must be alerting and no
  // cold tenant may be.
  const obs::SloReport slo_report = slo_engine.Report();
  std::size_t audited_tenants = 0;
  std::int64_t alerting_hot = 0;
  for (const auto& [tenant, state] : slo_report.tenants) {
    const auto expected_it = expected_slo.find(tenant);
    const std::int64_t want_good =
        expected_it == expected_slo.end() ? 0 : expected_it->second.first;
    const std::int64_t want_bad =
        expected_it == expected_slo.end() ? 0 : expected_it->second.second;
    if (expected_it != expected_slo.end()) ++audited_tenants;
    if (state.good != want_good || state.bad != want_bad) {
      return InternalError(
          "tenant '" + tenant + "' SLO ledger (good " +
          std::to_string(state.good) + ", bad " + std::to_string(state.bad) +
          ") != responses (good " + std::to_string(want_good) + ", bad " +
          std::to_string(want_bad) + ")");
    }
    const std::int64_t total = want_good + want_bad;
    const double burn =
        total == 0 ? 0
                   : (static_cast<double>(want_bad) /
                      static_cast<double>(total)) /
                         (1.0 - state.objective.availability_target);
    const bool want_alerting = burn > slo_options.fast_burn_threshold &&
                               burn > slo_options.slow_burn_threshold;
    if (state.alerting != want_alerting) {
      return InternalError("tenant '" + tenant + "' alerting=" +
                           std::to_string(state.alerting) +
                           " does not match burn " + std::to_string(burn));
    }
    const bool hot = state.objective.latency_threshold_ms ==
                     hot_objective.latency_threshold_ms;
    if (!hot && state.alerting) {
      return InternalError("cold tenant '" + tenant +
                           "' is alerting; its 0.5 target caps burn at the "
                           "fast threshold");
    }
    if (hot && state.alerting) ++alerting_hot;
  }
  if (audited_tenants != expected_slo.size()) {
    return InternalError("SLO report covers " +
                         std::to_string(audited_tenants) + " of " +
                         std::to_string(expected_slo.size()) +
                         " tenants with recorded outcomes");
  }
  if (alerting_hot == 0) {
    return InternalError("no hot tenant alerted under the storm");
  }

  // Cache determinism tail: with the storm over and epochs quiescent, an
  // identical back-to-back pair per tenant must produce one solve and
  // one cache hit with the same objective.
  for (int t = 0; t < num_tenants; ++t) {
    serve::SolveRequest probe;
    probe.id = "probe" + std::to_string(t);
    probe.tenant_id = tenant_ids[static_cast<std::size_t>(t)];
    probe.tuple = tuple_pools[static_cast<std::size_t>(t)][0];
    probe.m = 2;
    probe.solver = "ConsumeAttrCumul";
    const serve::SolveResponse first = service.Submit(probe).get();
    if (!first.status.ok()) {
      return InternalError("post-storm probe for tenant '" +
                           probe.tenant_id +
                           "' failed: " + first.status.ToString());
    }
    probe.id += "b";
    const serve::SolveResponse second = service.Submit(probe).get();
    if (!second.status.ok()) {
      return InternalError("post-storm reprobe for tenant '" +
                           probe.tenant_id +
                           "' failed: " + second.status.ToString());
    }
    if (!first.degraded) {
      if (!second.cache_hit) {
        return InternalError("post-storm reprobe for tenant '" +
                             probe.tenant_id +
                             "' was not served from the result cache");
      }
      if (second.epoch != first.epoch ||
          second.solution.satisfied_queries !=
              first.solution.satisfied_queries) {
        return InternalError("cached reprobe for tenant '" + probe.tenant_id +
                             "' changed the answer");
      }
      ++cache_hit_responses;
    }
  }
  if (cache_hit_responses == 0) {
    return InternalError("storm produced zero cache hits");
  }
  return Status::OK();
}

Status ReplayCorpusInput(const std::string& kind, const std::string& payload) {
  StatusOr<bool> accepted = false;
  if (kind == "protocol") {
    accepted = RunProtocolInput(payload);
  } else if (kind == "response") {
    accepted = RunResponseInput(payload);
  } else if (kind == "csv") {
    accepted = RunCsvInput(payload);
  } else if (kind == "instance") {
    accepted = RunInstanceInput(payload);
  } else if (kind == "event") {
    accepted = RunEventInput(payload);
  } else {
    return InvalidArgumentError(
        "unknown corpus kind '" + kind +
        "'; want protocol, response, csv, instance or event");
  }
  return accepted.status();
}

}  // namespace soc::check
