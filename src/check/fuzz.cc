#include "check/fuzz.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "boolean/evaluator.h"
#include "boolean/query_log.h"
#include "boolean/schema.h"
#include "check/instance.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/solver_registry.h"
#include "serve/protocol.h"
#include "serve/visibility_service.h"

namespace soc::check {

namespace {

// Mutation dictionary: JSON/CSV structure characters plus tokens that have
// historically broken hand-rolled parsers (huge numbers, bare nulls,
// duplicated keys).
constexpr char kDictionaryChars[] = {'"', '{', '}', ':', ',',  '\\',
                                     '0', '1', '9', '-', '.',  'e',
                                     ' ', ';', '=', '\n', '\t', '\x7f'};
const char* const kDictionaryTokens[] = {
    "\"tuple\"", "\"m\"",  "\"solver\"", "\"deadline_ms\"",
    "\"id\"",    "1e309",  "-1",         "18446744073709551616",
    "null",      "[]",     "{}",         "\"\"",
    ",",         "tuple=", "m=",         "a0,a1",
};

std::string Mutate(std::string input, Rng& rng) {
  const int mutations = rng.NextInt(0, 3);
  for (int i = 0; i < mutations; ++i) {
    switch (rng.NextUint64(5)) {
      case 0:
        input.resize(rng.NextUint64(input.size() + 1));
        break;
      case 1:
        if (!input.empty()) input.erase(rng.NextUint64(input.size()), 1);
        break;
      case 2:
        if (!input.empty()) {
          input[rng.NextUint64(input.size())] =
              kDictionaryChars[rng.NextUint64(std::size(kDictionaryChars))];
        }
        break;
      case 3:
        input.insert(
            rng.NextUint64(input.size() + 1),
            kDictionaryTokens[rng.NextUint64(std::size(kDictionaryTokens))]);
        break;
      case 4: {
        if (input.empty()) break;
        const std::size_t start = rng.NextUint64(input.size());
        const std::size_t len =
            1 + rng.NextUint64(std::min<std::size_t>(16, input.size() - start));
        input.insert(start, input.substr(start, len));
        break;
      }
    }
  }
  return input;
}

// The fixed log every protocol input parses against (width 6, a few
// conjunctive queries — mirrors the paper's car example in shape).
const QueryLog& ProtocolLog() {
  static const QueryLog* const kLog = [] {
    auto* log = new QueryLog(AttributeSchema::Anonymous(6));
    log->AddQueryFromIndices({0, 1});
    log->AddQueryFromIndices({2});
    log->AddQueryFromIndices({1, 3, 5});
    log->AddQueryFromIndices({0, 1, 2, 3});
    return log;
  }();
  return *kLog;
}

std::string RandomBits(Rng& rng, int width) {
  std::string bits(static_cast<std::size_t>(width), '0');
  for (char& c : bits) {
    if (rng.NextBernoulli(0.6)) c = '1';
  }
  return bits;
}

std::string ValidRequestLine(Rng& rng, int width) {
  static const std::vector<std::string>* const kSolvers =
      new std::vector<std::string>(RegisteredSolverNames());
  std::string line = "{";
  if (rng.NextBernoulli(0.7)) {
    line += "\"id\":\"r" + std::to_string(rng.NextInt(0, 999)) + "\",";
  }
  line += "\"tuple\":\"" + RandomBits(rng, width) + "\"";
  line += ",\"m\":" + std::to_string(rng.NextInt(-1, width + 2));
  if (rng.NextBernoulli(0.5)) {
    line += ",\"solver\":\"" +
            (*kSolvers)[rng.NextUint64(kSolvers->size())] + "\"";
  }
  if (rng.NextBernoulli(0.4)) {
    line += ",\"deadline_ms\":" + std::to_string(rng.NextInt(-5, 100));
  }
  line += "}";
  return line;
}

// Feeds one request line through the protocol decoder; accepted requests
// must carry a log-width tuple and survive a response-encode smoke.
StatusOr<bool> RunProtocolInput(const std::string& line) {
  const QueryLog& log = ProtocolLog();
  auto request = serve::ParseSolveRequestLine(line, log, /*line_number=*/1);
  if (!request.ok()) return false;
  if (static_cast<int>(request->tuple.size()) != log.num_attributes()) {
    return InternalError(
        "protocol accepted a tuple of width " +
        std::to_string(request->tuple.size()) + " against a width-" +
        std::to_string(log.num_attributes()) + " log: " + line);
  }
  serve::SolveResponse response;
  response.id = request->id;
  response.solver = request->solver;
  response.solution.selected = request->tuple;
  if (serve::ResponseToJson(response).ToString().empty()) {
    return InternalError("empty response encoding for accepted line: " + line);
  }
  return true;
}

StatusOr<bool> RunCsvInput(const std::string& text) {
  auto log = QueryLog::FromCsv(text);
  if (!log.ok()) return false;
  const std::string canonical = log->ToCsv();
  auto reparsed = QueryLog::FromCsv(canonical);
  if (!reparsed.ok()) {
    return InternalError("accepted CSV did not reparse: " +
                         reparsed.status().ToString());
  }
  if (reparsed->num_attributes() != log->num_attributes() ||
      reparsed->queries() != log->queries()) {
    return InternalError("CSV round trip changed the log (" +
                         std::to_string(log->size()) + " queries, " +
                         std::to_string(log->num_attributes()) + " attrs)");
  }
  return true;
}

StatusOr<bool> RunInstanceInput(const std::string& text) {
  auto instance = InstanceFromText(text);
  if (!instance.ok()) return false;
  const std::string canonical = InstanceToText(*instance);
  auto reparsed = InstanceFromText(canonical);
  if (!reparsed.ok()) {
    return InternalError("accepted instance did not reparse: " +
                         reparsed.status().ToString());
  }
  if (reparsed->tuple != instance->tuple || reparsed->m != instance->m ||
      reparsed->log.queries() != instance->log.queries()) {
    return InternalError("instance round trip changed the instance (" +
                         InstanceSummary(*instance) + ")");
  }
  return true;
}

StatusOr<FuzzReport> RunMutationLoop(
    const FuzzOptions& options,
    const std::function<std::string(Rng&)>& generate,
    const std::function<StatusOr<bool>(const std::string&)>& run) {
  Rng rng(options.seed * 0xD1B54A32D192ED03ull + 0x8BB84B93962EACC9ull);
  FuzzReport report;
  for (int i = 0; i < options.iterations; ++i) {
    ++report.iterations;
    const std::string input = Mutate(generate(rng), rng);
    SOC_ASSIGN_OR_RETURN(const bool accepted, run(input));
    if (accepted) {
      ++report.accepted;
    } else {
      ++report.rejected;
    }
  }
  return report;
}

}  // namespace

StatusOr<FuzzReport> FuzzProtocol(const FuzzOptions& options) {
  const int width = ProtocolLog().num_attributes();
  return RunMutationLoop(
      options, [width](Rng& rng) { return ValidRequestLine(rng, width); },
      &RunProtocolInput);
}

StatusOr<FuzzReport> FuzzQueryLogCsv(const FuzzOptions& options) {
  GeneratorOptions small;
  small.max_attrs = 8;
  small.max_queries = 12;
  return RunMutationLoop(
      options,
      [&small](Rng& rng) {
        return GenerateInstance(rng.Next(), small).log.ToCsv();
      },
      &RunCsvInput);
}

StatusOr<FuzzReport> FuzzInstanceText(const FuzzOptions& options) {
  GeneratorOptions small;
  small.max_attrs = 8;
  small.max_queries = 12;
  return RunMutationLoop(
      options,
      [&small](Rng& rng) {
        return InstanceToText(GenerateInstance(rng.Next(), small));
      },
      &RunInstanceInput);
}

Status FuzzServe(const ServeFuzzOptions& options) {
  const Instance base = GenerateInstance(options.seed);
  const int width = base.log.num_attributes();

  serve::VisibilityServiceOptions service_options;
  service_options.num_workers = options.num_workers;
  service_options.max_queue = options.max_queue;
  serve::VisibilityService service(base.log, service_options);

  // Plans are generated single-threaded (Rng is not thread-safe), then
  // submitted concurrently from a ThreadPool.
  Rng rng(options.seed * 0xBF58476D1CE4E5B9ull + 0x94D049BB133111EBull);
  const std::vector<std::string> solver_names = RegisteredSolverNames();
  std::vector<serve::SolveRequest> plans;
  plans.reserve(static_cast<std::size_t>(options.requests));
  for (int i = 0; i < options.requests; ++i) {
    serve::SolveRequest request;
    request.id = "f" + std::to_string(i);
    int tuple_width = width;
    if (rng.NextBernoulli(0.1)) {
      tuple_width = std::max(0, width + rng.NextInt(-2, 2));  // Often wrong.
    }
    request.tuple = DynamicBitset(static_cast<std::size_t>(tuple_width));
    for (int b = 0; b < tuple_width; ++b) {
      if (rng.NextBernoulli(0.6)) request.tuple.Set(static_cast<std::size_t>(b));
    }
    request.m = rng.NextInt(-1, width + 2);
    const double solver_roll = rng.NextDouble();
    if (solver_roll < 0.75) {
      request.solver = solver_names[rng.NextUint64(solver_names.size())];
    } else if (solver_roll < 0.85) {
      request.solver = "NoSuchSolver";
    }  // else: default Fallback.
    const double deadline_roll = rng.NextDouble();
    if (deadline_roll < 0.2) {
      request.deadline_ms = 0.01;  // Usually expired at worker pickup.
    } else if (deadline_roll < 0.5) {
      request.deadline_ms = rng.NextInt(5, 100);
    }  // else: no deadline.
    plans.push_back(std::move(request));
  }

  std::vector<std::future<serve::SolveResponse>> futures(plans.size());
  {
    ThreadPool submitters(options.submitter_threads);
    for (int t = 0; t < options.submitter_threads; ++t) {
      submitters.Submit([t, &options, &plans, &futures, &service] {
        for (std::size_t i = static_cast<std::size_t>(t); i < plans.size();
             i += static_cast<std::size_t>(options.submitter_threads)) {
          futures[i] = service.Submit(plans[i]);
        }
      });
    }
    submitters.Shutdown();  // Joins: every future slot is now populated.
  }
  service.Drain();

  std::int64_t ok_responses = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (!futures[i].valid()) {
      return InternalError("request " + plans[i].id + " produced no future");
    }
    const serve::SolveResponse response = futures[i].get();
    if (response.id != plans[i].id) {
      return InternalError("response id '" + response.id +
                           "' does not echo request id '" + plans[i].id + "'");
    }
    if (!response.status.ok()) continue;
    ++ok_responses;
    const SocSolution& solution = response.solution;
    const DynamicBitset& tuple = plans[i].tuple;
    const int m_eff =
        std::min(plans[i].m, static_cast<int>(tuple.Count()));
    if (solution.selected.size() != static_cast<std::size_t>(width) ||
        !solution.selected.IsSubsetOf(tuple) ||
        static_cast<int>(solution.selected.Count()) != m_eff) {
      return InternalError("request " + plans[i].id +
                           ": invalid selection in OK response");
    }
    const int recount = CountSatisfiedQueries(base.log, solution.selected);
    if (solution.satisfied_queries != recount) {
      return InternalError(
          "request " + plans[i].id + ": objective " +
          std::to_string(solution.satisfied_queries) +
          " != reference recount " + std::to_string(recount));
    }
  }

  // The metrics ledger must balance against the observed responses.
  const serve::MetricsSnapshot snapshot = service.Metrics();
  const auto counter = [&snapshot](const std::string& name) {
    const auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? std::int64_t{0} : it->second;
  };
  const std::int64_t submitted = counter("submitted");
  const std::int64_t accepted = counter("accepted");
  const std::int64_t rejected = counter("rejected_invalid") +
                                counter("rejected_queue_full");
  const std::int64_t settled = counter("completed") + counter("solve_errors") +
                               counter("rejected_expired");
  if (submitted != static_cast<std::int64_t>(plans.size())) {
    return InternalError("submitted counter " + std::to_string(submitted) +
                         " != requests " + std::to_string(plans.size()));
  }
  if (accepted + rejected != submitted) {
    return InternalError("admission ledger does not balance: accepted " +
                         std::to_string(accepted) + " + rejected " +
                         std::to_string(rejected) + " != submitted " +
                         std::to_string(submitted));
  }
  if (settled != accepted) {
    return InternalError("completion ledger does not balance: settled " +
                         std::to_string(settled) + " != accepted " +
                         std::to_string(accepted));
  }
  if (counter("degraded") > counter("completed")) {
    return InternalError("degraded exceeds completed");
  }
  if (ok_responses != counter("completed")) {
    return InternalError("OK responses " + std::to_string(ok_responses) +
                         " != completed counter " +
                         std::to_string(counter("completed")));
  }
  return Status::OK();
}

Status ReplayCorpusInput(const std::string& kind, const std::string& payload) {
  StatusOr<bool> accepted = false;
  if (kind == "protocol") {
    accepted = RunProtocolInput(payload);
  } else if (kind == "csv") {
    accepted = RunCsvInput(payload);
  } else if (kind == "instance") {
    accepted = RunInstanceInput(payload);
  } else {
    return InvalidArgumentError("unknown corpus kind '" + kind +
                                "'; want protocol, csv or instance");
  }
  return accepted.status();
}

}  // namespace soc::check
