#include "check/fuzz.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <future>
#include <iterator>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "boolean/evaluator.h"
#include "boolean/query_log.h"
#include "boolean/schema.h"
#include "check/instance.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/solver_registry.h"
#include "serve/protocol.h"
#include "serve/visibility_service.h"

namespace soc::check {

namespace {

// Mutation dictionary: JSON/CSV structure characters plus tokens that have
// historically broken hand-rolled parsers (huge numbers, bare nulls,
// duplicated keys).
constexpr char kDictionaryChars[] = {'"', '{', '}', ':', ',',  '\\',
                                     '0', '1', '9', '-', '.',  'e',
                                     ' ', ';', '=', '\n', '\t', '\x7f'};
const char* const kDictionaryTokens[] = {
    "\"tuple\"", "\"m\"",  "\"solver\"", "\"deadline_ms\"",
    "\"id\"",    "1e309",  "-1",         "18446744073709551616",
    "null",      "[]",     "{}",         "\"\"",
    ",",         "tuple=", "m=",         "a0,a1",
    // Response-line vocabulary (overload guidance + status fields).
    "\"status\"",         "\"error\"",       "\"retry_after_ms\"",
    "\"shed_reason\"",    "\"stop_reason\"", "\"selected\"",
    "\"degraded\"",       "Overloaded",      "predicted_deadline_miss",
    "queue_full",         "deadline",        "true",
};

std::string Mutate(std::string input, Rng& rng) {
  const int mutations = rng.NextInt(0, 3);
  for (int i = 0; i < mutations; ++i) {
    switch (rng.NextUint64(5)) {
      case 0:
        input.resize(rng.NextUint64(input.size() + 1));
        break;
      case 1:
        if (!input.empty()) input.erase(rng.NextUint64(input.size()), 1);
        break;
      case 2:
        if (!input.empty()) {
          input[rng.NextUint64(input.size())] =
              kDictionaryChars[rng.NextUint64(std::size(kDictionaryChars))];
        }
        break;
      case 3:
        input.insert(
            rng.NextUint64(input.size() + 1),
            kDictionaryTokens[rng.NextUint64(std::size(kDictionaryTokens))]);
        break;
      case 4: {
        if (input.empty()) break;
        const std::size_t start = rng.NextUint64(input.size());
        const std::size_t len =
            1 + rng.NextUint64(std::min<std::size_t>(16, input.size() - start));
        input.insert(start, input.substr(start, len));
        break;
      }
    }
  }
  return input;
}

// The fixed log every protocol input parses against (width 6, a few
// conjunctive queries — mirrors the paper's car example in shape).
const QueryLog& ProtocolLog() {
  static const QueryLog* const kLog = [] {
    auto* log = new QueryLog(AttributeSchema::Anonymous(6));
    log->AddQueryFromIndices({0, 1});
    log->AddQueryFromIndices({2});
    log->AddQueryFromIndices({1, 3, 5});
    log->AddQueryFromIndices({0, 1, 2, 3});
    return log;
  }();
  return *kLog;
}

std::string RandomBits(Rng& rng, int width) {
  std::string bits(static_cast<std::size_t>(width), '0');
  for (char& c : bits) {
    if (rng.NextBernoulli(0.6)) c = '1';
  }
  return bits;
}

std::string ValidRequestLine(Rng& rng, int width) {
  static const std::vector<std::string>* const kSolvers =
      new std::vector<std::string>(RegisteredSolverNames());
  std::string line = "{";
  if (rng.NextBernoulli(0.7)) {
    line += "\"id\":\"r" + std::to_string(rng.NextInt(0, 999)) + "\",";
  }
  line += "\"tuple\":\"" + RandomBits(rng, width) + "\"";
  line += ",\"m\":" + std::to_string(rng.NextInt(-1, width + 2));
  if (rng.NextBernoulli(0.5)) {
    line += ",\"solver\":\"" +
            (*kSolvers)[rng.NextUint64(kSolvers->size())] + "\"";
  }
  if (rng.NextBernoulli(0.4)) {
    line += ",\"deadline_ms\":" + std::to_string(rng.NextInt(-5, 100));
  }
  line += "}";
  return line;
}

std::string ValidResponseLine(Rng& rng, int width) {
  static const std::vector<std::string>* const kSolvers =
      new std::vector<std::string>(RegisteredSolverNames());
  serve::SolveResponse response;
  response.id = "r" + std::to_string(rng.NextInt(0, 999));
  if (rng.NextBernoulli(0.5)) {
    // OK line, sometimes degraded.
    response.solver = (*kSolvers)[rng.NextUint64(kSolvers->size())];
    response.solution.selected =
        DynamicBitset::FromString(RandomBits(rng, width));
    response.solution.satisfied_queries = rng.NextInt(0, 50);
    response.solution.proved_optimal = rng.NextBernoulli(0.5);
    if (rng.NextBernoulli(0.3)) {
      response.degraded = true;
      constexpr StopReason kReasons[] = {
          StopReason::kDeadline, StopReason::kCancelled,
          StopReason::kTickBudget, StopReason::kResourceLimit};
      response.stop_reason = kReasons[rng.NextUint64(std::size(kReasons))];
    }
    response.fast_path = rng.NextBernoulli(0.2);
    response.queue_ms = rng.NextDouble() * 10;
    response.solve_ms = rng.NextDouble() * 10;
  } else {
    // Rejection line, usually an overload shed with guidance.
    if (rng.NextBernoulli(0.7)) {
      response.status = OverloadedError("chaos shed");
      constexpr const char* kReasons[] = {
          serve::kShedReasonQueueFull, serve::kShedReasonPredicted,
          serve::kShedReasonExpired, serve::kShedReasonShutdown};
      if (rng.NextBernoulli(0.8)) {
        response.shed_reason = kReasons[rng.NextUint64(std::size(kReasons))];
      }
      if (rng.NextBernoulli(0.7)) {
        response.retry_after_ms = rng.NextDouble() * 50;
      }
    } else {
      response.status = InvalidArgumentError("chaos invalid");
    }
  }
  return serve::ResponseToJson(response).ToString();
}

// Feeds one request line through the protocol decoder; accepted requests
// must carry a log-width tuple and survive a response-encode smoke.
StatusOr<bool> RunProtocolInput(const std::string& line) {
  const QueryLog& log = ProtocolLog();
  auto request = serve::ParseSolveRequestLine(line, log, /*line_number=*/1);
  if (!request.ok()) return false;
  if (static_cast<int>(request->tuple.size()) != log.num_attributes()) {
    return InternalError(
        "protocol accepted a tuple of width " +
        std::to_string(request->tuple.size()) + " against a width-" +
        std::to_string(log.num_attributes()) + " log: " + line);
  }
  serve::SolveResponse response;
  response.id = request->id;
  response.solver = request->solver;
  response.solution.selected = request->tuple;
  if (serve::ResponseToJson(response).ToString().empty()) {
    return InternalError("empty response encoding for accepted line: " + line);
  }
  return true;
}

// Response lines must reach a fixed point after one canonical encode:
// accepted line -> response -> JSON -> response -> identical JSON.
StatusOr<bool> RunResponseInput(const std::string& line) {
  auto response = serve::ParseSolveResponseLine(line);
  if (!response.ok()) return false;
  const std::string canonical = serve::ResponseToJson(*response).ToString();
  auto reparsed = serve::ParseSolveResponseLine(canonical);
  if (!reparsed.ok()) {
    return InternalError("accepted response did not reparse: " +
                         reparsed.status().ToString() + " in " + canonical);
  }
  if (serve::ResponseToJson(*reparsed).ToString() != canonical) {
    return InternalError("response round trip changed the encoding: " +
                         canonical);
  }
  return true;
}

StatusOr<bool> RunCsvInput(const std::string& text) {
  auto log = QueryLog::FromCsv(text);
  if (!log.ok()) return false;
  const std::string canonical = log->ToCsv();
  auto reparsed = QueryLog::FromCsv(canonical);
  if (!reparsed.ok()) {
    return InternalError("accepted CSV did not reparse: " +
                         reparsed.status().ToString());
  }
  if (reparsed->num_attributes() != log->num_attributes() ||
      reparsed->queries() != log->queries()) {
    return InternalError("CSV round trip changed the log (" +
                         std::to_string(log->size()) + " queries, " +
                         std::to_string(log->num_attributes()) + " attrs)");
  }
  return true;
}

StatusOr<bool> RunInstanceInput(const std::string& text) {
  auto instance = InstanceFromText(text);
  if (!instance.ok()) return false;
  const std::string canonical = InstanceToText(*instance);
  auto reparsed = InstanceFromText(canonical);
  if (!reparsed.ok()) {
    return InternalError("accepted instance did not reparse: " +
                         reparsed.status().ToString());
  }
  if (reparsed->tuple != instance->tuple || reparsed->m != instance->m ||
      reparsed->log.queries() != instance->log.queries()) {
    return InternalError("instance round trip changed the instance (" +
                         InstanceSummary(*instance) + ")");
  }
  return true;
}

StatusOr<FuzzReport> RunMutationLoop(
    const FuzzOptions& options,
    const std::function<std::string(Rng&)>& generate,
    const std::function<StatusOr<bool>(const std::string&)>& run) {
  Rng rng(options.seed * 0xD1B54A32D192ED03ull + 0x8BB84B93962EACC9ull);
  FuzzReport report;
  for (int i = 0; i < options.iterations; ++i) {
    ++report.iterations;
    const std::string input = Mutate(generate(rng), rng);
    SOC_ASSIGN_OR_RETURN(const bool accepted, run(input));
    if (accepted) {
      ++report.accepted;
    } else {
      ++report.rejected;
    }
  }
  return report;
}

}  // namespace

StatusOr<FuzzReport> FuzzProtocol(const FuzzOptions& options) {
  const int width = ProtocolLog().num_attributes();
  return RunMutationLoop(
      options, [width](Rng& rng) { return ValidRequestLine(rng, width); },
      &RunProtocolInput);
}

StatusOr<FuzzReport> FuzzResponseProtocol(const FuzzOptions& options) {
  const int width = ProtocolLog().num_attributes();
  return RunMutationLoop(
      options, [width](Rng& rng) { return ValidResponseLine(rng, width); },
      &RunResponseInput);
}

StatusOr<FuzzReport> FuzzQueryLogCsv(const FuzzOptions& options) {
  GeneratorOptions small;
  small.max_attrs = 8;
  small.max_queries = 12;
  return RunMutationLoop(
      options,
      [&small](Rng& rng) {
        return GenerateInstance(rng.Next(), small).log.ToCsv();
      },
      &RunCsvInput);
}

StatusOr<FuzzReport> FuzzInstanceText(const FuzzOptions& options) {
  GeneratorOptions small;
  small.max_attrs = 8;
  small.max_queries = 12;
  return RunMutationLoop(
      options,
      [&small](Rng& rng) {
        return InstanceToText(GenerateInstance(rng.Next(), small));
      },
      &RunInstanceInput);
}

Status FuzzServe(const ServeFuzzOptions& options) {
  const Instance base = GenerateInstance(options.seed);
  const int width = base.log.num_attributes();

  serve::VisibilityServiceOptions service_options;
  service_options.num_workers = options.num_workers;
  service_options.max_queue = options.max_queue;
  serve::VisibilityService service(base.log, service_options);

  // Plans are generated single-threaded (Rng is not thread-safe), then
  // submitted concurrently from a ThreadPool.
  Rng rng(options.seed * 0xBF58476D1CE4E5B9ull + 0x94D049BB133111EBull);
  const std::vector<std::string> solver_names = RegisteredSolverNames();
  std::vector<serve::SolveRequest> plans;
  plans.reserve(static_cast<std::size_t>(options.requests));
  for (int i = 0; i < options.requests; ++i) {
    serve::SolveRequest request;
    request.id = "f" + std::to_string(i);
    int tuple_width = width;
    if (rng.NextBernoulli(0.1)) {
      tuple_width = std::max(0, width + rng.NextInt(-2, 2));  // Often wrong.
    }
    request.tuple = DynamicBitset(static_cast<std::size_t>(tuple_width));
    for (int b = 0; b < tuple_width; ++b) {
      if (rng.NextBernoulli(0.6)) request.tuple.Set(static_cast<std::size_t>(b));
    }
    request.m = rng.NextInt(-1, width + 2);
    const double solver_roll = rng.NextDouble();
    if (solver_roll < 0.75) {
      request.solver = solver_names[rng.NextUint64(solver_names.size())];
    } else if (solver_roll < 0.85) {
      request.solver = "NoSuchSolver";
    }  // else: default Fallback.
    const double deadline_roll = rng.NextDouble();
    if (deadline_roll < 0.2) {
      request.deadline_ms = 0.01;  // Usually expired at worker pickup.
    } else if (deadline_roll < 0.5) {
      request.deadline_ms = rng.NextInt(5, 100);
    }  // else: no deadline.
    plans.push_back(std::move(request));
  }

  std::vector<std::future<serve::SolveResponse>> futures(plans.size());
  {
    ThreadPool submitters(options.submitter_threads);
    for (int t = 0; t < options.submitter_threads; ++t) {
      submitters.Submit([t, &options, &plans, &futures, &service] {
        for (std::size_t i = static_cast<std::size_t>(t); i < plans.size();
             i += static_cast<std::size_t>(options.submitter_threads)) {
          futures[i] = service.Submit(plans[i]);
        }
      });
    }
    submitters.Shutdown();  // Joins: every future slot is now populated.
  }
  service.Drain();

  std::int64_t ok_responses = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (!futures[i].valid()) {
      return InternalError("request " + plans[i].id + " produced no future");
    }
    const serve::SolveResponse response = futures[i].get();
    if (response.id != plans[i].id) {
      return InternalError("response id '" + response.id +
                           "' does not echo request id '" + plans[i].id + "'");
    }
    if (!response.status.ok()) continue;
    ++ok_responses;
    const SocSolution& solution = response.solution;
    const DynamicBitset& tuple = plans[i].tuple;
    const int m_eff =
        std::min(plans[i].m, static_cast<int>(tuple.Count()));
    if (solution.selected.size() != static_cast<std::size_t>(width) ||
        !solution.selected.IsSubsetOf(tuple) ||
        static_cast<int>(solution.selected.Count()) != m_eff) {
      return InternalError("request " + plans[i].id +
                           ": invalid selection in OK response");
    }
    const int recount = CountSatisfiedQueries(base.log, solution.selected);
    if (solution.satisfied_queries != recount) {
      return InternalError(
          "request " + plans[i].id + ": objective " +
          std::to_string(solution.satisfied_queries) +
          " != reference recount " + std::to_string(recount));
    }
  }

  // The metrics ledger must balance against the observed responses.
  const serve::MetricsSnapshot snapshot = service.Metrics();
  const auto counter = [&snapshot](const std::string& name) {
    const auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? std::int64_t{0} : it->second;
  };
  const std::int64_t submitted = counter("submitted");
  const std::int64_t accepted = counter("accepted");
  const std::int64_t rejected = counter("rejected_invalid") +
                                counter("rejected_queue_full") +
                                counter("shed_predicted");
  const std::int64_t settled = counter("completed") + counter("solve_errors") +
                               counter("rejected_expired") +
                               counter("rejected_shutdown");
  if (submitted != static_cast<std::int64_t>(plans.size())) {
    return InternalError("submitted counter " + std::to_string(submitted) +
                         " != requests " + std::to_string(plans.size()));
  }
  if (accepted + rejected != submitted) {
    return InternalError("admission ledger does not balance: accepted " +
                         std::to_string(accepted) + " + rejected " +
                         std::to_string(rejected) + " != submitted " +
                         std::to_string(submitted));
  }
  if (settled != accepted) {
    return InternalError("completion ledger does not balance: settled " +
                         std::to_string(settled) + " != accepted " +
                         std::to_string(accepted));
  }
  if (counter("degraded") > counter("completed")) {
    return InternalError("degraded exceeds completed");
  }
  if (ok_responses != counter("completed")) {
    return InternalError("OK responses " + std::to_string(ok_responses) +
                         " != completed counter " +
                         std::to_string(counter("completed")));
  }
  return Status::OK();
}

Status FuzzServeChaos(const ChaosServeOptions& options) {
  const Instance base = GenerateInstance(options.seed);
  const int width = base.log.num_attributes();

  // Deterministic per-request injection decisions: a SplitMix64-style
  // finalizer keyed on (seed, request ordinal, decision), so concurrent
  // workers never share RNG state and a seed reproduces its storm.
  const auto chaos_roll = [seed = options.seed](std::uint64_t ordinal,
                                                std::uint64_t decision) {
    std::uint64_t z = seed + ordinal * 0x9E3779B97F4A7C15ull +
                      decision * 0xD1B54A32D192ED03ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) / 9007199254740992.0;  // [0,1)
  };

  serve::VisibilityServiceOptions service_options;
  service_options.num_workers = options.num_workers;
  service_options.max_queue = options.max_queue;
  // The ladder would reroute the faulty exact tier to Fallback under
  // pressure before its breaker sees enough consecutive faults; disable
  // it so the breaker audit below is deterministic. (The ladder has its
  // own deterministic unit tests.)
  service_options.ladder.max_level = 0;
  // Let the watchdog see deadline-less solves, so hard stalls on them
  // get cancelled rather than wedging a worker for the whole storm.
  service_options.watchdog.default_wall_ms = 30;
  service_options.watchdog.min_wall_ms = 10;
  service_options.worker_hook =
      [&options, &chaos_roll](const serve::WorkerHookContext& hook)
      -> Status {
    // Ids are "c<ordinal>"; see the plan loop below.
    const std::uint64_t ordinal =
        std::strtoull(hook.request.id.c_str() + 1, nullptr, 10);
    if (!options.faulty_solver.empty() &&
        hook.solver == options.faulty_solver) {
      return InternalError("chaos: injected fault in " + hook.solver);
    }
    if (chaos_roll(ordinal, 1) < options.fault_rate) {
      return InternalError("chaos: injected fault");
    }
    if (chaos_roll(ordinal, 2) < options.stall_rate) {
      // Hard stall: no checkpoints while asleep — exactly the wedge the
      // watchdog exists for.
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(options.stall_ms));
    } else if (chaos_roll(ordinal, 3) < options.slow_rate) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(options.slow_ms));
    }
    return Status::OK();
  };
  serve::VisibilityService service(base.log, service_options);

  Rng rng(options.seed * 0xA0761D6478BD642Full + 0xE7037ED1A0B428DBull);
  const std::vector<std::string> solver_names = RegisteredSolverNames();
  std::vector<serve::SolveRequest> plans;
  plans.reserve(static_cast<std::size_t>(options.requests));
  for (int i = 0; i < options.requests; ++i) {
    serve::SolveRequest request;
    request.id = "c" + std::to_string(i);
    int tuple_width = width;
    if (rng.NextBernoulli(0.05)) {
      tuple_width = std::max(0, width + rng.NextInt(-2, 2));  // Often wrong.
    }
    request.tuple = DynamicBitset(static_cast<std::size_t>(tuple_width));
    for (int b = 0; b < tuple_width; ++b) {
      if (rng.NextBernoulli(0.6)) {
        request.tuple.Set(static_cast<std::size_t>(b));
      }
    }
    request.m = rng.NextInt(-1, width + 2);
    const double solver_roll = rng.NextDouble();
    if (!options.faulty_solver.empty() && solver_roll < 0.2) {
      // Deadline-less on purpose: never shed at admission, so the faulty
      // tier reliably accumulates the consecutive faults that trip it.
      request.solver = options.faulty_solver;
      plans.push_back(std::move(request));
      continue;
    }
    if (solver_roll < 0.8) {
      request.solver = solver_names[rng.NextUint64(solver_names.size())];
    } else if (solver_roll < 0.85) {
      request.solver = "NoSuchSolver";
    }  // else: default Fallback.
    const double deadline_roll = rng.NextDouble();
    if (deadline_roll < 0.25) {
      request.deadline_ms = 0.01;  // Expired or predictively shed.
    } else if (deadline_roll < 0.6) {
      request.deadline_ms = rng.NextInt(5, 100);
    }  // else: no deadline.
    plans.push_back(std::move(request));
  }

  std::vector<std::future<serve::SolveResponse>> futures(plans.size());
  {
    ThreadPool submitters(options.submitter_threads);
    for (int t = 0; t < options.submitter_threads; ++t) {
      submitters.Submit([t, &options, &plans, &futures, &service] {
        int in_burst = 0;
        for (std::size_t i = static_cast<std::size_t>(t); i < plans.size();
             i += static_cast<std::size_t>(options.submitter_threads)) {
          futures[i] = service.Submit(plans[i]);
          if (options.burst_size > 0 && ++in_burst >= options.burst_size) {
            // Burst arrivals: a breather between bursts, so the queue
            // sees swells and drains rather than one smooth ramp.
            in_burst = 0;
            std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
                options.burst_pause_ms));
          }
        }
      });
    }
    submitters.Shutdown();  // Joins: every future slot is now populated.
  }
  service.Drain();

  std::int64_t ok_responses = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (!futures[i].valid()) {
      return InternalError("request " + plans[i].id + " produced no future");
    }
    const serve::SolveResponse response = futures[i].get();
    if (response.id != plans[i].id) {
      return InternalError("response id '" + response.id +
                           "' does not echo request id '" + plans[i].id + "'");
    }
    if (response.status.code() == StatusCode::kOverloaded) {
      // Every shed must say why, per the protocol's guidance contract.
      if (response.shed_reason.empty()) {
        return InternalError("request " + plans[i].id +
                             ": overloaded response without shed_reason");
      }
      if (response.retry_after_ms < 0) {
        return InternalError("request " + plans[i].id +
                             ": negative retry_after_ms");
      }
    }
    if (!response.status.ok()) continue;
    ++ok_responses;
    const SocSolution& solution = response.solution;
    const DynamicBitset& tuple = plans[i].tuple;
    const int m_eff = std::min(plans[i].m, static_cast<int>(tuple.Count()));
    if (solution.selected.size() != static_cast<std::size_t>(width) ||
        !solution.selected.IsSubsetOf(tuple) ||
        static_cast<int>(solution.selected.Count()) != m_eff) {
      return InternalError("request " + plans[i].id +
                           ": invalid selection in OK response");
    }
    const int recount = CountSatisfiedQueries(base.log, solution.selected);
    if (solution.satisfied_queries != recount) {
      return InternalError(
          "request " + plans[i].id + ": objective " +
          std::to_string(solution.satisfied_queries) +
          " != reference recount " + std::to_string(recount));
    }
  }

  // The chaos ledger: every request accounted for, exactly once.
  const serve::MetricsSnapshot snapshot = service.Metrics();
  const auto counter = [&snapshot](const std::string& name) {
    const auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? std::int64_t{0} : it->second;
  };
  const std::int64_t submitted = counter("submitted");
  const std::int64_t accepted = counter("accepted");
  const std::int64_t rejected = counter("rejected_invalid") +
                                counter("rejected_queue_full") +
                                counter("shed_predicted");
  const std::int64_t settled = counter("completed") + counter("solve_errors") +
                               counter("rejected_expired") +
                               counter("rejected_shutdown");
  if (submitted != static_cast<std::int64_t>(plans.size())) {
    return InternalError("submitted counter " + std::to_string(submitted) +
                         " != requests " + std::to_string(plans.size()));
  }
  if (accepted + rejected != submitted) {
    return InternalError("admission ledger does not balance: accepted " +
                         std::to_string(accepted) + " + rejected " +
                         std::to_string(rejected) + " != submitted " +
                         std::to_string(submitted));
  }
  if (settled != accepted) {
    return InternalError("completion ledger does not balance: settled " +
                         std::to_string(settled) + " != accepted " +
                         std::to_string(accepted));
  }
  if (ok_responses != counter("completed")) {
    return InternalError("OK responses " + std::to_string(ok_responses) +
                         " != completed counter " +
                         std::to_string(counter("completed")));
  }
  if (!options.faulty_solver.empty() && options.fault_rate < 1.0) {
    // Every pickup of the always-faulting tier faults, and post-trip
    // reroutes run (and record) as Fallback, so its failure run is never
    // broken: once it has executed threshold-many times the breaker must
    // have tripped. Under a tiny admission queue its requests may be
    // rejected before pickup — then there is nothing to audit.
    const std::int64_t faulty_errors =
        counter("solver." + options.faulty_solver + ".errors");
    if (faulty_errors >= service_options.breaker.failure_threshold &&
        counter("breaker." + options.faulty_solver + ".trips") < 1) {
      return InternalError("faulty solver '" + options.faulty_solver +
                           "' never tripped its breaker (errors: " +
                           std::to_string(counter(
                               "solver." + options.faulty_solver + ".errors")) +
                           ")");
    }
  }
  return Status::OK();
}

Status ReplayCorpusInput(const std::string& kind, const std::string& payload) {
  StatusOr<bool> accepted = false;
  if (kind == "protocol") {
    accepted = RunProtocolInput(payload);
  } else if (kind == "response") {
    accepted = RunResponseInput(payload);
  } else if (kind == "csv") {
    accepted = RunCsvInput(payload);
  } else if (kind == "instance") {
    accepted = RunInstanceInput(payload);
  } else {
    return InvalidArgumentError("unknown corpus kind '" + kind +
                                "'; want protocol, response, csv or instance");
  }
  return accepted.status();
}

}  // namespace soc::check
