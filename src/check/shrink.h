// Greedy instance minimization: given a failing Instance and a predicate
// that re-checks the failure, repeatedly simplify the instance while the
// failure persists. Three passes run to a fixpoint:
//
//   1. drop queries (ddmin-style: halving chunks down to single queries);
//   2. lower m to the smallest budget that still fails;
//   3. clear tuple bits one at a time.
//
// The predicate must be deterministic; it is called O(queries) times per
// round, so it should be cheap (property checks on the small generated
// instances are). The result is 1-minimal with respect to the moves above:
// no single query, tuple bit or budget decrement can be removed without
// losing the failure.

#ifndef SOC_CHECK_SHRINK_H_
#define SOC_CHECK_SHRINK_H_

#include <functional>

#include "check/instance.h"

namespace soc::check {

// Returns true iff `instance` still exhibits the failure being minimized.
using FailurePredicate = std::function<bool(const Instance&)>;

struct ShrinkStats {
  int rounds = 0;    // Fixpoint rounds over all three passes.
  int attempts = 0;  // Candidate instances evaluated.
  int accepted = 0;  // Candidates that still failed (simplifications kept).
};

// Precondition: still_fails(failing) is true. Returns the minimized
// instance; `stats` (optional) reports how much work the search did.
Instance Shrink(Instance failing, const FailurePredicate& still_fails,
                ShrinkStats* stats = nullptr);

}  // namespace soc::check

#endif  // SOC_CHECK_SHRINK_H_
