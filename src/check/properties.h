// The metamorphic property catalog run against every registry solver.
//
// Each property is a self-contained check on one (instance, solver) pair
// returning OK when it holds (or does not apply — e.g. equalities that are
// only sound for solves with proved_optimal) and an error Status with a
// human-readable violation message otherwise. The catalog:
//
//   valid-solution    selection ⊆ t, |selection| = min(m,|t|), objective
//                     matches the reference evaluator, degraded marker
//                     consistent with proved_optimal
//   bounds            solver ≤ brute-force optimum ≤ the satisfiable-size
//                     upper bound #{q ⊆ t : |q| ≤ m_eff}; equality with
//                     the optimum whenever the solver proves optimality
//   monotone-in-m     visibility never drops when the budget grows; always
//                     checked for the prefix-greedy ConsumeAttr /
//                     ConsumeAttrCumul, and for proved-optimal solves
//   added-query       appending a query satisfied by the current optimum
//                     raises the optimum by at least one
//   permutation       reversing the attribute order leaves the optimum
//                     unchanged (proved-optimal solves only; heuristics
//                     may legally tie-break differently)
//   unit-weights      the weighted pipeline with unit weights, and with
//                     collapsed-duplicate multiplicities, reproduces the
//                     unweighted optimum (runs on BruteForce only)
//   degrade-contract  injected faults and a pre-expired deadline yield a
//                     valid partial solution with the degraded marker and
//                     matching stop reason; a pre-expired deadline must
//                     degrade (never silently complete as optimal)
//   consume-attr-spec ConsumeAttr's selection equals the independently
//                     recomputed top-m_eff attributes of t by (query-log
//                     frequency desc, index asc) — the documented spec
//   kernel-diff       every kernel dispatch tier available on this host
//                     (scalar, AVX2, AVX-512) reproduces per-query
//                     recounts of coverage and marginal gains on the
//                     instance's log (runs on ConsumeAttrCumul only)
//
// kPropertyCheckedSolvers lists the registry solvers the suite exercises;
// soc_lint's property-parity rule keeps it in sync with kRegistry.

#ifndef SOC_CHECK_PROPERTIES_H_
#define SOC_CHECK_PROPERTIES_H_

#include <string>
#include <vector>

#include "check/instance.h"
#include "common/status.h"
#include "core/solver.h"

namespace soc::check {

struct PropertyCheck {
  const char* name;
  const char* description;
  Status (*check)(const Instance& instance, const SocSolver& solver);
};

// All properties, in documentation order.
const std::vector<PropertyCheck>& PropertyCatalog();

// Runs every catalog property; returns the first violation (its message is
// prefixed with the property name) or OK.
Status CheckAllProperties(const Instance& instance, const SocSolver& solver);

// Registry solvers covered by the property suite (lint-enforced parity
// with kRegistry in core/solver_registry.cc).
std::vector<std::string> PropertyCheckedSolvers();

}  // namespace soc::check

#endif  // SOC_CHECK_PROPERTIES_H_
