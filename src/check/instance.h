// Random SOC-CB-QL instance generation for property-based verification.
//
// An Instance bundles exactly what every SocSolver consumes: a query log,
// a new tuple of the log's width and a budget m. GenerateInstance derives
// everything deterministically from a 64-bit seed (same seed, same
// instance, on every platform — the generator is built on soc::Rng, not
// std::mt19937), mixing three shapes:
//
//   * paper-shaped: the Sec VII synthetic workload over a random schema;
//   * duplicate-heavy: a handful of query templates repeated many times,
//     the regime the weighted pipeline and ConsumeAttrCumul care about;
//   * adversarial soup: queries of arbitrary density including empty
//     queries (satisfied by anything) and full-width queries, plus empty
//     or full tuples and out-of-range budgets (m > |t|).
//
// Instances serialize to a small text form (tuple= / m= header lines plus
// the query-log CSV) so a failing, shrunken instance can be written to
// disk and replayed bit-exactly via `socvis_check --replay=FILE`.

#ifndef SOC_CHECK_INSTANCE_H_
#define SOC_CHECK_INSTANCE_H_

#include <cstdint>
#include <string>

#include "boolean/query_log.h"
#include "common/bitset.h"
#include "common/status.h"

namespace soc::check {

struct Instance {
  QueryLog log;
  DynamicBitset tuple;  // Width always equals log.num_attributes().
  int m = 0;
};

struct GeneratorOptions {
  int min_attrs = 2;
  int max_attrs = 12;     // Brute force stays trivial below ~16.
  int min_queries = 0;
  int max_queries = 90;
};

// Deterministic: the instance is a pure function of (seed, options).
Instance GenerateInstance(std::uint64_t seed,
                          const GeneratorOptions& options = {});

// "tuple=<bits>\nm=<n>\n" followed by QueryLog::ToCsv().
std::string InstanceToText(const Instance& instance);
StatusOr<Instance> InstanceFromText(const std::string& text);

// One-line human summary: "12 attrs, 40 queries, |t|=7, m=3".
std::string InstanceSummary(const Instance& instance);

}  // namespace soc::check

#endif  // SOC_CHECK_INSTANCE_H_
