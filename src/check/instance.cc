#include "check/instance.h"

#include <algorithm>
#include <charconv>
#include <utility>
#include <vector>

#include "common/random.h"
#include "datagen/workload.h"

namespace soc::check {

namespace {

StatusOr<int> ParseNonNegativeInt(const std::string& text) {
  int value = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || end != text.data() + text.size() || value < 0) {
    return InvalidArgumentError("not a nonnegative integer: '" + text + "'");
  }
  return value;
}

QueryLog PaperShapedLog(const AttributeSchema& schema, int num_queries,
                        Rng& rng) {
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = num_queries;
  wl.seed = rng.Next();
  wl.size_distribution.resize(std::min<std::size_t>(
      wl.size_distribution.size(), static_cast<std::size_t>(schema.size())));
  return datagen::MakeSyntheticWorkload(schema, wl);
}

QueryLog DuplicateHeavyLog(const AttributeSchema& schema, int num_queries,
                           Rng& rng) {
  QueryLog log(schema);
  if (num_queries == 0) return log;
  const int num_templates = rng.NextInt(1, std::max(1, num_queries / 4));
  std::vector<DynamicBitset> templates;
  templates.reserve(static_cast<std::size_t>(num_templates));
  for (int i = 0; i < num_templates; ++i) {
    DynamicBitset q(schema.size());
    const int size = rng.NextInt(1, std::max(1, schema.size() / 2));
    for (int attr : rng.SampleWithoutReplacement(schema.size(), size)) {
      q.Set(attr);
    }
    templates.push_back(std::move(q));
  }
  for (int i = 0; i < num_queries; ++i) {
    log.AddQuery(templates[rng.NextUint64(templates.size())]);
  }
  return log;
}

QueryLog AdversarialLog(const AttributeSchema& schema, int num_queries,
                        Rng& rng) {
  QueryLog log(schema);
  for (int i = 0; i < num_queries; ++i) {
    DynamicBitset q(schema.size());
    const double roll = rng.NextDouble();
    if (roll < 0.05) {
      // Empty query: conjunctively satisfied by every tuple.
    } else if (roll < 0.10) {
      q.SetAll();
    } else {
      const double density = 0.1 + 0.8 * rng.NextDouble();
      for (int a = 0; a < schema.size(); ++a) {
        if (rng.NextBernoulli(density)) q.Set(a);
      }
    }
    log.AddQuery(std::move(q));
  }
  return log;
}

}  // namespace

Instance GenerateInstance(std::uint64_t seed, const GeneratorOptions& options) {
  // Decorrelate consecutive seeds (Rng's own SplitMix64 seeding does the
  // heavy lifting; the multiplier keeps seed 0 and 1 far apart too).
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0x6A09E667F3BCC909ull);
  const int num_attrs = rng.NextInt(options.min_attrs, options.max_attrs);
  const AttributeSchema schema = AttributeSchema::Anonymous(num_attrs);
  const int num_queries = rng.NextInt(options.min_queries, options.max_queries);

  Instance instance;
  const double shape = rng.NextDouble();
  if (shape < 0.55) {
    instance.log = PaperShapedLog(schema, num_queries, rng);
  } else if (shape < 0.80) {
    instance.log = DuplicateHeavyLog(schema, num_queries, rng);
  } else {
    instance.log = AdversarialLog(schema, num_queries, rng);
  }

  instance.tuple = DynamicBitset(num_attrs);
  const double tuple_roll = rng.NextDouble();
  if (tuple_roll < 0.05) {
    // Empty tuple: nothing to keep, m_eff = 0.
  } else if (tuple_roll < 0.15) {
    instance.tuple.SetAll();
  } else {
    const double density = 0.3 + 0.6 * rng.NextDouble();
    for (int a = 0; a < num_attrs; ++a) {
      if (rng.NextBernoulli(density)) instance.tuple.Set(a);
    }
  }

  // m occasionally exceeds |t| or even the width: solvers must clamp.
  instance.m = rng.NextInt(0, num_attrs + 2);
  return instance;
}

std::string InstanceToText(const Instance& instance) {
  return "tuple=" + instance.tuple.ToString() + "\nm=" +
         std::to_string(instance.m) + "\n" + instance.log.ToCsv();
}

StatusOr<Instance> InstanceFromText(const std::string& text) {
  const std::size_t first_break = text.find('\n');
  if (first_break == std::string::npos) {
    return InvalidArgumentError("instance text: missing tuple= line");
  }
  const std::size_t second_break = text.find('\n', first_break + 1);
  if (second_break == std::string::npos) {
    return InvalidArgumentError("instance text: missing m= line");
  }
  const std::string tuple_line = text.substr(0, first_break);
  const std::string m_line =
      text.substr(first_break + 1, second_break - first_break - 1);
  if (tuple_line.rfind("tuple=", 0) != 0) {
    return InvalidArgumentError("instance text: first line must be tuple=...");
  }
  if (m_line.rfind("m=", 0) != 0) {
    return InvalidArgumentError("instance text: second line must be m=...");
  }
  const std::string bits = tuple_line.substr(6);
  for (char c : bits) {
    if (c != '0' && c != '1') {
      return InvalidArgumentError("instance text: tuple must be a 0/1 string");
    }
  }
  SOC_ASSIGN_OR_RETURN(const int m, ParseNonNegativeInt(m_line.substr(2)));

  Instance instance;
  SOC_ASSIGN_OR_RETURN(instance.log,
                       QueryLog::FromCsv(text.substr(second_break + 1)));
  instance.tuple = DynamicBitset::FromString(bits);
  instance.m = m;
  if (static_cast<int>(instance.tuple.size()) !=
      instance.log.num_attributes()) {
    return InvalidArgumentError(
        "instance text: tuple width " + std::to_string(instance.tuple.size()) +
        " != log attribute count " +
        std::to_string(instance.log.num_attributes()));
  }
  return instance;
}

std::string InstanceSummary(const Instance& instance) {
  return std::to_string(instance.log.num_attributes()) + " attrs, " +
         std::to_string(instance.log.size()) + " queries, |t|=" +
         std::to_string(instance.tuple.Count()) + ", m=" +
         std::to_string(instance.m);
}

}  // namespace soc::check
