// Deterministic structure-aware fuzzers for the parsing and serving
// surfaces. Each fuzzer derives every input from a 64-bit seed (soc::Rng
// streams, so runs are bit-identical across platforms), generates mostly
// well-formed inputs, then mutates them with a grammar-aware dictionary —
// truncations, byte flips, token splices, duplicated spans.
//
// Crashes are the sanitizers' job: a fuzzer returns OK when every input
// was either accepted or cleanly rejected with an error Status, and an
// error describing the first *invariant* violation otherwise (e.g. an
// accepted input that does not survive a serialize/parse round trip).
//
// The serve fuzzer drives a live VisibilityService from a ThreadPool with
// randomized tuples, budgets, solver names and (often already-expired)
// deadlines, then cross-checks the metrics ledger against the observed
// responses. It is the TSan target in the nightly CI soak.
//
// ReplayCorpusInput feeds one saved input (tests/corpus/<kind>-*.txt) back
// through the matching parser, so past crashers stay fixed.

#ifndef SOC_CHECK_FUZZ_H_
#define SOC_CHECK_FUZZ_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace soc::check {

struct FuzzOptions {
  int iterations = 200;
  std::uint64_t seed = 1;
};

struct FuzzReport {
  int iterations = 0;
  int accepted = 0;  // Inputs the parser accepted.
  int rejected = 0;  // Inputs cleanly rejected with an error Status.
};

// JSONL request lines through serve::ParseSolveRequestLine (and, for
// accepted requests, a ResponseToJson encode smoke).
StatusOr<FuzzReport> FuzzProtocol(const FuzzOptions& options = {});

// JSONL response lines through serve::ParseSolveResponseLine; accepted
// lines must round-trip ResponseToJson -> ParseSolveResponseLine with an
// identical re-encoding (covers the kOverloaded retry_after_ms /
// shed_reason guidance fields).
StatusOr<FuzzReport> FuzzResponseProtocol(const FuzzOptions& options = {});

// Query-log CSV through QueryLog::FromCsv; accepted logs must round-trip
// ToCsv -> FromCsv with identical shape.
StatusOr<FuzzReport> FuzzQueryLogCsv(const FuzzOptions& options = {});

// Serialized instances through InstanceFromText; accepted instances must
// round-trip InstanceToText -> InstanceFromText bit-identically.
StatusOr<FuzzReport> FuzzInstanceText(const FuzzOptions& options = {});

// Wide-event JSONL lines through obs::ParseWideEventLine; accepted
// lines must reach a fixed point after one canonical re-encode
// (encode(parse(line)) re-parses to an identical re-encoding), the
// contract --events-out readers depend on.
StatusOr<FuzzReport> FuzzWideEvent(const FuzzOptions& options = {});

struct ServeFuzzOptions {
  int requests = 200;
  std::uint64_t seed = 1;
  int num_workers = 4;
  int submitter_threads = 4;
  std::size_t max_queue = 8;  // Small on purpose: exercise load-shedding.
};

// Concurrent request storm against a VisibilityService; checks that every
// future resolves, responses echo ids and carry valid solutions, and the
// metrics ledger balances (submitted == accepted + rejections, ...).
Status FuzzServe(const ServeFuzzOptions& options = {});

// Service-level chaos storm: FuzzServe's request mix plus injected
// faults (solver errors through the worker hook), slow workers, hard
// stalls past the watchdog wall, an always-faulting solver tier and
// bursty arrivals. On top of the response/ledger audits it checks that
// every kOverloaded response names a shed_reason, that the overload
// ledger balances exactly (accepted + queue_full + predictive sheds +
// invalid == submitted; completed + errors + expired + shutdown ==
// accepted), and that injected faults tripped the faulty tier's breaker.
struct ChaosServeOptions {
  int requests = 300;
  std::uint64_t seed = 1;
  int num_workers = 4;
  int submitter_threads = 4;
  std::size_t max_queue = 16;
  // Injection rates, applied per request on the worker thread.
  double fault_rate = 0.10;  // Hook returns an error (solver fault).
  double slow_ms = 2;        // Slow-worker injection: sleep this long...
  double slow_rate = 0.15;   // ...at this rate.
  double stall_rate = 0.03;  // Hard stall past the watchdog wall.
  double stall_ms = 60;      // Stall duration (>= watchdog wall budget).
  // Burst arrivals: each submitter pauses between bursts of this size.
  int burst_size = 24;
  double burst_pause_ms = 1;
  // Every request with this solver faults via the hook; "" disables. The
  // audit then requires the tier's breaker to have tripped.
  std::string faulty_solver = "ILP";
};
Status FuzzServeChaos(const ChaosServeOptions& options = {});

// Multi-tenant chaos storm against a ShardedService: rotating tenants
// with Zipf-ish repeated tuples (so the result cache engages), hostile
// requests (wrong widths, unknown tenants/solvers, expired deadlines),
// injected solver faults, and mid-storm PublishEpoch catalog swaps.
//
// Audits, on top of the single-tenant chaos checks:
//  * zero stale results — every OK response's objective recounts exactly
//    against the query log of the epoch it reports, and that epoch is
//    never older than the tenant's published epoch observed before the
//    request was submitted;
//  * per-tenant ledger — for every tenant,
//      accepted == completed + solve_errors + rejected_expired
//                + rejected_shutdown,
//    and the per-tenant accepted counters sum to the service total;
//  * cache determinism — after the storm, an identical back-to-back
//    resubmission per tenant is answered from the cache with the same
//    objective;
//  * observability — every request the storm submitted became exactly
//    one wide event (recorded + ring drops == submitted) and every
//    drained event re-parses canonically; the SLO engine's per-tenant
//    good/bad ledgers match the counts recomputed from the responses,
//    hot tenants (impossible latency threshold) alert and cold tenants
//    (whose 0.5 target caps burn at the alert threshold) never do.
struct MultiTenantChaosOptions {
  int requests = 400;
  std::uint64_t seed = 1;
  int num_shards = 3;
  int num_tenants = 6;
  int num_workers = 2;  // Per shard.
  int submitter_threads = 4;
  std::size_t max_queue = 64;
  std::size_t result_cache_capacity = 512;
  // One PublishEpoch (rotating through tenants) every this many planned
  // requests; 0 disables publishes.
  int publish_every = 40;
  // Worker-hook injection, as in ChaosServeOptions.
  double fault_rate = 0.05;
  double slow_ms = 1;
  double slow_rate = 0.10;
};
Status FuzzMultiTenantChaos(const MultiTenantChaosOptions& options = {});

// Replays one corpus input. `kind` is "protocol", "response", "csv",
// "instance" or "event" (the corpus file name prefix).
Status ReplayCorpusInput(const std::string& kind, const std::string& payload);

}  // namespace soc::check

#endif  // SOC_CHECK_FUZZ_H_
