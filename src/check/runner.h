// The property-trial driver behind socvis_check and the check tests: runs
// N seeded generator trials, checks the full property catalog against each
// requested solver, and greedily shrinks the first failing instance per
// (solver, property) pair before reporting it with a copy-pasteable repro.

#ifndef SOC_CHECK_RUNNER_H_
#define SOC_CHECK_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/instance.h"
#include "check/shrink.h"
#include "common/json_writer.h"
#include "core/solver.h"

namespace soc::check {

struct TrialOptions {
  int trials = 100;
  std::uint64_t seed = 1;  // Trial i uses generator seed `seed + i`.
  GeneratorOptions generator;
  // Registry solver names to exercise; empty = PropertyCheckedSolvers().
  std::vector<std::string> solvers;
  // Stop after this many shrunken failures (shrinking re-solves a lot;
  // one minimized repro per defect is what a human wants anyway).
  int max_failures = 1;
};

struct PropertyFailure {
  std::string solver;
  std::string property;
  std::string message;      // Violation on the *shrunken* instance.
  std::uint64_t seed = 0;   // Generator seed of the originating trial.
  Instance shrunken;
  ShrinkStats shrink_stats;
};

struct TrialReport {
  int trials = 0;
  int checks = 0;  // (instance, solver, property) triples evaluated.
  std::vector<PropertyFailure> failures;

  bool ok() const { return failures.empty(); }
};

// Runs the catalog against registry solvers resolved by name.
TrialReport RunTrials(const TrialOptions& options);

// Same harness against one externally supplied solver — how the tests
// prove the pipeline catches (and shrinks) a deliberately broken solver.
TrialReport RunTrialsOnSolver(const SocSolver& solver,
                              const TrialOptions& options);

// Re-checks one serialized instance (see InstanceToText) against the
// requested solvers; used by `socvis_check --replay=FILE`.
Status ReplayInstance(const Instance& instance,
                      const std::vector<std::string>& solvers);

// Multi-line human report: property, solver, shrink stats, the minimized
// instance and a `socvis_check --seed=... --trials=1` repro command.
std::string FailureToText(const PropertyFailure& failure);
JsonValue FailureToJson(const PropertyFailure& failure);

}  // namespace soc::check

#endif  // SOC_CHECK_RUNNER_H_
