// Text databases (Sec II.B / Sec V): documents are bags of words, queries
// are keyword sets, retrieval is top-k under BM25 [Robertson & Walker,
// SIGIR'94]. Viewing each distinct keyword as a Boolean attribute maps the
// keyword-selection problem for a new classified ad onto SOC: the attribute
// universe is enormous, so (as the paper argues in Sec V) only the greedy
// approaches are feasible, and they run on a sparse representation here.

#ifndef SOC_TEXT_TEXT_H_
#define SOC_TEXT_TEXT_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace soc::text {

// Lowercases and splits on non-alphanumeric characters; drops empty tokens
// and a small English stopword list.
std::vector<std::string> Tokenize(const std::string& raw);

// Interns strings to dense term ids.
class Vocabulary {
 public:
  // Returns the term's id, creating one if needed.
  int Intern(const std::string& term);
  // Returns the term's id or -1.
  int Find(const std::string& term) const;
  const std::string& term(int id) const { return terms_.at(id); }
  int size() const { return static_cast<int>(terms_.size()); }

 private:
  std::unordered_map<std::string, int> index_;
  std::vector<std::string> terms_;
};

struct Bm25Options {
  double k1 = 1.2;
  double b = 0.75;
};

struct ScoredDocument {
  int doc = 0;
  double score = 0.0;
};

// An inverted index with BM25 scoring over interned term ids.
class TextIndex {
 public:
  explicit TextIndex(Bm25Options options = {}) : options_(options) {}

  // Adds a document given its raw text; returns its id.
  int AddDocument(const std::string& raw_text, Vocabulary& vocab);
  // Adds a document given term ids (duplicates = term frequency).
  int AddDocumentTerms(const std::vector<int>& term_ids);

  int num_documents() const { return static_cast<int>(doc_lengths_.size()); }
  int document_length(int doc) const { return doc_lengths_.at(doc); }
  double average_document_length() const;

  // Number of documents containing the term.
  int DocumentFrequency(int term) const;

  // BM25 idf; nonnegative (the +1 variant).
  double Idf(int term) const;

  // BM25 score of document `doc` for the query terms (a set; duplicates
  // are ignored).
  double Score(const std::vector<int>& query_terms, int doc) const;

  // BM25 score a *hypothetical* document (term -> tf) would get; its length
  // is the sum of tfs. Used to rank a not-yet-inserted ad.
  double ScoreVirtual(const std::vector<int>& query_terms,
                      const std::unordered_map<int, int>& virtual_doc) const;

  // BM25 score of a hypothetical ad of `ad_length` total terms containing
  // each query term exactly once. Because every kept keyword has tf = 1,
  // this depends only on the ad's length — the key property that makes
  // keyword selection under top-k retrieval reducible to the conjunctive
  // problem (cf. the global-scoring reduction of Sec V).
  double ScoreHypotheticalAd(const std::vector<int>& query_terms,
                             int ad_length) const;

  // Top-k documents for the query, highest score first; ties broken by
  // ascending doc id. Documents scoring 0 are not returned.
  std::vector<ScoredDocument> TopK(const std::vector<int>& query_terms,
                                   int k) const;

 private:
  struct Posting {
    int doc;
    int term_frequency;
  };

  double ScoreTerm(int term, int term_frequency, int doc_length) const;

  Bm25Options options_;
  std::vector<int> doc_lengths_;
  std::unordered_map<int, std::vector<Posting>> postings_;
  long long total_length_ = 0;
};

}  // namespace soc::text

#endif  // SOC_TEXT_TEXT_H_
