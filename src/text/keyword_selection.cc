#include "text/keyword_selection.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace soc::text {

namespace {

std::unordered_set<int> ToSet(const std::vector<int>& terms) {
  return std::unordered_set<int>(terms.begin(), terms.end());
}

// Query-log frequency of each term.
std::unordered_map<int, int> TermFrequencies(
    const std::vector<SparseQuery>& queries) {
  std::unordered_map<int, int> freq;
  for (const SparseQuery& q : queries) {
    for (int term : q) ++freq[term];
  }
  return freq;
}

int FrequencyOf(const std::unordered_map<int, int>& freq, int term) {
  const auto it = freq.find(term);
  return it == freq.end() ? 0 : it->second;
}

}  // namespace

int CountSatisfiedConjunctive(const std::vector<SparseQuery>& queries,
                              const std::vector<int>& selected) {
  const std::unordered_set<int> chosen = ToSet(selected);
  int count = 0;
  for (const SparseQuery& q : queries) {
    bool all = true;
    for (int term : q) {
      if (!chosen.contains(term)) {
        all = false;
        break;
      }
    }
    if (all) ++count;
  }
  return count;
}

int CountSatisfiedDisjunctive(const std::vector<SparseQuery>& queries,
                              const std::vector<int>& selected) {
  const std::unordered_set<int> chosen = ToSet(selected);
  int count = 0;
  for (const SparseQuery& q : queries) {
    for (int term : q) {
      if (chosen.contains(term)) {
        ++count;
        break;
      }
    }
  }
  return count;
}

std::vector<int> SelectKeywordsConsumeAttr(
    const std::vector<SparseQuery>& queries,
    const std::vector<int>& candidates, int m) {
  const std::unordered_map<int, int> freq = TermFrequencies(queries);
  std::vector<int> sorted = candidates;
  std::sort(sorted.begin(), sorted.end(), [&freq](int a, int b) {
    const int fa = FrequencyOf(freq, a);
    const int fb = FrequencyOf(freq, b);
    if (fa != fb) return fa > fb;
    return a < b;
  });
  if (static_cast<int>(sorted.size()) > m) sorted.resize(std::max(m, 0));
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::vector<int> SelectKeywordsConsumeAttrCumul(
    const std::vector<SparseQuery>& queries,
    const std::vector<int>& candidates, int m) {
  const std::unordered_map<int, int> freq = TermFrequencies(queries);
  std::vector<int> remaining = candidates;
  std::sort(remaining.begin(), remaining.end());
  std::vector<int> selected;

  while (static_cast<int>(selected.size()) < m && !remaining.empty()) {
    int best_term = -1;
    int best_joint = -1;
    int best_freq = -1;
    for (int term : remaining) {
      // Queries containing all selected terms plus `term`.
      int joint = 0;
      for (const SparseQuery& q : queries) {
        const std::unordered_set<int> q_set = ToSet(q);
        bool contains_all = q_set.contains(term);
        for (int s : selected) {
          if (!contains_all) break;
          contains_all = q_set.contains(s);
        }
        if (contains_all) ++joint;
      }
      const int f = FrequencyOf(freq, term);
      if (joint > best_joint || (joint == best_joint && f > best_freq)) {
        best_term = term;
        best_joint = joint;
        best_freq = f;
      }
    }
    if (best_joint == 0) {
      // Fall back to plain frequency for the remaining picks.
      std::sort(remaining.begin(), remaining.end(), [&freq](int a, int b) {
        const int fa = FrequencyOf(freq, a);
        const int fb = FrequencyOf(freq, b);
        if (fa != fb) return fa > fb;
        return a < b;
      });
      for (int term : remaining) {
        if (static_cast<int>(selected.size()) >= m) break;
        selected.push_back(term);
      }
      break;
    }
    selected.push_back(best_term);
    remaining.erase(std::find(remaining.begin(), remaining.end(), best_term));
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

std::vector<int> SelectKeywordsConsumeQueries(
    const std::vector<SparseQuery>& queries,
    const std::vector<int>& candidates, int m) {
  const std::unordered_set<int> candidate_set = ToSet(candidates);
  // Only queries made entirely of candidate keywords can ever be
  // satisfied by the ad.
  std::vector<const SparseQuery*> coverable;
  for (const SparseQuery& q : queries) {
    bool ok = !q.empty();
    for (int term : q) {
      if (!candidate_set.contains(term)) {
        ok = false;
        break;
      }
    }
    if (ok) coverable.push_back(&q);
  }

  std::unordered_set<int> selected;
  std::vector<bool> used(coverable.size(), false);
  while (static_cast<int>(selected.size()) < m) {
    int best = -1;
    std::size_t best_new = static_cast<std::size_t>(-1);
    const std::size_t slack = m - selected.size();
    for (std::size_t i = 0; i < coverable.size(); ++i) {
      if (used[i]) continue;
      std::size_t added = 0;
      for (int term : *coverable[i]) {
        added += !selected.contains(term);
      }
      if (added > slack) continue;
      if (added < best_new) {
        best_new = added;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    used[best] = true;
    for (int term : *coverable[best]) selected.insert(term);
  }

  // Fill leftover budget by query-log frequency.
  std::vector<int> result(selected.begin(), selected.end());
  if (static_cast<int>(result.size()) < m) {
    const std::unordered_map<int, int> freq = TermFrequencies(queries);
    std::vector<int> spare;
    for (int term : candidates) {
      if (!selected.contains(term)) spare.push_back(term);
    }
    std::sort(spare.begin(), spare.end(), [&freq](int a, int b) {
      const int fa = FrequencyOf(freq, a);
      const int fb = FrequencyOf(freq, b);
      if (fa != fb) return fa > fb;
      return a < b;
    });
    for (int term : spare) {
      if (static_cast<int>(result.size()) >= m) break;
      result.push_back(term);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<int> SelectKeywordsMaxCoverage(
    const std::vector<SparseQuery>& queries,
    const std::vector<int>& candidates, int m) {
  std::vector<bool> covered(queries.size(), false);
  std::vector<int> remaining = candidates;
  std::sort(remaining.begin(), remaining.end());
  std::vector<int> selected;
  while (static_cast<int>(selected.size()) < m && !remaining.empty()) {
    int best_term = -1;
    int best_gain = 0;
    for (int term : remaining) {
      int gain = 0;
      for (std::size_t i = 0; i < queries.size(); ++i) {
        if (covered[i]) continue;
        if (std::find(queries[i].begin(), queries[i].end(), term) !=
            queries[i].end()) {
          ++gain;
        }
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_term = term;
      }
    }
    if (best_term < 0) break;
    selected.push_back(best_term);
    remaining.erase(std::find(remaining.begin(), remaining.end(), best_term));
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (covered[i]) continue;
      if (std::find(queries[i].begin(), queries[i].end(), best_term) !=
          queries[i].end()) {
        covered[i] = true;
      }
    }
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

int CountTopkSatisfied(const TextIndex& index,
                       const std::vector<SparseQuery>& queries,
                       const std::vector<int>& selected, int k) {
  SOC_CHECK_GT(k, 0);
  const std::unordered_set<int> chosen = ToSet(selected);
  std::unordered_map<int, int> virtual_doc;
  for (int term : chosen) virtual_doc[term] = 1;

  int count = 0;
  for (const SparseQuery& q : queries) {
    bool contains_all = true;
    for (int term : q) {
      if (!chosen.contains(term)) {
        contains_all = false;
        break;
      }
    }
    if (!contains_all) continue;
    const double ad_score = index.ScoreVirtual(q, virtual_doc);
    if (ad_score <= 0.0) continue;
    // Pessimistic tie-break: existing documents with score >= ad_score
    // rank above the ad.
    const std::vector<ScoredDocument> top = index.TopK(q, k);
    int better = 0;
    for (const ScoredDocument& d : top) {
      if (d.score >= ad_score) ++better;
    }
    if (better < k) ++count;
  }
  return count;
}

TopkKeywordResult SelectKeywordsTopkBm25(
    const TextIndex& index, const std::vector<SparseQuery>& queries,
    const std::vector<int>& candidates, int m, int k) {
  SOC_CHECK_GT(k, 0);
  const int m_eff = std::min<int>(m, static_cast<int>(candidates.size()));

  // Reduction to the conjunctive problem: with every kept keyword at tf=1
  // the ad's BM25 score for query q depends only on the ad length m_eff,
  // so whether q is *winnable* (ad would enter the top-k, pessimistic
  // ties) is selection-independent and can be decided up front.
  const std::unordered_set<int> candidate_set = ToSet(candidates);
  std::vector<SparseQuery> winnable;
  for (const SparseQuery& q : queries) {
    bool coverable = true;
    for (int term : q) {
      if (!candidate_set.contains(term)) {
        coverable = false;
        break;
      }
    }
    if (!coverable) continue;
    const double ad_score = index.ScoreHypotheticalAd(q, m_eff);
    if (ad_score <= 0.0) continue;
    const std::vector<ScoredDocument> top = index.TopK(q, k);
    int better = 0;
    for (const ScoredDocument& d : top) {
      if (d.score >= ad_score) ++better;
    }
    if (better < k) winnable.push_back(q);
  }

  // Conjunctive keyword selection over the winnable queries; try both
  // greedy flavors and keep the better one under the true objective.
  TopkKeywordResult result;
  const std::vector<int> cumul =
      SelectKeywordsConsumeAttrCumul(winnable, candidates, m_eff);
  const std::vector<int> plain =
      SelectKeywordsConsumeAttr(winnable, candidates, m_eff);
  const int cumul_satisfied = CountTopkSatisfied(index, queries, cumul, k);
  const int plain_satisfied = CountTopkSatisfied(index, queries, plain, k);
  if (cumul_satisfied >= plain_satisfied) {
    result.selected = cumul;
    result.satisfied_queries = cumul_satisfied;
  } else {
    result.selected = plain;
    result.satisfied_queries = plain_satisfied;
  }
  return result;
}

}  // namespace soc::text
