// Keyword selection for a new classified ad (Sec II.B / Sec V): from the
// candidate keywords describing the ad, pick m that maximize its
// visibility against a keyword-query log. The keyword universe is huge, so
// everything here runs on sparse term-id sets (no M-wide bitsets); per the
// paper, greedy algorithms are the only feasible approach at this scale.

#ifndef SOC_TEXT_KEYWORD_SELECTION_H_
#define SOC_TEXT_KEYWORD_SELECTION_H_

#include <vector>

#include "common/status.h"
#include "text/text.h"

namespace soc::text {

// A keyword query: distinct term ids.
using SparseQuery = std::vector<int>;

// Conjunctive objective: queries entirely contained in `selected`.
int CountSatisfiedConjunctive(const std::vector<SparseQuery>& queries,
                              const std::vector<int>& selected);

// Disjunctive objective: queries sharing at least one term with `selected`.
int CountSatisfiedDisjunctive(const std::vector<SparseQuery>& queries,
                              const std::vector<int>& selected);

// Sparse ConsumeAttr: the m candidate keywords occurring most often in the
// query log (ties: smaller term id).
std::vector<int> SelectKeywordsConsumeAttr(
    const std::vector<SparseQuery>& queries,
    const std::vector<int>& candidates, int m);

// Sparse ConsumeAttrCumul: grows the selection by the keyword co-occurring
// most often with everything selected so far; falls back to individual
// frequency when the joint count reaches zero.
std::vector<int> SelectKeywordsConsumeAttrCumul(
    const std::vector<SparseQuery>& queries,
    const std::vector<int>& candidates, int m);

// Sparse ConsumeQueries: repeatedly absorbs the coverable query (all of
// whose keywords are candidates) introducing the fewest new keywords, if
// it fits the remaining budget; leftovers are filled by frequency.
std::vector<int> SelectKeywordsConsumeQueries(
    const std::vector<SparseQuery>& queries,
    const std::vector<int>& candidates, int m);

// Disjunctive max-coverage greedy ((1 - 1/e)-approximate).
std::vector<int> SelectKeywordsMaxCoverage(
    const std::vector<SparseQuery>& queries,
    const std::vector<int>& candidates, int m);

// SOC-Topk for text: picks m keywords so that the hypothetical ad (one
// occurrence of each selected keyword) enters the BM25 top-k of as many
// log queries as possible. Since every kept keyword has tf = 1, the ad's
// score for a query depends only on the ad length, so winnability is
// selection-independent: the problem reduces to conjunctive keyword
// selection over the winnable queries (the text analogue of the paper's
// global-scoring reduction), solved greedily. `index` holds the competing
// ads.
struct TopkKeywordResult {
  std::vector<int> selected;
  int satisfied_queries = 0;
};

TopkKeywordResult SelectKeywordsTopkBm25(
    const TextIndex& index, const std::vector<SparseQuery>& queries,
    const std::vector<int>& candidates, int m, int k);

// Number of queries whose BM25 top-k would include the hypothetical ad
// made of `selected` (each keyword once). The ad must both contain every
// query keyword (conjunctive containment, as in SOC-CB-QL) and beat the
// k-th existing document's score; ties go to existing documents.
int CountTopkSatisfied(const TextIndex& index,
                       const std::vector<SparseQuery>& queries,
                       const std::vector<int>& selected, int k);

}  // namespace soc::text

#endif  // SOC_TEXT_KEYWORD_SELECTION_H_
