#include "text/text.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace soc::text {

namespace {

const std::unordered_set<std::string>& Stopwords() {
  static const auto& stopwords = *new std::unordered_set<std::string>{
      "a",   "an",  "and", "are", "as",   "at",   "be",   "by",  "for",
      "from", "has", "he",  "in",  "is",   "it",   "its",  "of",  "on",
      "or",  "that", "the", "to",  "was",  "were", "will", "with"};
  return stopwords;
}

}  // namespace

std::vector<std::string> Tokenize(const std::string& raw) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : raw) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      if (!Stopwords().contains(current)) tokens.push_back(current);
      current.clear();
    }
  }
  if (!current.empty() && !Stopwords().contains(current)) {
    tokens.push_back(current);
  }
  return tokens;
}

int Vocabulary::Intern(const std::string& term) {
  const auto [it, inserted] =
      index_.emplace(term, static_cast<int>(terms_.size()));
  if (inserted) terms_.push_back(term);
  return it->second;
}

int Vocabulary::Find(const std::string& term) const {
  const auto it = index_.find(term);
  return it == index_.end() ? -1 : it->second;
}

int TextIndex::AddDocument(const std::string& raw_text, Vocabulary& vocab) {
  std::vector<int> term_ids;
  for (const std::string& token : Tokenize(raw_text)) {
    term_ids.push_back(vocab.Intern(token));
  }
  return AddDocumentTerms(term_ids);
}

int TextIndex::AddDocumentTerms(const std::vector<int>& term_ids) {
  const int doc = num_documents();
  std::unordered_map<int, int> counts;
  for (int term : term_ids) {
    SOC_CHECK_GE(term, 0);
    ++counts[term];
  }
  for (const auto& [term, tf] : counts) {
    postings_[term].push_back({doc, tf});
  }
  doc_lengths_.push_back(static_cast<int>(term_ids.size()));
  total_length_ += static_cast<long long>(term_ids.size());
  return doc;
}

double TextIndex::average_document_length() const {
  if (doc_lengths_.empty()) return 0.0;
  return static_cast<double>(total_length_) / doc_lengths_.size();
}

int TextIndex::DocumentFrequency(int term) const {
  const auto it = postings_.find(term);
  return it == postings_.end() ? 0 : static_cast<int>(it->second.size());
}

double TextIndex::Idf(int term) const {
  const double n = num_documents();
  const double df = DocumentFrequency(term);
  return std::log((n - df + 0.5) / (df + 0.5) + 1.0);
}

double TextIndex::ScoreTerm(int term, int term_frequency,
                            int doc_length) const {
  if (term_frequency <= 0) return 0.0;
  const double avgdl = std::max(average_document_length(), 1e-9);
  const double tf = term_frequency;
  const double denom =
      tf + options_.k1 * (1.0 - options_.b + options_.b * doc_length / avgdl);
  return Idf(term) * tf * (options_.k1 + 1.0) / denom;
}

double TextIndex::Score(const std::vector<int>& query_terms, int doc) const {
  std::unordered_set<int> distinct(query_terms.begin(), query_terms.end());
  double score = 0.0;
  for (int term : distinct) {
    const auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    for (const Posting& posting : it->second) {
      if (posting.doc == doc) {
        score += ScoreTerm(term, posting.term_frequency, doc_lengths_[doc]);
        break;
      }
    }
  }
  return score;
}

double TextIndex::ScoreVirtual(
    const std::vector<int>& query_terms,
    const std::unordered_map<int, int>& virtual_doc) const {
  int length = 0;
  for (const auto& [term, tf] : virtual_doc) length += tf;
  std::unordered_set<int> distinct(query_terms.begin(), query_terms.end());
  double score = 0.0;
  for (int term : distinct) {
    const auto it = virtual_doc.find(term);
    if (it != virtual_doc.end()) {
      score += ScoreTerm(term, it->second, length);
    }
  }
  return score;
}

double TextIndex::ScoreHypotheticalAd(const std::vector<int>& query_terms,
                                      int ad_length) const {
  std::unordered_set<int> distinct(query_terms.begin(), query_terms.end());
  double score = 0.0;
  for (int term : distinct) {
    score += ScoreTerm(term, 1, ad_length);
  }
  return score;
}

std::vector<ScoredDocument> TextIndex::TopK(
    const std::vector<int>& query_terms, int k) const {
  SOC_CHECK_GE(k, 0);
  std::unordered_map<int, double> scores;
  std::unordered_set<int> distinct(query_terms.begin(), query_terms.end());
  for (int term : distinct) {
    const auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    for (const Posting& posting : it->second) {
      scores[posting.doc] +=
          ScoreTerm(term, posting.term_frequency, doc_lengths_[posting.doc]);
    }
  }
  std::vector<ScoredDocument> ranked;
  ranked.reserve(scores.size());
  for (const auto& [doc, score] : scores) {
    if (score > 0.0) ranked.push_back({doc, score});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ScoredDocument& a, const ScoredDocument& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (static_cast<int>(ranked.size()) > k) ranked.resize(k);
  return ranked;
}

}  // namespace soc::text
