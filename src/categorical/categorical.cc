#include "categorical/categorical.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace soc::categorical {

StatusOr<CategoricalSchema> CategoricalSchema::Create(
    std::vector<std::string> attribute_names,
    std::vector<std::vector<std::string>> domains) {
  if (attribute_names.size() != domains.size()) {
    return InvalidArgumentError("attribute_names and domains sizes differ");
  }
  std::unordered_set<std::string> seen_names;
  for (const std::string& name : attribute_names) {
    if (!seen_names.insert(name).second) {
      return InvalidArgumentError("duplicate attribute name: " + name);
    }
  }
  for (std::size_t i = 0; i < domains.size(); ++i) {
    if (domains[i].empty()) {
      return InvalidArgumentError("empty domain for attribute " +
                                  attribute_names[i]);
    }
    std::unordered_set<std::string> seen_values;
    for (const std::string& value : domains[i]) {
      if (!seen_values.insert(value).second) {
        return InvalidArgumentError("duplicate value '" + value +
                                    "' in domain of " + attribute_names[i]);
      }
    }
  }
  CategoricalSchema schema;
  schema.names_ = std::move(attribute_names);
  schema.domains_ = std::move(domains);
  return schema;
}

int CategoricalSchema::ValueIndex(int attr, const std::string& value) const {
  const std::vector<std::string>& domain = domains_.at(attr);
  const auto it = std::find(domain.begin(), domain.end(), value);
  return it == domain.end() ? -1 : static_cast<int>(it - domain.begin());
}

Status CategoricalTable::AddRow(CategoricalTuple row) {
  if (static_cast<int>(row.size()) != schema_.num_attributes()) {
    return InvalidArgumentError("row width mismatch");
  }
  for (int a = 0; a < schema_.num_attributes(); ++a) {
    if (row[a] < 0 || row[a] >= schema_.domain_size(a)) {
      return OutOfRangeError(StrFormat("value index %d out of range for %s",
                                       row[a],
                                       schema_.attribute_name(a).c_str()));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

bool QueryMatchesTuple(const CategoricalQuery& query,
                       const CategoricalTuple& tuple) {
  for (const CategoricalCondition& condition : query) {
    if (tuple.at(condition.attribute) != condition.value) return false;
  }
  return true;
}

StatusOr<CategoricalReduction> ReduceCategoricalToBoolean(
    const CategoricalSchema& schema,
    const std::vector<CategoricalQuery>& queries,
    const CategoricalTuple& tuple) {
  if (static_cast<int>(tuple.size()) != schema.num_attributes()) {
    return InvalidArgumentError("tuple width mismatch");
  }
  std::vector<std::string> names;
  names.reserve(schema.num_attributes());
  for (int a = 0; a < schema.num_attributes(); ++a) {
    names.push_back(schema.attribute_name(a));
  }
  SOC_ASSIGN_OR_RETURN(AttributeSchema boolean_schema,
                       AttributeSchema::Create(std::move(names)));

  CategoricalReduction reduction{QueryLog(std::move(boolean_schema)),
                                 DynamicBitset(schema.num_attributes()), 0};
  reduction.boolean_tuple.SetAll();

  for (const CategoricalQuery& query : queries) {
    for (const CategoricalCondition& condition : query) {
      if (condition.attribute < 0 ||
          condition.attribute >= schema.num_attributes() ||
          condition.value < 0 ||
          condition.value >= schema.domain_size(condition.attribute)) {
        return OutOfRangeError("query condition out of range");
      }
    }
    if (!QueryMatchesTuple(query, tuple)) {
      ++reduction.dropped_queries;
      continue;
    }
    DynamicBitset boolean_query(schema.num_attributes());
    for (const CategoricalCondition& condition : query) {
      boolean_query.Set(condition.attribute);
    }
    reduction.boolean_log.AddQuery(std::move(boolean_query));
  }
  return reduction;
}

StatusOr<CategoricalSolution> SolveCategoricalSoc(
    const SocSolver& base, const CategoricalSchema& schema,
    const std::vector<CategoricalQuery>& queries,
    const CategoricalTuple& tuple, int m) {
  SOC_ASSIGN_OR_RETURN(CategoricalReduction reduction,
                       ReduceCategoricalToBoolean(schema, queries, tuple));
  SOC_ASSIGN_OR_RETURN(
      SocSolution boolean_solution,
      base.Solve(reduction.boolean_log, reduction.boolean_tuple, m));
  CategoricalSolution solution;
  solution.selected_attributes = boolean_solution.selected.SetBits();
  solution.satisfied_queries = boolean_solution.satisfied_queries;
  return solution;
}

BooleanTable OneHotEncode(const CategoricalTable& table) {
  const CategoricalSchema& schema = table.schema();
  std::vector<std::string> names;
  std::vector<int> offsets(schema.num_attributes());
  for (int a = 0; a < schema.num_attributes(); ++a) {
    offsets[a] = static_cast<int>(names.size());
    for (const std::string& value : schema.domain(a)) {
      names.push_back(schema.attribute_name(a) + "=" + value);
    }
  }
  auto boolean_schema = AttributeSchema::Create(std::move(names));
  SOC_CHECK(boolean_schema.ok());
  BooleanTable encoded(std::move(boolean_schema).value());
  for (int r = 0; r < table.num_rows(); ++r) {
    DynamicBitset row(encoded.num_attributes());
    for (int a = 0; a < schema.num_attributes(); ++a) {
      row.Set(offsets[a] + table.row(r)[a]);
    }
    encoded.AddRow(std::move(row));
  }
  return encoded;
}

}  // namespace soc::categorical
