// Categorical databases (Sec II.B / Sec V): each attribute a_i takes one
// value from a finite domain Dom_i; queries specify (attribute = value)
// conditions. Compressing a new tuple means choosing which m attributes to
// advertise (each with its fixed value), so a query is satisfiable iff all
// of its conditions match the tuple's values — and the problem reduces to
// SOC-CB-QL over the original attribute indices ("a straightforward
// generalization of Boolean data", Sec V).

#ifndef SOC_CATEGORICAL_CATEGORICAL_H_
#define SOC_CATEGORICAL_CATEGORICAL_H_

#include <string>
#include <vector>

#include "boolean/query_log.h"
#include "boolean/table.h"
#include "common/status.h"
#include "core/solver.h"

namespace soc::categorical {

// Schema: named attributes with explicit value domains.
class CategoricalSchema {
 public:
  // `domains[i]` lists the allowed values of attribute i (non-empty,
  // unique). Attribute names must be unique.
  static StatusOr<CategoricalSchema> Create(
      std::vector<std::string> attribute_names,
      std::vector<std::vector<std::string>> domains);

  int num_attributes() const { return static_cast<int>(names_.size()); }
  const std::string& attribute_name(int attr) const { return names_.at(attr); }
  const std::vector<std::string>& domain(int attr) const {
    return domains_.at(attr);
  }
  int domain_size(int attr) const {
    return static_cast<int>(domains_.at(attr).size());
  }

  // Index of `value` in attribute `attr`'s domain, or -1.
  int ValueIndex(int attr, const std::string& value) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<std::string>> domains_;
};

// A tuple assigns each attribute one value index into its domain.
using CategoricalTuple = std::vector<int>;

// One (attribute = value-index) condition.
struct CategoricalCondition {
  int attribute = 0;
  int value = 0;
};

using CategoricalQuery = std::vector<CategoricalCondition>;

class CategoricalTable {
 public:
  explicit CategoricalTable(CategoricalSchema schema)
      : schema_(std::move(schema)) {}

  const CategoricalSchema& schema() const { return schema_; }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  const CategoricalTuple& row(int i) const { return rows_.at(i); }

  // Validates value indices against the schema.
  Status AddRow(CategoricalTuple row);

 private:
  CategoricalSchema schema_;
  std::vector<CategoricalTuple> rows_;
};

// True iff every condition of `query` matches `tuple`'s values.
bool QueryMatchesTuple(const CategoricalQuery& query,
                       const CategoricalTuple& tuple);

// The reduction: winnable queries (all conditions match `tuple`) become
// Boolean queries over attribute indices; the Boolean new tuple has every
// attribute set. Boolean schema reuses the categorical attribute names.
struct CategoricalReduction {
  QueryLog boolean_log;
  DynamicBitset boolean_tuple;
  int dropped_queries = 0;  // Unwinnable (value-mismatched) queries.
};

StatusOr<CategoricalReduction> ReduceCategoricalToBoolean(
    const CategoricalSchema& schema,
    const std::vector<CategoricalQuery>& queries,
    const CategoricalTuple& tuple);

// End-to-end: picks the best m attributes of `tuple` to advertise.
struct CategoricalSolution {
  std::vector<int> selected_attributes;  // Ascending attribute ids.
  int satisfied_queries = 0;
};

StatusOr<CategoricalSolution> SolveCategoricalSoc(
    const SocSolver& base, const CategoricalSchema& schema,
    const std::vector<CategoricalQuery>& queries,
    const CategoricalTuple& tuple, int m);

// One-hot encoding of a categorical table: one Boolean attribute per
// (attribute, value) pair, named "<attr>=<value>". Useful for domination
// analysis (SOC-CB-D) over categorical data.
BooleanTable OneHotEncode(const CategoricalTable& table);

}  // namespace soc::categorical

#endif  // SOC_CATEGORICAL_CATEGORICAL_H_
