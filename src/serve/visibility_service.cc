#include "serve/visibility_service.h"

#include <utility>

#include "common/string_util.h"
#include "core/mfi_solver.h"
#include "core/solver_registry.h"

namespace soc::serve {

namespace {

// Metric names, kept in one place so tools and tests agree.
constexpr char kSubmitted[] = "submitted";
constexpr char kAccepted[] = "accepted";
constexpr char kRejectedQueueFull[] = "rejected_queue_full";
constexpr char kRejectedInvalid[] = "rejected_invalid";
constexpr char kRejectedExpired[] = "rejected_expired";
constexpr char kLateFallback[] = "late_fallback";
constexpr char kFastPathZero[] = "fast_path_zero";
constexpr char kCompleted[] = "completed";
constexpr char kDegraded[] = "degraded";
constexpr char kSolveErrors[] = "solve_errors";

}  // namespace

struct VisibilityService::QueuedRequest {
  SolveRequest request;
  std::promise<SolveResponse> promise;
  WallTimer submit_timer;  // Started at Submit.
  Deadline deadline = Deadline::Infinite();
};

VisibilityService::VisibilityService(QueryLog log,
                                     VisibilityServiceOptions options)
    : log_(std::move(log)),
      options_(options),
      cache_(log_, options.mfi_cache_capacity),
      mfi_dfs_solver_([] {
        MfiSocOptions dfs;
        dfs.engine = MfiEngine::kExactDfs;
        return dfs;
      }()),
      pool_(options.num_workers) {
  for (const std::string& name : RegisteredSolverNames()) {
    auto solver = CreateSolverByName(name);
    SOC_CHECK(solver.ok());
    solvers_.emplace(name, std::move(solver).value());
  }
}

VisibilityService::~VisibilityService() {
  // ThreadPool's destructor drains the queue, which resolves every
  // outstanding promise through Finish before members are torn down.
  pool_.Shutdown();
}

std::future<SolveResponse> VisibilityService::Submit(SolveRequest request) {
  metrics_.Increment(kSubmitted);
  if (request.solver.empty()) request.solver = "Fallback";

  auto queued = std::make_shared<QueuedRequest>();
  std::future<SolveResponse> future = queued->promise.get_future();

  const auto reject = [&](Status status) {
    SolveResponse response;
    response.id = request.id;
    response.solver = request.solver;
    response.status = std::move(status);
    queued->promise.set_value(std::move(response));
    return std::move(future);
  };

  // Validation tier: malformed requests never reach the queue.
  if (static_cast<int>(request.tuple.size()) != log_.num_attributes()) {
    metrics_.Increment(kRejectedInvalid);
    return reject(InvalidArgumentError(
        "tuple width " + std::to_string(request.tuple.size()) +
        " != log attribute count " + std::to_string(log_.num_attributes())));
  }
  if (request.m < 0) {
    metrics_.Increment(kRejectedInvalid);
    return reject(InvalidArgumentError("m must be nonnegative"));
  }
  if (request.deadline_ms < 0) {
    metrics_.Increment(kRejectedInvalid);
    return reject(InvalidArgumentError("deadline_ms must be nonnegative"));
  }
  if (solvers_.find(request.solver) == solvers_.end()) {
    metrics_.Increment(kRejectedInvalid);
    return reject(NotFoundError("unknown solver '" + request.solver +
                                "'; valid: " +
                                Join(RegisteredSolverNames(), ", ")));
  }

  // Admission tier: bound the queue, never a worker's time.
  if (options_.max_queue > 0 && pool_.queue_depth() >= options_.max_queue) {
    metrics_.Increment(kRejectedQueueFull);
    return reject(OverloadedError(
        "request queue full (" + std::to_string(options_.max_queue) + ")"));
  }

  double deadline_ms = request.deadline_ms;
  if (deadline_ms == 0) deadline_ms = options_.default_deadline_ms;
  if (deadline_ms > 0) {
    queued->deadline = Deadline::AfterSeconds(deadline_ms / 1000.0);
  }
  queued->request = std::move(request);

  {
    MutexLock lock(inflight_mutex_);
    ++inflight_;
  }
  if (!pool_.Submit([this, queued] { RunRequest(queued); })) {
    // Shutdown raced the submit: resolve as overloaded. Counted only as
    // rejected — a request the pool never took is not "accepted".
    {
      MutexLock lock(inflight_mutex_);
      --inflight_;
    }
    inflight_cv_.NotifyAll();
    metrics_.Increment(kRejectedQueueFull);
    SolveResponse response;
    response.id = queued->request.id;
    response.solver = queued->request.solver;
    response.status = OverloadedError("service shutting down");
    queued->promise.set_value(std::move(response));
    return future;
  }
  metrics_.Increment(kAccepted);
  return future;
}

void VisibilityService::Drain() {
  MutexLock lock(inflight_mutex_);
  while (inflight_ != 0) inflight_cv_.Wait(inflight_mutex_);
}

void VisibilityService::RunRequest(std::shared_ptr<QueuedRequest> queued) {
  SolveResponse response = Execute(*queued);
  Finish(std::move(queued), std::move(response));
}

SolveResponse VisibilityService::Execute(QueuedRequest& queued) {
  const SolveRequest& request = queued.request;
  SolveResponse response;
  response.id = request.id;
  response.solver = request.solver;
  response.queue_ms = queued.submit_timer.ElapsedMillis();
  WallTimer solve_timer;

  SolveContext context(queued.deadline);
  std::string solver_name = request.solver;
  if (queued.deadline.Expired()) {
    // Late at pickup: never start the requested (possibly exact) solver.
    if (options_.reject_expired) {
      metrics_.Increment(kRejectedExpired);
      response.status =
          OverloadedError("deadline expired before a worker was available");
      response.solve_ms = solve_timer.ElapsedMillis();
      return response;
    }
    // Degrade through the portfolio: the expired context stops the exact
    // tier on its first checkpoint and the greedy tier answers.
    solver_name = "Fallback";
    metrics_.Increment(kLateFallback);
  } else if (cache_.MaxSatisfiable(request.tuple, request.m) == 0) {
    // Provably zero-visible: answer from the index without a solver.
    const int m_eff = internal::EffectiveBudget(log_, request.tuple, request.m);
    DynamicBitset selected(log_.num_attributes());
    internal::PadSelection(log_, request.tuple, m_eff, &selected);
    response.solution = internal::FinishSolution(log_, std::move(selected),
                                                 /*proved_optimal=*/true);
    response.fast_path = true;
    metrics_.Increment(kFastPathZero);
    metrics_.Increment(kCompleted);
    metrics_.Increment("solver.none.completed");
    response.solve_ms = solve_timer.ElapsedMillis();
    return response;
  }

  // MFI solvers run against the shared preprocessing cache; everything
  // else solves directly (their per-request state is self-contained).
  StatusOr<SocSolution> solution = [&]() -> StatusOr<SocSolution> {
    if (solver_name == "MaxFreqItemSets") {
      return mfi_walk_solver_.SolveWithIndex(cache_.walk_index(), log_,
                                             request.tuple, request.m,
                                             &context);
    }
    if (solver_name == "MaxFreqItemSets-dfs") {
      return mfi_dfs_solver_.SolveWithIndex(cache_.dfs_index(), log_,
                                            request.tuple, request.m,
                                            &context);
    }
    const auto it = solvers_.find(solver_name);
    SOC_CHECK(it != solvers_.end());
    return it->second->SolveWithContext(log_, request.tuple, request.m,
                                        &context);
  }();
  response.solve_ms = solve_timer.ElapsedMillis();
  response.solver = solver_name;

  if (!solution.ok()) {
    response.status = solution.status();
    metrics_.Increment(kSolveErrors);
    metrics_.Increment("solver." + solver_name + ".errors");
    return response;
  }
  response.solution = std::move(solution).value();
  response.degraded = IsDegraded(response.solution);
  response.stop_reason = SolutionStopReason(response.solution);
  metrics_.Increment(kCompleted);
  metrics_.Increment("solver." + solver_name + ".completed");
  if (response.degraded) {
    metrics_.Increment(kDegraded);
    metrics_.Increment("solver." + solver_name + ".degraded");
  }
  return response;
}

void VisibilityService::Finish(std::shared_ptr<QueuedRequest> queued,
                               SolveResponse response) {
  metrics_.RecordLatency("queue", response.queue_ms);
  metrics_.RecordLatency("solve", response.solve_ms);
  metrics_.RecordLatency("total", response.queue_ms + response.solve_ms);
  queued->promise.set_value(std::move(response));
  {
    MutexLock lock(inflight_mutex_);
    --inflight_;
  }
  inflight_cv_.NotifyAll();
}

MetricsSnapshot VisibilityService::Metrics() const {
  MetricsSnapshot snapshot = metrics_.Snapshot();
  const CacheStats stats = cache_.mfi_stats();
  snapshot.counters["mfi_cache.hits"] = stats.hits;
  snapshot.counters["mfi_cache.misses"] = stats.misses;
  snapshot.counters["mfi_cache.evictions"] = stats.evictions;
  return snapshot;
}

}  // namespace soc::serve
