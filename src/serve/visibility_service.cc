#include "serve/visibility_service.h"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "core/mfi_solver.h"
#include "core/solver_registry.h"
#include "obs/context_tracer.h"
#include "serve/event_builder.h"

namespace soc::serve {

namespace {

// Metric names, kept in one place so tools and tests agree.
constexpr char kSubmitted[] = "submitted";
constexpr char kAccepted[] = "accepted";
constexpr char kRejectedQueueFull[] = "rejected_queue_full";
constexpr char kRejectedInvalid[] = "rejected_invalid";
constexpr char kRejectedExpired[] = "rejected_expired";
constexpr char kRejectedShutdown[] = "rejected_shutdown";
constexpr char kShedPredicted[] = "shed_predicted";
constexpr char kLateFallback[] = "late_fallback";
constexpr char kFastPathZero[] = "fast_path_zero";
constexpr char kCompleted[] = "completed";
constexpr char kDegraded[] = "degraded";
constexpr char kSolveErrors[] = "solve_errors";
constexpr char kBreakerRerouted[] = "breaker_rerouted";
constexpr char kLadderDowngraded[] = "ladder_downgraded";

// The log's collapse ratio (distinct / total queries): the weighted-
// instance compression statistic, fed to the cost model as a static
// feature — heavily repeated logs solve faster than their raw |Q|
// suggests.
CostFeatures FeaturesFromLog(const QueryLog& log) {
  CostFeatures features;
  features.num_queries = log.size();
  features.num_attributes = log.num_attributes();
  if (!log.empty()) {
    std::unordered_set<std::string> distinct;
    distinct.reserve(log.size());
    for (const DynamicBitset& query : log.queries()) {
      distinct.insert(query.ToString());
    }
    features.collapse_ratio =
        static_cast<double>(distinct.size()) / log.size();
  }
  return features;
}

}  // namespace

struct VisibilityService::QueuedRequest {
  SolveRequest request;
  std::promise<SolveResponse> promise;
  WallTimer submit_timer;  // Started at Submit.
  Deadline deadline = Deadline::Infinite();
  double effective_deadline_ms = 0;  // After the default applied; 0 = none.
  double predicted_ms = 0;           // Cost-model charge, settled at finish.
  // Recorder time at Submit, when tracing was live then; 0 otherwise.
  // Anchors the queue_wait and request spans emitted at pickup/finish.
  std::int64_t submit_ns = 0;
};

VisibilityService::VisibilityService(QueryLog log,
                                     VisibilityServiceOptions options)
    : log_(std::move(log)),
      options_(options),
      cache_(log_, options.mfi_cache_capacity),
      mfi_dfs_solver_([] {
        MfiSocOptions dfs;
        dfs.engine = MfiEngine::kExactDfs;
        return dfs;
      }()),
      cost_model_(FeaturesFromLog(log_), options.num_workers,
                  options.cost_model),
      breakers_(RegisteredSolverNames(), options.breaker),
      ladder_(options.ladder),
      watchdog_(options.watchdog, &metrics_, options.trace_recorder),
      pool_(options.num_workers) {
  for (const std::string& name : RegisteredSolverNames()) {
    auto solver = CreateSolverByName(name);
    SOC_CHECK(solver.ok());
    solvers_.emplace(name, std::move(solver).value());
  }
}

VisibilityService::~VisibilityService() {
  // ThreadPool's destructor drains the queue, which resolves every
  // outstanding promise through Finish before members are torn down.
  pool_.Shutdown();
}

std::size_t VisibilityService::QueueSize() const {
  MutexLock lock(queue_mutex_);
  return edf_queue_.size();
}

std::future<SolveResponse> VisibilityService::Submit(SolveRequest request) {
  // Covers validation + admission on the submitting thread; the worker-side
  // spans (queue_wait onward) anchor to submit_ns below.
  obs::TraceSpan admission(options_.trace_recorder, "admission", "serve");
  if (admission.active()) {
    admission.AddArg(obs::TraceArg::Str("id", request.id));
  }
  metrics_.Increment(kSubmitted);
  if (request.solver.empty()) request.solver = "Fallback";

  auto queued = std::make_shared<QueuedRequest>();
  std::future<SolveResponse> future = queued->promise.get_future();

  const auto reject = [&](Status status, const char* shed_reason = nullptr,
                          double retry_after_ms = 0) {
    SolveResponse response;
    response.id = request.id;
    response.solver = request.solver;
    response.status = std::move(status);
    if (shed_reason != nullptr) response.shed_reason = shed_reason;
    response.retry_after_ms = retry_after_ms;
    RecordOutcome(request, response, request.deadline_ms, 0);
    queued->promise.set_value(std::move(response));
    return std::move(future);
  };

  // Validation tier: malformed requests never reach the queue.
  if (static_cast<int>(request.tuple.size()) != log_.num_attributes()) {
    metrics_.Increment(kRejectedInvalid);
    return reject(InvalidArgumentError(
        "tuple width " + std::to_string(request.tuple.size()) +
        " != log attribute count " + std::to_string(log_.num_attributes())));
  }
  if (request.m < 0) {
    metrics_.Increment(kRejectedInvalid);
    return reject(InvalidArgumentError("m must be nonnegative"));
  }
  if (request.deadline_ms < 0) {
    metrics_.Increment(kRejectedInvalid);
    return reject(InvalidArgumentError("deadline_ms must be nonnegative"));
  }
  if (solvers_.find(request.solver) == solvers_.end()) {
    metrics_.Increment(kRejectedInvalid);
    return reject(NotFoundError("unknown solver '" + request.solver +
                                "'; valid: " +
                                Join(RegisteredSolverNames(), ", ")));
  }

  // Admission tier: bound the queue, never a worker's time.
  if (options_.max_queue > 0 && QueueSize() >= options_.max_queue) {
    metrics_.Increment(kRejectedQueueFull);
    return reject(
        OverloadedError("request queue full (" +
                        std::to_string(options_.max_queue) + ")"),
        kShedReasonQueueFull, cost_model_.RetryAfterMs());
  }

  double deadline_ms = request.deadline_ms;
  if (deadline_ms == 0) deadline_ms = options_.default_deadline_ms;

  // Cost-aware admission: shed now if the prediction says the deadline
  // cannot be met, instead of letting the request expire in the queue.
  // With reject_expired the whole predicted completion must fit; in
  // degrade mode only the queue wait must (a request reaching a worker
  // before expiry still gets its Fallback answer, so only a wait that
  // alone blows the deadline makes queueing pointless).
  const double predicted_solve_ms =
      cost_model_.PredictSolveMs(request.solver, request.m);
  if (options_.predictive_shedding && deadline_ms > 0) {
    const double predicted_wait_ms = cost_model_.PredictedQueueWaitMs();
    const double predicted_ms = options_.reject_expired
                                    ? predicted_wait_ms + predicted_solve_ms
                                    : predicted_wait_ms;
    if (predicted_ms > deadline_ms) {
      metrics_.Increment(kShedPredicted);
      const double retry_after_ms = cost_model_.RetryAfterMs();
      if (options_.trace_recorder != nullptr &&
          options_.trace_recorder->enabled()) {
        options_.trace_recorder->RecordInstant(
            "shed", "serve",
            {obs::TraceArg::Str("id", request.id),
             obs::TraceArg::Str("reason", kShedReasonPredicted),
             obs::TraceArg::Num("predicted_ms", predicted_ms),
             obs::TraceArg::Num("deadline_ms", deadline_ms),
             obs::TraceArg::Num("retry_after_ms", retry_after_ms)});
      }
      return reject(
          OverloadedError("predicted completion " +
                          std::to_string(predicted_ms) + "ms exceeds deadline " +
                          std::to_string(deadline_ms) + "ms"),
          kShedReasonPredicted, retry_after_ms);
    }
  }

  if (deadline_ms > 0) {
    queued->deadline = Deadline::AfterSeconds(deadline_ms / 1000.0);
  }
  queued->effective_deadline_ms = deadline_ms;
  queued->predicted_ms = predicted_solve_ms;
  queued->request = std::move(request);
  if (options_.trace_recorder != nullptr &&
      options_.trace_recorder->enabled()) {
    queued->submit_ns = options_.trace_recorder->NowNanos();
  }

  cost_model_.Charge(queued->predicted_ms);
  {
    MutexLock lock(inflight_mutex_);
    ++inflight_;
  }
  {
    MutexLock lock(queue_mutex_);
    edf_queue_.Push(queued->deadline, queued);
  }
  metrics_.Increment(kAccepted);
  // One drainer token per queued request; RunOne pops the most urgent
  // entry, which is not necessarily the one pushed here.
  if (!pool_.Submit([this] { RunOne(); })) {
    // Shutdown raced the submit: the token was refused, so one queued
    // entry (whichever is most urgent — all of them are about to be
    // orphaned) must be resolved here to keep tokens and entries 1:1.
    std::shared_ptr<QueuedRequest> victim;
    {
      MutexLock lock(queue_mutex_);
      edf_queue_.Pop(&victim);
    }
    if (victim != nullptr) {
      metrics_.Increment(kRejectedShutdown);
      cost_model_.Settle(victim->predicted_ms);
      SolveResponse response;
      response.id = victim->request.id;
      response.solver = victim->request.solver;
      response.status = OverloadedError("service shutting down");
      response.shed_reason = kShedReasonShutdown;
      RecordOutcome(victim->request, response,
                    victim->effective_deadline_ms, victim->predicted_ms);
      victim->promise.set_value(std::move(response));
      {
        MutexLock lock(inflight_mutex_);
        --inflight_;
      }
      inflight_cv_.NotifyAll();
    }
  }
  return future;
}

void VisibilityService::Drain() {
  MutexLock lock(inflight_mutex_);
  while (inflight_ != 0) inflight_cv_.Wait(inflight_mutex_);
}

void VisibilityService::RunOne() {
  std::shared_ptr<QueuedRequest> queued;
  {
    MutexLock lock(queue_mutex_);
    // Empty is legal: a shutdown-refused token's victim resolution may
    // have consumed this token's entry already.
    if (!edf_queue_.Pop(&queued)) return;
  }
  // Feed the ladder with instantaneous occupancy at every pickup; with an
  // unbounded queue, pressure is measured against one queued request per
  // worker instead.
  const double capacity = options_.max_queue > 0
                              ? static_cast<double>(options_.max_queue)
                              : static_cast<double>(pool_.num_threads());
  ladder_.Observe(static_cast<double>(QueueSize()) / capacity);
  SolveResponse response = Execute(*queued);
  Finish(std::move(queued), std::move(response));
}

SolveResponse VisibilityService::Execute(QueuedRequest& queued) {
  const SolveRequest& request = queued.request;
  SolveResponse response;
  response.id = request.id;
  response.solver = request.solver;
  response.queue_ms = queued.submit_timer.ElapsedMillis();
  WallTimer solve_timer;

  obs::TraceRecorder* const recorder = options_.trace_recorder;
  const bool tracing =
      recorder != nullptr && recorder->enabled() && queued.submit_ns > 0;
  if (tracing) {
    // Reconstructed on the worker thread: Submit handed off, this worker
    // picked up. Nested under the request span emitted at Finish.
    recorder->RecordComplete("queue_wait", "serve", queued.submit_ns,
                             recorder->NowNanos() - queued.submit_ns);
  }

  const auto settle = [&] {
    cost_model_.Settle(queued.predicted_ms);
  };

  SolveContext context(queued.deadline);
  obs::TracingPhaseListener listener(tracing ? recorder : nullptr, "solve");
  context.set_phase_listener(&listener);
  std::string solver_name = request.solver;
  if (queued.deadline.Expired()) {
    // Late at pickup: never start the requested (possibly exact) solver.
    if (options_.reject_expired) {
      metrics_.Increment(kRejectedExpired);
      response.status =
          OverloadedError("deadline expired before a worker was available");
      response.shed_reason = kShedReasonExpired;
      response.retry_after_ms = cost_model_.RetryAfterMs();
      response.solve_ms = solve_timer.ElapsedMillis();
      settle();
      return response;
    }
    // Degrade through the portfolio: the expired context stops the exact
    // tier on its first checkpoint and the greedy tier answers.
    solver_name = "Fallback";
    metrics_.Increment(kLateFallback);
  } else if (cache_.MaxSatisfiable(request.tuple, request.m) == 0) {
    // Provably zero-visible: answer from the index without a solver.
    const int m_eff = internal::EffectiveBudget(log_, request.tuple, request.m);
    DynamicBitset selected(log_.num_attributes());
    internal::PadSelection(log_, request.tuple, m_eff, &selected);
    response.solution = internal::FinishSolution(log_, std::move(selected),
                                                 /*proved_optimal=*/true);
    response.fast_path = true;
    metrics_.Increment(kFastPathZero);
    metrics_.Increment(kCompleted);
    metrics_.Increment("solver.none.completed");
    response.solve_ms = solve_timer.ElapsedMillis();
    settle();
    return response;
  }

  // Sustained queue pressure lowers the effective solver tier before the
  // breaker is even consulted.
  const std::string laddered =
      DegradationLadder::ApplyLevel(ladder_.level(), solver_name);
  if (laddered != solver_name) {
    metrics_.Increment(kLadderDowngraded);
    response.ladder_downgraded = true;
    solver_name = laddered;
  }

  // Per-solver breaker: a tripped tier reroutes to Fallback instead of
  // running; half-open admits this request as the recovery probe.
  if (solver_name != "Fallback") {
    CircuitBreaker* breaker = breakers_.Get(solver_name);
    if (breaker != nullptr && !breaker->Allow()) {
      metrics_.Increment(kBreakerRerouted);
      response.breaker_rerouted = true;
      solver_name = "Fallback";
    }
  }

  // Watchdog: a hard wall budget backstops the cooperative deadline.
  std::shared_ptr<Watchdog::Ticket> ticket;
  const double wall_ms = watchdog_.WallBudgetMs(queued.effective_deadline_ms);
  if (wall_ms > 0) {
    ticket = watchdog_.Register(request.id, wall_ms);
    context.set_cancel_flag(&ticket->cancelled);
  }

  // MFI solvers run against the shared preprocessing cache; everything
  // else solves directly (their per-request state is self-contained).
  StatusOr<SocSolution> solution = [&]() -> StatusOr<SocSolution> {
    obs::TraceSpan solve_span(tracing ? recorder : nullptr, "solve", "serve");
    if (solve_span.active()) {
      solve_span.AddArg(obs::TraceArg::Str("solver", solver_name));
    }
    if (options_.worker_hook) {
      const WorkerHookContext hook_context{
          request, solver_name, &context,
          ticket != nullptr ? &ticket->cancelled : nullptr};
      Status injected = options_.worker_hook(hook_context);
      if (!injected.ok()) return injected;
    }
    if (solver_name == "MaxFreqItemSets") {
      return mfi_walk_solver_.SolveWithIndex(cache_.walk_index(), log_,
                                             request.tuple, request.m,
                                             &context);
    }
    if (solver_name == "MaxFreqItemSets-dfs") {
      return mfi_dfs_solver_.SolveWithIndex(cache_.dfs_index(), log_,
                                            request.tuple, request.m,
                                            &context);
    }
    const auto it = solvers_.find(solver_name);
    SOC_CHECK(it != solvers_.end());
    return it->second->SolveWithContext(log_, request.tuple, request.m,
                                        &context);
  }();
  response.solve_ms = solve_timer.ElapsedMillis();
  response.solver = solver_name;
  watchdog_.Unregister(ticket);
  settle();
  cost_model_.Observe(solver_name, response.solve_ms);
  CircuitBreaker* const ran_breaker = breakers_.Get(solver_name);

  if (!solution.ok()) {
    response.status = solution.status();
    metrics_.Increment(kSolveErrors);
    metrics_.Increment("solver." + solver_name + ".errors");
    if (ran_breaker != nullptr) ran_breaker->RecordFailure();
    return response;
  }
  response.solution = std::move(solution).value();
  response.degraded = IsDegraded(response.solution);
  response.stop_reason = SolutionStopReason(response.solution);
  metrics_.Increment(kCompleted);
  metrics_.Increment("solver." + solver_name + ".completed");
  if (response.degraded) {
    metrics_.Increment(kDegraded);
    metrics_.Increment("solver." + solver_name + ".degraded");
  }
  if (ran_breaker != nullptr) {
    const bool failure =
        response.degraded && ran_breaker->options().count_degraded;
    if (failure) {
      ran_breaker->RecordFailure();
    } else {
      ran_breaker->RecordSuccess();
    }
  }
  return response;
}

void VisibilityService::Finish(std::shared_ptr<QueuedRequest> queued,
                               SolveResponse response) {
  obs::TraceRecorder* const recorder = options_.trace_recorder;
  const bool tracing =
      recorder != nullptr && recorder->enabled() && queued->submit_ns > 0;
  const std::int64_t response_start_ns = tracing ? recorder->NowNanos() : 0;
  std::vector<obs::TraceArg> request_args;
  if (tracing) {
    request_args.push_back(obs::TraceArg::Str("id", response.id));
    request_args.push_back(obs::TraceArg::Str("solver", response.solver));
    request_args.push_back(
        obs::TraceArg::Str("status", StatusCodeToString(response.status.code())));
    request_args.push_back(obs::TraceArg::Int("degraded", response.degraded));
    request_args.push_back(obs::TraceArg::Int("fast_path", response.fast_path));
  }

  metrics_.RecordLatency("queue", response.queue_ms);
  metrics_.RecordLatency("solve", response.solve_ms);
  metrics_.RecordLatency("total", response.queue_ms + response.solve_ms);

  // Recorded before the promise resolves (like the trace spans below): a
  // caller that drains the event log right after Drain() must see every
  // request's event.
  RecordOutcome(queued->request, response, queued->effective_deadline_ms,
                queued->predicted_ms);

  // Recorded before the promise resolves: a caller that exports the trace
  // right after Drain() must see every request's spans.
  if (tracing) {
    const std::int64_t now_ns = recorder->NowNanos();
    recorder->RecordComplete("response", "serve", response_start_ns,
                             now_ns - response_start_ns);
    // The umbrella: Submit hand-off through response construction,
    // emitted on the worker thread so queue_wait/solve/response nest
    // inside it.
    recorder->RecordComplete("request", "serve", queued->submit_ns,
                             now_ns - queued->submit_ns,
                             std::move(request_args));
  }

  queued->promise.set_value(std::move(response));
  {
    MutexLock lock(inflight_mutex_);
    --inflight_;
  }
  inflight_cv_.NotifyAll();
}

void VisibilityService::RecordOutcome(const SolveRequest& request,
                                      const SolveResponse& response,
                                      double deadline_ms,
                                      double predicted_ms) {
  obs::EventLog* const log = options_.event_log;
  if (log != nullptr && log->ShouldRecord()) {
    log->Record(BuildWideEvent(request, response, cost_model_.features(),
                               deadline_ms, predicted_ms));
  }
  obs::SloEngine* const slo = options_.slo_engine;
  if (slo != nullptr && CountsTowardSlo(response.status)) {
    const std::string& tenant =
        response.tenant_id.empty() ? request.tenant_id : response.tenant_id;
    slo->RecordOutcome(tenant.empty() ? "default" : tenant,
                       response.status.ok(),
                       response.queue_ms + response.solve_ms);
  }
}

MetricsSnapshot VisibilityService::Metrics() const {
  MetricsSnapshot snapshot = metrics_.Snapshot();
  const CacheStats stats = cache_.mfi_stats();
  snapshot.counters["mfi_cache.hits"] = stats.hits;
  snapshot.counters["mfi_cache.misses"] = stats.misses;
  snapshot.counters["mfi_cache.evictions"] = stats.evictions;
  breakers_.ForEach([&](const std::string& name,
                        const CircuitBreaker& breaker) {
    snapshot.counters["breaker." + name + ".trips"] = breaker.trips();
    snapshot.gauges["breaker." + name + ".state"] =
        static_cast<double>(static_cast<int>(breaker.state()));
  });
  snapshot.gauges["queue_depth"] = static_cast<double>(QueueSize());
  snapshot.gauges["busy_workers"] = static_cast<double>(pool_.busy_workers());
  {
    MutexLock lock(inflight_mutex_);
    snapshot.gauges["inflight"] = static_cast<double>(inflight_);
  }
  snapshot.gauges["ladder.level"] = static_cast<double>(ladder_.level());
  snapshot.gauges["predicted_backlog_ms"] = cost_model_.BacklogMs();
  snapshot.gauges["watchdog.watched"] =
      static_cast<double>(watchdog_.watched());
  snapshot.gauges["mfi_cache.entries"] = static_cast<double>(stats.entries);
  snapshot.gauges["mfi_cache.approx_bytes"] =
      static_cast<double>(stats.approx_bytes);
  // Cumulative pool time split: wait vs work. Exposed as gauges because
  // they are doubles, but both only grow.
  snapshot.gauges["pool.queue_wait_ms_total"] = pool_.total_queue_wait_ms();
  snapshot.gauges["pool.execute_ms_total"] = pool_.total_execute_ms();
  return snapshot;
}

}  // namespace soc::serve
