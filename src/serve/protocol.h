// The socvis_serve JSONL wire protocol: one flat JSON object per line.
//
// Request line (tuple is a 0/1 bitstring of the log's attribute width):
//   {"id":"r1","tuple":"110101","m":3,"solver":"Fallback","deadline_ms":50}
// `solver` and `deadline_ms` are optional (default Fallback / service
// default); `id` defaults to the 1-based line number if omitted.
//
// Multi-tenant requests add "tenant_id" (non-empty string, at most
// kMaxTenantIdBytes bytes):
//   {"id":"r1","tenant_id":"acme","tuple":"110101","m":3}
// The field is optional on the single-tenant service (ignored there) and
// required by the sharded service, which rejects its absence at
// admission rather than at parse time.
//
// Response line:
//   {"id":"r1","status":"OK","solver":"Fallback","selected":"100100",
//    "satisfied_queries":7,"proved_optimal":true,"degraded":false,
//    "fast_path":false,"queue_ms":0.1,"solve_ms":1.9}
// Rejected requests instead carry "status":"Overloaded"/... plus "error"
// with the message; solution fields are omitted. Degraded responses add
// "stop_reason". Load-shed (kOverloaded) responses additionally carry
// "shed_reason" (one of the kShedReason* constants) and, when the
// service can estimate backlog drain, a "retry_after_ms" hint clients
// use as a backoff floor:
//   {"id":"r2","status":"Overloaded","error":"...","shed_reason":
//    "predicted_deadline_miss","retry_after_ms":12.5}
//
// Multi-tenant responses echo "tenant_id" (when the request carried
// one), add "epoch" (the snapshot epoch the answer was computed
// against, emitted when positive) and, on OK lines answered from the
// result cache, "cache_hit":true:
//   {"id":"r1","tenant_id":"acme","status":"OK","epoch":3,
//    "cache_hit":true,"solver":"ILP","selected":"100100",...}

#ifndef SOC_SERVE_PROTOCOL_H_
#define SOC_SERVE_PROTOCOL_H_

#include <string>

#include "boolean/query_log.h"
#include "common/json_writer.h"
#include "common/status.h"
#include "serve/visibility_service.h"

namespace soc::serve {

// Hard cap on the wire length of tenant_id (bytes). Generous for any
// real naming scheme while bounding per-request key/counter memory.
inline constexpr int kMaxTenantIdBytes = 128;

// Decodes one JSONL request line against `log` (for tuple-width checks and
// defaults). `line_number` (1-based) supplies the default id.
StatusOr<SolveRequest> ParseSolveRequestLine(const std::string& line,
                                             const QueryLog& log,
                                             int line_number);

// Width-agnostic variant for the multi-tenant front door, where the
// expected tuple width depends on which tenant the request names and is
// therefore checked at admission. `num_attributes` >= 0 enforces the
// width at parse time; pass -1 to accept any width.
StatusOr<SolveRequest> ParseSolveRequestLine(const std::string& line,
                                             int num_attributes,
                                             int line_number);

// Encodes a response as one JSON object (no trailing newline).
JsonValue ResponseToJson(const SolveResponse& response);

// An admin-path line on the multi-tenant socvis_serve: tenant lifecycle
// commands and observability queries interleaved with solve requests on
// the same stream.
//   {"admin":"create_tenant","tenant_id":"acme","log":"acme.csv"}
//   {"admin":"publish_epoch","tenant_id":"acme","log":"acme_v2.csv"}
//   {"admin":"slo"}                    — SLO report for every tenant
//   {"admin":"slo","tenant_id":"acme"} — one tenant's SLO state
// `log` names a query-log CSV the server loads; the response line echoes
// the action plus the resulting epoch. `slo` takes no log and replies
// with the burn-rate report (obs/slo.h) as one JSON line.
struct AdminRequest {
  std::string action;     // "create_tenant", "publish_epoch" or "slo".
  std::string tenant_id;  // <= kMaxTenantIdBytes; optional for "slo".
  std::string log_path;   // Non-empty except for "slo" (must be absent).
};

// Cheap routing test: true iff the line carries an "admin" key. Callers
// dispatch admin lines to ParseAdminRequestLine and everything else to
// ParseSolveRequestLine (which treats "admin" as an unknown field).
bool LooksLikeAdminLine(const std::string& line);

// Decodes and validates one admin line (unknown fields are errors, same
// strictness as the solve-request parser).
StatusOr<AdminRequest> ParseAdminRequestLine(const std::string& line);

// Decodes one JSONL response line — the inverse of ResponseToJson, used
// by retrying clients and the round-trip fuzzers. The returned response
// reconstructs everything the wire carries: status (with the "error"
// message), solution fields on OK lines, stop_reason on degraded lines,
// shed_reason / retry_after_ms on overloaded lines. Unknown fields are
// an error, mirroring ParseSolveRequestLine.
StatusOr<SolveResponse> ParseSolveResponseLine(const std::string& line);

}  // namespace soc::serve

#endif  // SOC_SERVE_PROTOCOL_H_
