// The socvis_serve JSONL wire protocol: one flat JSON object per line.
//
// Request line (tuple is a 0/1 bitstring of the log's attribute width):
//   {"id":"r1","tuple":"110101","m":3,"solver":"Fallback","deadline_ms":50}
// `solver` and `deadline_ms` are optional (default Fallback / service
// default); `id` defaults to the 1-based line number if omitted.
//
// Response line:
//   {"id":"r1","status":"OK","solver":"Fallback","selected":"100100",
//    "satisfied_queries":7,"proved_optimal":true,"degraded":false,
//    "fast_path":false,"queue_ms":0.1,"solve_ms":1.9}
// Rejected requests instead carry "status":"Overloaded"/... plus "error"
// with the message; solution fields are omitted. Degraded responses add
// "stop_reason". Load-shed (kOverloaded) responses additionally carry
// "shed_reason" (one of the kShedReason* constants) and, when the
// service can estimate backlog drain, a "retry_after_ms" hint clients
// use as a backoff floor:
//   {"id":"r2","status":"Overloaded","error":"...","shed_reason":
//    "predicted_deadline_miss","retry_after_ms":12.5}

#ifndef SOC_SERVE_PROTOCOL_H_
#define SOC_SERVE_PROTOCOL_H_

#include <string>

#include "boolean/query_log.h"
#include "common/json_writer.h"
#include "common/status.h"
#include "serve/visibility_service.h"

namespace soc::serve {

// Decodes one JSONL request line against `log` (for tuple-width checks and
// defaults). `line_number` (1-based) supplies the default id.
StatusOr<SolveRequest> ParseSolveRequestLine(const std::string& line,
                                             const QueryLog& log,
                                             int line_number);

// Encodes a response as one JSON object (no trailing newline).
JsonValue ResponseToJson(const SolveResponse& response);

// Decodes one JSONL response line — the inverse of ResponseToJson, used
// by retrying clients and the round-trip fuzzers. The returned response
// reconstructs everything the wire carries: status (with the "error"
// message), solution fields on OK lines, stop_reason on degraded lines,
// shed_reason / retry_after_ms on overloaded lines. Unknown fields are
// an error, mirroring ParseSolveRequestLine.
StatusOr<SolveResponse> ParseSolveResponseLine(const std::string& line);

}  // namespace soc::serve

#endif  // SOC_SERVE_PROTOCOL_H_
