// VisibilityService: the long-lived, concurrent serving layer for
// SOC-CB-QL. One service owns one query log (the paper's Q), a
// PreprocessingCache amortizing MFI mining and attribute bitmaps across
// requests, and a fixed ThreadPool of solver workers.
//
// Admission control. Submit() is non-blocking and always returns a
// future:
//  * malformed requests (wrong tuple width, negative m / deadline,
//    unknown solver) resolve immediately with a typed error Status;
//  * when the request queue is at max_queue, the request is load-shed
//    with StatusCode::kOverloaded — it never occupies a worker;
//  * cost-aware predictive shedding: a per-solver CostModel predicts the
//    request's queue wait and solve time; a request whose deadline the
//    prediction says cannot be met is shed at admission with kOverloaded,
//    a shed_reason, and a retry_after_ms hint sized to the backlog —
//    instead of expiring uselessly in the queue;
//  * accepted requests wait in an earliest-deadline-first queue
//    (serve/edf_queue.h): workers always pick the most urgent request,
//    with FIFO order among equal (and absent) deadlines;
//  * each request's deadline (deadline_ms, measured from Submit) is
//    threaded into the worker's SolveContext, so a long solve degrades
//    to a partial solution per the core contract instead of running
//    away;
//  * a request whose deadline has already expired when a worker picks it
//    up is either rejected with kOverloaded (reject_expired = true) or
//    downgraded to the FallbackSolver under the expired context
//    (default), whose greedy tier completes in microseconds — late work
//    never stalls the pool on an unbounded exact solve.
//
// Overload resilience at pickup:
//  * a DegradationLadder watches smoothed queue occupancy and, under
//    sustained pressure, downgrades exact tiers (level 1) or everything
//    (level 2) to Fallback;
//  * per-solver CircuitBreakers (serve/circuit_breaker.h) trip a tier to
//    Fallback after consecutive faults/deadline-degrades and probe
//    recovery half-open;
//  * a Watchdog (serve/watchdog.h) cancels solves wedged past a hard
//    wall-time multiple of their deadline via the context's cancel flag.
//
// Responses carry the solution plus serving metadata (queue/solve
// latency, degradation, which solver actually ran; sheds carry
// shed_reason and retry_after_ms). All outcomes are counted in a
// ServeMetrics registry (serve/metrics.h).
//
// Thread-safety: Submit/Drain/MetricsSnapshot may be called from any
// thread. Drain() waits for every accepted request to resolve; the
// destructor drains implicitly.

#ifndef SOC_SERVE_VISIBILITY_SERVICE_H_
#define SOC_SERVE_VISIBILITY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>

#include "boolean/query_log.h"
#include "common/bitset.h"
#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/solve_context.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/mfi_solver.h"
#include "core/solver.h"
#include "obs/event_log.h"
#include "obs/slo.h"
#include "obs/trace_recorder.h"
#include "serve/circuit_breaker.h"
#include "serve/cost_model.h"
#include "serve/degradation_ladder.h"
#include "serve/edf_queue.h"
#include "serve/metrics.h"
#include "serve/preprocessing_cache.h"
#include "serve/watchdog.h"

namespace soc::serve {

struct SolveRequest {
  std::string id;          // Echoed back; free-form.
  DynamicBitset tuple;     // Width must equal the log's attribute count.
  int m = 0;
  std::string solver = "Fallback";  // A RegisteredSolverNames() entry.
  double deadline_ms = 0;  // Per-request budget from Submit; 0 = default.
  // Multi-tenant routing (tenant/sharded_service.h). Empty on the
  // single-tenant VisibilityService path, where it is ignored; the
  // sharded service requires it. Non-empty, <= 128 bytes (protocol.cc
  // enforces both on the wire).
  std::string tenant_id;
};

// Canonical shed_reason values carried on kOverloaded responses.
inline constexpr char kShedReasonQueueFull[] = "queue_full";
inline constexpr char kShedReasonPredicted[] = "predicted_deadline_miss";
inline constexpr char kShedReasonExpired[] = "deadline_expired";
inline constexpr char kShedReasonShutdown[] = "shutdown";

struct SolveResponse {
  std::string id;
  std::string solver;      // Solver that actually ran (may be downgraded).
  Status status;           // OK, or kOverloaded / kInvalidArgument / ...
  SocSolution solution;    // Meaningful iff status.ok().
  bool degraded = false;
  StopReason stop_reason = StopReason::kNone;
  bool fast_path = false;  // Answered from the bitmap index, no solver.
  double queue_ms = 0;     // Submit → worker pickup.
  double solve_ms = 0;     // Worker pickup → response.
  // kOverloaded guidance: when to retry (0 = no hint) and why the
  // request was shed (one of the kShedReason* constants; empty
  // otherwise).
  double retry_after_ms = 0;
  std::string shed_reason;
  // Multi-tenant serving metadata. tenant_id echoes the request's;
  // epoch is the snapshot epoch the answer was computed against (> 0
  // only on the sharded path); cache_hit marks answers replayed from
  // the ResultCache without running a solver.
  std::string tenant_id;
  std::int64_t epoch = 0;
  bool cache_hit = false;
  // Observability-only outcome bits (wide-event log; never on the wire
  // protocol): whether a tripped breaker or the degradation ladder
  // changed the solver this request ran on.
  bool breaker_rerouted = false;
  bool ladder_downgraded = false;
};

// Chaos/test injection point, invoked on the worker thread after the
// late/fast-path tiers and solver selection (ladder + breaker reroutes
// applied), immediately before the solver runs. A non-OK return is
// treated as a fault of the *effective* solver — it feeds the breaker
// and the solver.<name>.errors counters exactly like a real solve error.
// The hook may also stall (slow-worker injection) or call
// context->InjectFault; it must be thread-safe.
struct WorkerHookContext {
  const SolveRequest& request;
  const std::string& solver;  // Effective solver about to run.
  SolveContext* context;
  // The watchdog's cancel flag for this solve; nullptr when unmonitored.
  const std::atomic<bool>* watchdog_flag;
};
using WorkerHook = std::function<Status(const WorkerHookContext&)>;

struct VisibilityServiceOptions {
  int num_workers = 4;
  // Admission bound on queued-but-unclaimed requests; 0 = unbounded.
  std::size_t max_queue = 1024;
  // Per-engine LRU capacity of the shared MFI threshold cache.
  std::size_t mfi_cache_capacity = 32;
  // Applied when a request's deadline_ms is 0; 0 = no deadline.
  double default_deadline_ms = 0;
  // Late policy: reject already-expired requests with kOverloaded instead
  // of degrading them through the Fallback tier.
  bool reject_expired = false;
  // Cost-aware admission: shed a request at Submit when the cost model
  // predicts its deadline cannot be met (see the file comment). Disable
  // to fall back to pure queue-bound admission.
  bool predictive_shedding = true;
  CostModelOptions cost_model;
  CircuitBreakerOptions breaker;
  DegradationLadderOptions ladder;
  WatchdogOptions watchdog;
  // Non-owning; must outlive the service. When set and enabled, every
  // request emits nested admission → queue_wait → solve → response spans
  // (plus solver-internal phases via the context's PhaseListener).
  // nullptr disables tracing entirely.
  obs::TraceRecorder* trace_recorder = nullptr;
  // Non-owning; must outlive the service. When set and enabled, every
  // request outcome (completions, sheds, rejects) is recorded as one
  // wide event (obs/wide_event.h) carrying the request's features,
  // latencies and outcome bits. nullptr disables event logging.
  obs::EventLog* event_log = nullptr;
  // Non-owning; must outlive the service. When set, every non-invalid
  // outcome is recorded against the request's tenant ("default" when
  // the request carries no tenant_id) for burn-rate evaluation.
  obs::SloEngine* slo_engine = nullptr;
  // See WorkerHookContext; empty disables the hook.
  WorkerHook worker_hook;
};

class VisibilityService {
 public:
  // The service copies the log once and shares it with every worker.
  explicit VisibilityService(QueryLog log,
                             VisibilityServiceOptions options = {});
  ~VisibilityService();

  VisibilityService(const VisibilityService&) = delete;
  VisibilityService& operator=(const VisibilityService&) = delete;

  // Non-blocking; see the admission-control contract above.
  std::future<SolveResponse> Submit(SolveRequest request)
      SOC_EXCLUDES(inflight_mutex_, queue_mutex_);

  // Blocks until every accepted request has resolved. New Submits during
  // Drain are legal; Drain returns once the in-flight count hits zero.
  void Drain() SOC_EXCLUDES(inflight_mutex_);

  const QueryLog& log() const { return log_; }
  int num_workers() const { return pool_.num_threads(); }

  // Live counters (incl. MFI cache hit/miss/eviction totals) plus
  // point-in-time gauges: queue depth, busy workers, in-flight requests,
  // cache residency, breaker states, ladder level, predicted backlog,
  // and cumulative pool queue-wait/execute time.
  MetricsSnapshot Metrics() const
      SOC_EXCLUDES(inflight_mutex_, queue_mutex_);

 private:
  struct QueuedRequest;

  void RunOne() SOC_EXCLUDES(queue_mutex_);
  SolveResponse Execute(QueuedRequest& queued);
  void Finish(std::shared_ptr<QueuedRequest> queued, SolveResponse response)
      SOC_EXCLUDES(inflight_mutex_);
  std::size_t QueueSize() const SOC_EXCLUDES(queue_mutex_);
  // Records the wide event and SLO outcome for one resolved request;
  // called on every path that resolves a promise.
  void RecordOutcome(const SolveRequest& request,
                     const SolveResponse& response, double deadline_ms,
                     double predicted_ms);

  const QueryLog log_;
  const VisibilityServiceOptions options_;
  PreprocessingCache cache_;
  // Registered solver instances, built once; SocSolver::SolveWithContext
  // is const, so one instance serves all workers.
  std::unordered_map<std::string, std::unique_ptr<SocSolver>> solvers_;
  // Dedicated MFI solver instances whose solves run against the shared
  // preprocessing cache instead of mining per request.
  MfiSocSolver mfi_walk_solver_;
  MfiSocSolver mfi_dfs_solver_;
  ServeMetrics metrics_;
  CostModel cost_model_;
  BreakerPanel breakers_;
  DegradationLadder ladder_;

  mutable Mutex queue_mutex_{lock_rank::kServeQueue};
  EdfQueue<std::shared_ptr<QueuedRequest>> edf_queue_
      SOC_GUARDED_BY(queue_mutex_);

  mutable Mutex inflight_mutex_{lock_rank::kServeInflight};
  CondVar inflight_cv_;
  std::int64_t inflight_ SOC_GUARDED_BY(inflight_mutex_) = 0;

  Watchdog watchdog_;  // Before pool_: workers hold watchdog tickets.
  ThreadPool pool_;  // Last member: workers must die before state above.
};

}  // namespace soc::serve

#endif  // SOC_SERVE_VISIBILITY_SERVICE_H_
