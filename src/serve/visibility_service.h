// VisibilityService: the long-lived, concurrent serving layer for
// SOC-CB-QL. One service owns one query log (the paper's Q), a
// PreprocessingCache amortizing MFI mining and attribute bitmaps across
// requests, and a fixed ThreadPool of solver workers.
//
// Admission control. Submit() is non-blocking and always returns a
// future:
//  * malformed requests (wrong tuple width, negative m / deadline,
//    unknown solver) resolve immediately with a typed error Status;
//  * when the request queue is at max_queue, the request is load-shed
//    with StatusCode::kOverloaded — it never occupies a worker;
//  * each request's deadline (deadline_ms, measured from Submit) is
//    threaded into the worker's SolveContext, so a long solve degrades
//    to a partial solution per the core contract instead of running
//    away;
//  * a request whose deadline has already expired when a worker picks it
//    up is either rejected with kOverloaded (reject_expired = true) or
//    downgraded to the FallbackSolver under the expired context
//    (default), whose greedy tier completes in microseconds — late work
//    never stalls the pool on an unbounded exact solve.
//
// Responses carry the solution plus serving metadata (queue/solve
// latency, degradation, which solver actually ran). All outcomes are
// counted in a ServeMetrics registry (serve/metrics.h).
//
// Thread-safety: Submit/Drain/MetricsSnapshot may be called from any
// thread. Drain() waits for every accepted request to resolve; the
// destructor drains implicitly.

#ifndef SOC_SERVE_VISIBILITY_SERVICE_H_
#define SOC_SERVE_VISIBILITY_SERVICE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>

#include "boolean/query_log.h"
#include "common/bitset.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/mfi_solver.h"
#include "core/solver.h"
#include "obs/trace_recorder.h"
#include "serve/metrics.h"
#include "serve/preprocessing_cache.h"

namespace soc::serve {

struct SolveRequest {
  std::string id;          // Echoed back; free-form.
  DynamicBitset tuple;     // Width must equal the log's attribute count.
  int m = 0;
  std::string solver = "Fallback";  // A RegisteredSolverNames() entry.
  double deadline_ms = 0;  // Per-request budget from Submit; 0 = default.
};

struct SolveResponse {
  std::string id;
  std::string solver;      // Solver that actually ran (may be downgraded).
  Status status;           // OK, or kOverloaded / kInvalidArgument / ...
  SocSolution solution;    // Meaningful iff status.ok().
  bool degraded = false;
  StopReason stop_reason = StopReason::kNone;
  bool fast_path = false;  // Answered from the bitmap index, no solver.
  double queue_ms = 0;     // Submit → worker pickup.
  double solve_ms = 0;     // Worker pickup → response.
};

struct VisibilityServiceOptions {
  int num_workers = 4;
  // Admission bound on queued-but-unclaimed requests; 0 = unbounded.
  std::size_t max_queue = 1024;
  // Per-engine LRU capacity of the shared MFI threshold cache.
  std::size_t mfi_cache_capacity = 32;
  // Applied when a request's deadline_ms is 0; 0 = no deadline.
  double default_deadline_ms = 0;
  // Late policy: reject already-expired requests with kOverloaded instead
  // of degrading them through the Fallback tier.
  bool reject_expired = false;
  // Non-owning; must outlive the service. When set and enabled, every
  // request emits nested admission → queue_wait → solve → response spans
  // (plus solver-internal phases via the context's PhaseListener).
  // nullptr disables tracing entirely.
  obs::TraceRecorder* trace_recorder = nullptr;
};

class VisibilityService {
 public:
  // The service copies the log once and shares it with every worker.
  explicit VisibilityService(QueryLog log,
                             VisibilityServiceOptions options = {});
  ~VisibilityService();

  VisibilityService(const VisibilityService&) = delete;
  VisibilityService& operator=(const VisibilityService&) = delete;

  // Non-blocking; see the admission-control contract above.
  std::future<SolveResponse> Submit(SolveRequest request)
      SOC_EXCLUDES(inflight_mutex_);

  // Blocks until every accepted request has resolved. New Submits during
  // Drain are legal; Drain returns once the in-flight count hits zero.
  void Drain() SOC_EXCLUDES(inflight_mutex_);

  const QueryLog& log() const { return log_; }
  int num_workers() const { return pool_.num_threads(); }

  // Live counters (incl. MFI cache hit/miss/eviction totals) plus
  // point-in-time gauges: queue depth, busy workers, in-flight requests,
  // cache residency, and cumulative pool queue-wait/execute time.
  MetricsSnapshot Metrics() const SOC_EXCLUDES(inflight_mutex_);

 private:
  struct QueuedRequest;

  void RunRequest(std::shared_ptr<QueuedRequest> queued);
  SolveResponse Execute(QueuedRequest& queued);
  void Finish(std::shared_ptr<QueuedRequest> queued, SolveResponse response)
      SOC_EXCLUDES(inflight_mutex_);

  const QueryLog log_;
  const VisibilityServiceOptions options_;
  PreprocessingCache cache_;
  // Registered solver instances, built once; SocSolver::SolveWithContext
  // is const, so one instance serves all workers.
  std::unordered_map<std::string, std::unique_ptr<SocSolver>> solvers_;
  // Dedicated MFI solver instances whose solves run against the shared
  // preprocessing cache instead of mining per request.
  MfiSocSolver mfi_walk_solver_;
  MfiSocSolver mfi_dfs_solver_;
  ServeMetrics metrics_;

  mutable Mutex inflight_mutex_;
  CondVar inflight_cv_;
  std::int64_t inflight_ SOC_GUARDED_BY(inflight_mutex_) = 0;

  ThreadPool pool_;  // Last member: workers must die before state above.
};

}  // namespace soc::serve

#endif  // SOC_SERVE_VISIBILITY_SERVICE_H_
