// Builds wide events (obs/wide_event.h) from serve-layer request and
// response types, shared by the single-tenant VisibilityService and the
// per-tenant TenantShard so both paths classify outcomes identically:
//
//   ok      — status.ok(): a solution was served (degraded or cached
//             answers included);
//   shed    — kOverloaded: admission or pickup load-shedding;
//   invalid — kInvalidArgument / kNotFound: a client error, excluded
//             from the tenant's SLO (a malformed request is not the
//             service failing the tenant);
//   error   — everything else (solver faults, watchdog cancels, ...).

#ifndef SOC_SERVE_EVENT_BUILDER_H_
#define SOC_SERVE_EVENT_BUILDER_H_

#include <string>

#include "common/status.h"
#include "obs/wide_event.h"
#include "serve/cost_model.h"
#include "serve/visibility_service.h"

namespace soc::serve {

inline const char* WideEventOutcome(const Status& status) {
  if (status.ok()) return "ok";
  switch (status.code()) {
    case StatusCode::kOverloaded:
      return "shed";
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
      return "invalid";
    default:
      return "error";
  }
}

// True for outcomes the SLO engine records: everything except client
// errors.
inline bool CountsTowardSlo(const Status& status) {
  return status.ok() || (status.code() != StatusCode::kInvalidArgument &&
                         status.code() != StatusCode::kNotFound);
}

// ts_ms is stamped by EventLog::Record; shard defaults to -1
// (single-tenant) and is set by the sharded path.
inline obs::WideEvent BuildWideEvent(const SolveRequest& request,
                                     const SolveResponse& response,
                                     const CostFeatures& features,
                                     double deadline_ms,
                                     double predicted_ms) {
  obs::WideEvent event;
  event.id = request.id;
  event.tenant = response.tenant_id.empty() ? request.tenant_id
                                            : response.tenant_id;
  event.epoch = response.epoch;
  event.solver_req = request.solver;
  event.solver = response.solver;
  // Any negative budget folds to the schema's -1 "rejected as invalid"
  // sentinel so even hostile requests encode to accepted lines.
  event.m = request.m < 0 ? -1 : request.m;
  event.deadline_ms = deadline_ms;
  event.num_queries = features.num_queries;
  event.num_attributes = features.num_attributes;
  event.collapse_ratio = features.collapse_ratio;
  event.queue_ms = response.queue_ms;
  event.solve_ms = response.solve_ms;
  event.total_ms = response.queue_ms + response.solve_ms;
  event.predicted_ms = predicted_ms;
  event.outcome = WideEventOutcome(response.status);
  event.code = StatusCodeToString(response.status.code());
  event.shed_reason = response.shed_reason;
  if (response.degraded && response.stop_reason != StopReason::kNone) {
    event.stop_reason = StopReasonToString(response.stop_reason);
  }
  event.degraded = response.degraded;
  event.fast_path = response.fast_path;
  event.cache_hit = response.cache_hit;
  event.breaker_rerouted = response.breaker_rerouted;
  event.ladder_downgraded = response.ladder_downgraded;
  if (response.status.ok()) {
    event.satisfied = response.solution.satisfied_queries;
  }
  event.retry_after_ms = response.retry_after_ms;
  return event;
}

}  // namespace soc::serve

#endif  // SOC_SERVE_EVENT_BUILDER_H_
