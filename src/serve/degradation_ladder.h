// DegradationLadder: graceful quality degradation under sustained queue
// pressure.
//
// The ladder watches queue occupancy (queued / max_queue, sampled at
// every worker pickup) through an EWMA and maps the smoothed pressure to
// a degradation level with hysteresis — the level climbs when smoothed
// occupancy crosses the high watermark and only descends once it falls
// below the low watermark, so brief bursts don't flap the service's
// solver tier.
//
// Level semantics (applied by VisibilityService at pickup):
//   0  serve every request with its requested solver;
//   1  exact tiers (BruteForce, BranchAndBound, ILP) downgrade to
//      Fallback — mining and greedy tiers still run as requested;
//   2  every request downgrades to Fallback's greedy tier.
//
// Thread-safe; Observe is called concurrently from workers.

#ifndef SOC_SERVE_DEGRADATION_LADDER_H_
#define SOC_SERVE_DEGRADATION_LADDER_H_

#include <string>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace soc::serve {

struct DegradationLadderOptions {
  // Smoothed occupancy that pushes the ladder up one level.
  double high_watermark = 0.75;
  // Smoothed occupancy that lets the ladder descend one level.
  double low_watermark = 0.25;
  // EWMA smoothing factor for the occupancy samples.
  double ewma_alpha = 0.2;
  // Highest level the ladder can reach; 0 disables degradation.
  int max_level = 2;
};

class DegradationLadder {
 public:
  explicit DegradationLadder(DegradationLadderOptions options = {});

  // Feeds one instantaneous occupancy sample in [0,1]; returns the level
  // in force after the update.
  int Observe(double occupancy) SOC_EXCLUDES(mutex_);

  int level() const SOC_EXCLUDES(mutex_);
  double smoothed_occupancy() const SOC_EXCLUDES(mutex_);

  // The solver that should run at `level` for a request that asked for
  // `requested`; returns `requested` itself when the level leaves it
  // alone. Exposed for tests and for the service's pickup path.
  static std::string ApplyLevel(int level, const std::string& requested);

 private:
  const DegradationLadderOptions options_;
  mutable Mutex mutex_{lock_rank::kDegradationLadder};
  double ewma_ SOC_GUARDED_BY(mutex_) = 0;
  bool seeded_ SOC_GUARDED_BY(mutex_) = false;
  int level_ SOC_GUARDED_BY(mutex_) = 0;
};

}  // namespace soc::serve

#endif  // SOC_SERVE_DEGRADATION_LADDER_H_
