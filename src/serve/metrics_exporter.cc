#include "serve/metrics_exporter.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"

namespace soc::serve {

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = "soc_";
  for (const char c : name) {
    out.push_back(
        std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  return out;
}

std::string Sample(double value) {
  return StrFormat("%.9g", value);
}

void AppendHistogram(const std::string& name, const HistogramData& data,
                     std::string* out) {
  out->append("# TYPE " + name + " histogram\n");
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < data.buckets.size(); ++i) {
    cumulative += data.buckets[i];
    const std::string le = i < kLatencyBucketUpperMs.size()
                               ? Sample(kLatencyBucketUpperMs[i])
                               : "+Inf";
    out->append(name + "_bucket{le=\"" + le + "\"} " +
                std::to_string(cumulative) + "\n");
  }
  out->append(name + "_sum " + Sample(data.sum_ms) + "\n");
  out->append(name + "_count " + std::to_string(data.count) + "\n");
  // Interpolated quantiles as a companion gauge series (kept off the
  // histogram name: one metric must not mix sample families).
  out->append("# TYPE " + name + "_quantile gauge\n");
  for (const double q : {0.50, 0.95, 0.99}) {
    out->append(name + "_quantile{quantile=\"" + Sample(q) + "\"} " +
                Sample(data.Quantile(q)) + "\n");
  }
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    out.append("# TYPE " + prom + " counter\n");
    out.append(prom + " " + std::to_string(value) + "\n");
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out.append("# TYPE " + prom + " gauge\n");
    out.append(prom + " " + Sample(value) + "\n");
  }
  for (const auto& [name, data] : snapshot.histograms) {
    AppendHistogram(PrometheusName(name), data, &out);
  }
  return out;
}

void AppendSloMetrics(const obs::SloReport& report,
                      MetricsSnapshot* snapshot) {
  for (const auto& [tenant, state] : report.tenants) {
    const std::string prefix = "slo." + tenant + ".";
    snapshot->counters[prefix + "good"] += state.good;
    snapshot->counters[prefix + "bad"] += state.bad;
    snapshot->gauges[prefix + "burn_fast"] = state.burn_fast;
    snapshot->gauges[prefix + "burn_slow"] = state.burn_slow;
    snapshot->gauges[prefix + "alerting"] = state.alerting ? 1 : 0;
  }
}

MetricsExporter::MetricsExporter(Options options)
    : options_(std::move(options)) {
  loop_pool_.Submit([this] { Loop(); });
}

MetricsExporter::~MetricsExporter() { Stop(); }

void MetricsExporter::Stop() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.NotifyAll();
  // Joins the cadence task; idempotent, and every caller returns only
  // after the final flush has happened.
  loop_pool_.Shutdown();
}

void MetricsExporter::ExportOnce() {
  if (!options_.snapshot_provider || !options_.sink) return;
  options_.sink(ToPrometheusText(options_.snapshot_provider()));
  MutexLock lock(mutex_);
  ++exports_;
}

std::int64_t MetricsExporter::exports() const {
  MutexLock lock(mutex_);
  return exports_;
}

void MetricsExporter::Loop() {
  const double interval_s = std::max(0.01, options_.interval_s);
  // Absolute next-deadline scheduling: each cycle targets `next`, not
  // "interval after the previous export finished", so snapshot/sink time
  // does not accumulate as cadence drift. A sink slower than the interval
  // re-anchors instead of bursting to catch up.
  const WallTimer timer;
  double next_s = timer.ElapsedSeconds() + interval_s;
  for (;;) {
    bool stopping = false;
    {
      MutexLock lock(mutex_);
      // The only notification is Stop's, so a wakeup of either kind just
      // means "re-check the deadline / export now".
      while (!stop_) {
        const double remaining_s = next_s - timer.ElapsedSeconds();
        if (remaining_s <= 0) break;
        wake_.WaitFor(mutex_, remaining_s);
      }
      stopping = stop_;
    }
    ExportOnce();
    if (stopping) return;
    next_s += interval_s;
    const double now_s = timer.ElapsedSeconds();
    if (next_s < now_s) next_s = now_s + interval_s;
  }
}

}  // namespace soc::serve
