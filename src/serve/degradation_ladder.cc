#include "serve/degradation_ladder.h"

namespace soc::serve {

DegradationLadder::DegradationLadder(DegradationLadderOptions options)
    : options_(options) {}

int DegradationLadder::Observe(double occupancy) {
  if (occupancy < 0) occupancy = 0;
  if (occupancy > 1) occupancy = 1;
  MutexLock lock(mutex_);
  if (!seeded_) {
    ewma_ = occupancy;
    seeded_ = true;
  } else {
    ewma_ = options_.ewma_alpha * occupancy +
            (1.0 - options_.ewma_alpha) * ewma_;
  }
  // Hysteresis: one step per crossing, so the ladder ratchets rather than
  // jumping — sustained pressure is what moves it, not a single sample.
  if (ewma_ >= options_.high_watermark && level_ < options_.max_level) {
    ++level_;
    // Re-arm: the EWMA must climb back over the watermark from the
    // midpoint to take another step, spacing out consecutive climbs.
    ewma_ = (options_.high_watermark + options_.low_watermark) / 2.0;
  } else if (ewma_ <= options_.low_watermark && level_ > 0) {
    --level_;
    ewma_ = (options_.high_watermark + options_.low_watermark) / 2.0;
  }
  return level_;
}

int DegradationLadder::level() const {
  MutexLock lock(mutex_);
  return level_;
}

double DegradationLadder::smoothed_occupancy() const {
  MutexLock lock(mutex_);
  return ewma_;
}

std::string DegradationLadder::ApplyLevel(int level,
                                          const std::string& requested) {
  if (level <= 0) return requested;
  if (level == 1) {
    // Exact tiers are the ones that can hold a worker for seconds.
    if (requested == "BruteForce" || requested == "BranchAndBound" ||
        requested == "ILP") {
      return "Fallback";
    }
    return requested;
  }
  // Level >= 2: nothing but the greedy tier runs.
  return "Fallback";
}

}  // namespace soc::serve
