#include "serve/protocol.h"

#include <cmath>
#include <map>
#include <utility>

#include "common/solve_context.h"
#include "serve/json_reader.h"

namespace soc::serve {

namespace {

Status WrongKind(const std::string& key, const char* want) {
  return InvalidArgumentError("field '" + key + "' must be a " + want);
}

}  // namespace

StatusOr<SolveRequest> ParseSolveRequestLine(const std::string& line,
                                             const QueryLog& log,
                                             int line_number) {
  SOC_ASSIGN_OR_RETURN(auto object, ParseFlatJsonObject(line));

  SolveRequest request;
  request.id = std::to_string(line_number);
  bool have_tuple = false;
  bool have_m = false;

  for (const auto& [key, value] : object) {
    if (key == "id") {
      // Numeric ids are common in hand-written workloads; accept both.
      if (value.kind == JsonScalar::Kind::kString) {
        request.id = value.string_value;
      } else if (value.kind == JsonScalar::Kind::kNumber) {
        request.id = std::to_string(
            static_cast<long long>(std::llround(value.number_value)));
      } else {
        return WrongKind(key, "string or number");
      }
    } else if (key == "tuple") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "0/1 bitstring");
      }
      if (static_cast<int>(value.string_value.size()) !=
          log.num_attributes()) {
        return InvalidArgumentError(
            "tuple width " + std::to_string(value.string_value.size()) +
            " != log attribute count " +
            std::to_string(log.num_attributes()));
      }
      for (char c : value.string_value) {
        if (c != '0' && c != '1') {
          return InvalidArgumentError("tuple must be a 0/1 bitstring");
        }
      }
      request.tuple = DynamicBitset::FromString(value.string_value);
      have_tuple = true;
    } else if (key == "m") {
      if (value.kind != JsonScalar::Kind::kNumber) {
        return WrongKind(key, "number");
      }
      request.m = static_cast<int>(std::llround(value.number_value));
      have_m = true;
    } else if (key == "solver") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      request.solver = value.string_value;
    } else if (key == "deadline_ms") {
      if (value.kind != JsonScalar::Kind::kNumber) {
        return WrongKind(key, "number");
      }
      request.deadline_ms = value.number_value;
    } else {
      return InvalidArgumentError("unknown field '" + key + "'");
    }
  }

  if (!have_tuple) return InvalidArgumentError("missing field 'tuple'");
  if (!have_m) return InvalidArgumentError("missing field 'm'");
  return request;
}

JsonValue ResponseToJson(const SolveResponse& response) {
  JsonValue json = JsonValue::Object();
  json.Set("id", JsonValue::String(response.id));
  json.Set("status", JsonValue::String(StatusCodeToString(
                         response.status.code())));
  if (!response.status.ok()) {
    json.Set("error", JsonValue::String(response.status.message()));
    if (!response.shed_reason.empty()) {
      json.Set("shed_reason", JsonValue::String(response.shed_reason));
    }
    if (response.retry_after_ms > 0) {
      json.Set("retry_after_ms", JsonValue::Number(response.retry_after_ms));
    }
    return json;
  }
  json.Set("solver",
           JsonValue::String(response.fast_path ? "none" : response.solver));
  json.Set("selected", JsonValue::String(response.solution.selected.ToString()));
  json.Set("satisfied_queries",
           JsonValue::Int(response.solution.satisfied_queries));
  json.Set("proved_optimal", JsonValue::Bool(response.solution.proved_optimal));
  json.Set("degraded", JsonValue::Bool(response.degraded));
  if (response.degraded) {
    json.Set("stop_reason",
             JsonValue::String(StopReasonToString(response.stop_reason)));
  }
  json.Set("fast_path", JsonValue::Bool(response.fast_path));
  json.Set("queue_ms", JsonValue::Number(response.queue_ms));
  json.Set("solve_ms", JsonValue::Number(response.solve_ms));
  return json;
}

StatusOr<SolveResponse> ParseSolveResponseLine(const std::string& line) {
  SOC_ASSIGN_OR_RETURN(auto object, ParseFlatJsonObject(line));

  SolveResponse response;
  std::string error_message;
  bool have_status = false;
  bool have_error = false;
  bool have_selected = false;
  bool have_stop_reason = false;
  StatusCode code = StatusCode::kOk;

  for (const auto& [key, value] : object) {
    if (key == "id") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      response.id = value.string_value;
    } else if (key == "status") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      if (!StatusCodeFromString(value.string_value, &code)) {
        return InvalidArgumentError("unknown status '" + value.string_value +
                                    "'");
      }
      have_status = true;
    } else if (key == "error") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      error_message = value.string_value;
      have_error = true;
    } else if (key == "shed_reason") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      response.shed_reason = value.string_value;
    } else if (key == "retry_after_ms") {
      if (value.kind != JsonScalar::Kind::kNumber) {
        return WrongKind(key, "number");
      }
      if (value.number_value < 0) {
        return InvalidArgumentError("retry_after_ms must be nonnegative");
      }
      response.retry_after_ms = value.number_value;
    } else if (key == "solver") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      response.solver = value.string_value;
    } else if (key == "selected") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "0/1 bitstring");
      }
      for (char c : value.string_value) {
        if (c != '0' && c != '1') {
          return InvalidArgumentError("selected must be a 0/1 bitstring");
        }
      }
      response.solution.selected =
          DynamicBitset::FromString(value.string_value);
      have_selected = true;
    } else if (key == "satisfied_queries") {
      if (value.kind != JsonScalar::Kind::kNumber) {
        return WrongKind(key, "number");
      }
      response.solution.satisfied_queries =
          static_cast<int>(std::llround(value.number_value));
    } else if (key == "proved_optimal") {
      if (value.kind != JsonScalar::Kind::kBool) {
        return WrongKind(key, "bool");
      }
      response.solution.proved_optimal = value.bool_value;
    } else if (key == "degraded") {
      if (value.kind != JsonScalar::Kind::kBool) {
        return WrongKind(key, "bool");
      }
      response.degraded = value.bool_value;
    } else if (key == "stop_reason") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      if (!StopReasonFromString(value.string_value, &response.stop_reason)) {
        return InvalidArgumentError("unknown stop_reason '" +
                                    value.string_value + "'");
      }
      have_stop_reason = true;
    } else if (key == "fast_path") {
      if (value.kind != JsonScalar::Kind::kBool) {
        return WrongKind(key, "bool");
      }
      response.fast_path = value.bool_value;
    } else if (key == "queue_ms") {
      if (value.kind != JsonScalar::Kind::kNumber) {
        return WrongKind(key, "number");
      }
      response.queue_ms = value.number_value;
    } else if (key == "solve_ms") {
      if (value.kind != JsonScalar::Kind::kNumber) {
        return WrongKind(key, "number");
      }
      response.solve_ms = value.number_value;
    } else {
      return InvalidArgumentError("unknown field '" + key + "'");
    }
  }

  if (!have_status) return InvalidArgumentError("missing field 'status'");
  if (code == StatusCode::kOk) {
    if (have_error) {
      return InvalidArgumentError("'error' is only legal on non-OK lines");
    }
    if (!have_selected) return InvalidArgumentError("missing field 'selected'");
    if (response.degraded != have_stop_reason) {
      return InvalidArgumentError(
          "'stop_reason' must appear exactly on degraded lines");
    }
  } else {
    if (!have_error) return InvalidArgumentError("missing field 'error'");
    if (have_selected) {
      return InvalidArgumentError("solution fields are only legal on OK lines");
    }
    response.status = Status(code, std::move(error_message));
  }
  return response;
}

}  // namespace soc::serve
