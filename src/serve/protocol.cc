#include "serve/protocol.h"

#include <cmath>
#include <cstdint>
#include <map>
#include <utility>

#include "common/solve_context.h"
#include "common/json_reader.h"

namespace soc::serve {

namespace {

Status WrongKind(const std::string& key, const char* want) {
  return InvalidArgumentError("field '" + key + "' must be a " + want);
}

}  // namespace

StatusOr<SolveRequest> ParseSolveRequestLine(const std::string& line,
                                             const QueryLog& log,
                                             int line_number) {
  return ParseSolveRequestLine(line, log.num_attributes(), line_number);
}

StatusOr<SolveRequest> ParseSolveRequestLine(const std::string& line,
                                             int num_attributes,
                                             int line_number) {
  SOC_ASSIGN_OR_RETURN(auto object, ParseFlatJsonObject(line));

  SolveRequest request;
  request.id = std::to_string(line_number);
  bool have_tuple = false;
  bool have_m = false;

  for (const auto& [key, value] : object) {
    // One finiteness gate for every numeric field: a non-finite double
    // (1e309 and friends) would re-encode as null and break the
    // canonical-encoding fixed point.
    if (value.kind == JsonScalar::Kind::kNumber &&
        !std::isfinite(value.number_value)) {
      return InvalidArgumentError("field '" + key +
                                  "' must be a finite number");
    }
    if (key == "id") {
      // Numeric ids are common in hand-written workloads; accept both.
      if (value.kind == JsonScalar::Kind::kString) {
        request.id = value.string_value;
      } else if (value.kind == JsonScalar::Kind::kNumber) {
        request.id = std::to_string(
            static_cast<long long>(std::llround(value.number_value)));
      } else {
        return WrongKind(key, "string or number");
      }
    } else if (key == "tuple") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "0/1 bitstring");
      }
      if (num_attributes >= 0 &&
          static_cast<int>(value.string_value.size()) != num_attributes) {
        return InvalidArgumentError(
            "tuple width " + std::to_string(value.string_value.size()) +
            " != log attribute count " + std::to_string(num_attributes));
      }
      for (char c : value.string_value) {
        if (c != '0' && c != '1') {
          return InvalidArgumentError("tuple must be a 0/1 bitstring");
        }
      }
      request.tuple = DynamicBitset::FromString(value.string_value);
      have_tuple = true;
    } else if (key == "m") {
      if (value.kind != JsonScalar::Kind::kNumber) {
        return WrongKind(key, "number");
      }
      request.m = static_cast<int>(std::llround(value.number_value));
      have_m = true;
    } else if (key == "solver") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      request.solver = value.string_value;
    } else if (key == "deadline_ms") {
      if (value.kind != JsonScalar::Kind::kNumber) {
        return WrongKind(key, "number");
      }
      request.deadline_ms = value.number_value;
    } else if (key == "tenant_id") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      if (value.string_value.empty()) {
        return InvalidArgumentError("tenant_id must be non-empty");
      }
      if (static_cast<int>(value.string_value.size()) > kMaxTenantIdBytes) {
        return InvalidArgumentError(
            "tenant_id exceeds " + std::to_string(kMaxTenantIdBytes) +
            " bytes");
      }
      request.tenant_id = value.string_value;
    } else {
      return InvalidArgumentError("unknown field '" + key + "'");
    }
  }

  if (!have_tuple) return InvalidArgumentError("missing field 'tuple'");
  if (!have_m) return InvalidArgumentError("missing field 'm'");
  return request;
}

bool LooksLikeAdminLine(const std::string& line) {
  return line.find("\"admin\"") != std::string::npos;
}

StatusOr<AdminRequest> ParseAdminRequestLine(const std::string& line) {
  SOC_ASSIGN_OR_RETURN(auto object, ParseFlatJsonObject(line));

  AdminRequest request;
  for (const auto& [key, value] : object) {
    if (key == "admin") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      request.action = value.string_value;
    } else if (key == "tenant_id") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      request.tenant_id = value.string_value;
    } else if (key == "log") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      request.log_path = value.string_value;
    } else {
      return InvalidArgumentError("unknown field '" + key + "'");
    }
  }

  const bool is_slo = request.action == "slo";
  if (request.action != "create_tenant" &&
      request.action != "publish_epoch" && !is_slo) {
    return InvalidArgumentError(
        "admin action must be 'create_tenant', 'publish_epoch' or 'slo'");
  }
  if (!is_slo && request.tenant_id.empty()) {
    return InvalidArgumentError("tenant_id must be non-empty");
  }
  if (static_cast<int>(request.tenant_id.size()) > kMaxTenantIdBytes) {
    return InvalidArgumentError("tenant_id exceeds " +
                                std::to_string(kMaxTenantIdBytes) + " bytes");
  }
  if (is_slo) {
    if (!request.log_path.empty()) {
      return InvalidArgumentError("admin 'slo' takes no 'log'");
    }
  } else if (request.log_path.empty()) {
    return InvalidArgumentError("missing field 'log'");
  }
  return request;
}

JsonValue ResponseToJson(const SolveResponse& response) {
  JsonValue json = JsonValue::Object();
  json.Set("id", JsonValue::String(response.id));
  if (!response.tenant_id.empty()) {
    json.Set("tenant_id", JsonValue::String(response.tenant_id));
  }
  json.Set("status", JsonValue::String(StatusCodeToString(
                         response.status.code())));
  // The computed-against epoch rides on every line that got far enough
  // to pin a snapshot (rejections at validation never do).
  if (response.epoch > 0) {
    json.Set("epoch", JsonValue::Int(response.epoch));
  }
  if (!response.status.ok()) {
    json.Set("error", JsonValue::String(response.status.message()));
    if (!response.shed_reason.empty()) {
      json.Set("shed_reason", JsonValue::String(response.shed_reason));
    }
    if (response.retry_after_ms > 0) {
      json.Set("retry_after_ms", JsonValue::Number(response.retry_after_ms));
    }
    return json;
  }
  if (response.cache_hit) json.Set("cache_hit", JsonValue::Bool(true));
  json.Set("solver",
           JsonValue::String(response.fast_path ? "none" : response.solver));
  json.Set("selected", JsonValue::String(response.solution.selected.ToString()));
  json.Set("satisfied_queries",
           JsonValue::Int(response.solution.satisfied_queries));
  json.Set("proved_optimal", JsonValue::Bool(response.solution.proved_optimal));
  json.Set("degraded", JsonValue::Bool(response.degraded));
  if (response.degraded) {
    json.Set("stop_reason",
             JsonValue::String(StopReasonToString(response.stop_reason)));
  }
  json.Set("fast_path", JsonValue::Bool(response.fast_path));
  json.Set("queue_ms", JsonValue::Number(response.queue_ms));
  json.Set("solve_ms", JsonValue::Number(response.solve_ms));
  return json;
}

StatusOr<SolveResponse> ParseSolveResponseLine(const std::string& line) {
  SOC_ASSIGN_OR_RETURN(auto object, ParseFlatJsonObject(line));

  SolveResponse response;
  std::string error_message;
  bool have_status = false;
  bool have_error = false;
  bool have_selected = false;
  bool have_stop_reason = false;
  StatusCode code = StatusCode::kOk;

  for (const auto& [key, value] : object) {
    // Same finiteness gate as the request parser: non-finite doubles
    // cannot round-trip through the canonical encoder.
    if (value.kind == JsonScalar::Kind::kNumber &&
        !std::isfinite(value.number_value)) {
      return InvalidArgumentError("field '" + key +
                                  "' must be a finite number");
    }
    if (key == "id") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      response.id = value.string_value;
    } else if (key == "status") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      if (!StatusCodeFromString(value.string_value, &code)) {
        return InvalidArgumentError("unknown status '" + value.string_value +
                                    "'");
      }
      have_status = true;
    } else if (key == "error") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      error_message = value.string_value;
      have_error = true;
    } else if (key == "shed_reason") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      response.shed_reason = value.string_value;
    } else if (key == "retry_after_ms") {
      if (value.kind != JsonScalar::Kind::kNumber) {
        return WrongKind(key, "number");
      }
      if (value.number_value < 0) {
        return InvalidArgumentError("retry_after_ms must be nonnegative");
      }
      response.retry_after_ms = value.number_value;
    } else if (key == "solver") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      response.solver = value.string_value;
    } else if (key == "selected") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "0/1 bitstring");
      }
      for (char c : value.string_value) {
        if (c != '0' && c != '1') {
          return InvalidArgumentError("selected must be a 0/1 bitstring");
        }
      }
      response.solution.selected =
          DynamicBitset::FromString(value.string_value);
      have_selected = true;
    } else if (key == "satisfied_queries") {
      if (value.kind != JsonScalar::Kind::kNumber) {
        return WrongKind(key, "number");
      }
      response.solution.satisfied_queries =
          static_cast<int>(std::llround(value.number_value));
    } else if (key == "proved_optimal") {
      if (value.kind != JsonScalar::Kind::kBool) {
        return WrongKind(key, "bool");
      }
      response.solution.proved_optimal = value.bool_value;
    } else if (key == "degraded") {
      if (value.kind != JsonScalar::Kind::kBool) {
        return WrongKind(key, "bool");
      }
      response.degraded = value.bool_value;
    } else if (key == "stop_reason") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      if (!StopReasonFromString(value.string_value, &response.stop_reason)) {
        return InvalidArgumentError("unknown stop_reason '" +
                                    value.string_value + "'");
      }
      have_stop_reason = true;
    } else if (key == "fast_path") {
      if (value.kind != JsonScalar::Kind::kBool) {
        return WrongKind(key, "bool");
      }
      response.fast_path = value.bool_value;
    } else if (key == "queue_ms") {
      if (value.kind != JsonScalar::Kind::kNumber) {
        return WrongKind(key, "number");
      }
      response.queue_ms = value.number_value;
    } else if (key == "solve_ms") {
      if (value.kind != JsonScalar::Kind::kNumber) {
        return WrongKind(key, "number");
      }
      response.solve_ms = value.number_value;
    } else if (key == "tenant_id") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      if (value.string_value.empty()) {
        return InvalidArgumentError("tenant_id must be non-empty");
      }
      if (static_cast<int>(value.string_value.size()) > kMaxTenantIdBytes) {
        return InvalidArgumentError(
            "tenant_id exceeds " + std::to_string(kMaxTenantIdBytes) +
            " bytes");
      }
      response.tenant_id = value.string_value;
    } else if (key == "epoch") {
      if (value.kind != JsonScalar::Kind::kNumber) {
        return WrongKind(key, "number");
      }
      const auto epoch =
          static_cast<std::int64_t>(std::llround(value.number_value));
      if (epoch < 1 || static_cast<double>(epoch) != value.number_value) {
        return InvalidArgumentError("epoch must be a positive integer");
      }
      response.epoch = epoch;
    } else if (key == "cache_hit") {
      if (value.kind != JsonScalar::Kind::kBool) {
        return WrongKind(key, "bool");
      }
      response.cache_hit = value.bool_value;
    } else {
      return InvalidArgumentError("unknown field '" + key + "'");
    }
  }

  if (!have_status) return InvalidArgumentError("missing field 'status'");
  if (code == StatusCode::kOk) {
    if (have_error) {
      return InvalidArgumentError("'error' is only legal on non-OK lines");
    }
    if (!have_selected) return InvalidArgumentError("missing field 'selected'");
    if (response.degraded != have_stop_reason) {
      return InvalidArgumentError(
          "'stop_reason' must appear exactly on degraded lines");
    }
  } else {
    if (response.cache_hit) {
      return InvalidArgumentError("'cache_hit' is only legal on OK lines");
    }
    if (!have_error) return InvalidArgumentError("missing field 'error'");
    if (have_selected) {
      return InvalidArgumentError("solution fields are only legal on OK lines");
    }
    response.status = Status(code, std::move(error_message));
  }
  return response;
}

}  // namespace soc::serve
