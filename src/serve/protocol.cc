#include "serve/protocol.h"

#include <cmath>
#include <map>
#include <utility>

#include "common/solve_context.h"
#include "serve/json_reader.h"

namespace soc::serve {

namespace {

Status WrongKind(const std::string& key, const char* want) {
  return InvalidArgumentError("field '" + key + "' must be a " + want);
}

}  // namespace

StatusOr<SolveRequest> ParseSolveRequestLine(const std::string& line,
                                             const QueryLog& log,
                                             int line_number) {
  SOC_ASSIGN_OR_RETURN(auto object, ParseFlatJsonObject(line));

  SolveRequest request;
  request.id = std::to_string(line_number);
  bool have_tuple = false;
  bool have_m = false;

  for (const auto& [key, value] : object) {
    if (key == "id") {
      // Numeric ids are common in hand-written workloads; accept both.
      if (value.kind == JsonScalar::Kind::kString) {
        request.id = value.string_value;
      } else if (value.kind == JsonScalar::Kind::kNumber) {
        request.id = std::to_string(
            static_cast<long long>(std::llround(value.number_value)));
      } else {
        return WrongKind(key, "string or number");
      }
    } else if (key == "tuple") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "0/1 bitstring");
      }
      if (static_cast<int>(value.string_value.size()) !=
          log.num_attributes()) {
        return InvalidArgumentError(
            "tuple width " + std::to_string(value.string_value.size()) +
            " != log attribute count " +
            std::to_string(log.num_attributes()));
      }
      for (char c : value.string_value) {
        if (c != '0' && c != '1') {
          return InvalidArgumentError("tuple must be a 0/1 bitstring");
        }
      }
      request.tuple = DynamicBitset::FromString(value.string_value);
      have_tuple = true;
    } else if (key == "m") {
      if (value.kind != JsonScalar::Kind::kNumber) {
        return WrongKind(key, "number");
      }
      request.m = static_cast<int>(std::llround(value.number_value));
      have_m = true;
    } else if (key == "solver") {
      if (value.kind != JsonScalar::Kind::kString) {
        return WrongKind(key, "string");
      }
      request.solver = value.string_value;
    } else if (key == "deadline_ms") {
      if (value.kind != JsonScalar::Kind::kNumber) {
        return WrongKind(key, "number");
      }
      request.deadline_ms = value.number_value;
    } else {
      return InvalidArgumentError("unknown field '" + key + "'");
    }
  }

  if (!have_tuple) return InvalidArgumentError("missing field 'tuple'");
  if (!have_m) return InvalidArgumentError("missing field 'm'");
  return request;
}

JsonValue ResponseToJson(const SolveResponse& response) {
  JsonValue json = JsonValue::Object();
  json.Set("id", JsonValue::String(response.id));
  json.Set("status", JsonValue::String(StatusCodeToString(
                         response.status.code())));
  if (!response.status.ok()) {
    json.Set("error", JsonValue::String(response.status.message()));
    return json;
  }
  json.Set("solver",
           JsonValue::String(response.fast_path ? "none" : response.solver));
  json.Set("selected", JsonValue::String(response.solution.selected.ToString()));
  json.Set("satisfied_queries",
           JsonValue::Int(response.solution.satisfied_queries));
  json.Set("proved_optimal", JsonValue::Bool(response.solution.proved_optimal));
  json.Set("degraded", JsonValue::Bool(response.degraded));
  if (response.degraded) {
    json.Set("stop_reason",
             JsonValue::String(StopReasonToString(response.stop_reason)));
  }
  json.Set("fast_path", JsonValue::Bool(response.fast_path));
  json.Set("queue_ms", JsonValue::Number(response.queue_ms));
  json.Set("solve_ms", JsonValue::Number(response.solve_ms));
  return json;
}

}  // namespace soc::serve
