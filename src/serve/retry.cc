#include "serve/retry.h"

#include <algorithm>
#include <cmath>

namespace soc::serve {

bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kOverloaded;
}

double RetryDelayMs(const RetryOptions& options, int attempt,
                    double retry_after_ms, Rng& rng) {
  const int exponent = std::max(0, attempt - 1);
  double delay = options.initial_backoff_ms *
                 std::pow(options.backoff_multiplier, exponent);
  delay = std::min(delay, options.max_backoff_ms);
  // The server's hint floors the schedule: retrying before the backlog
  // has a chance to drain is a guaranteed re-shed.
  delay = std::max(delay, retry_after_ms);
  // Multiplicative jitter in [0.5, 1.0): decorrelates clients that shed
  // at the same instant without ever exceeding the computed ceiling.
  return delay * (0.5 + 0.5 * rng.NextDouble());
}

RetryBudget::RetryBudget(const RetryOptions& options)
    : ratio_(std::max(0.0, options.budget_ratio)),
      // The bucket caps at the burst allowance (or one ratio's worth if
      // larger) so long quiet stretches cannot bank unlimited retries.
      cap_(std::max(options.initial_budget, std::max(1.0, ratio_))),
      tokens_(std::max(0.0, options.initial_budget)) {}

void RetryBudget::OnSubmit() {
  MutexLock lock(mutex_);
  tokens_ = std::min(cap_, tokens_ + ratio_);
}

bool RetryBudget::TrySpend() {
  MutexLock lock(mutex_);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double RetryBudget::tokens() const {
  MutexLock lock(mutex_);
  return tokens_;
}

}  // namespace soc::serve
