// Watchdog: detects workers stuck far past their request's deadline and
// fires cooperative cancellation.
//
// Deadlines are cooperative — a solver only notices one at its next
// SolveContext::Checkpoint(). A worker wedged inside a non-checkpointing
// region (a pathological pivot, an injected chaos stall) would hold its
// thread forever with nothing watching. The watchdog is that watcher:
// every solve registers a Ticket carrying a hard wall budget
// (wall_multiple × the request's deadline, floored at min_wall_ms;
// deadline-less solves use default_wall_ms, 0 = unmonitored) and an
// atomic cancel flag wired into the solve's SolveContext. A scan loop
// sweeps the live tickets every scan_interval_ms; a ticket past its wall
// budget gets its flag set — the solve degrades with StopReason::
// kCancelled at its next checkpoint — plus a "stuck_worker" instant event
// in the tracer and a watchdog_cancelled metrics increment.
//
// The scan loop runs on a dedicated one-thread pool (the codebase bans
// naked std::thread) and wakes on a timed CondVar so Stop() is prompt.
//
// Thread-safe. Tickets are shared_ptr-owned: the registry drops its
// reference at Unregister/fire, the worker drops its own when the solve
// returns, so a flag is never read after free even if the scan races the
// solve's completion.

#ifndef SOC_SERVE_WATCHDOG_H_
#define SOC_SERVE_WATCHDOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "obs/trace_recorder.h"
#include "serve/metrics.h"

namespace soc::serve {

struct WatchdogOptions {
  // Hard wall budget as a multiple of the request's deadline.
  double wall_multiple = 4.0;
  // Floor on the wall budget, so millisecond deadlines don't make the
  // watchdog trigger-happy against scheduler jitter.
  double min_wall_ms = 50;
  // Wall budget for deadline-less requests; 0 leaves them unmonitored
  // (an unbounded exact solve with no deadline is a caller's choice).
  double default_wall_ms = 0;
  double scan_interval_ms = 10;
};

class Watchdog {
 public:
  struct Ticket {
    std::int64_t id = 0;
    std::string request_id;
    WallTimer started;
    double wall_ms = 0;
    // The flag handed to SolveContext::set_cancel_flag; flipped exactly
    // once, by the scan that declares the worker stuck.
    std::atomic<bool> cancelled{false};
  };

  // `metrics` must outlive the watchdog; `recorder` may be nullptr.
  Watchdog(WatchdogOptions options, ServeMetrics* metrics,
           obs::TraceRecorder* recorder);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Computes the wall budget for `deadline_ms` (the request's effective
  // deadline; 0 = none) per the options; 0 means "do not register".
  double WallBudgetMs(double deadline_ms) const;

  // Starts monitoring a solve. wall_ms must be > 0. The caller wires
  // ticket->cancelled into its SolveContext and calls Unregister when the
  // solve returns (fired or not).
  std::shared_ptr<Ticket> Register(const std::string& request_id,
                                   double wall_ms) SOC_EXCLUDES(mutex_);
  void Unregister(const std::shared_ptr<Ticket>& ticket)
      SOC_EXCLUDES(mutex_);

  // Cumulative stuck-worker firings.
  std::int64_t fired() const SOC_EXCLUDES(mutex_);
  // Currently monitored solves (gauge).
  std::int64_t watched() const SOC_EXCLUDES(mutex_);

  void Stop() SOC_EXCLUDES(mutex_);

 private:
  void Loop() SOC_EXCLUDES(mutex_);
  void ScanOnce() SOC_EXCLUDES(mutex_);

  const WatchdogOptions options_;
  ServeMetrics* const metrics_;
  obs::TraceRecorder* const recorder_;

  mutable Mutex mutex_{lock_rank::kWatchdog};
  CondVar wake_;
  bool stop_ SOC_GUARDED_BY(mutex_) = false;
  std::int64_t next_ticket_id_ SOC_GUARDED_BY(mutex_) = 0;
  std::map<std::int64_t, std::shared_ptr<Ticket>> tickets_
      SOC_GUARDED_BY(mutex_);
  std::int64_t fired_ SOC_GUARDED_BY(mutex_) = 0;

  ThreadPool loop_pool_{1};  // Last member: the scan dies before state above.
};

}  // namespace soc::serve

#endif  // SOC_SERVE_WATCHDOG_H_
