// Periodic metrics exposition for the serving layer.
//
// MetricsExporter snapshots a ServeMetrics-shaped source on a fixed
// cadence and hands the rendered Prometheus-style text page to a sink
// callback (socvis_serve appends it to --metrics-out, tests capture it
// in memory). The cadence loop runs on a one-thread ThreadPool — the
// repo bans naked std::thread outside the pool — and sleeps on a timed
// condition wait toward an absolute next-export deadline (so snapshot
// and sink time do not drift the cadence); Stop() interrupts a sleep
// immediately and always flushes one final export before returning.
//
// ToPrometheusText is exposed separately so callers can render a
// snapshot on demand (end-of-run dumps, tests) without an exporter.

#ifndef SOC_SERVE_METRICS_EXPORTER_H_
#define SOC_SERVE_METRICS_EXPORTER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "obs/slo.h"
#include "serve/metrics.h"

namespace soc::serve {

// Renders a snapshot as a Prometheus text-format page: counters and
// gauges as single samples, histograms as cumulative `_bucket{le=...}`
// series (ending in +Inf) with `_sum`/`_count`, plus interpolated
// p50/p95/p99 as a companion `<name>_quantile{quantile=...}` gauge.
// Metric names are prefixed with `soc_` and non-alphanumeric characters
// become underscores.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

// Folds a per-tenant SLO report (obs/slo.h) into a snapshot, so the SLO
// state rides the same exporter page as the serving counters:
// `slo.<tenant>.good` / `slo.<tenant>.bad` cumulative counters plus
// `slo.<tenant>.burn_fast` / `burn_slow` / `alerting` gauges.
void AppendSloMetrics(const obs::SloReport& report,
                      MetricsSnapshot* snapshot);

class MetricsExporter {
 public:
  struct Options {
    // Seconds between exports (clamped to >= 0.01).
    double interval_s = 1.0;
    // Source of truth; called once per cadence tick. Required.
    std::function<MetricsSnapshot()> snapshot_provider;
    // Receives the rendered text page once per tick. Required.
    std::function<void(const std::string&)> sink;
  };

  // Starts exporting immediately.
  explicit MetricsExporter(Options options);
  // Stops, flushing a final export.
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  // Interrupts the current sleep, runs one last export and joins the
  // cadence thread. Idempotent.
  void Stop() SOC_EXCLUDES(mutex_);

  // Number of completed exports (including the final flush).
  std::int64_t exports() const SOC_EXCLUDES(mutex_);

 private:
  void Loop() SOC_EXCLUDES(mutex_);
  void ExportOnce() SOC_EXCLUDES(mutex_);

  const Options options_;
  mutable Mutex mutex_{lock_rank::kMetricsExporter};
  CondVar wake_;
  bool stop_ SOC_GUARDED_BY(mutex_) = false;
  std::int64_t exports_ SOC_GUARDED_BY(mutex_) = 0;
  // Declared last so its destructor (which joins the cadence task) runs
  // first, while every member the task touches is still alive.
  ThreadPool loop_pool_{1};
};

}  // namespace soc::serve

#endif  // SOC_SERVE_METRICS_EXPORTER_H_
