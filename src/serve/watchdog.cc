#include "serve/watchdog.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace soc::serve {

Watchdog::Watchdog(WatchdogOptions options, ServeMetrics* metrics,
                   obs::TraceRecorder* recorder)
    : options_(options), metrics_(metrics), recorder_(recorder) {
  loop_pool_.Submit([this] { Loop(); });
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Stop() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.NotifyAll();
  loop_pool_.Shutdown();
}

double Watchdog::WallBudgetMs(double deadline_ms) const {
  if (deadline_ms <= 0) return options_.default_wall_ms;
  return std::max(options_.wall_multiple * deadline_ms, options_.min_wall_ms);
}

std::shared_ptr<Watchdog::Ticket> Watchdog::Register(
    const std::string& request_id, double wall_ms) {
  auto ticket = std::make_shared<Ticket>();
  ticket->request_id = request_id;
  ticket->wall_ms = wall_ms;
  MutexLock lock(mutex_);
  ticket->id = next_ticket_id_++;
  tickets_.emplace(ticket->id, ticket);
  return ticket;
}

void Watchdog::Unregister(const std::shared_ptr<Ticket>& ticket) {
  if (ticket == nullptr) return;
  MutexLock lock(mutex_);
  tickets_.erase(ticket->id);
}

std::int64_t Watchdog::fired() const {
  MutexLock lock(mutex_);
  return fired_;
}

std::int64_t Watchdog::watched() const {
  MutexLock lock(mutex_);
  return static_cast<std::int64_t>(tickets_.size());
}

void Watchdog::Loop() {
  const double interval_s =
      std::max(0.001, options_.scan_interval_ms / 1000.0);
  for (;;) {
    {
      MutexLock lock(mutex_);
      if (stop_) return;
      wake_.WaitFor(mutex_, interval_s);
      if (stop_) return;
    }
    ScanOnce();
  }
}

void Watchdog::ScanOnce() {
  // Collect the culprits under the lock, fire outside it: flag stores are
  // cheap, but the tracer call should not extend the critical section.
  std::vector<std::shared_ptr<Ticket>> stuck;
  {
    MutexLock lock(mutex_);
    for (auto it = tickets_.begin(); it != tickets_.end();) {
      Ticket& ticket = *it->second;
      if (ticket.wall_ms > 0 &&
          ticket.started.ElapsedMillis() >= ticket.wall_ms) {
        stuck.push_back(it->second);
        // Fired tickets leave the registry: one firing per solve, and
        // the next scan never re-walks a wedged worker's entry.
        it = tickets_.erase(it);
      } else {
        ++it;
      }
    }
    fired_ += static_cast<std::int64_t>(stuck.size());
  }
  for (const std::shared_ptr<Ticket>& ticket : stuck) {
    ticket->cancelled.store(true, std::memory_order_relaxed);
    metrics_->Increment("watchdog_cancelled");
    if (recorder_ != nullptr && recorder_->enabled()) {
      recorder_->RecordInstant(
          "stuck_worker", "serve",
          {obs::TraceArg::Str("id", ticket->request_id),
           obs::TraceArg::Num("elapsed_ms", ticket->started.ElapsedMillis()),
           obs::TraceArg::Num("wall_ms", ticket->wall_ms)});
    }
  }
}

}  // namespace soc::serve
