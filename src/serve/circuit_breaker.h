// Per-solver circuit breakers for the serving layer.
//
// Each registered solver tier gets a CircuitBreaker guarding it against
// sustained misbehavior: consecutive failures (solve errors, or deadline
// degrades when the breaker is configured to count them) trip the breaker
// OPEN, and while open every request that asked for the tier is rerouted
// to Fallback without touching the sick solver. After `open_ms` of
// cool-down the breaker moves to HALF-OPEN and admits exactly one probe
// request to the real solver; a successful probe closes the breaker, a
// failed one reopens it for another cool-down.
//
//        consecutive failures >= threshold
//   CLOSED ────────────────────────────────▶ OPEN
//     ▲                                       │ open_ms elapsed
//     │ probe succeeds                        ▼
//     └───────────────────────────────── HALF-OPEN
//                  probe fails ────────────▶ OPEN (timer restarts)
//
// State is exported through ServeMetrics gauges
// (breaker.<solver>.state: 0 closed / 1 open / 2 half-open) and a
// breaker.<solver>.trips counter, so the Prometheus endpoint shows trips
// as they happen.
//
// Thread-safe; every transition happens under one mutex per breaker.

#ifndef SOC_SERVE_CIRCUIT_BREAKER_H_
#define SOC_SERVE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/timer.h"

namespace soc::serve {

enum class BreakerState {
  kClosed = 0,
  kOpen = 1,
  kHalfOpen = 2,
};

// "closed", "open", "half_open".
const char* BreakerStateToString(BreakerState state);

struct CircuitBreakerOptions {
  // Consecutive failures that trip CLOSED -> OPEN. <= 0 disables the
  // breaker entirely (Allow always grants).
  int failure_threshold = 5;
  // Cool-down before an OPEN breaker admits a recovery probe.
  double open_ms = 250;
  // Count deadline-degraded solves as failures (a tier that can never
  // meet its deadlines is as poisonous as one that errors).
  bool count_degraded = true;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  // True if a request may run the protected solver now. CLOSED always
  // grants; OPEN denies until open_ms has elapsed, then transitions to
  // HALF-OPEN; HALF-OPEN grants exactly one in-flight probe and denies
  // everyone else until that probe reports back.
  bool Allow() SOC_EXCLUDES(mutex_);

  // Outcome of a granted request. Success resets the failure run (and
  // closes a half-open breaker); failure extends it (and reopens a
  // half-open breaker immediately).
  void RecordSuccess() SOC_EXCLUDES(mutex_);
  void RecordFailure() SOC_EXCLUDES(mutex_);

  BreakerState state() const SOC_EXCLUDES(mutex_);
  // Cumulative CLOSED/HALF-OPEN -> OPEN transitions.
  std::int64_t trips() const SOC_EXCLUDES(mutex_);

  const CircuitBreakerOptions& options() const { return options_; }

 private:
  void TripLocked() SOC_REQUIRES(mutex_);

  const CircuitBreakerOptions options_;
  mutable Mutex mutex_{lock_rank::kCircuitBreaker};
  BreakerState state_ SOC_GUARDED_BY(mutex_) = BreakerState::kClosed;
  int consecutive_failures_ SOC_GUARDED_BY(mutex_) = 0;
  bool probe_inflight_ SOC_GUARDED_BY(mutex_) = false;
  WallTimer opened_timer_ SOC_GUARDED_BY(mutex_);
  std::int64_t trips_ SOC_GUARDED_BY(mutex_) = 0;
};

// The service's breaker panel: one breaker per registered solver name,
// built once (map structure immutable afterwards, so lookups are
// lock-free; each breaker synchronizes itself).
class BreakerPanel {
 public:
  BreakerPanel(const std::vector<std::string>& solver_names,
               CircuitBreakerOptions options);

  // nullptr for unknown names (validation upstream makes that a bug).
  CircuitBreaker* Get(const std::string& solver_name);

  // Snapshot hook: invokes `fn(name, breaker)` for every breaker.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [name, breaker] : breakers_) fn(name, *breaker);
  }

 private:
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
};

}  // namespace soc::serve

#endif  // SOC_SERVE_CIRCUIT_BREAKER_H_
