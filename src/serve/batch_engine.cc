#include "serve/batch_engine.h"

#include <chrono>
#include <thread>
#include <utility>

namespace soc::serve {

void BatchEngine::Submit(SolveRequest request) {
  Pending pending;
  if (retry_.max_retries > 0) {
    budget_.OnSubmit();  // Fresh submissions earn retry budget.
    pending.request = request;
  }
  pending.future = service_.Submit(std::move(request));
  pending_.push_back(std::move(pending));
}

SolveResponse BatchEngine::RetryLoop(SolveResponse failed,
                                     const SolveRequest& request) {
  SolveResponse response = std::move(failed);
  for (int attempt = 1; attempt <= retry_.max_retries; ++attempt) {
    if (!budget_.TrySpend()) {
      ++retry_stats_.budget_denied;
      return response;
    }
    const double delay_ms =
        RetryDelayMs(retry_, attempt, response.retry_after_ms, rng_);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
    ++retry_stats_.retries;
    response = service_.Submit(request).get();
    if (!IsRetryableStatus(response.status)) {
      if (response.status.ok()) ++retry_stats_.recovered;
      return response;
    }
  }
  ++retry_stats_.exhausted;
  return response;
}

std::vector<SolveResponse> BatchEngine::Drain() {
  std::vector<SolveResponse> responses;
  responses.reserve(pending_.size());
  // First pass: collect every first-attempt response (the service works
  // through the batch concurrently). Retries run in a second, sequential
  // pass so backoff sleeps never delay collecting settled futures.
  for (Pending& pending : pending_) {
    responses.push_back(pending.future.get());
  }
  if (retry_.max_retries > 0) {
    for (std::size_t i = 0; i < responses.size(); ++i) {
      if (IsRetryableStatus(responses[i].status)) {
        responses[i] = RetryLoop(std::move(responses[i]), pending_[i].request);
      }
    }
  }
  pending_.clear();
  return responses;
}

}  // namespace soc::serve
