#include "serve/batch_engine.h"

#include <utility>

namespace soc::serve {

void BatchEngine::Submit(SolveRequest request) {
  futures_.push_back(service_.Submit(std::move(request)));
}

std::vector<SolveResponse> BatchEngine::Drain() {
  std::vector<SolveResponse> responses;
  responses.reserve(futures_.size());
  for (std::future<SolveResponse>& future : futures_) {
    responses.push_back(future.get());
  }
  futures_.clear();
  return responses;
}

}  // namespace soc::serve
