#include "serve/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace soc::serve {

namespace {

std::size_t BucketIndex(double ms) {
  for (std::size_t i = 0; i < kLatencyBucketUpperMs.size(); ++i) {
    if (ms <= kLatencyBucketUpperMs[i]) return i;
  }
  return kLatencyBucketUpperMs.size();  // Overflow bucket.
}

constexpr char kTenantPrefix[] = "tenant.";
constexpr char kTenantOther[] = "other";

// The `<id>` of a `tenant.<id>.<rest>` counter name; empty when the name
// is not tenant-labelled (no prefix, or no `.<rest>` after the id).
std::string TenantLabelOf(const std::string& name) {
  const std::size_t prefix_len = sizeof(kTenantPrefix) - 1;
  if (name.compare(0, prefix_len, kTenantPrefix) != 0) return {};
  const std::size_t dot = name.find('.', prefix_len);
  if (dot == std::string::npos || dot == prefix_len) return {};
  return name.substr(prefix_len, dot - prefix_len);
}

}  // namespace

double HistogramData::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in (0, count]; interpolate linearly within the covering
  // bucket, assuming observations spread uniformly across it.
  const double target = q * static_cast<double>(count);
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets[i];
    if (static_cast<double>(seen) >= target) {
      const double lower = i == 0 ? 0.0 : kLatencyBucketUpperMs[i - 1];
      // The overflow bucket is open-ended; max_ms closes it so quantiles
      // never exceed an actually-observed latency.
      const double upper =
          i < kLatencyBucketUpperMs.size() ? kLatencyBucketUpperMs[i] : max_ms;
      const double frac =
          std::max(0.0, target - before) / static_cast<double>(buckets[i]);
      return std::min(max_ms, lower + frac * (upper - lower));
    }
  }
  return max_ms;
}

JsonValue HistogramData::ToJson() const {
  std::vector<JsonValue> bucket_entries;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;  // Keep the block compact.
    JsonValue entry = JsonValue::Object();
    if (i < kLatencyBucketUpperMs.size()) {
      entry.Set("le_ms", JsonValue::Number(kLatencyBucketUpperMs[i]));
    } else {
      entry.Set("le_ms", JsonValue::Null());  // +inf bucket.
    }
    entry.Set("count", JsonValue::Int(buckets[i]));
    bucket_entries.push_back(std::move(entry));
  }
  JsonValue json = JsonValue::Object();
  json.Set("count", JsonValue::Int(count))
      .Set("mean_ms",
           JsonValue::Number(count == 0 ? 0 : sum_ms / static_cast<double>(count)))
      .Set("max_ms", JsonValue::Number(max_ms))
      .Set("p50_ms", JsonValue::Number(Quantile(0.50)))
      .Set("p95_ms", JsonValue::Number(Quantile(0.95)))
      .Set("p99_ms", JsonValue::Number(Quantile(0.99)))
      .Set("buckets", JsonValue::Array(std::move(bucket_entries)));
  return json;
}

void HistogramData::MergeFrom(const HistogramData& other) {
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum_ms += other.sum_ms;
  max_ms = std::max(max_ms, other.max_ms);
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, data] : other.histograms) {
    histograms[name].MergeFrom(data);
  }
}

JsonValue MetricsSnapshot::ToJson() const {
  JsonValue counter_json = JsonValue::Object();
  for (const auto& [name, value] : counters) {
    counter_json.Set(name, JsonValue::Int(value));
  }
  JsonValue gauge_json = JsonValue::Object();
  for (const auto& [name, value] : gauges) {
    gauge_json.Set(name, JsonValue::Number(value));
  }
  JsonValue histogram_json = JsonValue::Object();
  for (const auto& [name, data] : histograms) {
    histogram_json.Set(name, data.ToJson());
  }
  JsonValue json = JsonValue::Object();
  json.Set("counters", std::move(counter_json))
      .Set("gauges", std::move(gauge_json))
      .Set("histograms", std::move(histogram_json));
  return json;
}

void ServeMetrics::Increment(const std::string& name, std::int64_t delta) {
  SOC_CHECK_GE(delta, 0);
  MutexLock lock(mutex_);
  const std::string tenant = TenantLabelOf(name);
  if (!tenant.empty() && tenant != kTenantOther) {
    TouchTenantLabel(tenant);
    // The label may have been folded away by its own arrival only if
    // capacity were zero; TouchTenantLabel never evicts the label it
    // just touched, so the write below lands on the live name.
  }
  counters_[name] += delta;
}

void ServeMetrics::set_tenant_label_capacity(std::size_t capacity) {
  MutexLock lock(mutex_);
  tenant_label_capacity_ = std::max<std::size_t>(1, capacity);
}

void ServeMetrics::TouchTenantLabel(const std::string& tenant) {
  const auto it = tenant_index_.find(tenant);
  if (it != tenant_index_.end()) {
    tenant_lru_.splice(tenant_lru_.begin(), tenant_lru_, it->second);
    return;
  }
  tenant_lru_.push_front(tenant);
  tenant_index_[tenant] = tenant_lru_.begin();
  if (tenant_lru_.size() <= tenant_label_capacity_) return;

  // Fold the coldest tenant's counters into `tenant.other.*`: per-name
  // sums move buckets but the total over all tenants is unchanged.
  const std::string victim = tenant_lru_.back();
  tenant_index_.erase(victim);
  tenant_lru_.pop_back();
  const std::string victim_prefix =
      std::string(kTenantPrefix) + victim + ".";
  const std::string other_prefix =
      std::string(kTenantPrefix) + kTenantOther + ".";
  auto counter = counters_.lower_bound(victim_prefix);
  while (counter != counters_.end() &&
         counter->first.compare(0, victim_prefix.size(), victim_prefix) ==
             0) {
    counters_[other_prefix + counter->first.substr(victim_prefix.size())] +=
        counter->second;
    counter = counters_.erase(counter);
  }
}

std::int64_t ServeMetrics::Get(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void ServeMetrics::RecordLatency(const std::string& name, double ms) {
  MutexLock lock(mutex_);
  HistogramData& data = histograms_[name];
  ++data.buckets[BucketIndex(ms)];
  ++data.count;
  data.sum_ms += ms;
  data.max_ms = std::max(data.max_ms, ms);
}

void ServeMetrics::SetGauge(const std::string& name, double value) {
  MutexLock lock(mutex_);
  gauges_[name] = value;
}

MetricsSnapshot ServeMetrics::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters = counters_;
  snapshot.gauges = gauges_;
  snapshot.histograms = histograms_;
  return snapshot;
}

}  // namespace soc::serve
