// A small metrics registry for the serving layer: named monotonic
// counters (per-solver outcomes, cache hits, admission decisions) plus
// fixed-bucket latency histograms. Everything is thread-safe; reads
// produce a consistent MetricsSnapshot that serializes to the JSON
// metrics block socvis_serve prints at end of run.
//
// Counter names are free-form dotted strings ("completed",
// "solver.ILP.completed"); histograms share one log-spaced millisecond
// bucket layout so snapshots can be merged downstream.

#ifndef SOC_SERVE_METRICS_H_
#define SOC_SERVE_METRICS_H_

#include <array>
#include <cstdint>
#include <list>
#include <map>
#include <string>

#include "common/json_writer.h"
#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace soc::serve {

// Upper bucket bounds in milliseconds; the last bucket is unbounded.
inline constexpr std::array<double, 15> kLatencyBucketUpperMs = {
    0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500};
inline constexpr std::size_t kLatencyBucketCount =
    kLatencyBucketUpperMs.size() + 1;

// A recorded latency distribution. Plain data: ServeMetrics hands these
// out by value inside MetricsSnapshot.
struct HistogramData {
  std::array<std::int64_t, kLatencyBucketCount> buckets = {};
  std::int64_t count = 0;
  double sum_ms = 0;
  double max_ms = 0;

  // Quantile `q` in [0,1], linearly interpolated inside the covering
  // bucket (the overflow bucket interpolates up to max_ms, so the result
  // never exceeds the largest recorded value). 0 when empty. Monotonic in
  // q: Quantile(a) <= Quantile(b) whenever a <= b.
  double Quantile(double q) const;

  // {"count":..,"mean_ms":..,"max_ms":..,"p50_ms":..,"p95_ms":..,
  //  "p99_ms":..,"buckets":[{"le_ms":..,"count":..},...]}
  JsonValue ToJson() const;

  // Pointwise accumulate: every histogram shares the one bucket layout, so
  // merging is exact (max_ms takes the max). The sharded service folds
  // per-shard distributions into service totals with this.
  void MergeFrom(const HistogramData& other);
};

struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  // {"counters":{...},"gauges":{...},"histograms":{...}}
  JsonValue ToJson() const;

  // Folds `other` in: counters add, histograms MergeFrom, gauges SUM
  // (queue depths and occupancy gauges aggregate additively across
  // shards; non-additive gauges should be namespaced per shard before
  // merging).
  void MergeFrom(const MetricsSnapshot& other);
};

class ServeMetrics {
 public:
  // Adds `delta` (>= 0) to the named counter, creating it at zero.
  //
  // Tenant-label cardinality bound: counters named `tenant.<id>.<rest>`
  // are tracked against an LRU of distinct tenant labels (default
  // capacity 64). When a new label would exceed the capacity, the
  // least-recently-incremented tenant's counters are folded into the
  // `tenant.other.<rest>` bucket — sums over all tenant counters are
  // preserved exactly, so a hostile or buggy client minting unbounded
  // tenant ids cannot grow the registry (or the exporter page) without
  // bound. `other` itself is never evicted.
  void Increment(const std::string& name, std::int64_t delta = 1)
      SOC_EXCLUDES(mutex_);

  // Current value of a counter; 0 if never incremented.
  std::int64_t Get(const std::string& name) const SOC_EXCLUDES(mutex_);

  // Records one observation into the named histogram.
  void RecordLatency(const std::string& name, double ms)
      SOC_EXCLUDES(mutex_);

  // Sets the named gauge to a point-in-time value (queue depth, resident
  // cache bytes, ...). Unlike counters, gauges move in both directions.
  void SetGauge(const std::string& name, double value) SOC_EXCLUDES(mutex_);

  MetricsSnapshot Snapshot() const SOC_EXCLUDES(mutex_);

  // Maximum distinct `tenant.<id>.*` labels before LRU folding (see
  // Increment); clamped to >= 1. Intended for construction-time setup.
  void set_tenant_label_capacity(std::size_t capacity) SOC_EXCLUDES(mutex_);

 private:
  // Marks `tenant` as most-recently used and evicts the coldest label
  // into `tenant.other.*` if the capacity is now exceeded.
  void TouchTenantLabel(const std::string& tenant)
      SOC_REQUIRES(mutex_);

  mutable Mutex mutex_{lock_rank::kServeMetrics};
  std::map<std::string, std::int64_t> counters_ SOC_GUARDED_BY(mutex_);
  std::map<std::string, double> gauges_ SOC_GUARDED_BY(mutex_);
  std::map<std::string, HistogramData> histograms_ SOC_GUARDED_BY(mutex_);
  std::size_t tenant_label_capacity_ SOC_GUARDED_BY(mutex_) = 64;
  // Most-recent first; the index maps tenant label -> list position.
  std::list<std::string> tenant_lru_ SOC_GUARDED_BY(mutex_);
  std::map<std::string, std::list<std::string>::iterator> tenant_index_
      SOC_GUARDED_BY(mutex_);
};

}  // namespace soc::serve

#endif  // SOC_SERVE_METRICS_H_
