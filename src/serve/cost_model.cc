#include "serve/cost_model.h"

#include <algorithm>
#include <cmath>

namespace soc::serve {

namespace {

// Relative cost of one solve per solver tier, calibrated against the
// bench suite's ordering (greedy < mining < LP < exact enumeration). The
// absolute scale is set by kBaseCostMs below; the EWMA corrects both as
// soon as real samples arrive.
double TierMultiplier(const std::string& solver) {
  if (solver == "BruteForce") return 200.0;
  if (solver == "BranchAndBound") return 50.0;
  if (solver == "ILP") return 20.0;
  if (solver == "MaxFreqItemSets") return 8.0;
  if (solver == "MaxFreqItemSets-dfs") return 8.0;
  if (solver == "ConsumeQueries") return 2.0;
  if (solver == "ConsumeAttrCumul") return 1.5;
  if (solver == "ConsumeAttr") return 1.0;
  if (solver == "Fallback") return 1.0;
  return 10.0;  // Unknown tier: assume mid-ladder.
}

// Prior cost of the cheapest tier on a 1k-query log, milliseconds.
constexpr double kBaseCostMs = 0.05;

}  // namespace

CostModel::CostModel(CostFeatures features, int num_workers,
                     CostModelOptions options)
    : features_(features),
      num_workers_(std::max(1, num_workers)),
      options_(options) {}

double CostModel::PriorMs(const std::string& solver, int m) const {
  // Work scales with the (collapsed) query volume; the m term reflects
  // that a larger selection budget widens every tier's search.
  const double effective_queries =
      std::max(1.0, features_.num_queries * features_.collapse_ratio);
  const double size_factor = effective_queries / 1000.0;
  const double m_factor = 1.0 + 0.1 * std::max(0, m);
  return kBaseCostMs * TierMultiplier(solver) * size_factor * m_factor;
}

double CostModel::PredictSolveMs(const std::string& solver, int m) const {
  const double prior = PriorMs(solver, m);
  MutexLock lock(mutex_);
  const auto it = observed_.find(solver);
  if (it == observed_.end() || it->second.samples == 0) return prior;
  const Ewma& ewma = it->second;
  if (ewma.samples >= options_.warmup_samples) return ewma.value_ms;
  // Warm-up: fade the prior out linearly as samples accumulate.
  const double w = static_cast<double>(ewma.samples) /
                   static_cast<double>(options_.warmup_samples);
  return (1.0 - w) * prior + w * ewma.value_ms;
}

double CostModel::PredictedQueueWaitMs() const {
  return BacklogMs() / num_workers_;
}

double CostModel::BacklogMs() const {
  return static_cast<double>(backlog_us_.load(std::memory_order_relaxed)) /
         1000.0;
}

void CostModel::Charge(double predicted_ms) {
  backlog_us_.fetch_add(static_cast<std::int64_t>(predicted_ms * 1000.0),
                        std::memory_order_relaxed);
}

void CostModel::Settle(double predicted_ms) {
  backlog_us_.fetch_sub(static_cast<std::int64_t>(predicted_ms * 1000.0),
                        std::memory_order_relaxed);
}

void CostModel::Observe(const std::string& solver, double solve_ms) {
  MutexLock lock(mutex_);
  Ewma& ewma = observed_[solver];
  if (ewma.samples == 0) {
    ewma.value_ms = solve_ms;
  } else {
    ewma.value_ms = options_.ewma_alpha * solve_ms +
                    (1.0 - options_.ewma_alpha) * ewma.value_ms;
  }
  ++ewma.samples;
}

double CostModel::RetryAfterMs() const {
  return std::max(1.0, PredictedQueueWaitMs() / 2.0);
}

}  // namespace soc::serve
