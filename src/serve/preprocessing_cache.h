// Thread-safe preprocessing shared by all VisibilityService workers.
//
// Two expensive per-log artifacts are amortized across requests, the
// paper's "Preprocessing Opportunities" (Sec IV.C) turned into a serving
// concern:
//
//  * SharedMfiIndex — an MfiItemsetSource whose per-threshold maximal-
//    itemset collections live in an LRU-bounded map behind a
//    soc::SharedMutex. Readers take the shared lock (recency and
//    hit/miss counters are atomics bumped under it); mining happens
//    *outside* any lock and is single-flight per threshold: concurrent
//    misses elect one miner, followers wait for its publication instead
//    of duplicating the work. Promotion/eviction take the exclusive
//    lock. Collections are handed out as shared_ptr-to-const, so
//    eviction never invalidates a solve in flight. Partial
//    (context-stopped) mining results are never promoted, matching
//    MfiPreprocessedIndex; a follower whose leader only produced a
//    partial re-mines under its own context.
//
//  * Per-attribute query bitmaps — for each attribute a, the set of log
//    queries mentioning a, plus per-size prefix masks. Built lazily on
//    first use behind the same shared_mutex discipline; immutable after.
//    They give MaxSatisfiable(t, m), an O(M · |Q|/64) upper bound on the
//    objective that lets the service answer provably-zero requests
//    without dispatching a solver.
//
// The locking discipline described above is machine-checked: all guarded
// state carries SOC_GUARDED_BY annotations and lock-assuming helpers are
// SOC_REQUIRES-annotated (see common/thread_annotations.h).

#ifndef SOC_SERVE_PREPROCESSING_CACHE_H_
#define SOC_SERVE_PREPROCESSING_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "boolean/query_log.h"
#include "common/bitset.h"
#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/mfi_solver.h"

namespace soc::serve {

struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  // Gauges (point-in-time, not cumulative): resident cached threshold
  // collections and an estimate of their memory footprint.
  std::int64_t entries = 0;
  std::int64_t approx_bytes = 0;
};

// LRU-bounded, shared-lock MfiItemsetSource. Safe for concurrent
// MaximalItemsets calls from any number of threads.
class SharedMfiIndex : public MfiItemsetSource {
 public:
  using ItemsetsPtr =
      std::shared_ptr<const std::vector<itemsets::FrequentItemset>>;

  // `capacity` bounds the number of cached thresholds (>= 1).
  SharedMfiIndex(const QueryLog& log, MfiSocOptions options,
                 std::size_t capacity);

  const itemsets::TransactionDatabase& complemented_db() const override {
    return db_;
  }
  int log_size() const override { return log_size_; }

  StatusOr<ItemsetsPtr> MaximalItemsets(int threshold,
                                        SolveContext* context) override;

  CacheStats stats() const SOC_EXCLUDES(mutex_);

 private:
  // Map nodes are stable, so the atomic recency stamp can be updated
  // under the shared lock while another reader walks the map.
  struct Entry {
    ItemsetsPtr itemsets;
    std::atomic<std::uint64_t> last_used{0};
  };

  // One in-progress mining per threshold; followers wait on `cv` until
  // the leader flips `done`. `published` tells followers whether the
  // result landed in the cache (a partial or failed mining does not).
  struct Flight {
    Mutex mutex{lock_rank::kMfiFlight};
    CondVar cv;
    bool done SOC_GUARDED_BY(mutex) = false;
    bool published SOC_GUARDED_BY(mutex) = false;
  };

  // Mines at `threshold` with no lock held.
  StatusOr<std::vector<itemsets::FrequentItemset>> Mine(int threshold,
                                                        SolveContext* context);

  // Cache probe under the shared lock; bumps recency, and the hit
  // counter when `count_hit` (a follower re-probing after a wait was
  // already counted as a miss). Returns nullptr on absence.
  ItemsetsPtr Lookup(int threshold, bool count_hit) SOC_EXCLUDES(mutex_);

  // The miss path body: mines under `context`, promotes complete results
  // (with LRU eviction), and — when this thread is a flight leader —
  // resolves `flight` and unregisters it whatever the outcome.
  StatusOr<ItemsetsPtr> MineAndPublish(int threshold, SolveContext* context,
                                       Flight* flight)
      SOC_EXCLUDES(mutex_, flights_mutex_);

  const itemsets::TransactionDatabase db_;
  const int log_size_;
  const MfiSocOptions options_;
  const std::size_t capacity_;

  mutable SharedMutex mutex_{lock_rank::kMfiCache};
  std::map<int, Entry> cache_ SOC_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> use_clock_{0};
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> evictions_{0};

  Mutex flights_mutex_{lock_rank::kMfiFlightTable};
  std::map<int, std::shared_ptr<Flight>> flights_
      SOC_GUARDED_BY(flights_mutex_);
};

// The per-log preprocessing bundle a VisibilityService owns: one shared
// MFI index per mining engine plus the lazily-built attribute bitmaps.
class PreprocessingCache {
 public:
  // `log` must outlive the cache. `mfi_capacity` bounds each engine's
  // threshold cache.
  PreprocessingCache(const QueryLog& log, std::size_t mfi_capacity);

  // Shared mining indexes for the two registered MFI solver flavors.
  SharedMfiIndex& walk_index() { return walk_index_; }
  SharedMfiIndex& dfs_index() { return dfs_index_; }

  // Exact upper bound on the SOC objective: the number of log queries q
  // with q ⊆ tuple and |q| <= min(m, |tuple|). Thread-safe; builds the
  // bitmaps on first call.
  int MaxSatisfiable(const DynamicBitset& tuple, int m)
      SOC_EXCLUDES(bitmap_mutex_);

  // Aggregated over both MFI indexes.
  CacheStats mfi_stats() const;

 private:
  // Builds the bitmaps if absent; requires the exclusive bitmap lock.
  void EnsureBitmapsLocked() SOC_REQUIRES(bitmap_mutex_);
  // The bound computation proper; callable under a shared (or exclusive)
  // bitmap lock once the bitmaps exist.
  int MaxSatisfiableLocked(const DynamicBitset& tuple, int m) const
      SOC_REQUIRES_SHARED(bitmap_mutex_);

  const QueryLog& log_;
  SharedMfiIndex walk_index_;
  SharedMfiIndex dfs_index_;

  mutable SharedMutex bitmap_mutex_{lock_rank::kPreprocessingBitmaps};
  bool bitmaps_built_ SOC_GUARDED_BY(bitmap_mutex_) = false;
  // queries_with_attr_[a]: bitset over query ids mentioning attribute a.
  std::vector<DynamicBitset> queries_with_attr_ SOC_GUARDED_BY(bitmap_mutex_);
  // size_at_most_[s]: bitset over query ids with |q| <= s (s in 0..M).
  std::vector<DynamicBitset> size_at_most_ SOC_GUARDED_BY(bitmap_mutex_);
};

}  // namespace soc::serve

#endif  // SOC_SERVE_PREPROCESSING_CACHE_H_
