// BatchEngine: the futures-based library facade over VisibilityService
// for batch workloads — submit a stream of requests, then Drain() to
// collect every response in submission order. socvis_serve is a thin
// JSONL shell around this class; library callers embedding the service
// use it directly:
//
//   serve::VisibilityService service(log, options);
//   serve::BatchEngine engine(service);
//   for (auto& request : requests) engine.Submit(std::move(request));
//   for (auto& response : engine.Drain()) Consume(response);
//
// Not thread-safe itself (one producer); the underlying service is.

#ifndef SOC_SERVE_BATCH_ENGINE_H_
#define SOC_SERVE_BATCH_ENGINE_H_

#include <future>
#include <vector>

#include "serve/visibility_service.h"

namespace soc::serve {

class BatchEngine {
 public:
  // `service` must outlive the engine.
  explicit BatchEngine(VisibilityService& service) : service_(service) {}

  // Forwards to VisibilityService::Submit; rejected requests surface as
  // responses with the rejection Status, in order like any other.
  void Submit(SolveRequest request);

  // Blocks for all submitted requests; returns responses in submission
  // order and resets the engine for the next batch.
  std::vector<SolveResponse> Drain();

  std::size_t pending() const { return futures_.size(); }

 private:
  VisibilityService& service_;
  std::vector<std::future<SolveResponse>> futures_;
};

}  // namespace soc::serve

#endif  // SOC_SERVE_BATCH_ENGINE_H_
