// BatchEngine: the futures-based library facade over VisibilityService
// for batch workloads — submit a stream of requests, then Drain() to
// collect every response in submission order. socvis_serve is a thin
// JSONL shell around this class; library callers embedding the service
// use it directly:
//
//   serve::VisibilityService service(log, options);
//   serve::BatchEngine engine(service);
//   for (auto& request : requests) engine.Submit(std::move(request));
//   for (auto& response : engine.Drain()) Consume(response);
//
// Retry policy: constructed with RetryOptions{max_retries > 0}, Drain()
// retries kOverloaded responses with jittered exponential backoff,
// honoring each response's retry_after_ms hint, and charges every retry
// against a global RetryBudget token bucket (serve/retry.h) so a
// saturated service is not amplified further. retry_stats() reports
// where the retry traffic went.
//
// Not thread-safe itself (one producer); the underlying service is.

#ifndef SOC_SERVE_BATCH_ENGINE_H_
#define SOC_SERVE_BATCH_ENGINE_H_

#include <future>
#include <vector>

#include "common/random.h"
#include "serve/retry.h"
#include "serve/visibility_service.h"

namespace soc::serve {

class BatchEngine {
 public:
  // `service` must outlive the engine.
  explicit BatchEngine(VisibilityService& service, RetryOptions retry = {})
      : service_(service),
        retry_(retry),
        budget_(retry),
        rng_(retry.jitter_seed) {}

  // Forwards to VisibilityService::Submit; rejected requests surface as
  // responses with the rejection Status, in order like any other.
  void Submit(SolveRequest request);

  // Blocks for all submitted requests; returns responses in submission
  // order (each slot holding the final attempt's response) and resets
  // the engine for the next batch.
  std::vector<SolveResponse> Drain();

  std::size_t pending() const { return pending_.size(); }
  const RetryStats& retry_stats() const { return retry_stats_; }
  double retry_tokens() const { return budget_.tokens(); }

 private:
  struct Pending {
    std::future<SolveResponse> future;
    SolveRequest request;  // Kept for resubmission; empty if no retries.
  };

  // Runs the backoff-resubmit loop for one already-failed response;
  // returns the final response (recovered or the last failure).
  SolveResponse RetryLoop(SolveResponse failed, const SolveRequest& request);

  VisibilityService& service_;
  const RetryOptions retry_;
  RetryBudget budget_;
  Rng rng_;
  RetryStats retry_stats_;
  std::vector<Pending> pending_;
};

}  // namespace soc::serve

#endif  // SOC_SERVE_BATCH_ENGINE_H_
