// Client-side retry policy for kOverloaded responses: jittered
// exponential backoff plus a global retry-budget token bucket.
//
// Backoff alone is not enough under overload — if every client retries,
// the retry traffic is a constant multiplier on the original load and the
// service never recovers. The token bucket bounds the *ratio* of retries
// to fresh requests: each fresh submission earns `budget_ratio` tokens,
// each retry spends one, so across any window retries are at most
// budget_ratio × submissions (plus the initial burst allowance). When the
// bucket is empty the client surfaces the kOverloaded error instead of
// amplifying the storm.
//
// The delay honors the server's `retry_after_ms` hint (from the cost
// model's backlog estimate) as a floor under the exponential schedule,
// then applies multiplicative jitter in [0.5, 1.0) so synchronized
// clients decorrelate.
//
// Used by BatchEngine (per-drain retry rounds) and socvis_serve
// (--retries). RetryBudget is thread-safe; RetryPolicy::DelayMs is
// stateless apart from the caller-owned Rng.

#ifndef SOC_SERVE_RETRY_H_
#define SOC_SERVE_RETRY_H_

#include <cstdint>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace soc::serve {

struct RetryOptions {
  // Maximum retry attempts per request; 0 disables retries entirely.
  int max_retries = 0;
  double initial_backoff_ms = 5;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 500;
  // Tokens earned per fresh submission (see file comment). 0.1 means at
  // most one retry per ten fresh requests once the burst allowance is
  // spent.
  double budget_ratio = 0.1;
  // Tokens available before any submission is made, so a lone client's
  // first failure is still retryable.
  double initial_budget = 10;
  std::uint64_t jitter_seed = 0x5eed;
};

// Only kOverloaded is retryable: it is the one code the service uses for
// "try again later" (queue full, predictive shed, shutdown race).
bool IsRetryableStatus(const Status& status);

// Backoff delay for the attempt'th retry (attempt >= 1): jittered
// exponential, floored at `retry_after_ms` when the server provided one.
double RetryDelayMs(const RetryOptions& options, int attempt,
                    double retry_after_ms, Rng& rng);

// Global token bucket shared by all requests of one client.
class RetryBudget {
 public:
  explicit RetryBudget(const RetryOptions& options);

  // A fresh (non-retry) submission earns budget_ratio tokens.
  void OnSubmit() SOC_EXCLUDES(mutex_);

  // Spends one token; false (and no spend) when less than one is left.
  bool TrySpend() SOC_EXCLUDES(mutex_);

  double tokens() const SOC_EXCLUDES(mutex_);

 private:
  const double ratio_;
  const double cap_;
  mutable Mutex mutex_{lock_rank::kRetryBudget};
  double tokens_ SOC_GUARDED_BY(mutex_);
};

// Client-side outcome counters, reported by BatchEngine/socvis_serve so
// overload runs show where the retry traffic went.
struct RetryStats {
  std::int64_t retries = 0;           // Backoff-then-resubmit cycles.
  std::int64_t budget_denied = 0;     // Retryable but bucket was empty.
  std::int64_t exhausted = 0;         // Retryable but max_retries reached.
  std::int64_t recovered = 0;         // Requests that succeeded on retry.
};

}  // namespace soc::serve

#endif  // SOC_SERVE_RETRY_H_
