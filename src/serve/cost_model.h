// CostModel: a cheap per-request solve-cost estimator for cost-aware
// admission control.
//
// The model blends two signals per solver tier:
//  * a static prior built from instance features — |Q|, attribute count,
//    the log's collapse ratio (distinct / total queries, the weighted-
//    instance compression the paper exploits) and a per-solver tier
//    multiplier reflecting the portfolio's cost ladder (greedy tiers in
//    microseconds, exact tiers potentially exponential);
//  * an EWMA of observed solve times, which takes over as real samples
//    arrive — the learned half of the ROADMAP's learned-dispatcher item.
//
// It also tracks a predicted-backlog accumulator: every admitted request
// adds its predicted cost, every finished request removes it, so
// PredictedQueueWaitMs() estimates how long a new arrival waits for a
// worker. Admission sheds proactively when predicted wait (+ predicted
// solve) exceeds the request's deadline, instead of letting the request
// expire in the queue.
//
// Thread-safe: the EWMA table is mutex-guarded (solver-name keyed, low
// write rate); the backlog is a lock-free atomic microsecond counter on
// the submit/finish hot path.

#ifndef SOC_SERVE_COST_MODEL_H_
#define SOC_SERVE_COST_MODEL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace soc::serve {

struct CostModelOptions {
  // EWMA smoothing factor for observed solve times.
  double ewma_alpha = 0.2;
  // Observations before the EWMA fully replaces the prior; below this the
  // prediction blends linearly between the two.
  std::int64_t warmup_samples = 8;
};

// Static per-instance features captured once at service construction.
struct CostFeatures {
  int num_queries = 0;
  int num_attributes = 0;
  double collapse_ratio = 1.0;  // distinct queries / total queries, in (0,1].
};

class CostModel {
 public:
  CostModel(CostFeatures features, int num_workers,
            CostModelOptions options = {});

  // Predicted solve cost for one request on `solver`, in milliseconds.
  // `m` scales the prior mildly (larger budgets mean more search).
  double PredictSolveMs(const std::string& solver, int m) const
      SOC_EXCLUDES(mutex_);

  // Predicted time a new arrival spends waiting for a worker, derived
  // from the outstanding predicted backlog spread across the pool.
  double PredictedQueueWaitMs() const;

  // Outstanding predicted work (admitted, not yet finished), milliseconds.
  double BacklogMs() const;

  // Admission bookkeeping: Charge when a request is admitted with its
  // predicted cost, Settle when it finishes (same amount, so the backlog
  // returns to zero when the queue drains).
  void Charge(double predicted_ms);
  void Settle(double predicted_ms);

  // Feeds one observed solve time into the solver's EWMA.
  void Observe(const std::string& solver, double solve_ms)
      SOC_EXCLUDES(mutex_);

  // Suggested client back-off for a shed request: roughly the time for
  // half the current backlog to drain, floored at 1ms.
  double RetryAfterMs() const;

  // The static instance features the model was built from; the wide-
  // event log stamps these onto every request record.
  const CostFeatures& features() const { return features_; }

 private:
  struct Ewma {
    double value_ms = 0;
    std::int64_t samples = 0;
  };

  double PriorMs(const std::string& solver, int m) const;

  const CostFeatures features_;
  const int num_workers_;
  const CostModelOptions options_;

  mutable Mutex mutex_{lock_rank::kCostModel};
  std::map<std::string, Ewma> observed_ SOC_GUARDED_BY(mutex_);

  // Predicted backlog in microseconds; atomic so the Submit hot path
  // never takes mutex_.
  std::atomic<std::int64_t> backlog_us_{0};
};

}  // namespace soc::serve

#endif  // SOC_SERVE_COST_MODEL_H_
