#include "serve/circuit_breaker.h"

namespace soc::serve {

const char* BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options) {}

bool CircuitBreaker::Allow() {
  if (options_.failure_threshold <= 0) return true;
  MutexLock lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (opened_timer_.ElapsedMillis() < options_.open_ms) return false;
      state_ = BreakerState::kHalfOpen;
      probe_inflight_ = true;  // This caller is the probe.
      return true;
    case BreakerState::kHalfOpen:
      // One probe at a time; everyone else stays on the fallback route
      // until the in-flight probe reports back.
      if (probe_inflight_) return false;
      probe_inflight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  if (options_.failure_threshold <= 0) return;
  MutexLock lock(mutex_);
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    state_ = BreakerState::kClosed;
    probe_inflight_ = false;
  }
}

void CircuitBreaker::RecordFailure() {
  if (options_.failure_threshold <= 0) return;
  MutexLock lock(mutex_);
  if (state_ == BreakerState::kHalfOpen) {
    // The recovery probe failed: straight back to OPEN for another
    // cool-down, without waiting for a fresh failure run.
    probe_inflight_ = false;
    TripLocked();
    return;
  }
  if (state_ == BreakerState::kOpen) return;  // Already tripped.
  ++consecutive_failures_;
  if (consecutive_failures_ >= options_.failure_threshold) {
    TripLocked();
  }
}

void CircuitBreaker::TripLocked() {
  state_ = BreakerState::kOpen;
  consecutive_failures_ = 0;
  opened_timer_.Restart();
  ++trips_;
}

BreakerState CircuitBreaker::state() const {
  MutexLock lock(mutex_);
  return state_;
}

std::int64_t CircuitBreaker::trips() const {
  MutexLock lock(mutex_);
  return trips_;
}

BreakerPanel::BreakerPanel(const std::vector<std::string>& solver_names,
                           CircuitBreakerOptions options) {
  for (const std::string& name : solver_names) {
    breakers_.emplace(name, std::make_unique<CircuitBreaker>(options));
  }
}

CircuitBreaker* BreakerPanel::Get(const std::string& solver_name) {
  const auto it = breakers_.find(solver_name);
  return it == breakers_.end() ? nullptr : it->second.get();
}

}  // namespace soc::serve
