#include "serve/preprocessing_cache.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "itemsets/maximal_dfs.h"
#include "itemsets/random_walk.h"
#include "kernels/arena.h"

namespace soc::serve {

SharedMfiIndex::SharedMfiIndex(const QueryLog& log, MfiSocOptions options,
                               std::size_t capacity)
    : db_(itemsets::TransactionDatabase::FromComplementedQueryLog(log)),
      log_size_(log.size()),
      options_(std::move(options)),
      capacity_(std::max<std::size_t>(1, capacity)) {}

StatusOr<std::vector<itemsets::FrequentItemset>> SharedMfiIndex::Mine(
    int threshold, SolveContext* context) {
  return options_.engine == MfiEngine::kRandomWalk
             ? itemsets::MineMaximalItemsetsRandomWalk(
                   db_, threshold, options_.walk, /*stats=*/nullptr, context)
             : itemsets::MineMaximalItemsetsDfs(db_, threshold, options_.dfs,
                                                context);
}

SharedMfiIndex::ItemsetsPtr SharedMfiIndex::Lookup(int threshold,
                                                   bool count_hit) {
  ReaderMutexLock lock(mutex_);
  const auto it = cache_.find(threshold);
  if (it == cache_.end()) return nullptr;
  if (count_hit) hits_.fetch_add(1, std::memory_order_relaxed);
  it->second.last_used.store(
      use_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  return it->second.itemsets;
}

StatusOr<SharedMfiIndex::ItemsetsPtr> SharedMfiIndex::MaximalItemsets(
    int threshold, SolveContext* context) {
  if (ItemsetsPtr hit = Lookup(threshold, /*count_hit=*/true)) return hit;
  misses_.fetch_add(1, std::memory_order_relaxed);

  // Single-flight: concurrent misses on one threshold elect one miner.
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    MutexLock lock(flights_mutex_);
    auto [it, inserted] = flights_.try_emplace(threshold);
    if (inserted) {
      it->second = std::make_shared<Flight>();
      leader = true;
    }
    flight = it->second;
  }
  if (leader) return MineAndPublish(threshold, context, flight.get());

  bool published = false;
  {
    const PhaseScope wait_phase(context, "cache_wait");
    MutexLock wait_lock(flight->mutex);
    while (!flight->done) flight->cv.Wait(flight->mutex);
    published = flight->published;
  }
  if (published) {
    // Don't re-count: this request was already tallied as a miss.
    if (ItemsetsPtr hit = Lookup(threshold, /*count_hit=*/false)) return hit;
    // Evicted between publication and re-probe (tiny capacity under
    // churn); fall through and mine.
  }
  // The leader's mining was partial (its context stopped it) or failed;
  // neither outcome speaks for this request, so mine under our own
  // context without holding a flight (duplicate work is acceptable on
  // this rare path).
  return MineAndPublish(threshold, context, /*flight=*/nullptr);
}

StatusOr<SharedMfiIndex::ItemsetsPtr> SharedMfiIndex::MineAndPublish(
    int threshold, SolveContext* context, Flight* flight) {
  bool published = false;
  // Whatever the outcome, a leader must resolve its flight or followers
  // block forever.
  const auto resolve_flight = [&] {
    if (flight == nullptr) return;
    {
      MutexLock lock(flight->mutex);
      flight->published = published;
      flight->done = true;
    }
    {
      MutexLock lock(flights_mutex_);
      flights_.erase(threshold);
    }
    flight->cv.NotifyAll();
  };

  StatusOr<std::vector<itemsets::FrequentItemset>> mined =
      [&] {
        const PhaseScope phase(context, "mining");
        return Mine(threshold, context);
      }();
  if (!mined.ok()) {
    resolve_flight();
    return mined.status();
  }
  auto itemsets = std::make_shared<const std::vector<itemsets::FrequentItemset>>(
      std::move(mined).value());
  if (context != nullptr && context->stop_requested()) {
    // Partial pass: valid for this solve's incumbent, never cached.
    resolve_flight();
    return ItemsetsPtr(itemsets);
  }

  {
    WriterMutexLock write(mutex_);
    const auto [it, inserted] = cache_.try_emplace(threshold);
    if (inserted) {
      it->second.itemsets = itemsets;
      it->second.last_used.store(
          use_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      while (cache_.size() > capacity_) {
        auto victim = cache_.end();
        std::uint64_t oldest = 0;
        for (auto candidate = cache_.begin(); candidate != cache_.end();
             ++candidate) {
          if (candidate == it) continue;  // Never evict the fresh insert.
          const std::uint64_t used =
              candidate->second.last_used.load(std::memory_order_relaxed);
          if (victim == cache_.end() || used < oldest) {
            victim = candidate;
            oldest = used;
          }
        }
        if (victim == cache_.end()) break;
        cache_.erase(victim);
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      itemsets = it->second.itemsets;  // Raced a non-flight miner; reuse.
    }
  }
  published = true;
  resolve_flight();
  return ItemsetsPtr(itemsets);
}

CacheStats SharedMfiIndex::stats() const {
  CacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  // Per-itemset estimate: the FrequentItemset struct plus its bitset's
  // word storage. Close enough for a capacity-planning gauge.
  const std::int64_t bitset_bytes =
      static_cast<std::int64_t>((db_.num_items() + 63) / 64) * 8;
  ReaderMutexLock lock(mutex_);
  stats.entries = static_cast<std::int64_t>(cache_.size());
  for (const auto& [threshold, entry] : cache_) {
    stats.approx_bytes +=
        static_cast<std::int64_t>(sizeof(Entry)) +
        static_cast<std::int64_t>(entry.itemsets->size()) *
            (static_cast<std::int64_t>(sizeof(itemsets::FrequentItemset)) +
             bitset_bytes);
  }
  return stats;
}

namespace {

MfiSocOptions EngineOptions(MfiEngine engine) {
  MfiSocOptions options;
  options.engine = engine;
  return options;
}

}  // namespace

PreprocessingCache::PreprocessingCache(const QueryLog& log,
                                       std::size_t mfi_capacity)
    : log_(log),
      walk_index_(log, EngineOptions(MfiEngine::kRandomWalk), mfi_capacity),
      dfs_index_(log, EngineOptions(MfiEngine::kExactDfs), mfi_capacity) {}

void PreprocessingCache::EnsureBitmapsLocked() {
  if (bitmaps_built_) return;
  const int num_attrs = log_.num_attributes();
  const std::size_t num_queries = static_cast<std::size_t>(log_.size());
  queries_with_attr_.assign(num_attrs, DynamicBitset(num_queries));
  size_at_most_.assign(num_attrs + 1, DynamicBitset(num_queries));
  for (int q = 0; q < log_.size(); ++q) {
    const DynamicBitset& query = log_.query(q);
    query.ForEachSetBit(
        [&](int attr) { queries_with_attr_[attr].Set(q); });
    const std::size_t size = query.Count();
    for (std::size_t s = size; s <= static_cast<std::size_t>(num_attrs);
         ++s) {
      size_at_most_[s].Set(q);
    }
  }
  bitmaps_built_ = true;
}

int PreprocessingCache::MaxSatisfiableLocked(const DynamicBitset& tuple,
                                             int m) const {
  if (log_.empty()) return 0;
  const int m_eff =
      std::min<int>(std::max(0, m), static_cast<int>(tuple.Count()));
  // Queries with |q| <= m_eff, minus every query mentioning an attribute
  // the tuple lacks (q ⊆ t ⟺ q avoids ~t). The working bitmap lives in
  // the thread's scratch arena: this runs once per request on the serve
  // fast path, and the old per-request DynamicBitset copy was measurable
  // allocator churn (tests assert the steady state allocates nothing).
  const std::size_t words = size_at_most_[m_eff].word_count();
  const kernels::ScratchScope scratch;
  std::uint64_t* candidates = scratch.arena().AllocateWords(words);
  std::memcpy(candidates, size_at_most_[m_eff].words(),
              words * sizeof(std::uint64_t));
  for (int attr = 0; attr < log_.num_attributes(); ++attr) {
    if (tuple.Test(attr)) continue;
    const std::uint64_t* with_attr = queries_with_attr_[attr].words();
    for (std::size_t w = 0; w < words; ++w) candidates[w] &= ~with_attr[w];
  }
  long long count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    count += std::popcount(candidates[w]);
  }
  return static_cast<int>(count);
}

int PreprocessingCache::MaxSatisfiable(const DynamicBitset& tuple, int m) {
  {
    ReaderMutexLock lock(bitmap_mutex_);
    if (bitmaps_built_) return MaxSatisfiableLocked(tuple, m);
  }
  // First use: build under the exclusive lock (EnsureBitmapsLocked
  // re-checks, so racing builders are benign), then answer under it —
  // cheaper than a release-and-relock for this one-time path.
  WriterMutexLock write(bitmap_mutex_);
  EnsureBitmapsLocked();
  return MaxSatisfiableLocked(tuple, m);
}

CacheStats PreprocessingCache::mfi_stats() const {
  const CacheStats walk = walk_index_.stats();
  const CacheStats dfs = dfs_index_.stats();
  CacheStats total;
  total.hits = walk.hits + dfs.hits;
  total.misses = walk.misses + dfs.misses;
  total.evictions = walk.evictions + dfs.evictions;
  total.entries = walk.entries + dfs.entries;
  total.approx_bytes = walk.approx_bytes + dfs.approx_bytes;
  return total;
}

}  // namespace soc::serve
