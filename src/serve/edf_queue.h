// EdfQueue<T>: an earliest-deadline-first priority queue for the serving
// layer's admission scheduler.
//
// Ordering: the entry whose Deadline expires first is popped first; an
// Infinite() deadline sorts after every finite one (see
// Deadline::ExpiresBefore). Entries whose deadlines tie — including all
// deadline-less entries — pop in FIFO admission order via a monotonically
// increasing sequence number, so EDF scheduling never starves or reorders
// equal-urgency work.
//
// Not thread-safe: VisibilityService guards its instance with the same
// mutex that tracks in-flight counts. Implemented as a binary heap over a
// contiguous vector (std::push_heap / std::pop_heap) — no per-node
// allocation, O(log n) push/pop.

#ifndef SOC_SERVE_EDF_QUEUE_H_
#define SOC_SERVE_EDF_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/timer.h"

namespace soc::serve {

template <typename T>
class EdfQueue {
 public:
  // O(log n). The queue keeps its own copy of `deadline` as the sort key;
  // `value` is moved.
  void Push(const Deadline& deadline, T value) {
    heap_.push_back(Entry{deadline, next_seq_++, std::move(value)});
    std::push_heap(heap_.begin(), heap_.end(), LowerPriority);
  }

  // Pops the earliest-deadline entry into *value (and *deadline when
  // non-null). Returns false on an empty queue, leaving the outputs
  // untouched.
  bool Pop(T* value, Deadline* deadline = nullptr) {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), LowerPriority);
    Entry& back = heap_.back();
    *value = std::move(back.value);
    if (deadline != nullptr) *deadline = back.deadline;
    heap_.pop_back();
    return true;
  }

  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

 private:
  struct Entry {
    Deadline deadline;
    std::uint64_t seq = 0;
    T value;
  };

  // Heap comparator: "a has lower priority than b" — a expires after b,
  // or they tie and a was admitted later. std::push_heap keeps the
  // highest-priority (earliest-deadline, lowest-seq) entry at the front.
  static bool LowerPriority(const Entry& a, const Entry& b) {
    if (b.deadline.ExpiresBefore(a.deadline)) return true;
    if (a.deadline.ExpiresBefore(b.deadline)) return false;
    return a.seq > b.seq;
  }

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace soc::serve

#endif  // SOC_SERVE_EDF_QUEUE_H_
