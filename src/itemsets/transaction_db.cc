#include "itemsets/transaction_db.h"

namespace soc::itemsets {

TransactionDatabase::TransactionDatabase(
    std::vector<DynamicBitset> transactions)
    : num_items_(transactions.empty()
                     ? 0
                     : static_cast<int>(transactions.front().size())),
      transactions_(std::move(transactions)) {
  for (const DynamicBitset& t : transactions_) {
    SOC_CHECK_EQ(static_cast<int>(t.size()), num_items_);
  }
  columns_.assign(num_items_, DynamicBitset(transactions_.size()));
  for (std::size_t tid = 0; tid < transactions_.size(); ++tid) {
    transactions_[tid].ForEachSetBit(
        [this, tid](int item) { columns_[item].Set(tid); });
  }
}

TransactionDatabase TransactionDatabase::FromComplementedQueryLog(
    const QueryLog& log) {
  return FromQueryLog(log.Complemented());
}

TransactionDatabase TransactionDatabase::FromQueryLog(const QueryLog& log) {
  return TransactionDatabase(log.queries());
}

TransactionDatabase TransactionDatabase::FromBooleanTable(
    const BooleanTable& table) {
  return TransactionDatabase(table.rows());
}

int TransactionDatabase::Support(const DynamicBitset& itemset) const {
  SOC_CHECK_EQ(static_cast<int>(itemset.size()), num_items_);
  if (itemset.None()) return num_transactions();
  return static_cast<int>(Tids(itemset).Count());
}

DynamicBitset TransactionDatabase::Tids(const DynamicBitset& itemset) const {
  DynamicBitset tids(num_transactions());
  tids.SetAll();
  itemset.ForEachSetBit([this, &tids](int item) { tids &= columns_[item]; });
  return tids;
}

std::vector<int> TransactionDatabase::ItemSupports() const {
  std::vector<int> supports(num_items_);
  for (int i = 0; i < num_items_; ++i) {
    supports[i] = static_cast<int>(columns_[i].Count());
  }
  return supports;
}

}  // namespace soc::itemsets
