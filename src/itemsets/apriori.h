// Apriori (Agrawal & Srikant, VLDB'94): level-wise frequent-itemset mining.
//
// Included as the classic baseline the paper discusses in Sec IV.C — on the
// *complemented* (dense) query log its candidate sets explode after a few
// levels, which is exactly why the paper develops the top-down random walk.
// The `max_itemsets` guard turns that explosion into a clean error, and the
// ablation bench measures where it occurs.

#ifndef SOC_ITEMSETS_APRIORI_H_
#define SOC_ITEMSETS_APRIORI_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "itemsets/transaction_db.h"

namespace soc::itemsets {

struct AprioriOptions {
  // Abort with ResourceExhausted once this many frequent itemsets (or live
  // candidates) exist; <= 0 means unlimited.
  std::int64_t max_itemsets = 1'000'000;
  // Stop after this level (itemset size); <= 0 means no cap.
  int max_level = 0;
};

// All itemsets with support >= min_support (min_support >= 1), in order of
// increasing size. The empty itemset is not reported.
StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsApriori(
    const TransactionDatabase& db, int min_support,
    const AprioriOptions& options = {});

}  // namespace soc::itemsets

#endif  // SOC_ITEMSETS_APRIORI_H_
