#include "itemsets/maximal_dfs.h"

#include <algorithm>

#include "common/logging.h"

namespace soc::itemsets {

namespace {

class MaximalDfsMiner {
 public:
  MaximalDfsMiner(const TransactionDatabase& db, int min_support,
                  const MaximalDfsOptions& options, SolveContext* context)
      : db_(db), min_support_(min_support), options_(options),
        context_(context) {}

  StatusOr<std::vector<FrequentItemset>> Run() {
    const int n = db_.num_items();
    if (db_.num_transactions() < min_support_) return mfis_;

    // Root candidates: frequent single items, ordered by ascending support
    // (least-frequent-first keeps subtrees small).
    std::vector<int> candidates;
    const std::vector<int> supports = db_.ItemSupports();
    for (int i = 0; i < n; ++i) {
      if (supports[i] >= min_support_) candidates.push_back(i);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&supports](int a, int b) {
                if (supports[a] != supports[b]) {
                  return supports[a] < supports[b];
                }
                return a < b;
              });

    if (candidates.empty()) {
      // The empty itemset is the unique maximal frequent itemset.
      mfis_.push_back({DynamicBitset(n), db_.num_transactions()});
      return mfis_;
    }

    DynamicBitset prefix(n);
    DynamicBitset all_tids(db_.num_transactions());
    all_tids.SetAll();
    SOC_RETURN_IF_ERROR(Expand(prefix, all_tids, candidates));
    return mfis_;
  }

 private:
  bool SubsumedByKnownMfi(const DynamicBitset& itemset) const {
    for (const FrequentItemset& mfi : mfis_) {
      if (itemset.IsSubsetOf(mfi.items)) return true;
    }
    return false;
  }

  Status Offer(const DynamicBitset& itemset, int support) {
    if (SubsumedByKnownMfi(itemset)) return Status::OK();
    mfis_.push_back({itemset, support});
    if (options_.max_maximal > 0 &&
        static_cast<std::int64_t>(mfis_.size()) > options_.max_maximal) {
      return ResourceExhaustedError("too many maximal frequent itemsets");
    }
    return Status::OK();
  }

  Status Expand(DynamicBitset& prefix, const DynamicBitset& tids,
                const std::vector<int>& candidates) {
    if (options_.max_nodes > 0 && ++nodes_ > options_.max_nodes) {
      return ResourceExhaustedError("maximal DFS node budget exhausted");
    }
    // Cooperative stop: unwind quietly, keeping the maximal sets found so
    // far as a partial result.
    if (stopped_ || (context_ != nullptr && context_->Checkpoint())) {
      stopped_ = true;
      return Status::OK();
    }

    // Classify candidate extensions; PEP moves equal-support items into the
    // prefix unconditionally (they belong to every maximal superset here).
    struct Ext {
      int item;
      int support;
    };
    std::vector<Ext> tail;
    std::vector<int> absorbed;
    const int prefix_support = static_cast<int>(tids.Count());
    for (int item : candidates) {
      const int support = db_.ExtensionSupport(tids, item);
      if (support < min_support_) continue;
      if (support == prefix_support) {
        absorbed.push_back(item);  // Parent equivalence.
      } else {
        tail.push_back({item, support});
      }
    }
    for (int item : absorbed) prefix.Set(item);

    Status status = Status::OK();
    if (tail.empty()) {
      status = Offer(prefix, prefix_support);
    } else {
      // HUT lookahead: if prefix ∪ tail is frequent, it is the unique
      // maximal itemset of this subtree.
      DynamicBitset hut = prefix;
      for (const Ext& e : tail) hut.Set(e.item);
      const int hut_support = db_.Support(hut);
      if (hut_support >= min_support_) {
        status = Offer(hut, hut_support);
      } else {
        std::sort(tail.begin(), tail.end(), [](const Ext& a, const Ext& b) {
          if (a.support != b.support) return a.support < b.support;
          return a.item < b.item;
        });
        std::vector<int> child_candidates;
        child_candidates.reserve(tail.size());
        for (const Ext& e : tail) child_candidates.push_back(e.item);
        for (std::size_t i = 0; i < tail.size() && status.ok() && !stopped_;
             ++i) {
          const int item = tail[i].item;
          // Subtree subsumption prune: everything below is contained in
          // prefix ∪ {item} ∪ remaining candidates.
          DynamicBitset ceiling = prefix;
          ceiling.Set(item);
          for (std::size_t j = i + 1; j < tail.size(); ++j) {
            ceiling.Set(tail[j].item);
          }
          if (SubsumedByKnownMfi(ceiling)) continue;
          prefix.Set(item);
          const DynamicBitset child_tids = tids & db_.item_tids(item);
          const std::vector<int> rest(child_candidates.begin() + i + 1,
                                      child_candidates.end());
          status = Expand(prefix, child_tids, rest);
          prefix.Reset(item);
        }
      }
    }

    for (int item : absorbed) prefix.Reset(item);
    return status;
  }

  const TransactionDatabase& db_;
  const int min_support_;
  const MaximalDfsOptions options_;
  SolveContext* const context_;
  std::vector<FrequentItemset> mfis_;
  std::int64_t nodes_ = 0;
  bool stopped_ = false;
};

}  // namespace

StatusOr<std::vector<FrequentItemset>> MineMaximalItemsetsDfs(
    const TransactionDatabase& db, int min_support,
    const MaximalDfsOptions& options, SolveContext* context) {
  SOC_CHECK_GE(min_support, 1);
  const PhaseScope phase(context, "mine_dfs");
  MaximalDfsMiner miner(db, min_support, options, context);
  return miner.Run();
}

bool IsMaximalFrequent(const TransactionDatabase& db,
                       const DynamicBitset& itemset, int min_support) {
  if (db.Support(itemset) < min_support) return false;
  for (int i = 0; i < db.num_items(); ++i) {
    if (itemset.Test(i)) continue;
    DynamicBitset super = itemset;
    super.Set(i);
    if (db.Support(super) >= min_support) return false;
  }
  return true;
}

}  // namespace soc::itemsets
