// The paper's randomized maximal-frequent-itemset miner (Sec IV.C):
// repeated two-phase random walks on the Boolean lattice.
//
//   Down phase: start from the full itemset A (the lattice top) and remove
//   uniformly random items until the current itemset becomes frequent.
//   Up phase: repeatedly add a uniformly random item that keeps the itemset
//   frequent, until no item can be added — a maximal frequent itemset.
//
// Starting at the top is the paper's key twist (Fig 3): on the *dense*
// complemented query log ~Q the maximal itemsets sit near the top of the
// lattice, so a top-down walk crosses few levels, whereas the classic
// bottom-up walk of Gunopulos et al. [TODS'03] would crawl through ~M
// levels per walk.
//
// Stopping rule ("Number of Iterations", Sec IV.C): walks repeat until
// every discovered maximal itemset has been discovered at least twice
// (motivated by the Good–Turing estimate: the number of unseen objects is
// estimated by the number seen exactly once), or until max_iterations.

#ifndef SOC_ITEMSETS_RANDOM_WALK_H_
#define SOC_ITEMSETS_RANDOM_WALK_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/solve_context.h"
#include "common/status.h"
#include "itemsets/transaction_db.h"

namespace soc::itemsets {

struct RandomWalkOptions {
  std::uint64_t seed = 2008;
  // MaxNumIter in the paper's pseudo-code (Fig 5).
  int max_iterations = 5000;
  // Use the Good-Turing "everything seen twice" stopping rule; when false,
  // always runs max_iterations walks.
  bool good_turing_stop = true;
  // Walks performed before the stopping rule may fire. The paper's bare
  // rule can stop after two walks that happen to hit the same maximal
  // itemset; a floor keeps the estimate meaningful.
  int min_iterations = 64;
};

struct RandomWalkStats {
  int walks = 0;               // Two-phase walks performed.
  int distinct_maximal = 0;    // Distinct maximal itemsets discovered.
  bool stopped_by_rule = false;  // True if Good-Turing fired (vs. iteration cap).
};

// Maximal frequent itemsets discovered by repeated two-phase walks.
// Complete with high probability, not guaranteed (use MineMaximalItemsetsDfs
// for a deterministic answer). Same degenerate-input conventions as the DFS
// miner. `stats` may be null. `context` (optional, non-owning) is ticked
// once per walk; on a stop request the walks discovered so far are
// returned as a partial result (context->stop_requested() distinguishes).
StatusOr<std::vector<FrequentItemset>> MineMaximalItemsetsRandomWalk(
    const TransactionDatabase& db, int min_support,
    const RandomWalkOptions& options = {}, RandomWalkStats* stats = nullptr,
    SolveContext* context = nullptr);

// One two-phase walk (exposed for tests and the ablation bench): returns a
// maximal frequent itemset, or the empty itemset when min_support exceeds
// the transaction count of every reachable itemset.
FrequentItemset TwoPhaseRandomWalk(const TransactionDatabase& db,
                                   int min_support, Rng& rng);

}  // namespace soc::itemsets

#endif  // SOC_ITEMSETS_RANDOM_WALK_H_
