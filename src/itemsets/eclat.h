// Eclat (Zaki): depth-first frequent-itemset mining over vertical tidsets.
// Used as a second exact all-frequent-itemsets engine to cross-check
// Apriori in tests, and as the support-counting workhorse for small
// universes.

#ifndef SOC_ITEMSETS_ECLAT_H_
#define SOC_ITEMSETS_ECLAT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "itemsets/transaction_db.h"

namespace soc::itemsets {

struct EclatOptions {
  // Abort with ResourceExhausted past this many frequent itemsets;
  // <= 0 means unlimited.
  std::int64_t max_itemsets = 1'000'000;
};

// All itemsets with support >= min_support (DFS order). The empty itemset
// is not reported.
StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsEclat(
    const TransactionDatabase& db, int min_support,
    const EclatOptions& options = {});

}  // namespace soc::itemsets

#endif  // SOC_ITEMSETS_ECLAT_H_
