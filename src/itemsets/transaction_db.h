// TransactionDatabase: the Boolean table R mined for frequent itemsets
// (Sec IV.C). Rows are transactions over a set of items; both a horizontal
// (row bitsets) and a vertical (per-item transaction-id bitmaps)
// representation are kept, since the miners are tidset-based.

#ifndef SOC_ITEMSETS_TRANSACTION_DB_H_
#define SOC_ITEMSETS_TRANSACTION_DB_H_

#include <vector>

#include "boolean/query_log.h"
#include "boolean/table.h"
#include "common/bitset.h"

namespace soc::itemsets {

struct FrequentItemset {
  DynamicBitset items;  // Over the item universe.
  int support = 0;

  friend bool operator==(const FrequentItemset& a, const FrequentItemset& b) {
    return a.support == b.support && a.items == b.items;
  }
};

class TransactionDatabase {
 public:
  // `transactions[i]` is the item bitset of transaction i; all must share
  // one width (the number of items).
  explicit TransactionDatabase(std::vector<DynamicBitset> transactions);

  // The complemented query log ~Q as a transaction database — the exact
  // input of MaxFreqItemSets-SOC-CB-QL.
  static TransactionDatabase FromComplementedQueryLog(const QueryLog& log);

  // A query log / Boolean table as-is.
  static TransactionDatabase FromQueryLog(const QueryLog& log);
  static TransactionDatabase FromBooleanTable(const BooleanTable& table);

  int num_items() const { return num_items_; }
  int num_transactions() const {
    return static_cast<int>(transactions_.size());
  }

  const DynamicBitset& transaction(int t) const { return transactions_.at(t); }

  // Transactions containing item `i` (the item's tidset).
  const DynamicBitset& item_tids(int i) const { return columns_.at(i); }

  // Number of transactions supporting `itemset` (all items present).
  // The empty itemset is supported by every transaction.
  int Support(const DynamicBitset& itemset) const;

  // Tidset of `itemset` (AND of its item columns).
  DynamicBitset Tids(const DynamicBitset& itemset) const;

  // |tids ∩ item_tids(item)|: support of an extension without materializing.
  int ExtensionSupport(const DynamicBitset& tids, int item) const {
    return static_cast<int>(tids.IntersectionCount(columns_[item]));
  }

  // Per-item supports.
  std::vector<int> ItemSupports() const;

 private:
  int num_items_;
  std::vector<DynamicBitset> transactions_;  // Horizontal.
  std::vector<DynamicBitset> columns_;       // Vertical tidsets.
};

}  // namespace soc::itemsets

#endif  // SOC_ITEMSETS_TRANSACTION_DB_H_
