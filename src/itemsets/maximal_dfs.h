// Exact maximal-frequent-itemset mining by depth-first search, in the
// style of GenMax/MAFIA [Gouda & Zaki, ICDM'01; Burdick et al., ICDE'01]:
// vertical tidsets, dynamic reordering by support, parent-equivalence
// pruning (PEP) and HUT lookahead, with subsumption checks against the
// already-discovered maximal sets.
//
// This is the deterministic counterpart of the paper's randomized two-phase
// walk (random_walk.h); the MFI-based SOC solver can use either engine, and
// bench/ablation_mfi compares them.

#ifndef SOC_ITEMSETS_MAXIMAL_DFS_H_
#define SOC_ITEMSETS_MAXIMAL_DFS_H_

#include <cstdint>
#include <vector>

#include "common/solve_context.h"
#include "common/status.h"
#include "itemsets/transaction_db.h"

namespace soc::itemsets {

struct MaximalDfsOptions {
  // Abort with ResourceExhausted past this many maximal itemsets;
  // <= 0 means unlimited.
  std::int64_t max_maximal = 1'000'000;
  // Abort with ResourceExhausted past this many explored DFS nodes;
  // <= 0 means unlimited.
  std::int64_t max_nodes = 50'000'000;
};

// All maximal itemsets with support >= min_support (min_support >= 1).
//
// Convention for degenerate inputs: if no single item is frequent but the
// database has >= min_support transactions, the empty itemset is the unique
// maximal frequent itemset and is returned alone; if the database has fewer
// than min_support transactions, the result is empty.
//
// `context` (optional, non-owning) is ticked once per DFS node; when it
// requests a stop the miner returns the maximal itemsets discovered so far
// — a valid but possibly incomplete set. Callers distinguish the partial
// case via context->stop_requested().
StatusOr<std::vector<FrequentItemset>> MineMaximalItemsetsDfs(
    const TransactionDatabase& db, int min_support,
    const MaximalDfsOptions& options = {}, SolveContext* context = nullptr);

// True iff `itemset` is frequent and none of its single-item supersets is.
bool IsMaximalFrequent(const TransactionDatabase& db,
                       const DynamicBitset& itemset, int min_support);

}  // namespace soc::itemsets

#endif  // SOC_ITEMSETS_MAXIMAL_DFS_H_
