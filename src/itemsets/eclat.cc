#include "itemsets/eclat.h"

#include "common/logging.h"

namespace soc::itemsets {

namespace {

class EclatMiner {
 public:
  EclatMiner(const TransactionDatabase& db, int min_support,
             const EclatOptions& options)
      : db_(db), min_support_(min_support), options_(options) {}

  Status Run(std::vector<FrequentItemset>* out) {
    out_ = out;
    DynamicBitset prefix(db_.num_items());
    DynamicBitset all_tids(db_.num_transactions());
    all_tids.SetAll();
    std::vector<int> candidates;
    for (int i = 0; i < db_.num_items(); ++i) candidates.push_back(i);
    return Expand(prefix, all_tids, candidates);
  }

 private:
  // Extends `prefix` (with tidset `tids`) by each candidate item in turn;
  // candidates are item ids strictly greater extensions in DFS order.
  Status Expand(DynamicBitset& prefix, const DynamicBitset& tids,
                const std::vector<int>& candidates) {
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const int item = candidates[c];
      DynamicBitset extended_tids = tids & db_.item_tids(item);
      const int support = static_cast<int>(extended_tids.Count());
      if (support < min_support_) continue;
      prefix.Set(item);
      out_->push_back({prefix, support});
      if (options_.max_itemsets > 0 &&
          static_cast<std::int64_t>(out_->size()) > options_.max_itemsets) {
        return ResourceExhaustedError(
            "Eclat frequent-itemset explosion (dense data; see Sec IV.C)");
      }
      const std::vector<int> rest(candidates.begin() + c + 1,
                                  candidates.end());
      SOC_RETURN_IF_ERROR(Expand(prefix, extended_tids, rest));
      prefix.Reset(item);
    }
    return Status::OK();
  }

  const TransactionDatabase& db_;
  const int min_support_;
  const EclatOptions options_;
  std::vector<FrequentItemset>* out_ = nullptr;
};

}  // namespace

StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsEclat(
    const TransactionDatabase& db, int min_support,
    const EclatOptions& options) {
  SOC_CHECK_GE(min_support, 1);
  std::vector<FrequentItemset> result;
  EclatMiner miner(db, min_support, options);
  SOC_RETURN_IF_ERROR(miner.Run(&result));
  return result;
}

}  // namespace soc::itemsets
