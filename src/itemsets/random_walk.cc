#include "itemsets/random_walk.h"

#include <unordered_map>

#include "common/logging.h"

namespace soc::itemsets {

FrequentItemset TwoPhaseRandomWalk(const TransactionDatabase& db,
                                   int min_support, Rng& rng) {
  const int n = db.num_items();

  // --- Down phase: from the lattice top, drop random items until frequent.
  DynamicBitset itemset(n);
  itemset.SetAll();
  std::vector<int> members = itemset.SetBits();
  rng.Shuffle(members);  // Pre-shuffled removal order = uniform random drops.
  std::size_t next_removal = 0;
  while (db.Support(itemset) < min_support) {
    if (next_removal >= members.size()) {
      // Even the empty itemset is infrequent: fewer than min_support
      // transactions exist.
      return {DynamicBitset(n), db.num_transactions()};
    }
    itemset.Reset(members[next_removal++]);
  }

  // --- Up phase: add random items while the itemset stays frequent.
  DynamicBitset tids = db.Tids(itemset);
  while (true) {
    std::vector<int> extensions;
    for (int item = 0; item < n; ++item) {
      if (itemset.Test(item)) continue;
      if (db.ExtensionSupport(tids, item) >= min_support) {
        extensions.push_back(item);
      }
    }
    if (extensions.empty()) break;
    const int item =
        extensions[rng.NextUint64(extensions.size())];
    itemset.Set(item);
    tids &= db.item_tids(item);
  }
  return {itemset, static_cast<int>(tids.Count())};
}

StatusOr<std::vector<FrequentItemset>> MineMaximalItemsetsRandomWalk(
    const TransactionDatabase& db, int min_support,
    const RandomWalkOptions& options, RandomWalkStats* stats,
    SolveContext* context) {
  SOC_CHECK_GE(min_support, 1);
  const PhaseScope phase(context, "mine_walk");
  if (options.max_iterations <= 0) {
    return InvalidArgumentError("max_iterations must be positive");
  }
  Rng rng(options.seed);

  std::unordered_map<DynamicBitset, int, DynamicBitsetHash> times_discovered;
  std::vector<FrequentItemset> mfis;

  int walks = 0;
  bool stopped_by_rule = false;
  while (walks < options.max_iterations) {
    // One tick per two-phase walk; a stop surrenders the walks so far.
    if (context != nullptr && context->Checkpoint()) break;
    if (options.good_turing_stop && walks >= options.min_iterations) {
      bool any_singleton = false;
      for (const auto& [itemset, times] : times_discovered) {
        if (times == 1) {
          any_singleton = true;
          break;
        }
      }
      if (!any_singleton) {
        stopped_by_rule = true;
        break;
      }
    }
    ++walks;
    FrequentItemset found = TwoPhaseRandomWalk(db, min_support, rng);
    if (found.support < min_support) {
      // min_support exceeds the transaction count: nothing is frequent.
      if (stats != nullptr) {
        stats->walks = walks;
        stats->distinct_maximal = 0;
        stats->stopped_by_rule = false;
      }
      return std::vector<FrequentItemset>{};
    }
    const auto [it, inserted] = times_discovered.emplace(found.items, 1);
    if (inserted) {
      mfis.push_back(std::move(found));
    } else {
      ++it->second;
    }
  }

  if (stats != nullptr) {
    stats->walks = walks;
    stats->distinct_maximal = static_cast<int>(mfis.size());
    stats->stopped_by_rule = stopped_by_rule;
  }
  return mfis;
}

}  // namespace soc::itemsets
