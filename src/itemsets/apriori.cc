#include "itemsets/apriori.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace soc::itemsets {

namespace {

using ItemVec = std::vector<int>;

}  // namespace

StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsApriori(
    const TransactionDatabase& db, int min_support,
    const AprioriOptions& options) {
  SOC_CHECK_GE(min_support, 1);
  std::vector<FrequentItemset> result;

  const int n = db.num_items();
  // Level 1.
  std::vector<ItemVec> level;
  const std::vector<int> item_supports = db.ItemSupports();
  for (int i = 0; i < n; ++i) {
    if (item_supports[i] >= min_support) {
      level.push_back({i});
      result.push_back(
          {DynamicBitset::FromIndices(n, {i}), item_supports[i]});
    }
  }

  int k = 1;
  std::unordered_set<DynamicBitset, DynamicBitsetHash> previous_level_set;
  for (const ItemVec& items : level) {
    previous_level_set.insert(DynamicBitset::FromIndices(n, items));
  }

  while (!level.empty() && (options.max_level <= 0 || k < options.max_level)) {
    // Candidate generation: join itemsets sharing the first k-1 items
    // (levels are kept lexicographically sorted by construction).
    std::vector<ItemVec> candidates;
    for (std::size_t a = 0; a < level.size(); ++a) {
      for (std::size_t b = a + 1; b < level.size(); ++b) {
        if (!std::equal(level[a].begin(), level[a].end() - 1,
                        level[b].begin())) {
          break;  // Sorted order: no later b shares the prefix either.
        }
        ItemVec candidate = level[a];
        candidate.push_back(level[b].back());
        // Subset prune: every k-subset must be frequent.
        bool all_frequent = true;
        DynamicBitset bits =
            DynamicBitset::FromIndices(n, candidate);
        for (int drop : candidate) {
          bits.Reset(drop);
          if (!previous_level_set.contains(bits)) {
            all_frequent = false;
          }
          bits.Set(drop);
          if (!all_frequent) break;
        }
        if (all_frequent) candidates.push_back(std::move(candidate));
        if (options.max_itemsets > 0 &&
            static_cast<std::int64_t>(candidates.size() + result.size()) >
                options.max_itemsets) {
          return ResourceExhaustedError(
              "Apriori candidate explosion at level " + std::to_string(k + 1) +
              " (the dense complemented log defeats level-wise mining; "
              "see Sec IV.C of the paper)");
        }
      }
    }

    // Support counting.
    std::vector<ItemVec> next_level;
    previous_level_set.clear();
    for (ItemVec& candidate : candidates) {
      const DynamicBitset bits = DynamicBitset::FromIndices(n, candidate);
      const int support = db.Support(bits);
      if (support < min_support) continue;
      result.push_back({bits, support});
      previous_level_set.insert(bits);
      next_level.push_back(std::move(candidate));
      if (options.max_itemsets > 0 &&
          static_cast<std::int64_t>(result.size()) > options.max_itemsets) {
        return ResourceExhaustedError(
            "Apriori frequent-itemset explosion at level " +
            std::to_string(k + 1));
      }
    }
    level = std::move(next_level);
    ++k;
  }
  return result;
}

}  // namespace soc::itemsets
