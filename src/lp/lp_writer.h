// Serialization of a LinearModel to the CPLEX LP text format, so models
// built by the SOC adapters can be inspected or cross-checked with
// external solvers (lp_solve, CBC, CPLEX, Gurobi all read it).

#ifndef SOC_LP_LP_WRITER_H_
#define SOC_LP_LP_WRITER_H_

#include <string>

#include "common/status.h"
#include "lp/model.h"

namespace soc::lp {

// Renders `model` in LP format. Variable/constraint names are sanitized
// (LP format forbids several characters); unnamed entities get positional
// names (x<j>, c<i>).
std::string WriteLpFormat(const LinearModel& model);

// Writes WriteLpFormat(model) to `path`.
Status WriteLpFile(const LinearModel& model, const std::string& path);

}  // namespace soc::lp

#endif  // SOC_LP_LP_WRITER_H_
