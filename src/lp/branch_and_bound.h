// Branch-and-bound solver for mixed 0-1 / integer linear programs, using
// lp::SolveLpWithBounds for node relaxations.
//
// Features: best-bound node selection, most-fractional branching, LP
// rounding as a primal heuristic, optional user-supplied starting
// incumbent (e.g. from a greedy algorithm), integral-objective bound
// sharpening, and node/time limits with best-so-far reporting.

#ifndef SOC_LP_BRANCH_AND_BOUND_H_
#define SOC_LP_BRANCH_AND_BOUND_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace soc::lp {

struct MipOptions {
  // Hard cap on explored nodes; <= 0 means unlimited.
  std::int64_t max_nodes = 0;
  // Wall-clock budget for the whole solve; <= 0 means unlimited.
  double time_limit_seconds = 0.0;
  // Integrality tolerance: x is integral if |x - round(x)| <= this.
  double integrality_tolerance = 1e-6;
  // A feasible starting solution (checked); prunes early.
  std::optional<std::vector<double>> initial_solution;
  // Options forwarded to each LP relaxation solve.
  SimplexOptions lp_options;
  // Optional cooperative execution context (non-owning; must outlive the
  // solve), checked once per node and forwarded to every LP relaxation.
  // Any stop — deadline, cancellation, tick budget — surfaces as
  // kDeadlineExceeded with the best incumbent so far in MipResult::x.
  SolveContext* context = nullptr;
};

struct MipResult {
  // kOptimal: incumbent proved optimal. kInfeasible: no integer-feasible
  // point exists. kIterationLimit / kDeadlineExceeded: search stopped
  // early; `x` holds the best incumbent found so far (if any).
  SolveStatus status = SolveStatus::kInfeasible;
  bool has_solution = false;
  double objective = 0.0;          // Incumbent objective (model sense).
  std::vector<double> x;           // Incumbent (integral on integer vars).
  double best_bound = 0.0;         // Proven bound on the true optimum.
  std::int64_t nodes_explored = 0;
  std::int64_t lp_iterations = 0;
};

// Solves `model` to optimality (or until a limit is hit).
StatusOr<MipResult> SolveMip(const LinearModel& model,
                             const MipOptions& options = {});

}  // namespace soc::lp

#endif  // SOC_LP_BRANCH_AND_BOUND_H_
