#include "lp/lp_writer.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace soc::lp {

namespace {

// LP-format identifiers: letters, digits and a few symbols; must not start
// with a digit or 'e'/'E' (to avoid being read as a number).
std::string Sanitize(const std::string& name, const char* fallback_prefix,
                     int index) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
        c == '.') {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) ||
      out[0] == 'e' || out[0] == 'E' || out[0] == '.') {
    out = StrFormat("%s%d_%s", fallback_prefix, index, out.c_str());
  }
  return out;
}

void AppendCoefficient(std::ostringstream& out, double coeff,
                       const std::string& var, bool first) {
  if (coeff >= 0) {
    out << (first ? "" : " + ");
  } else {
    out << (first ? "- " : " - ");
  }
  const double magnitude = std::abs(coeff);
  if (magnitude != 1.0) out << StrFormat("%.12g ", magnitude);
  out << var;
}

}  // namespace

std::string WriteLpFormat(const LinearModel& model) {
  std::vector<std::string> var_names(model.num_variables());
  for (int j = 0; j < model.num_variables(); ++j) {
    var_names[j] = Sanitize(model.variable(j).name, "x", j);
  }

  std::ostringstream out;
  out << (model.sense() == ObjectiveSense::kMaximize ? "Maximize\n"
                                                     : "Minimize\n");
  out << " obj:";
  bool first = true;
  for (int j = 0; j < model.num_variables(); ++j) {
    const double coeff = model.variable(j).objective;
    if (coeff == 0.0) continue;
    if (first) out << ' ';
    AppendCoefficient(out, coeff, var_names[j], first);
    first = false;
  }
  if (first) out << " 0 " << (model.num_variables() > 0 ? var_names[0] : "");
  out << "\nSubject To\n";

  for (int i = 0; i < model.num_constraints(); ++i) {
    const Constraint& c = model.constraint(i);
    out << ' ' << Sanitize(c.name, "c", i) << ':';
    bool row_first = true;
    for (std::size_t k = 0; k < c.vars.size(); ++k) {
      if (c.coeffs[k] == 0.0) continue;
      if (row_first) out << ' ';
      AppendCoefficient(out, c.coeffs[k], var_names[c.vars[k]], row_first);
      row_first = false;
    }
    if (row_first) out << " 0 " << var_names.at(0);
    switch (c.sense) {
      case ConstraintSense::kLessEqual:
        out << " <= ";
        break;
      case ConstraintSense::kEqual:
        out << " = ";
        break;
      case ConstraintSense::kGreaterEqual:
        out << " >= ";
        break;
    }
    out << StrFormat("%.12g\n", c.rhs);
  }

  out << "Bounds\n";
  for (int j = 0; j < model.num_variables(); ++j) {
    const Variable& v = model.variable(j);
    if (v.lower == 0.0 && v.upper == kInfinity) continue;  // LP default.
    if (v.lower == v.upper) {
      out << StrFormat(" %s = %.12g\n", var_names[j].c_str(), v.lower);
      continue;
    }
    out << ' ';
    if (v.lower == -kInfinity) {
      out << "-inf";
    } else {
      out << StrFormat("%.12g", v.lower);
    }
    out << " <= " << var_names[j] << " <= ";
    if (v.upper == kInfinity) {
      out << "+inf";
    } else {
      out << StrFormat("%.12g", v.upper);
    }
    out << '\n';
  }

  bool any_integer = false;
  for (int j = 0; j < model.num_variables(); ++j) {
    if (model.variable(j).is_integer) {
      if (!any_integer) out << "General\n";
      any_integer = true;
      out << ' ' << var_names[j] << '\n';
    }
  }
  out << "End\n";
  return out.str();
}

Status WriteLpFile(const LinearModel& model, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return InvalidArgumentError("cannot open for write: " + path);
  file << WriteLpFormat(model);
  if (!file) return InternalError("short write to " + path);
  return Status::OK();
}

}  // namespace soc::lp
