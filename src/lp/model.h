// LinearModel: a sparse description of a (mixed-integer) linear program.
//
//   maximize/minimize  c^T x
//   subject to         lhs_i (<= | = | >=) rhs_i
//                      l_j <= x_j <= u_j, some x_j integer
//
// The model is solver-agnostic; lp::Simplex solves its continuous
// relaxation and lp::BranchAndBound solves the integer program.

#ifndef SOC_LP_MODEL_H_
#define SOC_LP_MODEL_H_

#include <limits>
#include <string>
#include <vector>

#include "common/status.h"

namespace soc::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class ObjectiveSense { kMaximize, kMinimize };

enum class ConstraintSense { kLessEqual, kEqual, kGreaterEqual };

struct Variable {
  std::string name;
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  bool is_integer = false;
};

struct Constraint {
  std::string name;
  ConstraintSense sense = ConstraintSense::kLessEqual;
  double rhs = 0.0;
  // Parallel arrays of (variable index, coefficient); indices are unique.
  std::vector<int> vars;
  std::vector<double> coeffs;
};

class LinearModel {
 public:
  explicit LinearModel(ObjectiveSense sense = ObjectiveSense::kMaximize)
      : sense_(sense) {}

  ObjectiveSense sense() const { return sense_; }
  void set_sense(ObjectiveSense sense) { sense_ = sense; }

  // Adds a variable and returns its index.
  int AddVariable(std::string name, double lower, double upper,
                  double objective, bool is_integer = false);

  // Adds a binary (0/1 integer) variable.
  int AddBinaryVariable(std::string name, double objective) {
    return AddVariable(std::move(name), 0.0, 1.0, objective,
                       /*is_integer=*/true);
  }

  // Adds an empty constraint and returns its row index.
  int AddConstraint(std::string name, ConstraintSense sense, double rhs);

  // Appends a term to constraint `row`. The variable must not already
  // appear in the row.
  void AddTerm(int row, int var, double coeff);

  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }

  const Variable& variable(int index) const { return variables_.at(index); }
  Variable& mutable_variable(int index) { return variables_.at(index); }
  const Constraint& constraint(int index) const {
    return constraints_.at(index);
  }

  // Structural checks: finite bounds ordered, rhs finite, indices valid.
  Status Validate() const;

  // True iff every objective coefficient of an integer variable is integral
  // and no continuous variable has a nonzero objective — then the optimal
  // objective is integral, which sharpens branch-and-bound pruning.
  bool HasIntegralObjective() const;

  // Objective value of an assignment (no feasibility checking).
  double ObjectiveValue(const std::vector<double>& x) const;

  // True iff `x` satisfies all constraints and bounds within `tolerance`.
  bool IsFeasible(const std::vector<double>& x, double tolerance) const;

 private:
  ObjectiveSense sense_;
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

}  // namespace soc::lp

#endif  // SOC_LP_MODEL_H_
