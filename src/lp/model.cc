#include "lp/model.h"

#include <cmath>

#include "common/string_util.h"

namespace soc::lp {

int LinearModel::AddVariable(std::string name, double lower, double upper,
                             double objective, bool is_integer) {
  Variable v;
  v.name = std::move(name);
  v.lower = lower;
  v.upper = upper;
  v.objective = objective;
  v.is_integer = is_integer;
  variables_.push_back(std::move(v));
  return num_variables() - 1;
}

int LinearModel::AddConstraint(std::string name, ConstraintSense sense,
                               double rhs) {
  Constraint c;
  c.name = std::move(name);
  c.sense = sense;
  c.rhs = rhs;
  constraints_.push_back(std::move(c));
  return num_constraints() - 1;
}

void LinearModel::AddTerm(int row, int var, double coeff) {
  SOC_CHECK_GE(row, 0);
  SOC_CHECK_LT(row, num_constraints());
  SOC_CHECK_GE(var, 0);
  SOC_CHECK_LT(var, num_variables());
  Constraint& c = constraints_[row];
  c.vars.push_back(var);
  c.coeffs.push_back(coeff);
}

Status LinearModel::Validate() const {
  for (int j = 0; j < num_variables(); ++j) {
    const Variable& v = variables_[j];
    if (std::isnan(v.lower) || std::isnan(v.upper) ||
        std::isnan(v.objective)) {
      return InvalidArgumentError("NaN in variable " + v.name);
    }
    if (v.lower > v.upper) {
      return InvalidArgumentError(
          StrFormat("variable %s has lower %g > upper %g", v.name.c_str(),
                    v.lower, v.upper));
    }
    if (v.lower == -kInfinity && v.upper == kInfinity) {
      return UnimplementedError("free variable " + v.name +
                                " not supported; give it a finite bound");
    }
    if (std::isinf(v.objective)) {
      return InvalidArgumentError("infinite objective on " + v.name);
    }
  }
  for (int i = 0; i < num_constraints(); ++i) {
    const Constraint& c = constraints_[i];
    if (std::isnan(c.rhs) || std::isinf(c.rhs)) {
      return InvalidArgumentError("non-finite rhs in constraint " + c.name);
    }
    std::vector<bool> seen(num_variables(), false);
    if (c.vars.size() != c.coeffs.size()) {
      return InternalError("ragged constraint " + c.name);
    }
    for (std::size_t k = 0; k < c.vars.size(); ++k) {
      const int var = c.vars[k];
      if (var < 0 || var >= num_variables()) {
        return InvalidArgumentError("bad variable index in " + c.name);
      }
      if (seen[var]) {
        return InvalidArgumentError(
            StrFormat("variable %d repeated in constraint %s", var,
                      c.name.c_str()));
      }
      seen[var] = true;
      if (std::isnan(c.coeffs[k]) || std::isinf(c.coeffs[k])) {
        return InvalidArgumentError("non-finite coefficient in " + c.name);
      }
    }
  }
  return Status::OK();
}

bool LinearModel::HasIntegralObjective() const {
  for (const Variable& v : variables_) {
    if (v.objective == 0.0) continue;
    if (!v.is_integer) return false;
    if (std::abs(v.objective - std::round(v.objective)) > 1e-12) return false;
  }
  return true;
}

double LinearModel::ObjectiveValue(const std::vector<double>& x) const {
  SOC_CHECK_EQ(static_cast<int>(x.size()), num_variables());
  double value = 0.0;
  for (int j = 0; j < num_variables(); ++j) {
    value += variables_[j].objective * x[j];
  }
  return value;
}

bool LinearModel::IsFeasible(const std::vector<double>& x,
                             double tolerance) const {
  SOC_CHECK_EQ(static_cast<int>(x.size()), num_variables());
  for (int j = 0; j < num_variables(); ++j) {
    if (x[j] < variables_[j].lower - tolerance) return false;
    if (x[j] > variables_[j].upper + tolerance) return false;
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (std::size_t k = 0; k < c.vars.size(); ++k) {
      lhs += c.coeffs[k] * x[c.vars[k]];
    }
    switch (c.sense) {
      case ConstraintSense::kLessEqual:
        if (lhs > c.rhs + tolerance) return false;
        break;
      case ConstraintSense::kEqual:
        if (std::abs(lhs - c.rhs) > tolerance) return false;
        break;
      case ConstraintSense::kGreaterEqual:
        if (lhs < c.rhs - tolerance) return false;
        break;
    }
  }
  return true;
}

}  // namespace soc::lp
