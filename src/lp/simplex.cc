#include "lp/simplex.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace soc::lp {

const char* SolveStatusToString(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "Optimal";
    case SolveStatus::kInfeasible:
      return "Infeasible";
    case SolveStatus::kUnbounded:
      return "Unbounded";
    case SolveStatus::kIterationLimit:
      return "IterationLimit";
    case SolveStatus::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

namespace {

enum class VarState : std::uint8_t { kBasic, kAtLower, kAtUpper };

// Full-tableau bounded-variable primal simplex. One instance per solve.
class SimplexSolver {
 public:
  SimplexSolver(const LinearModel& model, const std::vector<double>& lower,
                const std::vector<double>& upper,
                const SimplexOptions& options)
      : model_(model),
        options_(options),
        num_structural_(model.num_variables()),
        lower_(lower),
        upper_(upper) {}

  StatusOr<SimplexResult> Solve();

 private:
  double& At(int row, int col) { return tableau_[row * num_cols_ + col]; }
  double At(int row, int col) const { return tableau_[row * num_cols_ + col]; }

  // Current value of a nonbasic variable.
  double NonbasicValue(int j) const {
    return state_[j] == VarState::kAtUpper ? upper_[j] : lower_[j];
  }

  Status BuildTableau();
  void ComputePhase1Costs();
  void ComputePhase2Costs();
  SolveStatus RunPhase(const Deadline& deadline);
  bool DriveOutArtificials();
  SimplexResult ExtractResult(SolveStatus status) const;

  // Performs the pivot at (row, col) after the entering variable moved by
  // `delta * step` from its bound; `entering_value` is its new value.
  void Pivot(int row, int col, double entering_value);

  const LinearModel& model_;
  const SimplexOptions options_;
  const int num_structural_;

  // Bounds per tableau column (structural, then slack, then artificial).
  std::vector<double> lower_;
  std::vector<double> upper_;

  int num_rows_ = 0;
  int num_cols_ = 0;
  int first_artificial_ = 0;  // Columns >= this index are artificial.
  std::vector<double> tableau_;
  std::vector<double> cost_;         // Reduced costs for the current phase.
  std::vector<double> objective_;    // Phase-2 objective per column (min sense).
  std::vector<int> basis_;           // Basic column per row.
  std::vector<VarState> state_;      // Per column.
  std::vector<double> basic_value_;  // Value of the basic variable per row.
  std::int64_t iterations_ = 0;
  std::int64_t max_iterations_ = 0;
};

Status SimplexSolver::BuildTableau() {
  const int m = model_.num_constraints();
  num_rows_ = m;

  // Column layout: structural | one slack per <=/>= row | artificials.
  int num_slacks = 0;
  for (int i = 0; i < m; ++i) {
    if (model_.constraint(i).sense != ConstraintSense::kEqual) ++num_slacks;
  }
  const int max_cols = num_structural_ + num_slacks + m;
  const std::int64_t cells =
      static_cast<std::int64_t>(m) * static_cast<std::int64_t>(max_cols);
  if (cells > options_.max_tableau_entries) {
    return ResourceExhaustedError(
        "simplex tableau would exceed max_tableau_entries (" +
        std::to_string(cells) + " cells)");
  }

  first_artificial_ = num_structural_ + num_slacks;
  num_cols_ = first_artificial_;  // Artificials appended on demand.
  tableau_.assign(static_cast<std::size_t>(m) * max_cols, 0.0);
  // Temporarily use the max stride so artificial columns can be added
  // without reshaping.
  num_cols_ = max_cols;

  lower_.resize(max_cols, 0.0);
  upper_.resize(max_cols, kInfinity);
  state_.assign(max_cols, VarState::kAtLower);
  basis_.assign(m, -1);
  basic_value_.assign(m, 0.0);

  // Initial nonbasic placement for structural variables: the finite bound
  // (prefer lower). Validation guarantees at least one is finite.
  for (int j = 0; j < num_structural_; ++j) {
    if (lower_[j] > -kInfinity) {
      state_[j] = VarState::kAtLower;
    } else {
      state_[j] = VarState::kAtUpper;
    }
  }

  // Fill rows; >= rows are negated into <= form before adding the slack.
  int slack = num_structural_;
  int next_artificial = first_artificial_;
  for (int i = 0; i < m; ++i) {
    const Constraint& c = model_.constraint(i);
    const double sign =
        c.sense == ConstraintSense::kGreaterEqual ? -1.0 : 1.0;
    double rhs = sign * c.rhs;
    for (std::size_t k = 0; k < c.vars.size(); ++k) {
      At(i, c.vars[k]) = sign * c.coeffs[k];
    }
    int slack_col = -1;
    if (c.sense != ConstraintSense::kEqual) {
      slack_col = slack++;
      At(i, slack_col) = 1.0;
      lower_[slack_col] = 0.0;
      upper_[slack_col] = kInfinity;
    }

    // Residual with all structural variables at their initial bounds.
    double residual = rhs;
    for (std::size_t k = 0; k < c.vars.size(); ++k) {
      residual -= sign * c.coeffs[k] * NonbasicValue(c.vars[k]);
    }

    if (slack_col >= 0 && residual >= 0.0) {
      basis_[i] = slack_col;
      state_[slack_col] = VarState::kBasic;
      basic_value_[i] = residual;
      continue;
    }
    // Need an artificial. Normalize the row so the artificial column is +1
    // and its starting value is nonnegative.
    if (residual < 0.0) {
      for (int j = 0; j < first_artificial_; ++j) At(i, j) = -At(i, j);
      residual = -residual;
    }
    const int art = next_artificial++;
    At(i, art) = 1.0;
    lower_[art] = 0.0;
    upper_[art] = kInfinity;
    basis_[i] = art;
    state_[art] = VarState::kBasic;
    basic_value_[i] = residual;
  }

  // Shrink to the columns actually used.
  const int used_cols = next_artificial;
  if (used_cols != max_cols) {
    std::vector<double> packed(static_cast<std::size_t>(m) * used_cols);
    for (int i = 0; i < m; ++i) {
      std::copy(tableau_.begin() + static_cast<std::size_t>(i) * max_cols,
                tableau_.begin() + static_cast<std::size_t>(i) * max_cols +
                    used_cols,
                packed.begin() + static_cast<std::size_t>(i) * used_cols);
    }
    tableau_ = std::move(packed);
    lower_.resize(used_cols);
    upper_.resize(used_cols);
    state_.resize(used_cols);
  }
  num_cols_ = used_cols;

  // Phase-2 objective in minimize sense over all columns.
  objective_.assign(num_cols_, 0.0);
  const double obj_sign =
      model_.sense() == ObjectiveSense::kMaximize ? -1.0 : 1.0;
  for (int j = 0; j < num_structural_; ++j) {
    objective_[j] = obj_sign * model_.variable(j).objective;
  }

  max_iterations_ = options_.max_iterations > 0
                        ? options_.max_iterations
                        : 2000 + 50ll * (num_rows_ + num_cols_);
  return Status::OK();
}

void SimplexSolver::ComputePhase1Costs() {
  // Phase-1 cost: 1 on artificials. Reduced costs d = c1 - c1_B^T * T.
  cost_.assign(num_cols_, 0.0);
  for (int j = first_artificial_; j < num_cols_; ++j) cost_[j] = 1.0;
  for (int i = 0; i < num_rows_; ++i) {
    if (basis_[i] >= first_artificial_) {
      for (int j = 0; j < num_cols_; ++j) cost_[j] -= At(i, j);
    }
  }
}

void SimplexSolver::ComputePhase2Costs() {
  cost_ = objective_;
  for (int i = 0; i < num_rows_; ++i) {
    const double cb = objective_[basis_[i]];
    if (cb == 0.0) continue;
    for (int j = 0; j < num_cols_; ++j) cost_[j] -= cb * At(i, j);
  }
}

void SimplexSolver::Pivot(int row, int col, double entering_value) {
  const double piv = At(row, col);
  SOC_CHECK(std::abs(piv) > 1e-12);
  const double inv = 1.0 / piv;
  double* prow = &tableau_[static_cast<std::size_t>(row) * num_cols_];
  for (int j = 0; j < num_cols_; ++j) prow[j] *= inv;
  prow[col] = 1.0;  // Exact.
  for (int i = 0; i < num_rows_; ++i) {
    if (i == row) continue;
    const double factor = At(i, col);
    if (factor == 0.0) continue;
    double* irow = &tableau_[static_cast<std::size_t>(i) * num_cols_];
    for (int j = 0; j < num_cols_; ++j) irow[j] -= factor * prow[j];
    irow[col] = 0.0;  // Exact.
  }
  const double cfactor = cost_[col];
  if (cfactor != 0.0) {
    for (int j = 0; j < num_cols_; ++j) cost_[j] -= cfactor * prow[j];
    cost_[col] = 0.0;
  }
  basis_[row] = col;
  state_[col] = VarState::kBasic;
  basic_value_[row] = entering_value;
}

SolveStatus SimplexSolver::RunPhase(const Deadline& deadline) {
  const double tol = options_.tolerance;
  constexpr double kPivotTol = 1e-9;
  int degenerate_streak = 0;
  bool bland = false;

  while (true) {
    if (iterations_ >= max_iterations_) return SolveStatus::kIterationLimit;
    if ((iterations_ & kStopCheckMask) == 0 && deadline.Expired()) {
      return SolveStatus::kDeadlineExceeded;
    }
    // One tick per pivot; Checkpoint applies the kStopCheckInterval
    // cadence internally.
    if (options_.context != nullptr && options_.context->Checkpoint()) {
      return SolveStatus::kDeadlineExceeded;
    }

    // --- Entering variable selection (Dantzig, or Bland when cycling). ---
    int enter = -1;
    double best_score = tol;
    for (int j = 0; j < num_cols_; ++j) {
      if (state_[j] == VarState::kBasic) continue;
      if (upper_[j] - lower_[j] <= 0.0) continue;  // Fixed variable.
      double score = 0.0;
      if (state_[j] == VarState::kAtLower && cost_[j] < -tol) {
        score = -cost_[j];
      } else if (state_[j] == VarState::kAtUpper && cost_[j] > tol) {
        score = cost_[j];
      } else {
        continue;
      }
      if (bland) {
        enter = j;
        break;
      }
      if (score > best_score) {
        best_score = score;
        enter = j;
      }
    }
    if (enter == -1) return SolveStatus::kOptimal;

    const double delta = state_[enter] == VarState::kAtLower ? 1.0 : -1.0;

    // --- Ratio test. ---
    double best_t = kInfinity;
    int leave_row = -1;
    double leave_pivot = 0.0;
    bool leave_hits_lower = true;
    for (int i = 0; i < num_rows_; ++i) {
      const double alpha = At(i, enter) * delta;
      if (std::abs(alpha) <= kPivotTol) continue;
      const int bvar = basis_[i];
      double limit;
      bool hits_lower;
      if (alpha > 0.0) {
        if (lower_[bvar] <= -kInfinity) continue;
        limit = (basic_value_[i] - lower_[bvar]) / alpha;
        hits_lower = true;
      } else {
        if (upper_[bvar] >= kInfinity) continue;
        limit = (basic_value_[i] - upper_[bvar]) / alpha;
        hits_lower = false;
      }
      if (limit < 0.0) limit = 0.0;  // Roundoff guard.
      bool take;
      if (limit < best_t - 1e-12) {
        take = true;
      } else if (limit <= best_t + 1e-12 && leave_row != -1) {
        // Tie-break: Bland's rule wants the smallest basis index (for the
        // anti-cycling guarantee); otherwise prefer the numerically larger
        // pivot element.
        take = bland ? basis_[i] < basis_[leave_row]
                     : std::abs(alpha) > std::abs(leave_pivot);
      } else {
        take = false;
      }
      if (take) {
        best_t = std::min(best_t, limit);
        leave_row = i;
        leave_pivot = alpha;
        leave_hits_lower = hits_lower;
      }
    }

    const double range = upper_[enter] - lower_[enter];
    ++iterations_;

    if (range < best_t) {
      // Bound flip: the entering variable crosses to its other bound.
      for (int i = 0; i < num_rows_; ++i) {
        const double a = At(i, enter);
        if (a != 0.0) basic_value_[i] -= a * delta * range;
      }
      state_[enter] = state_[enter] == VarState::kAtLower
                          ? VarState::kAtUpper
                          : VarState::kAtLower;
      degenerate_streak = 0;
      continue;
    }

    if (leave_row == -1) return SolveStatus::kUnbounded;

    const double t = best_t;
    if (t <= tol) {
      if (++degenerate_streak > 2 * (num_rows_ + 16)) bland = true;
    } else {
      degenerate_streak = 0;
      bland = false;
    }

    // Update the other basic values, snap the leaving variable to the bound
    // it reached, and pivot.
    const int leaving = basis_[leave_row];
    for (int i = 0; i < num_rows_; ++i) {
      if (i == leave_row) continue;
      const double a = At(i, enter);
      if (a != 0.0) basic_value_[i] -= a * delta * t;
    }
    const double entering_value = NonbasicValue(enter) + delta * t;
    Pivot(leave_row, enter, entering_value);
    state_[leaving] =
        leave_hits_lower ? VarState::kAtLower : VarState::kAtUpper;
  }
}

bool SimplexSolver::DriveOutArtificials() {
  for (int i = 0; i < num_rows_; ++i) {
    if (basis_[i] < first_artificial_) continue;
    // Try a degenerate pivot onto any usable non-artificial column.
    int col = -1;
    for (int j = 0; j < first_artificial_; ++j) {
      if (state_[j] == VarState::kBasic) continue;
      if (std::abs(At(i, j)) > 1e-7) {
        col = j;
        break;
      }
    }
    if (col >= 0) {
      const int art = basis_[i];
      Pivot(i, col, NonbasicValue(col));  // Degenerate pivot (t = 0).
      state_[art] = VarState::kAtLower;   // The artificial leaves at 0.
    } else {
      // Redundant row: freeze the artificial at zero.
      upper_[basis_[i]] = 0.0;
      basic_value_[i] = 0.0;
    }
  }
  // Freeze all artificials so phase 2 cannot move them off zero.
  for (int j = first_artificial_; j < num_cols_; ++j) {
    if (state_[j] != VarState::kBasic) {
      lower_[j] = 0.0;
      upper_[j] = 0.0;
      state_[j] = VarState::kAtLower;
    } else {
      upper_[j] = 0.0;
    }
  }
  return true;
}

SimplexResult SimplexSolver::ExtractResult(SolveStatus status) const {
  SimplexResult result;
  result.status = status;
  result.iterations = iterations_;
  if (status != SolveStatus::kOptimal) return result;
  result.x.assign(num_structural_, 0.0);
  for (int j = 0; j < num_structural_; ++j) {
    result.x[j] = NonbasicValue(j);
  }
  for (int i = 0; i < num_rows_; ++i) {
    if (basis_[i] < num_structural_) result.x[basis_[i]] = basic_value_[i];
  }
  // Clamp tiny bound violations from roundoff.
  for (int j = 0; j < num_structural_; ++j) {
    result.x[j] = std::clamp(result.x[j], lower_[j], upper_[j]);
  }
  result.objective = model_.ObjectiveValue(result.x);
  return result;
}

StatusOr<SimplexResult> SimplexSolver::Solve() {
  SOC_RETURN_IF_ERROR(BuildTableau());
  const Deadline deadline =
      options_.time_limit_seconds > 0.0
          ? Deadline::AfterSeconds(options_.time_limit_seconds)
          : Deadline::Infinite();

  // Phase 1 only if any artificial is in the basis.
  bool need_phase1 = false;
  for (int i = 0; i < num_rows_; ++i) {
    if (basis_[i] >= first_artificial_) need_phase1 = true;
  }
  if (need_phase1) {
    ComputePhase1Costs();
    const SolveStatus phase1 = RunPhase(deadline);
    if (phase1 == SolveStatus::kIterationLimit ||
        phase1 == SolveStatus::kDeadlineExceeded) {
      return ExtractResult(phase1);
    }
    // Unbounded cannot happen in phase 1 (objective bounded below by 0);
    // treat defensively as infeasible.
    double infeasibility = 0.0;
    for (int i = 0; i < num_rows_; ++i) {
      if (basis_[i] >= first_artificial_) infeasibility += basic_value_[i];
    }
    if (phase1 != SolveStatus::kOptimal || infeasibility > 1e-6) {
      return ExtractResult(SolveStatus::kInfeasible);
    }
    DriveOutArtificials();
  }

  ComputePhase2Costs();
  const SolveStatus phase2 = RunPhase(deadline);
  return ExtractResult(phase2);
}

}  // namespace

StatusOr<SimplexResult> SolveLp(const LinearModel& model,
                                const SimplexOptions& options) {
  std::vector<double> lower(model.num_variables());
  std::vector<double> upper(model.num_variables());
  for (int j = 0; j < model.num_variables(); ++j) {
    lower[j] = model.variable(j).lower;
    upper[j] = model.variable(j).upper;
  }
  return SolveLpWithBounds(model, lower, upper, options);
}

StatusOr<SimplexResult> SolveLpWithBounds(const LinearModel& model,
                                          const std::vector<double>& lower,
                                          const std::vector<double>& upper,
                                          const SimplexOptions& options) {
  const PhaseScope phase(options.context, "simplex");
  SOC_RETURN_IF_ERROR(model.Validate());
  SOC_CHECK_EQ(static_cast<int>(lower.size()), model.num_variables());
  SOC_CHECK_EQ(static_cast<int>(upper.size()), model.num_variables());
  for (int j = 0; j < model.num_variables(); ++j) {
    if (lower[j] > upper[j]) {
      // Branching can create empty boxes; that is just an infeasible node.
      SimplexResult result;
      result.status = SolveStatus::kInfeasible;
      return result;
    }
  }
  SimplexSolver solver(model, lower, upper, options);
  return solver.Solve();
}

}  // namespace soc::lp
