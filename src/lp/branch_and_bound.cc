#include "lp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"
#include "common/timer.h"

namespace soc::lp {

namespace {

// One bound tightening imposed by a branching decision.
struct BoundChange {
  int var;
  double lower;
  double upper;
};

struct Node {
  // Parent's LP objective translated to "maximize" orientation; an upper
  // bound on every descendant.
  double bound;
  int depth;
  std::vector<BoundChange> changes;  // Accumulated from the root.
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    if (a.bound != b.bound) return a.bound < b.bound;  // Max-heap on bound.
    return a.depth < b.depth;  // Prefer deeper nodes on ties (dive).
  }
};

class MipSolver {
 public:
  MipSolver(const LinearModel& model, const MipOptions& options)
      : model_(model),
        options_(options),
        sign_(model.sense() == ObjectiveSense::kMaximize ? 1.0 : -1.0),
        integral_objective_(model.HasIntegralObjective()) {}

  StatusOr<MipResult> Solve();

 private:
  // Objective in internal "maximize" orientation.
  double Score(double model_objective) const { return sign_ * model_objective; }

  bool IsIntegral(double value) const {
    return std::abs(value - std::round(value)) <=
           options_.integrality_tolerance;
  }

  // Index of the integer variable whose LP value is farthest from integral,
  // or -1 if the point is integer-feasible.
  int MostFractional(const std::vector<double>& x) const;

  // Tries to register `x` (already integral on integer vars) as incumbent.
  void OfferIncumbent(const std::vector<double>& x);

  // Rounds integer variables of an LP point and offers the result if it is
  // feasible for the model.
  void TryRounding(const std::vector<double>& x);

  const LinearModel& model_;
  const MipOptions options_;
  const double sign_;
  const bool integral_objective_;

  bool has_incumbent_ = false;
  double incumbent_score_ = -kInfinity;
  std::vector<double> incumbent_;
  std::int64_t nodes_explored_ = 0;
  std::int64_t lp_iterations_ = 0;
};

int MipSolver::MostFractional(const std::vector<double>& x) const {
  int best = -1;
  double best_frac = options_.integrality_tolerance;
  for (int j = 0; j < model_.num_variables(); ++j) {
    if (!model_.variable(j).is_integer) continue;
    // Distance from the nearest integer (in [0, 0.5]); larger = more
    // fractional = more attractive to branch on.
    const double frac = std::abs(x[j] - std::round(x[j]));
    if (frac > best_frac) {
      best_frac = frac;
      best = j;
    }
  }
  return best;
}

void MipSolver::OfferIncumbent(const std::vector<double>& x) {
  const double score = Score(model_.ObjectiveValue(x));
  if (!has_incumbent_ || score > incumbent_score_ + 1e-12) {
    has_incumbent_ = true;
    incumbent_score_ = score;
    incumbent_ = x;
    // Snap integer variables exactly.
    for (int j = 0; j < model_.num_variables(); ++j) {
      if (model_.variable(j).is_integer) {
        incumbent_[j] = std::round(incumbent_[j]);
      }
    }
  }
}

void MipSolver::TryRounding(const std::vector<double>& x) {
  std::vector<double> rounded = x;
  for (int j = 0; j < model_.num_variables(); ++j) {
    if (model_.variable(j).is_integer) rounded[j] = std::round(rounded[j]);
  }
  if (model_.IsFeasible(rounded, 1e-6)) OfferIncumbent(rounded);
}

StatusOr<MipResult> MipSolver::Solve() {
  const PhaseScope phase(options_.context, "bnb");
  SOC_RETURN_IF_ERROR(model_.Validate());
  const Deadline deadline =
      options_.time_limit_seconds > 0.0
          ? Deadline::AfterSeconds(options_.time_limit_seconds)
          : Deadline::Infinite();
  const WallTimer timer;

  if (options_.initial_solution.has_value()) {
    const std::vector<double>& x0 = *options_.initial_solution;
    SOC_CHECK_EQ(static_cast<int>(x0.size()), model_.num_variables());
    bool integral = true;
    for (int j = 0; j < model_.num_variables(); ++j) {
      if (model_.variable(j).is_integer && !IsIntegral(x0[j])) {
        integral = false;
      }
    }
    if (integral && model_.IsFeasible(x0, 1e-6)) OfferIncumbent(x0);
  }

  std::vector<double> root_lower(model_.num_variables());
  std::vector<double> root_upper(model_.num_variables());
  for (int j = 0; j < model_.num_variables(); ++j) {
    root_lower[j] = model_.variable(j).lower;
    root_upper[j] = model_.variable(j).upper;
    if (model_.variable(j).is_integer) {
      root_lower[j] = std::ceil(root_lower[j] - 1e-9);
      root_upper[j] = std::floor(root_upper[j] + 1e-9);
    }
  }

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  open.push(Node{kInfinity, 0, {}});

  double best_open_bound = kInfinity;  // For gap reporting.
  SolveStatus final_status = SolveStatus::kOptimal;
  std::vector<double> lower = root_lower;
  std::vector<double> upper = root_upper;

  // Sharpened cutoff: with an integral objective any improving solution
  // scores at least incumbent + 1.
  auto cutoff = [&]() {
    if (!has_incumbent_) return -kInfinity;
    return integral_objective_ ? incumbent_score_ + 1.0 - 1e-6
                               : incumbent_score_ + 1e-9;
  };

  while (!open.empty()) {
    if (deadline.Expired()) {
      final_status = SolveStatus::kDeadlineExceeded;
      break;
    }
    if (options_.context != nullptr && options_.context->Checkpoint()) {
      final_status = SolveStatus::kDeadlineExceeded;
      break;
    }
    if (options_.max_nodes > 0 && nodes_explored_ >= options_.max_nodes) {
      final_status = SolveStatus::kIterationLimit;
      break;
    }
    Node node = open.top();
    open.pop();
    best_open_bound = node.bound;
    if (has_incumbent_ && node.bound < cutoff()) {
      // Best-bound order: every remaining node is also dominated.
      best_open_bound = incumbent_score_;
      break;
    }
    ++nodes_explored_;
    const PhaseScope node_phase(options_.context, "bnb_node");

    // Materialize this node's bounds.
    lower = root_lower;
    upper = root_upper;
    for (const BoundChange& change : node.changes) {
      lower[change.var] = std::max(lower[change.var], change.lower);
      upper[change.var] = std::min(upper[change.var], change.upper);
    }

    SimplexOptions lp_options = options_.lp_options;
    lp_options.context = options_.context;
    if (options_.time_limit_seconds > 0.0) {
      const double remaining =
          options_.time_limit_seconds - timer.ElapsedSeconds();
      lp_options.time_limit_seconds = std::max(remaining, 1e-3);
    }
    SOC_ASSIGN_OR_RETURN(SimplexResult lp,
                         SolveLpWithBounds(model_, lower, upper, lp_options));
    lp_iterations_ += lp.iterations;
    if (lp.status == SolveStatus::kInfeasible) continue;
    if (lp.status == SolveStatus::kDeadlineExceeded) {
      final_status = SolveStatus::kDeadlineExceeded;
      break;
    }
    if (lp.status == SolveStatus::kIterationLimit) {
      final_status = SolveStatus::kIterationLimit;
      break;
    }
    if (lp.status == SolveStatus::kUnbounded) {
      return InvalidArgumentError(
          "integer program has an unbounded LP relaxation");
    }

    const double node_score = Score(lp.objective);
    if (has_incumbent_ && node_score < cutoff()) continue;

    const int branch_var = MostFractional(lp.x);
    if (branch_var < 0) {
      OfferIncumbent(lp.x);
      continue;
    }
    TryRounding(lp.x);
    if (has_incumbent_ && node_score < cutoff()) continue;

    const double value = lp.x[branch_var];
    Node down{node_score, node.depth + 1, node.changes};
    down.changes.push_back(
        {branch_var, -kInfinity, std::floor(value + 1e-9)});
    Node up{node_score, node.depth + 1, node.changes};
    up.changes.push_back({branch_var, std::ceil(value - 1e-9), kInfinity});
    open.push(std::move(down));
    open.push(std::move(up));
  }

  MipResult result;
  result.nodes_explored = nodes_explored_;
  result.lp_iterations = lp_iterations_;
  result.has_solution = has_incumbent_;
  if (final_status == SolveStatus::kOptimal) {
    // The queue drained (or the cutoff break fired, which with best-bound
    // order dominates every remaining node): the incumbent is optimal.
    result.status =
        has_incumbent_ ? SolveStatus::kOptimal : SolveStatus::kInfeasible;
    best_open_bound = has_incumbent_ ? incumbent_score_ : -kInfinity;
  } else {
    // Stopped early; with best-bound order the last popped node's bound
    // (held in best_open_bound) bounds the true optimum.
    result.status = final_status;
    if (has_incumbent_) {
      best_open_bound = std::max(best_open_bound, incumbent_score_);
    }
  }
  if (has_incumbent_) {
    result.x = incumbent_;
    result.objective = sign_ * incumbent_score_;
  }
  result.best_bound = sign_ * best_open_bound;
  return result;
}

}  // namespace

StatusOr<MipResult> SolveMip(const LinearModel& model,
                             const MipOptions& options) {
  MipSolver solver(model, options);
  return solver.Solve();
}

}  // namespace soc::lp
