// A dense, full-tableau primal simplex solver with bounded variables and a
// two-phase start (artificial variables drive Phase 1).
//
// This is the LP engine underneath lp::BranchAndBound, standing in for the
// off-the-shelf lp_solve library the paper uses. It targets the moderate
// model sizes where the paper's ILP approach is viable (hundreds to a few
// thousand rows); like the paper's solver it becomes impractical for large
// query logs, which is itself one of the results we reproduce (Fig 10).
//
// Supported form:
//   max/min  c^T x
//   s.t.     a_i^T x  (<= | = | >=)  b_i
//            l <= x <= u   (each variable needs at least one finite bound)

#ifndef SOC_LP_SIMPLEX_H_
#define SOC_LP_SIMPLEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/solve_context.h"
#include "common/status.h"
#include "common/timer.h"
#include "lp/model.h"

namespace soc::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kDeadlineExceeded,
};

const char* SolveStatusToString(SolveStatus status);

struct SimplexOptions {
  // Hard cap on pivots across both phases; <= 0 means automatic
  // (scales with model size).
  std::int64_t max_iterations = 0;
  // Wall-clock budget; <= 0 means unlimited.
  double time_limit_seconds = 0.0;
  // Feasibility / optimality tolerance.
  double tolerance = 1e-7;
  // Upper bound on tableau cells (rows * columns); guards against
  // accidentally materializing a multi-GB tableau.
  std::int64_t max_tableau_entries = 30'000'000;
  // Optional cooperative execution context (non-owning; must outlive the
  // solve). Each pivot ticks it; a stop of any kind — deadline,
  // cancellation, tick budget — surfaces as kDeadlineExceeded, the
  // "stopped early, partial state valid" status.
  SolveContext* context = nullptr;
};

struct SimplexResult {
  SolveStatus status = SolveStatus::kInfeasible;
  // Objective in the model's own sense (only meaningful for kOptimal).
  double objective = 0.0;
  // One value per model variable (only meaningful for kOptimal).
  std::vector<double> x;
  std::int64_t iterations = 0;
};

// Solves the continuous relaxation of `model` (integrality is ignored).
// Returns a Status error only for malformed models or when resource guards
// trip; "infeasible"/"unbounded" are reported inside SimplexResult.
StatusOr<SimplexResult> SolveLp(const LinearModel& model,
                                const SimplexOptions& options = {});

// As SolveLp, but with per-variable bound overrides (used by branch-and-
// bound to impose branching decisions without copying the model).
StatusOr<SimplexResult> SolveLpWithBounds(const LinearModel& model,
                                          const std::vector<double>& lower,
                                          const std::vector<double>& upper,
                                          const SimplexOptions& options = {});

}  // namespace soc::lp

#endif  // SOC_LP_SIMPLEX_H_
