// Runtime tier dispatch: CPUID feature detection, the SOC_FORCE_SCALAR
// escape hatches (compile definition and environment variable), and the
// test/bench ForceTier override. The scalar fallback is always
// registered; a SIMD tier is only handed out when its TU was compiled
// with the ISA *and* the CPU reports it.

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "kernels/kernels.h"

namespace soc::kernels {

namespace {

// ForceTier override; -1 = none.
std::atomic<int> g_forced_tier{-1};

bool ForcedScalarByEnv() {
  const char* value = std::getenv("SOC_FORCE_SCALAR");
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

bool SimdAllowed() {
#if defined(SOC_FORCE_SCALAR)
  return false;
#else
  static const bool allowed = !ForcedScalarByEnv();
  return allowed;
#endif
}

bool CpuHasAvx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0;
#else
  return false;
#endif
}

Tier DetectTier() {
  if (SimdAllowed()) {
    if (internal::Avx512Ops() != nullptr && CpuHasAvx512()) {
      return Tier::kAvx512;
    }
    if (internal::Avx2Ops() != nullptr && CpuHasAvx2()) return Tier::kAvx2;
  }
  return Tier::kScalar;
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const KernelOps* GetOps(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return internal::ScalarOps();
    case Tier::kAvx2:
      return SimdAllowed() && CpuHasAvx2() ? internal::Avx2Ops() : nullptr;
    case Tier::kAvx512:
      return SimdAllowed() && CpuHasAvx512() ? internal::Avx512Ops()
                                             : nullptr;
  }
  return nullptr;
}

std::vector<Tier> AvailableTiers() {
  std::vector<Tier> tiers = {Tier::kScalar};
  if (GetOps(Tier::kAvx2) != nullptr) tiers.push_back(Tier::kAvx2);
  if (GetOps(Tier::kAvx512) != nullptr) tiers.push_back(Tier::kAvx512);
  return tiers;
}

Tier ActiveTier() {
  const int forced = g_forced_tier.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Tier>(forced);
  // CPUID and the environment cannot change mid-process.
  static const Tier detected = DetectTier();
  return detected;
}

void ForceTier(Tier tier) {
  SOC_CHECK(GetOps(tier) != nullptr);
  g_forced_tier.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void ClearForcedTier() {
  g_forced_tier.store(-1, std::memory_order_relaxed);
}

}  // namespace soc::kernels
